//! Profile two CSV snapshots from disk and contrast Affidavit's
//! key-agnostic explanation with a classic key-based diff.
//!
//! The example writes a demo snapshot pair (a §5.1-generated instance with
//! a permuted primary key) into a temp directory, loads it back through the
//! CSV reader, and runs both tools.
//!
//! ```sh
//! cargo run --example csv_diff
//! ```

use affidavit::baselines::keyed_diff::keyed_diff;
use affidavit::core::report::render_report;
use affidavit::core::{Affidavit, AffidavitConfig, ProblemInstance};
use affidavit::datagen::blueprint::{Blueprint, GenConfig};
use affidavit::datasets::{by_name, synth};
use affidavit::table::{csv, ValuePool};

fn main() {
    // 1. Write a demo snapshot pair to disk.
    let dir = std::env::temp_dir().join("affidavit-csv-diff-example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let spec = by_name("bridges").expect("dataset exists");
    let (base, pool) = synth::generate(&spec, 7);
    let generated = Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, 7)).materialize_full();
    let src_path = dir.join("source.csv");
    let tgt_path = dir.join("target.csv");
    csv::write_path(
        &src_path,
        &generated.instance.source,
        &generated.instance.pool,
        csv::CsvOptions::default(),
    )
    .expect("write source");
    csv::write_path(
        &tgt_path,
        &generated.instance.target,
        &generated.instance.pool,
        csv::CsvOptions::default(),
    )
    .expect("write target");
    println!("wrote {} and {}", src_path.display(), tgt_path.display());

    // 2. Load them back — the normal entry point for file-based use.
    let mut pool = ValuePool::new();
    let source = csv::read_path(&src_path, &mut pool, csv::CsvOptions::default()).expect("read");
    let target = csv::read_path(&tgt_path, &mut pool, csv::CsvOptions::default()).expect("read");
    let mut instance = ProblemInstance::new(source, target, pool).expect("same schema");

    // 3. The classic tool: align by the "pk" column.
    let pk = instance.schema().find("pk").expect("pk column exists");
    let report = keyed_diff(&instance, &[pk]);
    println!(
        "\nkey-based diff: {} matched, {} updates, {} deletes, {} inserts",
        report.matched.len(),
        report.updates.len(),
        report.deletes.len(),
        report.inserts.len()
    );
    println!(
        "…but the pk was reassigned between snapshots, so nearly every \
         'update' is a false alignment ({} of {} matches are spurious updates).",
        report.updates.len(),
        report.matched.len()
    );

    // 4. Affidavit: no key required.
    let outcome = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut instance);
    println!("\nAffidavit explanation (no key information used):");
    println!("{}", render_report(&outcome.explanation, &instance));

    std::fs::remove_dir_all(&dir).ok();
}
