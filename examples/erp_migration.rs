//! The paper's motivating scenario (§1): an ERP table was migrated by a
//! proprietary conversion script that reassigned primary keys, rescaled
//! amounts, reformatted sentinel dates and renamed the currency — and the
//! script is unavailable. Reverse-engineer it from the two snapshots, then
//! reuse it: transform records the conversion never saw and export a SQL
//! migration script, avoiding another full system conversion.
//!
//! ```sh
//! cargo run --example erp_migration
//! ```

use affidavit::core::apply::transform_table;
use affidavit::core::report::{render_report, to_sql};
use affidavit::core::{Affidavit, AffidavitConfig};
use affidavit::datasets::running_example::{figure1_instance, ATTRS};
use affidavit::table::{Schema, Table};

fn main() {
    let mut instance = figure1_instance();
    println!(
        "ERP snapshots: {} source / {} target records over {:?}\n",
        instance.source.len(),
        instance.target.len(),
        ATTRS
    );

    let outcome = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut instance);
    let explanation = &outcome.explanation;
    println!("Reverse-engineered conversion:");
    println!("{}", render_report(explanation, &instance));

    // More data arrived in the *old* format after the snapshot was taken —
    // the learned explanation converts it without re-running the vendor's
    // migration.
    let late_arrivals = Table::from_rows(
        Schema::new(ATTRS),
        &mut instance.pool,
        vec![
            vec!["S90", "0090", "99991231", "D", "125000", "USD", "SAP"],
            vec!["S91", "0091", "20170501", "E", "75", "USD", "IBM"],
        ],
    );
    let (converted, failed) = transform_table(explanation, &late_arrivals, &mut instance.pool);
    assert!(failed.is_empty());
    println!("Late-arriving records converted with the learned functions:");
    for (_, rec) in converted.iter() {
        let row: Vec<&str> = rec.iter().map(|v| instance.pool.get(v)).collect();
        println!("  {}", row.join(" | "));
    }
    // The sentinel date 99991231 is rewritten and Val is rescaled — the
    // systematic parts generalize even though S90/S91 were never aligned.
    let val = converted.record(affidavit::table::RecordId(0)).get(4);
    assert_eq!(instance.pool.get(val), "125");

    println!("\nSQL migration script:");
    println!("{}", to_sql(explanation, &instance, "erp_positions"));
}
