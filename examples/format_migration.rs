//! Formatting-only migration: learning *presentation* changes.
//!
//! A reporting database is migrated from raw machine-readable values to a
//! human-readable export format: customer names are flipped from
//! `"Last, First"` to `"First Last"`, account codes are zero-padded, and
//! amounts get thousands grouping — while a software release running in
//! parallel inserts and deletes rows, and the primary key is reassigned.
//!
//! None of these transformations is in the paper's Table 1 catalogue; this
//! example runs Affidavit with the **extended registry** (the §6
//! "richer set of functions" future-work direction) and shows that the
//! learned explanation generalizes to records that were never seen.
//!
//! ```sh
//! cargo run --example format_migration
//! ```

use affidavit::core::report::render_report;
use affidavit::core::{Affidavit, AffidavitConfig, ProblemInstance};
use affidavit::functions::numeric_format::add_thousands_sep;
use affidavit::functions::Registry;
use affidavit::table::{Schema, Table, ValuePool};

fn main() {
    let firsts = [
        "John", "Jane", "Max", "Ada", "Alan", "Grace", "Kurt", "Emmy",
    ];
    let lasts = [
        "Doe", "Weber", "Turing", "Hopper", "Liskov", "Noether", "Gauss", "Euler",
    ];
    let regions = ["EMEA", "APAC", "AMER"];

    // Source snapshot: raw export with reassigned row ids.
    let mut pool = ValuePool::new();
    let mut rows_s: Vec<Vec<String>> = Vec::new();
    let mut rows_t: Vec<Vec<String>> = Vec::new();
    for i in 0..50usize {
        let first = firsts[i % firsts.len()];
        let last = lasts[(i * 3) % lasts.len()];
        let code = (i * 41 + 3).to_string();
        let amount = (12_345 + i * 98_765).to_string();
        let region = regions[i % regions.len()];
        rows_s.push(vec![
            i.to_string(), // primary key, reassigned below
            format!("{last}, {first}"),
            code.clone(),
            amount.clone(),
            region.to_owned(), // the one column the migration left alone
        ]);
        rows_t.push(vec![
            (997 - i).to_string(), // new key: old alignment is useless
            format!("{first} {last}"),
            format!("{code:0>6}"),
            add_thousands_sep(&amount, ',').expect("numeric"),
            region.to_owned(),
        ]);
    }
    // Concurrent activity: two deletions, one insertion.
    rows_s.push(vec![
        "90".into(),
        "Gone, Long".into(),
        "1".into(),
        "10".into(),
        "EMEA".into(),
    ]);
    rows_s.push(vec![
        "91".into(),
        "Left, Who".into(),
        "2".into(),
        "20".into(),
        "APAC".into(),
    ]);
    rows_t.push(vec![
        "500".into(),
        "New Customer".into(),
        "000777".into(),
        "9,999".into(),
        "AMER".into(),
    ]);

    let schema = Schema::new(["id", "customer", "code", "amount", "region"]);
    let source = Table::from_rows(schema.clone(), &mut pool, rows_s);
    let target = Table::from_rows(schema, &mut pool, rows_t);
    let mut instance = ProblemInstance::new(source, target, pool).expect("valid instance");

    // The paper's robust configuration, with the extended function set.
    let mut cfg = AffidavitConfig::paper_id();
    cfg.registry = Registry::extended();
    let outcome = Affidavit::new(cfg).explain(&mut instance);
    outcome
        .explanation
        .validate(&mut instance)
        .expect("explanation is valid");

    println!("{}", render_report(&outcome.explanation, &instance));

    // The learned functions generalize to unseen records.
    let fns = &outcome.explanation.functions;
    let pool = &mut instance.pool;
    for (col, raw) in [(1usize, "Curie, Marie"), (2, "58"), (3, "7654321")] {
        let v = pool.intern(raw);
        let out = fns[col].apply(v, pool).expect("applies to unseen value");
        println!("unseen column {col}: {raw:?} ↦ {:?}", pool.get(out));
    }
}
