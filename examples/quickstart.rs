//! Quickstart: explain the differences between two tiny snapshots.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use affidavit::core::report::render_report;
use affidavit::prelude::*;

fn main() {
    // Build the two snapshots. In real use you would load CSVs via
    // `affidavit::table::csv::read_path` — see the `csv_diff` example.
    let mut pool = ValuePool::new();
    let source = Table::from_rows(
        Schema::new(["id", "amount", "currency", "customer"]),
        &mut pool,
        vec![
            vec!["1", "80000", "USD", "IBM"],
            vec!["2", "180000", "USD", "IBM"],
            vec!["3", "6540", "USD", "SAP"],
            vec!["4", "9800", "USD", "SAP"],
            vec!["5", "21000", "USD", "BASF"],
        ],
    );
    // The target snapshot: ids reassigned, amounts rescaled to thousands,
    // currency renamed — plus one deleted and one inserted record.
    let target = Table::from_rows(
        Schema::new(["id", "amount", "currency", "customer"]),
        &mut pool,
        vec![
            vec!["17", "180", "k $", "IBM"],
            vec!["23", "6.54", "k $", "SAP"],
            vec!["11", "80", "k $", "IBM"],
            vec!["41", "9.8", "k $", "SAP"],
            vec!["99", "0.45", "k $", "HP"], // inserted
        ],
    );

    let mut instance = ProblemInstance::new(source, target, pool).expect("same schema");
    let solver = Affidavit::new(AffidavitConfig::paper_id());
    let outcome = solver.explain(&mut instance);

    println!("{}", render_report(&outcome.explanation, &instance));
    println!(
        "search: {} states polled in {:?}",
        outcome.stats.polled, outcome.stats.duration
    );

    // The explanation generalizes: transform a record that was never seen.
    let mut unseen_pool = std::mem::take(&mut instance.pool);
    let amount = unseen_pool.intern("123000");
    let f_amount = &outcome.explanation.functions[1];
    let rescaled = f_amount
        .apply(amount, &mut unseen_pool)
        .expect("numeric value");
    println!(
        "unseen amount 123000 ↦ {}  (learned {})",
        unseen_pool.get(rescaled),
        f_amount.display(&unseen_pool)
    );
}
