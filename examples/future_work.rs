//! The paper's §6 future-work directions, implemented:
//!
//! 1. **Date conversions** — learned as ordinary 2-parameter functions.
//! 2. **Function corpus (TDE-style)** — ready-made transformations are
//!    *retrieved* against examples instead of induced (`use_corpus`).
//! 3. **Schema alignment** — target snapshots whose columns were renamed
//!    and reordered are aligned by content before the search runs.
//! 4. **Column merging/splitting** — arity-changing schema modifications
//!    ("attribute renaming, merging or splitting") are detected from
//!    concatenation evidence and normalized away before the search.
//!
//! ```sh
//! cargo run --example future_work
//! ```

use affidavit::core::report::render_report;
use affidavit::core::restructure::{normalize_arity, Restructure};
use affidavit::core::schema_align::align_schemas;
use affidavit::core::{Affidavit, AffidavitConfig, ProblemInstance};
use affidavit::table::{Schema, Table, ValuePool};

fn main() {
    // A source snapshot: event log with yyyymmdd dates and sizes in KiB.
    let mut pool = ValuePool::new();
    let rows_s: Vec<Vec<String>> = (0..40)
        .map(|i| {
            vec![
                format!("evt{i}"),
                format!("20{:02}{:02}{:02}", 15 + i % 5, 1 + i % 12, 1 + i % 28),
                format!("{}", (i + 1) * 1024),
            ]
        })
        .collect();
    let source = Table::from_rows(Schema::new(["event", "day", "size_kib"]), &mut pool, rows_s);

    // The target snapshot after a migration: columns renamed AND reordered,
    // dates reformatted to ISO, sizes rescaled to MiB.
    let rows_t: Vec<Vec<String>> = (0..40)
        .map(|i| {
            vec![
                format!("{}", i + 1), // size in MiB
                format!("evt{i}"),
                format!("20{:02}-{:02}-{:02}", 15 + i % 5, 1 + i % 12, 1 + i % 28),
            ]
        })
        .collect();
    let target = Table::from_rows(Schema::new(["c0", "c1", "c2"]), &mut pool, rows_t);

    // 3. Schema alignment by content.
    let alignment = align_schemas(&source, &target, &pool);
    println!(
        "schema alignment (min confidence {:.2}):",
        alignment.min_confidence()
    );
    for (i, j) in alignment.pairs() {
        println!(
            "  {} ← {}",
            source.schema().name(i),
            target.schema().name(j)
        );
    }
    let target = alignment.reorder_target(&target, source.schema());

    // 2. + 1. Corpus retrieval picks up the non-power-of-ten 1/1024 rescale
    // and the date conversion in one shot.
    let mut instance = ProblemInstance::new(source, target, pool).expect("aligned schemas");
    let mut cfg = AffidavitConfig::paper_id();
    cfg.use_corpus = true;
    let outcome = Affidavit::new(cfg).explain(&mut instance);
    println!("\n{}", render_report(&outcome.explanation, &instance));
    assert_eq!(outcome.explanation.core_size(), 40, "everything must align");

    // 4. Column merging: the target schema concatenated first/last names.
    let mut pool = ValuePool::new();
    let firsts = ["John", "Jane", "Max", "Ada", "Alan", "Grace"];
    let lasts = ["Doe", "Weber", "Turing", "Hopper", "Liskov", "Noether"];
    let rows_s: Vec<Vec<String>> = (0..30)
        .map(|i| {
            vec![
                firsts[i % firsts.len()].to_owned(),
                lasts[(i * 5) % lasts.len()].to_owned(),
                format!("acct{i}"),
            ]
        })
        .collect();
    let rows_t: Vec<Vec<String>> = (0..30)
        .map(|i| {
            vec![
                format!(
                    "{} {}",
                    firsts[i % firsts.len()],
                    lasts[(i * 5) % lasts.len()]
                ),
                format!("acct{i}"),
            ]
        })
        .collect();
    let source = Table::from_rows(Schema::new(["first", "last", "account"]), &mut pool, rows_s);
    let target = Table::from_rows(Schema::new(["name", "account"]), &mut pool, rows_t);

    let (source, target, applied) =
        normalize_arity(&source, &target, &mut pool).expect("merge evidence found");
    println!("\ndetected schema restructures:");
    for r in &applied {
        match r {
            Restructure::Merge { sep, score, .. } => {
                println!("  merge with separator {sep:?} (score {score:.2})")
            }
            Restructure::Split { sep, score, .. } => {
                println!("  split at separator {sep:?} (score {score:.2})")
            }
        }
    }
    // Normalization fixes the arity; alignment fixes names and order.
    let alignment = align_schemas(&source, &target, &pool);
    let target = alignment.reorder_target(&target, source.schema());
    let mut instance = ProblemInstance::new(source, target, pool).expect("normalized arity");
    let outcome = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut instance);
    println!("\n{}", render_report(&outcome.explanation, &instance));
    assert_eq!(
        outcome.explanation.core_size(),
        30,
        "merge must be explained"
    );
}
