//! A quick local probe of the two scalability claims (§5.4): runtime grows
//! linearly in records and (roughly) linearly in attributes.
//!
//! Miniature version of the Figure 5 / Figure 6 harnesses — full versions:
//! `cargo run --release -p affidavit-bench --bin repro_fig5` and
//! `…repro_fig6`.
//!
//! ```sh
//! cargo run --release --example scalability_probe
//! ```

use std::time::Instant;

use affidavit::core::{Affidavit, AffidavitConfig};
use affidavit::datagen::blueprint::{Blueprint, GenConfig};
use affidavit::datasets::{by_name, synth};

fn main() {
    println!("row scaling (flight-500k shape, η=τ=0.3):");
    let spec = by_name("flight-500k").expect("dataset exists");
    let (base, pool) = synth::generate_rows(&spec, 8_000, 5);
    let blueprint = Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, 5));
    println!("{:>7} {:>9} {:>12}", "scale", "t", "t/record");
    for pct in [25u32, 50, 75, 100] {
        let mut generated = blueprint.materialize(pct as f64 / 100.0);
        let n = generated.instance.source.len();
        let started = Instant::now();
        let _ = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut generated.instance);
        let t = started.elapsed();
        println!(
            "{:>6}% {:>8.2}s {:>10.1}µs",
            pct,
            t.as_secs_f64(),
            t.as_secs_f64() * 1e6 / n as f64
        );
    }

    println!("\nattribute scaling (400 rows each, η=τ=0.3):");
    println!(
        "{:>10} {:>6} {:>9} {:>14}",
        "dataset", "|A|", "t", "t/rec/attr"
    );
    for name in ["horse", "plista", "flight-1k", "uniprot"] {
        let spec = by_name(name).expect("dataset exists");
        let (base, pool) = synth::generate_rows(&spec, 400, 5);
        let blueprint = Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, 5));
        let mut generated = blueprint.materialize_full();
        let started = Instant::now();
        let _ = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut generated.instance);
        let t = started.elapsed();
        println!(
            "{:>10} {:>6} {:>8.2}s {:>12.3}µs",
            name,
            spec.attrs,
            t.as_secs_f64(),
            t.as_secs_f64() * 1e6 / 400.0 / spec.attrs as f64
        );
    }
    println!("\nflat t/record and t/rec/attr columns ⇒ the paper's linear-scaling claims hold.");
}
