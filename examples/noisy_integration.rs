//! Data-integration robustness: how much insert/delete noise can the
//! explanation survive?
//!
//! §1 names duplicate detection across redundant sources as an application.
//! This example sweeps the noise fraction η from 0.1 to 0.7 on a mid-size
//! dataset and reports the §5.2 metrics — reproducing in miniature the
//! Table 2 trend that quality degrades gracefully until noise dominates.
//!
//! ```sh
//! cargo run --release --example noisy_integration
//! ```

use std::time::Instant;

use affidavit::core::{Affidavit, AffidavitConfig};
use affidavit::datagen::blueprint::{Blueprint, GenConfig};
use affidavit::datagen::metrics::evaluate;
use affidavit::datasets::{by_name, synth};

fn main() {
    let spec = by_name("abalone").expect("dataset exists");
    println!(
        "noise sweep on {} ({} records, τ=0.3, H^id config)\n",
        spec.name, spec.rows
    );
    println!(
        "{:>5} {:>9} {:>7} {:>8} {:>6}",
        "η", "t", "Δcore", "Δcosts", "acc"
    );
    for eta10 in [1u32, 3, 5, 7] {
        let eta = eta10 as f64 / 10.0;
        let (base, pool) = synth::generate(&spec, 21);
        let blueprint = Blueprint::new(base, pool, GenConfig::new(eta, 0.3, 21));
        let mut generated = blueprint.materialize_full();
        let solver = Affidavit::new(AffidavitConfig::paper_id());
        let started = Instant::now();
        let outcome = solver.explain(&mut generated.instance);
        let m = evaluate(&outcome.explanation, &mut generated, started.elapsed());
        println!(
            "{:>5.1} {:>8.2}s {:>7.2} {:>8.2} {:>6.2}",
            eta,
            m.runtime.as_secs_f64(),
            m.delta_core,
            m.delta_costs,
            m.accuracy
        );
    }
    println!("\nΔcore ≈ 1 and acc ≈ 1 under moderate noise: the core alignment");
    println!("and the learned functions survive; only extreme noise (η=0.7)");
    println!("starts to erode them — matching the Table 2 trend.");
}
