//! Whole-snapshot profiling: the paper's motivating workflow (§1/§2) of
//! understanding a proprietary software update that rewrote an ERP
//! database with *hundreds of tables* — without conversion scripts, keys,
//! or annotations.
//!
//! The example materializes a small "before"/"after" snapshot directory
//! pair (three tables: one systematically transformed, one untouched, one
//! dropped) and profiles it in one call.
//!
//! ```sh
//! cargo run --example snapshot_profiling
//! ```

use affidavit::core::profiling::{profile_dirs, ProfileOptions, TableOutcome};

fn main() {
    let root = std::env::temp_dir().join("affidavit-example-profiling");
    std::fs::remove_dir_all(&root).ok();
    let before = root.join("before");
    let after = root.join("after");
    std::fs::create_dir_all(&before).expect("temp dir");
    std::fs::create_dir_all(&after).expect("temp dir");

    // orders: the update rescaled amounts and reassigned the numeric key.
    let mut orders_s = String::from("order_id,amount,status\n");
    let mut orders_t = String::from("order_id,amount,status\n");
    for i in 0..40usize {
        let status = ["OPEN", "SHIPPED", "BILLED"][i % 3];
        orders_s.push_str(&format!("{i},{},{status}\n", (i + 1) * 3000));
        orders_t.push_str(&format!("{},{},{status}\n", 1000 - i, (i + 1) * 3));
    }
    std::fs::write(before.join("orders.csv"), orders_s).expect("write");
    std::fs::write(after.join("orders.csv"), orders_t).expect("write");

    // customers: untouched by the update.
    let customers = "cust,region\nc1,EMEA\nc2,APAC\nc3,AMER\nc4,EMEA\n";
    std::fs::write(before.join("customers.csv"), customers).expect("write");
    std::fs::write(after.join("customers.csv"), customers).expect("write");

    // audit_log: dropped by the update.
    std::fs::write(before.join("audit_log.csv"), "event\nlogin\nlogout\n").expect("write");

    let profile = profile_dirs(&before, &after, &ProfileOptions::default()).expect("profiles");
    println!("{}", profile.render());

    // The orders table must be explained with one changed attribute pair
    // (amount rescaled; the key needs a mapping), not reported as 40
    // deletions + 40 insertions like a key-based diff would.
    let orders = profile
        .tables
        .iter()
        .find(|t| t.name == "orders")
        .expect("orders profiled");
    let TableOutcome::Explained {
        core,
        cost,
        trivial_cost,
        ..
    } = &orders.outcome
    else {
        panic!("orders must be explained: {:?}", orders.outcome);
    };
    assert_eq!(*core, 40, "every order must be aligned");
    assert!(cost < trivial_cost, "explanation must compress the diff");

    std::fs::remove_dir_all(&root).ok();
}
