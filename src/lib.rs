//! Affidavit — explaining differences between unaligned table snapshots.
//!
//! Facade crate re-exporting the workspace's public API. See the individual
//! crates for details:
//!
//! * [`table`] — storage substrate (interning, exact decimals, CSV).
//! * [`store`] — snapshot ingestion & storage backends (streaming parallel
//!   CSV interning, disk-backed value pools).
//! * [`functions`] — transformation meta functions and induction.
//! * [`blocking`] — blocking indices, random alignments, overlap matching.
//! * [`core`] — the Affidavit search algorithm (Algorithm 1), plus
//!   incremental re-profiling (`core::delta`: fingerprinted block
//!   reuse with from-scratch byte identity).
//! * [`dist`] — distributed work-stealing profiling over serialized
//!   problem instances (job queue, filesystem broker, worker processes).
//! * [`serve`] — the resident explain daemon: framed client API over
//!   pinned, fingerprint-keyed snapshot sessions.
//! * [`obs`] — unified tracing, metrics and phase profiling: a pure
//!   side channel (output bytes are identical with it on or off).
//! * [`datagen`] — the §5.1 synthetic problem-instance protocol.
//! * [`datasets`] — evaluation dataset generators and the Figure 1 example.
//! * [`baselines`] — keyed diff, exact solver, similarity linker, 3-SAT
//!   reduction.
//!
//! The two-minute tour — explain the paper's running example:
//!
//! ```
//! use affidavit::prelude::*;
//!
//! let mut instance = affidavit::datasets::running_example::figure1_instance();
//! let outcome = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut instance);
//! // Snapshots differ by a rescaled Val column (80000 ↦ 80), so the
//! // learned function set is cheaper than deleting-and-inserting
//! // everything.
//! let trivial = Explanation::trivial(&instance).cost_units(instance.arity());
//! assert!(outcome.explanation.cost_units(instance.arity()) < trivial);
//! ```

#![warn(missing_docs)]

pub use affidavit_baselines as baselines;
pub use affidavit_blocking as blocking;
pub use affidavit_core as core;
pub use affidavit_datagen as datagen;
pub use affidavit_datasets as datasets;
pub use affidavit_dist as dist;
pub use affidavit_functions as functions;
pub use affidavit_obs as obs;
pub use affidavit_serve as serve;
pub use affidavit_store as store;
pub use affidavit_table as table;

/// Convenience prelude for examples and downstream users.
pub mod prelude {
    pub use affidavit_core::config::{AffidavitConfig, InitStrategy};
    pub use affidavit_core::explanation::Explanation;
    pub use affidavit_core::instance::ProblemInstance;
    pub use affidavit_core::profiling::{profile_dirs, ProfileOptions};
    pub use affidavit_core::restructure::normalize_arity;
    pub use affidavit_core::schema_align::align_schemas;
    pub use affidavit_core::search::Affidavit;
    pub use affidavit_functions::function::AttrFunction;
    pub use affidavit_functions::kind::{MetaKind, Registry};
    pub use affidavit_store::{IngestOptions, PoolBackend, PoolConfig, SegmentPool};
    pub use affidavit_table::{Schema, Table, ValuePool};
}
