//! The client half: one persistent framed connection to a daemon.

use std::net::TcpStream;
use std::sync::{Arc, Mutex};

use affidavit_dist::{configure_stream, read_frame, write_frame, FrameConfig, FrameRead};

use crate::protocol::{ClientRequest, ClientResponse, ExplainSpec, ReportReply, ServeStats};

/// Why a client operation failed — the split the CLI's exit codes are
/// built on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The daemon could not be reached, or the connection died and a
    /// fresh dial failed too (CLI exit code 3, mirroring the worker's
    /// broker-lost semantics).
    Lost(String),
    /// The daemon answered, rejecting the request.
    Rejected(String),
    /// The daemon answered with a frame this client cannot interpret.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Lost(m) => write!(f, "server unreachable: {m}"),
            ClientError::Rejected(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

/// A handle on a serve daemon: one keep-alive framed connection, every
/// operation a request/response exchange over it. A failure on the
/// kept-alive socket drops it and retries the operation once on a fresh
/// dial (the daemon may have restarted); a fresh-dial failure is
/// [`ClientError::Lost`]. Retries are safe: every client-API operation
/// is a read or an idempotent request. Clones share the connection.
#[derive(Debug, Clone)]
pub struct ServeClient {
    addr: String,
    cfg: FrameConfig,
    conn: Arc<Mutex<Option<TcpStream>>>,
}

impl ServeClient {
    /// A client for the daemon at `addr` (`HOST:PORT`). Dials lazily:
    /// the first operation establishes the keep-alive connection.
    pub fn new(addr: impl Into<String>) -> ServeClient {
        ServeClient {
            addr: addr.into(),
            cfg: FrameConfig::default(),
            conn: Arc::new(Mutex::new(None)),
        }
    }

    /// The daemon address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// One round trip: is the daemon reachable and answering?
    pub fn ping(&self) -> Result<(), ClientError> {
        match self.call(&ClientRequest::Ping)? {
            ClientResponse::Pong => Ok(()),
            other => Err(unexpected("ping", &other)),
        }
    }

    /// Explain one snapshot pair on the daemon.
    pub fn explain(&self, spec: &ExplainSpec) -> Result<ReportReply, ClientError> {
        match self.call(&ClientRequest::Explain { spec: spec.clone() })? {
            ClientResponse::Report { reply } => Ok(reply),
            other => Err(unexpected("explain", &other)),
        }
    }

    /// Ingest and pin one snapshot pair on the daemon without running a
    /// search. Returns true when the pair was already pinned.
    pub fn pin(&self, spec: &ExplainSpec) -> Result<bool, ClientError> {
        match self.call(&ClientRequest::Pin { spec: spec.clone() })? {
            ClientResponse::Pinned { warm } => Ok(warm),
            other => Err(unexpected("pin", &other)),
        }
    }

    /// Read the daemon's metrics registry as Prometheus-style text.
    pub fn metrics(&self) -> Result<String, ClientError> {
        match self.call(&ClientRequest::Metrics)? {
            ClientResponse::MetricsReport { text } => Ok(text),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// Read the daemon's counters.
    pub fn stats(&self) -> Result<ServeStats, ClientError> {
        match self.call(&ClientRequest::Stats)? {
            ClientResponse::StatsReport { stats } => Ok(stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Ask the daemon to shut down; returns once it acknowledged.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        match self.call(&ClientRequest::Shutdown)? {
            ClientResponse::ShuttingDown => Ok(()),
            other => Err(unexpected("shutdown", &other)),
        }
    }

    /// One exchange over the persistent connection, with the same
    /// stale-keep-alive recovery as the worker transport: a failure on
    /// the cached socket drops it and retries once on a fresh dial;
    /// fresh-dial failures are [`ClientError::Lost`].
    fn call(&self, request: &ClientRequest) -> Result<ClientResponse, ClientError> {
        let encoded = serde_json::to_string(request).expect("requests are serializable");
        let mut conn = self
            .conn
            .lock()
            .map_err(|_| ClientError::Protocol("client connection poisoned".to_owned()))?;
        if let Some(stream) = conn.as_mut() {
            match exchange(stream, &encoded, &self.cfg) {
                Ok(response) => return accept(response),
                Err(_) => *conn = None, // stale keep-alive; retry below
            }
        }
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| ClientError::Lost(format!("connecting to {}: {e}", self.addr)))?;
        configure_stream(&stream, &self.cfg).map_err(ClientError::Lost)?;
        let response = exchange(&mut stream, &encoded, &self.cfg).map_err(ClientError::Lost)?;
        *conn = Some(stream);
        accept(response)
    }
}

fn accept(response: ClientResponse) -> Result<ClientResponse, ClientError> {
    match response {
        ClientResponse::Error { message } => Err(ClientError::Rejected(message)),
        response => Ok(response),
    }
}

fn unexpected(op: &str, response: &ClientResponse) -> ClientError {
    ClientError::Protocol(format!("unexpected {op} response {response:?}"))
}

/// One framed request/response on an established connection. A client
/// awaiting its response treats an idle stall window as an error — only
/// servers park on idle.
fn exchange(
    stream: &mut TcpStream,
    encoded: &str,
    cfg: &FrameConfig,
) -> Result<ClientResponse, String> {
    write_frame(stream, encoded, cfg)?;
    match read_frame(stream, cfg)? {
        FrameRead::Frame(text) => {
            serde_json::from_str::<ClientResponse>(&text).map_err(|e| e.to_string())
        }
        FrameRead::Closed => Err("server closed the connection mid-exchange".to_owned()),
        FrameRead::Idle => Err(format!(
            "server sent no response within {:?}",
            cfg.stall_timeout
        )),
    }
}
