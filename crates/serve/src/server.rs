//! The resident daemon: accept loop, request handling, pinned sessions.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use affidavit_core::profiling::{stage_snapshot_pair, ProfileOptions};
use affidavit_core::report::render_report;
use affidavit_core::{Affidavit, DeadlineExceeded, ExpansionExecutor};
use affidavit_dist::{
    configure_stream, read_frame, write_frame, DistBackend, ExpansionFleet, FrameConfig, FrameRead,
};
use affidavit_store::{
    ingest_pair, IngestOptions, PoolBackend, PoolConfig, SessionKey, SessionLru,
};

use crate::protocol::{ClientRequest, ClientResponse, ExplainSpec, ReportReply, ServeStats};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (`"127.0.0.1:0"` = loopback with an OS-chosen port).
    /// Bind a routable address to accept clients from other machines —
    /// trusted networks only: the protocol carries no authentication yet.
    pub listen: String,
    /// Maximum snapshot pairs pinned at once (LRU beyond that).
    pub sessions: usize,
    /// Framing configuration (stall timeout).
    pub frame: FrameConfig,
    /// Maximum `Explain`/`Pin` requests in flight at once; further ones
    /// are rejected with a clear busy error instead of queuing. `0` =
    /// unlimited.
    pub max_inflight: usize,
    /// Wall-clock budget per `Explain` request; an overrunning search is
    /// aborted cooperatively and answered with an error. `None` =
    /// unlimited.
    pub request_deadline: Option<Duration>,
    /// Share one in-process expansion-stealing fleet across all warm
    /// sessions: every `Explain` request's speculated frontier batches
    /// fan out to this many worker threads (`Some(0)` = one per hardware
    /// thread). `None` — the default — expands on the request thread.
    /// Results are byte-identical either way.
    pub expansion_workers: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            listen: "127.0.0.1:0".to_owned(),
            sessions: 8,
            frame: FrameConfig::default(),
            max_inflight: 0,
            request_deadline: None,
            expansion_workers: None,
        }
    }
}

#[derive(Debug)]
struct ServeShared {
    sessions: Mutex<SessionLru>,
    requests: AtomicU64,
    connections: AtomicU64,
    shutdown: AtomicBool,
    frame: FrameConfig,
    /// Live keep-alive sockets, severed on shutdown so parked clients
    /// get a hard close instead of a daemon that answers forever.
    conns: Mutex<Vec<Option<TcpStream>>>,
    max_inflight: usize,
    request_deadline: Option<Duration>,
    /// The shared expansion-stealing fleet, if the daemon was started
    /// with one — attached to every request's search.
    executor: Option<Arc<ExpansionFleet>>,
    inflight: AtomicU64,
    busy_rejections: AtomicU64,
    deadline_expirations: AtomicU64,
}

/// RAII inflight slot: acquired before the expensive half of a request,
/// released however the request ends.
#[derive(Debug)]
struct InflightSlot<'a>(&'a ServeShared);

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

impl ServeShared {
    /// Claim an inflight slot, or explain why the daemon is busy.
    fn admit(&self) -> Result<InflightSlot<'_>, String> {
        let now = self.inflight.fetch_add(1, Ordering::Relaxed);
        let slot = InflightSlot(self); // released on error too
        if self.max_inflight > 0 && now >= self.max_inflight as u64 {
            self.busy_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(format!(
                "busy: {} requests already in flight (limit {})",
                now, self.max_inflight
            ));
        }
        Ok(slot)
    }

    fn register(&self, stream: Option<TcpStream>) -> usize {
        let mut conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        conns.push(stream);
        conns.len() - 1
    }

    fn deregister(&self, slot: usize) {
        let mut conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        conns[slot] = None;
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        for stream in conns.iter().flatten() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }

    fn stats(&self) -> ServeStats {
        let (sessions, counters) = match self.sessions.lock() {
            Ok(lru) => (lru.len() as u64, lru.counters()),
            Err(_) => (0, Default::default()),
        };
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            sessions,
            ingests: counters.ingests,
            hits: counters.hits,
            evictions: counters.evictions,
            connections: self.connections.load(Ordering::Relaxed),
        }
    }

    /// Publish one stats snapshot plus the limit counters into the
    /// process-wide registry, then render the whole registry. The serve
    /// series mirror [`ServeStats`] (and therefore `SessionCounters`)
    /// verbatim.
    fn render_metrics(&self) -> String {
        let stats = self.stats();
        let m = affidavit_obs::metrics();
        m.set_counter("serve_requests_total", stats.requests);
        m.set_gauge("serve_sessions", stats.sessions as f64);
        m.set_counter("serve_ingests_total", stats.ingests);
        m.set_counter("serve_hits_total", stats.hits);
        m.set_counter("serve_evictions_total", stats.evictions);
        m.set_counter("serve_connections_total", stats.connections);
        m.set_gauge(
            "serve_inflight",
            self.inflight.load(Ordering::Relaxed) as f64,
        );
        m.set_counter(
            "serve_busy_rejections_total",
            self.busy_rejections.load(Ordering::Relaxed),
        );
        m.set_counter(
            "serve_deadline_expirations_total",
            self.deadline_expirations.load(Ordering::Relaxed),
        );
        m.render_prometheus()
    }
}

/// A running daemon. Dropping the handle shuts the daemon down; a
/// client's `Shutdown` request does the same from the outside (then
/// [`ServeHandle::wait`] returns).
#[derive(Debug)]
pub struct ServeHandle {
    shared: Arc<ServeShared>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address — what clients dial with `--connect` (the port
    /// is the OS's pick when the bind address ended in `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's counters right now.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// Block until the daemon shuts down (a client's `Shutdown` request
    /// or [`ServeHandle::shutdown`]).
    pub fn wait(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Shut the daemon down from this side: stop accepting, sever
    /// parked clients, join the accept loop.
    pub fn shutdown(&mut self) {
        self.shared.begin_shutdown();
        self.wait();
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind the listener and start serving client-API requests in
/// background threads (one per connection, requests multiplexed over
/// each keep-alive connection in sequence).
pub fn serve(opts: &ServeOptions) -> Result<ServeHandle, String> {
    let listener =
        TcpListener::bind(&opts.listen).map_err(|e| format!("binding {}: {e}", opts.listen))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local address of {}: {e}", opts.listen))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("nonblocking listener: {e}"))?;
    let shared = Arc::new(ServeShared {
        sessions: Mutex::new(SessionLru::new(opts.sessions)),
        requests: AtomicU64::new(0),
        connections: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
        frame: opts.frame,
        conns: Mutex::new(Vec::new()),
        max_inflight: opts.max_inflight,
        request_deadline: opts.request_deadline,
        executor: match opts.expansion_workers {
            Some(workers) => Some(Arc::new(ExpansionFleet::with_backend(
                DistBackend::InProcess,
                workers,
            )?)),
            None => None,
        },
        inflight: AtomicU64::new(0),
        busy_rejections: AtomicU64::new(0),
        deadline_expirations: AtomicU64::new(0),
    });
    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::spawn(move || {
        while !accept_shared.shutdown.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&accept_shared);
                    let slot = shared.register(stream.try_clone().ok());
                    std::thread::spawn(move || {
                        serve_connection(stream, &shared);
                        shared.deregister(slot);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(1)),
            }
        }
    });
    Ok(ServeHandle {
        shared,
        addr,
        accept: Some(accept),
    })
}

/// Serve framed client-API requests on one accepted connection until
/// the peer closes it (or asks for shutdown). Parked keep-alive clients
/// idle between requests; an idle stall window is normal, not a hangup.
fn serve_connection(mut stream: TcpStream, shared: &ServeShared) {
    let cfg = shared.frame;
    if configure_stream(&stream, &cfg).is_err() {
        return;
    }
    shared.connections.fetch_add(1, Ordering::Relaxed);
    loop {
        let text = match read_frame(&mut stream, &cfg) {
            Ok(FrameRead::Frame(text)) => text,
            Ok(FrameRead::Idle) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Ok(FrameRead::Closed) | Err(_) => return,
        };
        let (response, last) = match serde_json::from_str::<ClientRequest>(&text) {
            Ok(ClientRequest::Shutdown) => (ClientResponse::ShuttingDown, true),
            Ok(request) => (answer(&request, shared), false),
            Err(e) => (
                ClientResponse::Error {
                    message: format!("malformed request: {e}"),
                },
                false,
            ),
        };
        let encoded = serde_json::to_string(&response).expect("responses are serializable");
        if write_frame(&mut stream, &encoded, &cfg).is_err() {
            return;
        }
        if last {
            // Acknowledged first, then torn down: the requesting client
            // gets its frame; every other parked client is severed.
            shared.begin_shutdown();
            return;
        }
    }
}

/// Execute one (non-shutdown) request.
fn answer(request: &ClientRequest, shared: &ServeShared) -> ClientResponse {
    let op = match request {
        ClientRequest::Ping => "ping",
        ClientRequest::Explain { .. } => "explain",
        ClientRequest::Pin { .. } => "pin",
        ClientRequest::Stats => "stats",
        ClientRequest::Metrics => "metrics",
        ClientRequest::Shutdown => "shutdown",
    };
    let _span = affidavit_obs::span_with("serve.request", vec![("op".to_owned(), op.to_owned())]);
    match request {
        ClientRequest::Ping => ClientResponse::Pong,
        ClientRequest::Stats => ClientResponse::StatsReport {
            stats: shared.stats(),
        },
        ClientRequest::Metrics => ClientResponse::MetricsReport {
            text: shared.render_metrics(),
        },
        ClientRequest::Explain { spec } => {
            shared.requests.fetch_add(1, Ordering::Relaxed);
            match shared.admit().and_then(|_slot| explain(spec, shared)) {
                Ok(reply) => ClientResponse::Report { reply },
                Err(message) => ClientResponse::Error { message },
            }
        }
        ClientRequest::Pin { spec } => {
            shared.requests.fetch_add(1, Ordering::Relaxed);
            match shared.admit().and_then(|_slot| pin(spec, shared)) {
                Ok(warm) => ClientResponse::Pinned { warm },
                Err(message) => ClientResponse::Error { message },
            }
        }
        ClientRequest::Shutdown => unreachable!("handled by the connection loop"),
    }
}

/// The explain hot path: pin-or-reuse the ingested snapshot pair, then
/// run a fresh search over a clone of it. Each request gets its own
/// search state (`Affidavit::new` per request), so concurrent requests
/// and warm repeats produce exactly the bytes of a one-shot run.
fn explain(spec: &ExplainSpec, shared: &ServeShared) -> Result<ReportReply, String> {
    if spec.delta {
        return explain_delta_served(spec, shared);
    }
    let deadline = shared
        .request_deadline
        .map(|budget| Instant::now() + budget);
    let (pair, warm, opts) = staged_pair(spec, shared)?;
    let mut instance = {
        let _span = affidavit_obs::span("serve.stage");
        stage_snapshot_pair(pair, &opts)?
    };
    let started = Instant::now();
    let outcome = {
        let _span = affidavit_obs::span("serve.search");
        let mut solver = Affidavit::new(spec.config.clone());
        if let Some(executor) = &shared.executor {
            solver =
                solver.with_expansion_executor(Arc::clone(executor) as Arc<dyn ExpansionExecutor>);
        }
        solver
            .explain_until(&mut instance, deadline)
            .map_err(|DeadlineExceeded| {
                shared.deadline_expirations.fetch_add(1, Ordering::Relaxed);
                format!(
                    "request exceeded its deadline ({:?})",
                    shared.request_deadline.unwrap_or_default()
                )
            })?
    };
    let millis = started.elapsed().as_millis() as u64;
    let _span = affidavit_obs::span("serve.respond");
    let report = render_report(&outcome.explanation, &instance);
    // The post-read enforcement hook: a read-heavy request only ever
    // faults disk-pool segments *in*, so resident bytes are pushed back
    // under budget between requests.
    if let Ok(mut sessions) = shared.sessions.lock() {
        sessions.enforce_budgets();
    }
    Ok(ReportReply {
        report,
        polled: outcome.stats.polled as u64,
        generated: outcome.stats.states_generated as u64,
        millis,
        warm,
    })
}

/// The incremental explain path (`spec.delta`): splice the answer from
/// the pair's `--delta` manifest when its fingerprints still match,
/// staging through the pinned-session cache only when the raw tier
/// misses. A spliced reply is always `warm` (zero search work); a redo
/// is `warm` exactly when the session cache was. The request deadline is
/// deliberately not enforced here: a dirty pair's redo must stay
/// byte-identical to the one-shot `--delta` CLI, which has no deadline.
fn explain_delta_served(spec: &ExplainSpec, shared: &ServeShared) -> Result<ReportReply, String> {
    let opts = profile_options(spec)?;
    let state = match &spec.delta_state {
        Some(dir) => Path::new(dir).join("explain.affidavit-delta.json"),
        None => affidavit_core::delta::default_explain_state(Path::new(&spec.target)),
    };
    let warm_session = std::cell::Cell::new(false);
    let outcome = affidavit_core::delta::explain_delta_with(
        Path::new(&spec.source),
        Path::new(&spec.target),
        &opts,
        &state,
        &mut || {
            let (pair, warm, sopts) = staged_pair(spec, shared)?;
            warm_session.set(warm);
            let _span = affidavit_obs::span("serve.stage");
            stage_snapshot_pair(pair, &sopts)
        },
    )?;
    if let Ok(mut sessions) = shared.sessions.lock() {
        sessions.enforce_budgets();
    }
    affidavit_obs::diag("delta", &outcome.stats.summary());
    Ok(ReportReply {
        report: outcome.report,
        polled: outcome.polled,
        generated: outcome.generated,
        millis: outcome.duration.as_millis() as u64,
        warm: outcome.spliced || warm_session.get(),
    })
}

/// Pre-warm the session cache: ingest and pin without searching.
/// Returns whether the pair was already pinned.
fn pin(spec: &ExplainSpec, shared: &ServeShared) -> Result<bool, String> {
    let (_pair, warm, _opts) = staged_pair(spec, shared)?;
    if let Ok(mut sessions) = shared.sessions.lock() {
        sessions.enforce_budgets();
    }
    Ok(warm)
}

/// The session hot path shared by `Explain` and `Pin`: key the pair by
/// file content + pool configuration and pin-or-reuse it. `warm` is
/// true when the request performed zero ingestion work.
fn staged_pair(
    spec: &ExplainSpec,
    shared: &ServeShared,
) -> Result<(affidavit_store::SnapshotPair, bool, ProfileOptions), String> {
    let opts = profile_options(spec)?;
    let (ingest_opts, pool_cfg) = (opts.ingest, opts.pool);
    let src = Path::new(&spec.source);
    let tgt = Path::new(&spec.target);
    let key = SessionKey::for_files(src, tgt, &pool_cfg)?;
    let (pair, warm) = {
        let mut sessions = shared
            .sessions
            .lock()
            .map_err(|_| "session cache poisoned".to_owned())?;
        let ingests_before = sessions.counters().ingests;
        let pair =
            sessions.get_or_ingest(key, || ingest_pair(src, tgt, &ingest_opts, &pool_cfg))?;
        (pair, sessions.counters().ingests == ingests_before)
    };
    affidavit_obs::point("serve.session", vec![("warm".to_owned(), warm.to_string())]);
    Ok((pair, warm, opts))
}

/// Translate a wire spec into the staging options the profiling layer
/// uses — shared by the fresh-search and delta explain paths.
fn profile_options(spec: &ExplainSpec) -> Result<ProfileOptions, String> {
    let backend: PoolBackend = spec.pool_backend.parse()?;
    let pool_cfg = PoolConfig {
        backend,
        budget_bytes: spec.pool_budget_bytes,
    };
    let ingest_opts = IngestOptions {
        chunk_rows: spec.ingest_chunk_rows,
        threads: spec.config.threads,
        ..IngestOptions::default()
    };
    Ok(ProfileOptions {
        config: spec.config.clone(),
        align: spec.align,
        ingest: ingest_opts,
        pool: pool_cfg,
        ..ProfileOptions::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_with_limit(max_inflight: usize) -> ServeShared {
        ServeShared {
            sessions: Mutex::new(SessionLru::new(2)),
            requests: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            frame: FrameConfig::default(),
            conns: Mutex::new(Vec::new()),
            max_inflight,
            request_deadline: None,
            inflight: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            deadline_expirations: AtomicU64::new(0),
            executor: None,
        }
    }

    #[test]
    fn the_inflight_gate_admits_to_the_limit_and_releases_on_drop() {
        let shared = shared_with_limit(2);
        let a = shared.admit().expect("slot 1 of 2");
        let _b = shared.admit().expect("slot 2 of 2");
        let err = shared.admit().expect_err("slot 3 must be rejected");
        assert!(err.contains("busy"), "{err}");
        assert!(err.contains("limit 2"), "{err}");
        assert_eq!(shared.busy_rejections.load(Ordering::Relaxed), 1);
        // The rejected attempt released its provisional slot, and a
        // finished request frees capacity for the next admission.
        assert_eq!(shared.inflight.load(Ordering::Relaxed), 2);
        drop(a);
        let _c = shared.admit().expect("freed slot is reusable");
        assert_eq!(shared.inflight.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn an_unlimited_gate_never_rejects() {
        let shared = shared_with_limit(0);
        let slots: Vec<_> = (0..64).map(|_| shared.admit().unwrap()).collect();
        assert_eq!(shared.inflight.load(Ordering::Relaxed), 64);
        assert_eq!(shared.busy_rejections.load(Ordering::Relaxed), 0);
        drop(slots);
        assert_eq!(shared.inflight.load(Ordering::Relaxed), 0);
    }
}
