//! Resident profiling service: a daemon that keeps ingested snapshots
//! warm between requests.
//!
//! One-shot `affidavit explain` pays process start, CSV ingestion and
//! pool construction on every invocation. This crate turns that into a
//! long-lived daemon:
//!
//! * [`protocol`] — the tagged client-API request/response vocabulary
//!   (`Ping` / `Explain` / `Stats` / `Shutdown`), carried as
//!   length-prefixed JSON frames over the codec shared with the
//!   work-stealing transport ([`affidavit_dist::frame`]).
//! * [`server`] — the daemon: an accept loop multiplexing concurrent
//!   requests (one thread per keep-alive connection), with ingested
//!   snapshot pairs pinned in a [`SessionLru`](affidavit_store::SessionLru)
//!   keyed by **content fingerprint**. A repeat request against pinned
//!   snapshots performs zero ingestion work; the LRU bounds how many
//!   pairs stay pinned and disk-pool budgets are re-enforced after each
//!   request.
//! * [`client`] — one persistent framed connection with
//!   reconnect-on-error; an unreachable daemon is
//!   [`ClientError::Lost`], which the CLI maps to exit code 3.
//!
//! Determinism: each request runs a fresh search
//! ([`Affidavit::new`](affidavit_core::Affidavit) per request) over a
//! clone of the pinned pair, so the rendered report is byte-identical to
//! the one-shot CLI under the same flags — warm or cold, at any client
//! concurrency. Requests with `delta: true` go through the incremental
//! engine ([`affidavit_core::delta`]) over the same pinned sessions:
//! clean pairs splice from the manifest, dirty ones search, and the
//! bytes match the one-shot `--delta` path either way.
//!
//! ```
//! use affidavit_serve::{serve, ExplainSpec, ServeClient, ServeOptions};
//!
//! let dir = std::env::temp_dir().join("affidavit-serve-doctest");
//! std::fs::create_dir_all(&dir).unwrap();
//! let src = dir.join("s.csv");
//! let tgt = dir.join("t.csv");
//! std::fs::write(&src, "k,v\na,1000\nb,2000\nc,3000\n").unwrap();
//! std::fs::write(&tgt, "k,v\na,1\nb,2\nc,3\n").unwrap();
//!
//! let mut daemon = serve(&ServeOptions::default()).unwrap();
//! let client = ServeClient::new(daemon.local_addr().to_string());
//! let spec = ExplainSpec::new(src.to_str().unwrap(), tgt.to_str().unwrap());
//! let cold = client.explain(&spec).unwrap();
//! let warm = client.explain(&spec).unwrap();
//! // The repeat ran zero ingestion work and rendered the same bytes.
//! assert!(!cold.warm && warm.warm);
//! assert_eq!(warm.report, cold.report);
//! client.shutdown().unwrap();
//! daemon.wait();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{ClientError, ServeClient};
pub use protocol::{ClientRequest, ClientResponse, ExplainSpec, ReportReply, ServeStats};
pub use server::{serve, ServeHandle, ServeOptions};
