//! `affidavit` — explain differences between unaligned CSV table snapshots.
//!
//! All behaviour lives in the `affidavit_cli` library crate (see
//! [`affidavit_cli::run`] and [`affidavit_cli::commands`]); this binary
//! only maps the result onto an exit code. Run `affidavit help` for the
//! full flag reference.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match affidavit_cli::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(failure) => {
            eprintln!("error: {}", failure.message);
            ExitCode::from(failure.code)
        }
    }
}
