//! `affidavit` — explain differences between unaligned CSV table snapshots.
//!
//! ```text
//! affidavit explain <source.csv> <target.csv> [--config id|overlap] [--seed N]
//!                   [--sql TABLE] [--trace]
//! affidavit diff    <source.csv> <target.csv> --key COL[,COL...]
//! affidavit apply   <source.csv> <target.csv> <unseen.csv> [--out FILE]
//! affidavit gen     <dataset> [--eta F] [--tau F] [--rows N] [--seed N] --out-dir DIR
//! affidavit profile <source_dir> <target_dir> [--align] [--json FILE]
//! ```
//!
//! `explain` learns attribute transformation functions and the record
//! alignment without any key information; `diff` is the classic key-based
//! comparison (for contrast); `apply` transforms unseen records with a
//! learned explanation — the generalization benefit of §1; `gen` writes a
//! §5.1 synthetic snapshot pair for experimentation.

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "explain" => commands::explain(rest),
        "diff" => commands::diff(rest),
        "apply" => commands::apply(rest),
        "gen" => commands::gen(rest),
        "profile" => commands::profile(rest),
        "--help" | "-h" | "help" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
