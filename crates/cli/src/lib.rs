//! Library half of the `affidavit` command-line tool.
//!
//! The binary in `main.rs` is a thin shell around [`run`], which parses
//! the subcommand and dispatches into [`commands`]. Keeping the dispatch
//! in a library makes every command callable (and testable) in-process.
//!
//! ```
//! // `help` prints the usage text and succeeds; unknown commands fail
//! // with a message that includes it.
//! affidavit_cli::run(&["help".to_owned()]).unwrap();
//! let err = affidavit_cli::run(&["frobnicate".to_owned()]).unwrap_err();
//! assert!(err.message.contains("USAGE"));
//! assert_eq!(err.code, 1);
//! ```

#![warn(missing_docs)]

pub mod commands;

pub use commands::USAGE;

/// A failed invocation: the message plus the process exit code.
///
/// Code `1` covers usage and fatal errors; code `3` means "the serve
/// daemon is unreachable" (`affidavit client`), mirroring
/// [`affidavit_dist::BROKER_LOST_EXIT_CODE`] so scripts can tell a lost
/// server from a bad request the same way worker supervisors do.
#[derive(Debug)]
pub struct Failure {
    /// Human-readable reason, printed to stderr.
    pub message: String,
    /// Process exit code.
    pub code: u8,
}

impl From<String> for Failure {
    fn from(message: String) -> Failure {
        Failure { message, code: 1 }
    }
}

/// Dispatch one CLI invocation (everything after the program name).
pub fn run(args: &[String]) -> Result<(), Failure> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(Failure::from(USAGE.to_owned()));
    };
    match cmd.as_str() {
        "explain" => commands::explain(rest).map_err(Failure::from),
        "diff" => commands::diff(rest).map_err(Failure::from),
        "apply" => commands::apply(rest).map_err(Failure::from),
        "gen" => commands::gen(rest).map_err(Failure::from),
        "profile" => commands::profile(rest).map_err(Failure::from),
        "serve" => commands::serve(rest).map_err(Failure::from),
        "client" => commands::client(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(Failure::from(format!("unknown command {other:?}\n{USAGE}"))),
    }
}
