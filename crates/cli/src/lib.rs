//! Library half of the `affidavit` command-line tool.
//!
//! The binary in `main.rs` is a thin shell around [`run`], which parses
//! the subcommand and dispatches into [`commands`]. Keeping the dispatch
//! in a library makes every command callable (and testable) in-process.
//!
//! ```
//! // `help` prints the usage text and succeeds; unknown commands fail
//! // with a message that includes it.
//! affidavit_cli::run(&["help".to_owned()]).unwrap();
//! let err = affidavit_cli::run(&["frobnicate".to_owned()]).unwrap_err();
//! assert!(err.message.contains("USAGE"));
//! assert_eq!(err.code, 1);
//! ```

#![warn(missing_docs)]

pub mod commands;

pub use commands::USAGE;

/// A failed invocation: the message plus the process exit code.
///
/// Code `1` covers usage and fatal errors; code `3` means "the serve
/// daemon is unreachable" (`affidavit client`), mirroring
/// [`affidavit_dist::BROKER_LOST_EXIT_CODE`] so scripts can tell a lost
/// server from a bad request the same way worker supervisors do.
#[derive(Debug)]
pub struct Failure {
    /// Human-readable reason, printed to stderr.
    pub message: String,
    /// Process exit code.
    pub code: u8,
}

impl From<String> for Failure {
    fn from(message: String) -> Failure {
        Failure { message, code: 1 }
    }
}

/// The observability half of one CLI invocation: resolve `--obs-out` /
/// `--obs-summary` (or the `AFFIDAVIT_OBS` environment sink) before
/// dispatch, flush the recorded event stream after — success or failure.
/// Obs is a pure side channel: enabling it never changes stdout bytes.
struct ObsSession {
    sink: Option<affidavit_obs::ObsOut>,
    summary: bool,
}

impl ObsSession {
    fn from_args(args: &[String]) -> Result<ObsSession, Failure> {
        let mut sink = None;
        let mut summary = false;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--obs-out" => {
                    let value = args
                        .get(i + 1)
                        .filter(|v| !v.starts_with("--"))
                        .ok_or_else(|| {
                            Failure::from("--obs-out needs a path (or `-` for stderr)".to_owned())
                        })?;
                    sink = Some(affidavit_obs::ObsOut::parse(value));
                    i += 1;
                }
                "--obs-summary" => summary = true,
                _ => {}
            }
            i += 1;
        }
        if sink.is_some() || summary {
            affidavit_obs::set_enabled(true);
        }
        if sink.is_none() {
            sink = affidavit_obs::env_sink();
        }
        Ok(ObsSession { sink, summary })
    }

    fn finish(&self) {
        if self.sink.is_none() && !self.summary {
            return;
        }
        let (events, dropped) = affidavit_obs::drain();
        if let Some(sink) = &self.sink {
            if let Err(e) = sink.write_events(&events, dropped) {
                eprintln!("obs: failed to write event stream: {e}");
            }
        }
        if self.summary {
            let table = affidavit_obs::summary::render_phase_summary(&events, dropped);
            if !table.is_empty() {
                eprint!("{table}");
            }
        }
    }
}

/// Dispatch one CLI invocation (everything after the program name).
pub fn run(args: &[String]) -> Result<(), Failure> {
    let obs = ObsSession::from_args(args)?;
    let result = dispatch(args);
    obs.finish();
    result
}

fn dispatch(args: &[String]) -> Result<(), Failure> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(Failure::from(USAGE.to_owned()));
    };
    match cmd.as_str() {
        "explain" => commands::explain(rest).map_err(Failure::from),
        "diff" => commands::diff(rest).map_err(Failure::from),
        "apply" => commands::apply(rest).map_err(Failure::from),
        "gen" => commands::gen(rest).map_err(Failure::from),
        "profile" => commands::profile(rest).map_err(Failure::from),
        "serve" => commands::serve(rest).map_err(Failure::from),
        "client" => commands::client(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(Failure::from(format!("unknown command {other:?}\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn obs_out_captures_an_event_stream_for_a_full_explain() {
        let dir = std::env::temp_dir().join("affidavit-cli-obs-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("s.csv");
        let tgt = dir.join("t.csv");
        std::fs::write(&src, "k,v\na,1000\nb,2000\nc,3000\n").unwrap();
        std::fs::write(&tgt, "k,v\na,1\nb,2\nc,3\n").unwrap();
        let out = dir.join("events.ndjson");
        crate::run(&argv(&[
            "explain",
            src.to_str().unwrap(),
            tgt.to_str().unwrap(),
            "--obs-out",
            out.to_str().unwrap(),
            "--obs-summary",
        ]))
        .unwrap();
        let stream = std::fs::read_to_string(&out).unwrap();
        // Every line is a schema-valid event, and the stream covers the
        // pipeline from ingestion through search to rendering.
        for line in stream.lines() {
            serde_json::from_str::<affidavit_obs::Event>(line).unwrap();
        }
        for name in ["ingest.stream", "search.explain", "report.render"] {
            assert!(
                stream.contains(&format!("\"name\":\"{name}\"")),
                "missing {name} in:\n{stream}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn obs_out_requires_a_path() {
        let err = crate::run(&argv(&["help", "--obs-out"])).unwrap_err();
        assert!(err.message.contains("--obs-out"), "{}", err.message);
        assert_eq!(err.code, 1);
    }
}
