//! Library half of the `affidavit` command-line tool.
//!
//! The binary in `main.rs` is a thin shell around [`run`], which parses
//! the subcommand and dispatches into [`commands`]. Keeping the dispatch
//! in a library makes every command callable (and testable) in-process.
//!
//! ```
//! // `help` prints the usage text and succeeds; unknown commands fail
//! // with a message that includes it.
//! affidavit_cli::run(&["help".to_owned()]).unwrap();
//! let err = affidavit_cli::run(&["frobnicate".to_owned()]).unwrap_err();
//! assert!(err.contains("USAGE"));
//! ```

#![warn(missing_docs)]

pub mod commands;

pub use commands::USAGE;

/// Dispatch one CLI invocation (everything after the program name).
pub fn run(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(USAGE.to_owned());
    };
    match cmd.as_str() {
        "explain" => commands::explain(rest),
        "diff" => commands::diff(rest),
        "apply" => commands::apply(rest),
        "gen" => commands::gen(rest),
        "profile" => commands::profile(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}
