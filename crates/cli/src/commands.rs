//! CLI subcommand implementations.

use std::path::Path;

use affidavit_core::apply::transform_table;
use affidavit_core::portable::PortableExplanation;
use affidavit_core::report::{render_report, to_sql};
use affidavit_core::{Affidavit, AffidavitConfig, ProblemInstance};
use affidavit_datagen::blueprint::{Blueprint, GenConfig};
use affidavit_store::{ingest, IngestOptions, PoolBackend, PoolConfig};
use affidavit_table::{csv, AttrId, Table, ValuePool};

/// Top-level usage text.
pub const USAGE: &str = "\
affidavit — explain differences between unaligned table snapshots (EDBT 2020)

USAGE:
  affidavit explain <source.csv> <target.csv> [SEARCH] [INGESTION] [INCREMENTAL]
                    [--align] [--sql TABLE] [--trace] [--save F.json] [--stable]
  affidavit diff    <source.csv> <target.csv> --key COL[,COL...]
  affidavit apply   <source.csv> <target.csv> <unseen.csv> [SEARCH] [--out FILE]
  affidavit apply   --explanation F.json <unseen.csv> [--out FILE]
  affidavit gen     <dataset> [--eta F] [--tau F] [--rows N] [--seed N] --out-dir DIR
  affidavit profile <source_dir> <target_dir> [SEARCH] [INGESTION] [DISTRIBUTED]
                    [INCREMENTAL] [--align] [--json FILE] [--stable]
  affidavit serve   [--listen ADDR] [--sessions N] [--max-inflight N]
                    [--request-deadline-secs N] [--expansion-workers N]
  affidavit client  --connect HOST:PORT <source.csv> <target.csv> [SEARCH]
                    [INGESTION] [INCREMENTAL] [--align] [--stable]
                    [--format human|json]
  affidavit client  --connect HOST:PORT (--ping | --server-stats | --metrics
                    | --shutdown | --pin <source.csv> <target.csv>)
  affidavit help

Every command also accepts the OBSERVABILITY flags below.

SEARCH FLAGS (explain, apply, profile):
  --config id|overlap      Paper configuration: H^id robust search or Hs greedy
                           overlap search (default: id).
  --seed N                 RNG seed; every sample the search draws is
                           deterministic given the seed (default: 3988201504
                           = 0xEDB72020).
  --threads N              Worker threads for the candidate-generation phase;
                           0 = one per hardware thread (default: 1). Results
                           are byte-identical at every thread count.
  --speculative-width K    Frontier states expanded speculatively per driver
                           iteration (default: 1 = speculation off). Results
                           are byte-identical at every width.
  --speculation-min-records N
                           Smallest source+target record count worth
                           speculating on (default: 4096). Below it the
                           driver expands one state at a time; 0 speculates
                           on every instance.
  --trace                  Record and print the search tree (default: off).
  --corpus                 Also draw candidates from the built-in function
                           corpus (default: off; induction only).
  --extended               Enable the extension function kinds: zero padding,
                           thousands grouping, rounding, token programs
                           (default: off; the paper's Table 1 catalogue).

INGESTION FLAGS (explain, profile):
  --ingest-chunk-rows N    Records per streaming-ingestion chunk (default:
                           4096 rows). Smaller chunks bound memory tighter
                           and parallelize finer; the parsed table is
                           identical either way.
  --pool-backend ram|disk  Value-pool string storage (default: ram). disk
                           spills interned strings to segment files under the
                           budget below.
  --pool-budget-bytes N    RAM budget for the disk backend's resident string
                           bytes, in bytes (default: 67108864 = 64 MiB).

INCREMENTAL FLAGS (explain, profile, client):
  --delta                  Reuse the previous run's results for unchanged
                           table pairs: block fingerprints are diffed
                           against the run's manifest, clean pairs splice
                           their stored report, and only dirty pairs
                           re-enter the search. Output is byte-identical
                           to a from-scratch run; a broken or stale
                           manifest falls back to a full redo, never a
                           wrong answer (default: off).
  --delta-state DIR        Directory holding the delta manifest. On the
                           client this names a directory on the server
                           (default: a sibling of the target —
                           <target.csv>.affidavit-delta.json for explain,
                           <target_dir>/.affidavit-delta.json for
                           profile).

DISTRIBUTED FLAGS (profile):
  --workers N              Fan work out to N workers over a work-stealing
                           job broker (default: 0 — profile in-process
                           under --steal pairs, one worker per hardware
                           thread under --steal expansions). The report is
                           byte-identical at every worker count.
  --steal pairs|expansions Unit of work the workers steal (default:
                           pairs). pairs publishes whole table pairs as
                           jobs to affidavit-worker child processes.
                           expansions profiles in-process but publishes
                           the speculation driver's K-way frontier
                           batches (--speculative-width) to the broker,
                           where fleet workers — in-process threads
                           without --transport, affidavit-worker
                           processes with it — expand them side by side;
                           serial replay keeps the report byte-identical
                           to --workers 0 on every transport.
  --expansion-batch N      Expansions leased per job under --steal
                           expansions: the driver's K-way batch is
                           chunked into jobs of this many frontier
                           states (default: 4; 0 = the whole batch as
                           one job).
  --transport fs|tcp       Broker transport for --workers (default: fs).
                           fs claims jobs by atomic rename in a spool
                           directory; tcp serves framed steals from a
                           coordinator socket — no shared filesystem, and
                           extra workers on any machine can dial in with
                           `affidavit-worker --connect HOST:PORT`.
  --listen ADDR            Bind address of the tcp transport's coordinator
                           listener (default: 127.0.0.1:0 = loopback with
                           an OS-chosen port). Bind a routable address to
                           accept workers from other machines — trusted
                           networks only: the protocol carries no
                           authentication yet.
  --broker DIR             Job-spool directory for the fs transport
                           (default: a fresh temp directory). Point it at
                           shared storage to let externally started workers
                           steal from the same run; the directory must be
                           empty.
  --steal-timeout-secs N   Re-publish a worker's claimed job for others to
                           steal if no result arrives within N seconds;
                           the wait doubles on every retry of the same job
                           (default: 30 seconds).
  --deadline-secs N        Abort the distributed run after N seconds
                           (default: 86400 = 24 h).
  --stable                 Zero wall-clock timings in the output so two
                           runs can be compared byte for byte
                           (default: off).

SERVICE FLAGS (serve, client):
  --listen ADDR            serve: bind address of the daemon's listener.
                           The chosen address is printed on stdout. Bind
                           a routable address to accept clients from
                           other machines — trusted networks only: the
                           protocol carries no authentication yet
                           (default: 127.0.0.1:0 = loopback with an
                           OS-chosen port).
  --sessions N             serve: ingested snapshot pairs kept pinned at
                           once, keyed by content fingerprint; the
                           least-recently-used pair is evicted beyond
                           that (default: 8).
  --max-inflight N         serve: maximum explain/pin requests in flight
                           at once; further ones are answered with a
                           clear busy error instead of queuing
                           (default: 0 = unlimited).
  --request-deadline-secs N
                           serve: wall-clock budget per explain request;
                           an overrunning search is aborted
                           cooperatively and answered with an error.
                           Output stays byte-identical for requests that
                           finish in time (default: 0 = unlimited).
  --expansion-workers N    serve: attach an in-process expansion-stealing
                           fleet of N worker threads to every explain's
                           speculation driver; 0 = one per hardware
                           thread. Output stays byte-identical with or
                           without the fleet (default: off — expansions
                           stay on the request's own thread pool).
  --connect HOST:PORT      client: the daemon to dial. One keep-alive
                           framed connection carries every request; an
                           unreachable daemon exits with code 3
                           (default: none — required).
  --format human|json      client: output format. human prints the same
                           stdout bytes as the one-shot `explain`; json
                           prints one JSON object on stdout and NDJSON
                           diagnostics on stderr (default: human).
  --ping                   client: liveness probe instead of an explain
                           (default: off).
  --server-stats           client: print the daemon's counters instead
                           of an explain (default: off).
  --metrics                client: print the daemon's metrics registry
                           as Prometheus-style text instead of an
                           explain (default: off).
  --pin SRC TGT            client: ingest and pin a snapshot pair on the
                           server without searching, so a later explain
                           of the same pair is a guaranteed warm hit
                           (default: off).
  --shutdown               client: ask the daemon to exit cleanly
                           (default: off).

OBSERVABILITY FLAGS (all commands):
  --obs-out PATH|-         Write the span/metric event stream as NDJSON
                           to PATH (appending), or to stderr with `-`.
                           A pure side channel: stdout stays
                           byte-identical with or without it. The
                           AFFIDAVIT_OBS environment variable does the
                           same without the flag: `1` enables recording,
                           any other non-empty value is a sink path
                           (default: off).
  --obs-summary            Print a per-phase time profile (calls, busy,
                           wall, max) on stderr when the command
                           finishes (default: off).";

/// Simple positional + flag splitter.
struct Parsed<'a> {
    positional: Vec<&'a str>,
    flags: Vec<(&'a str, Option<&'a str>)>,
}

fn parse(args: &[String]) -> Parsed<'_> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .map(String::as_str);
            if value.is_some() {
                i += 1;
            }
            flags.push((name, value));
        } else {
            positional.push(args[i].as_str());
        }
        i += 1;
    }
    Parsed { positional, flags }
}

impl<'a> Parsed<'a> {
    fn flag(&self, name: &str) -> Option<Option<&'a str>> {
        self.flags.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    fn flag_value(&self, name: &str) -> Option<&'a str> {
        self.flag(name).flatten()
    }

    fn has(&self, name: &str) -> bool {
        self.flag(name).is_some()
    }
}

fn load_instance(src: &str, tgt: &str) -> Result<ProblemInstance, String> {
    let mut pool = ValuePool::new();
    let source = read_csv(src, &mut pool)?;
    let target = read_csv(tgt, &mut pool)?;
    ProblemInstance::new(source, target, pool).map_err(|e| e.to_string())
}

fn read_csv(path: &str, pool: &mut ValuePool) -> Result<Table, String> {
    csv::read_path(path, pool, csv::CsvOptions::default()).map_err(|e| format!("{path}: {e}"))
}

fn read_csv_streaming(
    path: &str,
    pool: &mut ValuePool,
    opts: &IngestOptions,
) -> Result<Table, String> {
    ingest::read_path(path, pool, opts).map_err(|e| format!("{path}: {e}"))
}

/// Ingestion and pool-backend flags shared by `explain` and `profile`.
/// Ingestion workers follow `--threads` (the search's worker count).
fn build_ingest(p: &Parsed<'_>, threads: usize) -> Result<(IngestOptions, PoolConfig), String> {
    let mut ingest_opts = IngestOptions {
        threads,
        ..IngestOptions::default()
    };
    if let Some(v) = p.flag_value("ingest-chunk-rows") {
        ingest_opts.chunk_rows = v
            .parse()
            .map_err(|_| format!("bad --ingest-chunk-rows {v:?} (records per chunk)"))?;
    }
    let mut pool_cfg = PoolConfig::default();
    if let Some(v) = p.flag_value("pool-backend") {
        pool_cfg.backend = v.parse()?;
    }
    if let Some(v) = p.flag_value("pool-budget-bytes") {
        pool_cfg.budget_bytes = v
            .parse()
            .map_err(|_| format!("bad --pool-budget-bytes {v:?} (RAM budget for string bytes)"))?;
    }
    Ok((ingest_opts, pool_cfg))
}

fn build_config(p: &Parsed<'_>) -> Result<AffidavitConfig, String> {
    let mut cfg = match p.flag_value("config").unwrap_or("id") {
        "id" => AffidavitConfig::paper_id(),
        "overlap" => AffidavitConfig::paper_overlap(),
        other => return Err(format!("unknown --config {other:?} (use id|overlap)")),
    };
    if let Some(seed) = p.flag_value("seed") {
        cfg.seed = seed.parse().map_err(|_| format!("bad --seed {seed:?}"))?;
    }
    if let Some(threads) = p.flag_value("threads") {
        cfg.threads = threads
            .parse()
            .map_err(|_| format!("bad --threads {threads:?} (use a count, or 0 for auto)"))?;
    }
    if let Some(width) = p.flag_value("speculative-width") {
        cfg.speculative_width = width.parse().map_err(|_| {
            format!("bad --speculative-width {width:?} (frontier states expanded per iteration)")
        })?;
    }
    if let Some(min) = p.flag_value("speculation-min-records") {
        cfg.speculation_min_records = min.parse().map_err(|_| {
            format!("bad --speculation-min-records {min:?} (record count, or 0 for always)")
        })?;
    }
    if p.has("trace") {
        cfg.trace = true;
    }
    if p.has("corpus") {
        cfg.use_corpus = true;
    }
    if p.has("extended") {
        cfg.registry = affidavit_functions::Registry::extended();
    }
    Ok(cfg)
}

/// `affidavit explain`: learn the transformation and alignment.
pub fn explain(args: &[String]) -> Result<(), String> {
    let p = parse(args);
    let [src, tgt] = p.positional[..] else {
        return Err(format!("explain needs two CSV paths\n{USAGE}"));
    };
    let cfg = build_config(&p)?;
    let (ingest_opts, pool_cfg) = build_ingest(&p, cfg.threads)?;
    if p.has("delta-state") && !p.has("delta") {
        return Err("--delta-state requires --delta".to_owned());
    }
    if p.has("delta") {
        // A spliced run performs no fresh search, so the flags that
        // expose search internals cannot be answered from the manifest.
        for flag in ["trace", "sql", "save"] {
            if p.has(flag) {
                return Err(format!(
                    "--{flag} does not combine with --delta (a spliced run performs no fresh search)"
                ));
            }
        }
        let opts = affidavit_core::profiling::ProfileOptions {
            config: cfg,
            align: p.has("align"),
            ingest: ingest_opts,
            pool: pool_cfg,
            executor: None,
        };
        let state = match p.flag_value("delta-state") {
            Some(dir) => Path::new(dir).join("explain.affidavit-delta.json"),
            None => affidavit_core::delta::default_explain_state(Path::new(tgt)),
        };
        let outcome =
            affidavit_core::delta::explain_delta(Path::new(src), Path::new(tgt), &opts, &state)?;
        affidavit_obs::diag("delta", &outcome.stats.summary());
        println!("{}", outcome.report);
        let duration = if p.has("stable") {
            std::time::Duration::ZERO
        } else {
            outcome.duration
        };
        println!(
            "search: {} states polled, {} generated, {duration:?}",
            outcome.polled, outcome.generated
        );
        return Ok(());
    }
    let mut pool = pool_cfg.build().map_err(|e| e.to_string())?;
    let mut instance = if p.has("align") {
        // §6 future work: align renamed/reordered target columns by
        // content before explaining; with unequal arity, first look for
        // merged/split columns and normalize.
        let mut source = read_csv_streaming(src, &mut pool, &ingest_opts)?;
        let mut target = read_csv_streaming(tgt, &mut pool, &ingest_opts)?;
        if source.schema().arity() != target.schema().arity() {
            let Some((s2, t2, applied)) =
                affidavit_core::restructure::normalize_arity(&source, &target, &mut pool)
            else {
                return Err(
                    "--align: column counts differ and no merge/split evidence was found"
                        .to_owned(),
                );
            };
            for r in &applied {
                match r {
                    affidavit_core::restructure::Restructure::Merge {
                        target, left, right, sep, score,
                    } => eprintln!(
                        "detected merge: source {:?} ◦ {sep:?} ◦ {:?} → target {:?} (score {score:.2})",
                        source.schema().name(*left),
                        source.schema().name(*right),
                        t2.schema().name(*target),
                    ),
                    affidavit_core::restructure::Restructure::Split {
                        source: col, left, right, sep, score,
                    } => eprintln!(
                        "detected split: source {:?} → target {:?} ◦ {sep:?} ◦ {:?} (score {score:.2})",
                        source.schema().name(*col),
                        target.schema().name(*left),
                        target.schema().name(*right),
                    ),
                }
            }
            source = s2;
            target = t2;
        }
        let alignment = affidavit_core::schema_align::align_schemas(&source, &target, &pool);
        let pairs: Vec<String> = alignment
            .pairs()
            .map(|(i, j)| format!("{} ← {}", source.schema().name(i), target.schema().name(j)))
            .collect();
        eprintln!(
            "schema alignment (min confidence {:.2}): {}",
            alignment.min_confidence(),
            pairs.join(", ")
        );
        let target = alignment.reorder_target(&target, source.schema());
        ProblemInstance::new(source, target, pool).map_err(|e| e.to_string())?
    } else {
        let source = read_csv_streaming(src, &mut pool, &ingest_opts)?;
        let target = read_csv_streaming(tgt, &mut pool, &ingest_opts)?;
        ProblemInstance::new(source, target, pool).map_err(|e| e.to_string())?
    };
    let outcome = Affidavit::new(cfg).explain(&mut instance);
    if let Some(stats) = instance.pool.store_stats() {
        affidavit_obs::diag(
            "pool backend",
            &format!(
                "disk — {} bytes spilled, {} bytes resident",
                stats.spilled_bytes, stats.resident_bytes
            ),
        );
    }
    println!("{}", render_report(&outcome.explanation, &instance));
    // --stable zeroes the one nondeterministic byte sequence on stdout,
    // so two runs (or a run and a served client) diff clean.
    let duration = if p.has("stable") {
        std::time::Duration::ZERO
    } else {
        outcome.stats.duration
    };
    println!(
        "search: {} states polled, {} generated, {duration:?}",
        outcome.stats.polled, outcome.stats.states_generated
    );
    if let Some(trace) = outcome.trace {
        println!("\nsearch tree:\n{}", trace.render());
    }
    if let Some(table) = p.flag_value("sql") {
        println!("\n{}", to_sql(&outcome.explanation, &instance, table));
    }
    if let Some(path) = p.flag_value("save") {
        let portable = PortableExplanation::from_explanation(&outcome.explanation, &instance);
        std::fs::write(path, portable.to_json()).map_err(|e| e.to_string())?;
        eprintln!("saved explanation to {path}");
    }
    Ok(())
}

/// `affidavit profile`: explain every table pair in two snapshot
/// directories (paired by file stem) — in-process by default, or fanned
/// out to `affidavit-worker` child processes with `--workers N`.
pub fn profile(args: &[String]) -> Result<(), String> {
    let p = parse(args);
    let [src_dir, tgt_dir] = p.positional[..] else {
        return Err(format!("profile needs two directories\n{USAGE}"));
    };
    let config = build_config(&p)?;
    let (ingest_opts, pool_cfg) = build_ingest(&p, config.threads)?;
    let mut opts = affidavit_core::profiling::ProfileOptions {
        config,
        align: p.has("align"),
        ingest: ingest_opts,
        pool: pool_cfg,
        executor: None,
    };
    let workers: usize = match p.flag_value("workers") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad --workers {v:?} (workers, 0 = in-process / autosize)"))?,
        None => 0,
    };
    let secs_flag = |name: &str, default: u64| -> Result<std::time::Duration, String> {
        match p.flag_value(name) {
            None => Ok(std::time::Duration::from_secs(default)),
            Some(v) => v
                .parse()
                .map(std::time::Duration::from_secs)
                .map_err(|_| format!("bad --{name} {v:?} (seconds)")),
        }
    };
    if p.has("delta-state") && !p.has("delta") {
        return Err("--delta-state requires --delta".to_owned());
    }
    if p.has("delta") && workers > 0 {
        return Err(
            "--delta does not combine with --workers (incremental state is per-process)".to_owned(),
        );
    }
    let steal = p.flag_value("steal").unwrap_or("pairs");
    if !matches!(steal, "pairs" | "expansions") {
        return Err(format!("unknown --steal {steal:?} (use pairs|expansions)"));
    }
    if steal != "expansions" && p.has("expansion-batch") {
        return Err("--expansion-batch only applies to --steal expansions".to_owned());
    }
    if steal == "expansions" && p.has("delta") {
        return Err(
            "--delta does not combine with --steal expansions (spliced pairs perform no \
             fresh search to steal from)"
                .to_owned(),
        );
    }
    let mut profile = if steal == "expansions" {
        // The profile itself runs in-process; only the speculation
        // driver's frontier batches go over the broker.
        let backend = match p.flag_value("transport") {
            None => {
                for flag in ["listen", "broker"] {
                    if p.has(flag) {
                        return Err(format!(
                            "--{flag} needs --transport; without one the expansion \
                             fleet runs in-process worker threads"
                        ));
                    }
                }
                affidavit_dist::DistBackend::InProcess
            }
            Some("fs") => {
                if p.has("listen") {
                    return Err("--listen only applies to --transport tcp".to_owned());
                }
                affidavit_dist::DistBackend::ChildProcesses {
                    broker_dir: p.flag_value("broker").map(std::path::PathBuf::from),
                    worker_bin: None,
                }
            }
            Some("tcp") => {
                if p.has("broker") {
                    return Err(
                        "--broker is the fs transport's spool; with --transport tcp use --listen"
                            .to_owned(),
                    );
                }
                affidavit_dist::DistBackend::Tcp {
                    listen: p.flag_value("listen").map(str::to_owned),
                    worker_bin: None,
                }
            }
            Some(other) => return Err(format!("unknown --transport {other:?} (use fs|tcp)")),
        };
        let mut fleet_opts = affidavit_dist::ExpansionFleetOptions {
            workers,
            backend,
            ..affidavit_dist::ExpansionFleetOptions::default()
        };
        if let Some(v) = p.flag_value("expansion-batch") {
            fleet_opts.batch = v.parse().map_err(|_| {
                format!("bad --expansion-batch {v:?} (expansions per job, 0 = whole batch)")
            })?;
        }
        if p.has("steal-timeout-secs") {
            fleet_opts.steal_timeout = secs_flag("steal-timeout-secs", 30)?;
        }
        if p.has("deadline-secs") {
            fleet_opts.deadline = secs_flag("deadline-secs", 120)?;
        }
        let fleet = std::sync::Arc::new(affidavit_dist::ExpansionFleet::new(fleet_opts)?);
        if let Some(addr) = fleet.tcp_addr() {
            // Scripts attach elastic workers from this line.
            affidavit_obs::diag(
                "expansion fleet",
                &format!(
                    "tcp coordinator on {addr} — extra workers can dial in with \
                     `affidavit-worker --connect {addr}`"
                ),
            );
        }
        let transport = p.flag_value("transport").unwrap_or("in-process");
        let fleet_workers = fleet.workers();
        opts.executor =
            Some(fleet.clone() as std::sync::Arc<dyn affidavit_core::ExpansionExecutor>);
        let profile =
            affidavit_core::profiling::profile_dirs(Path::new(src_dir), Path::new(tgt_dir), &opts)?;
        opts.executor = None;
        let stats = fleet.stats().unwrap_or_default();
        affidavit_obs::diag(
            &format!("expansion stealing ({transport})"),
            &format!(
                "{fleet_workers} workers — {} expansion jobs stolen, {} stragglers \
                 requeued, {} duplicates discarded, {} conflicts",
                stats.steals, stats.requeues, stats.duplicates_discarded, stats.conflicts
            ),
        );
        profile
    } else if workers == 0 {
        for flag in [
            "transport",
            "listen",
            "broker",
            "steal-timeout-secs",
            "deadline-secs",
        ] {
            if p.has(flag) {
                return Err(format!(
                    "--{flag} only applies to distributed runs; add --workers N"
                ));
            }
        }
        if p.has("delta") {
            let state = match p.flag_value("delta-state") {
                Some(dir) => Path::new(dir).join("profile.affidavit-delta.json"),
                None => affidavit_core::delta::default_profile_state(Path::new(tgt_dir)),
            };
            let (profile, stats) = affidavit_core::delta::profile_dirs_delta(
                Path::new(src_dir),
                Path::new(tgt_dir),
                &opts,
                &state,
            )?;
            affidavit_obs::diag("delta", &stats.summary());
            profile
        } else {
            affidavit_core::profiling::profile_dirs(Path::new(src_dir), Path::new(tgt_dir), &opts)?
        }
    } else {
        let transport = p.flag_value("transport").unwrap_or("fs");
        let backend = match transport {
            "fs" => {
                if p.has("listen") {
                    return Err("--listen only applies to --transport tcp".to_owned());
                }
                affidavit_dist::DistBackend::ChildProcesses {
                    broker_dir: p.flag_value("broker").map(std::path::PathBuf::from),
                    worker_bin: None,
                }
            }
            "tcp" => {
                if p.has("broker") {
                    return Err(
                        "--broker is the fs transport's spool; with --transport tcp use --listen"
                            .to_owned(),
                    );
                }
                affidavit_dist::DistBackend::Tcp {
                    listen: p.flag_value("listen").map(str::to_owned),
                    worker_bin: None,
                }
            }
            other => return Err(format!("unknown --transport {other:?} (use fs|tcp)")),
        };
        let dopts = affidavit_dist::DistOptions {
            workers,
            backend,
            steal_timeout: secs_flag("steal-timeout-secs", 30)?,
            deadline: secs_flag("deadline-secs", 86_400)?,
            ..affidavit_dist::DistOptions::default()
        };
        let (profile, stats) = affidavit_dist::profile_dirs_distributed(
            Path::new(src_dir),
            Path::new(tgt_dir),
            &opts,
            &dopts,
        )?;
        affidavit_obs::diag(
            &format!("distributed ({transport})"),
            &format!(
                "{} jobs over {} workers — {} steals, {} stragglers requeued, \
                 {} duplicates discarded, {} conflicts",
                stats.jobs,
                stats.workers,
                stats.steals,
                stats.stragglers_requeued,
                stats.duplicates_discarded,
                stats.conflicts
            ),
        );
        profile
    };
    if p.has("stable") {
        profile.strip_timing();
    }
    println!("{}", profile.render());
    if let Some(path) = p.flag_value("json") {
        std::fs::write(path, profile.to_json()).map_err(|e| e.to_string())?;
        eprintln!("wrote machine-readable profile to {path}");
    }
    Ok(())
}

/// `affidavit serve`: run the resident profiling daemon until a client
/// asks it to shut down (`affidavit client --connect ADDR --shutdown`).
pub fn serve(args: &[String]) -> Result<(), String> {
    let p = parse(args);
    if !p.positional.is_empty() {
        return Err(format!("serve takes no positional arguments\n{USAGE}"));
    }
    let sessions: usize = match p.flag_value("sessions") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad --sessions {v:?} (pinned snapshot pairs)"))?,
        None => 8,
    };
    let max_inflight: usize = match p.flag_value("max-inflight") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad --max-inflight {v:?} (requests, 0 = unlimited)"))?,
        None => 0,
    };
    let request_deadline = match p.flag_value("request-deadline-secs") {
        Some(v) => {
            let secs: u64 = v.parse().map_err(|_| {
                format!("bad --request-deadline-secs {v:?} (seconds, 0 = unlimited)")
            })?;
            (secs > 0).then(|| std::time::Duration::from_secs(secs))
        }
        None => None,
    };
    let expansion_workers = match p.flag_value("expansion-workers") {
        Some(v) => Some(v.parse().map_err(|_| {
            format!("bad --expansion-workers {v:?} (fleet threads, 0 = one per hardware thread)")
        })?),
        None => None,
    };
    let opts = affidavit_serve::ServeOptions {
        listen: p.flag_value("listen").unwrap_or("127.0.0.1:0").to_owned(),
        sessions,
        max_inflight,
        request_deadline,
        expansion_workers,
        ..affidavit_serve::ServeOptions::default()
    };
    let mut daemon = affidavit_serve::serve(&opts)?;
    // Scripts capture the chosen port from this line — flush through
    // pipe buffering before parking.
    println!("affidavit serve listening on {}", daemon.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    daemon.wait();
    let stats = daemon.stats();
    affidavit_obs::diag(
        "serve",
        &format!(
            "{} requests over {} connections — {} ingests, {} warm hits, {} evictions",
            stats.requests, stats.connections, stats.ingests, stats.hits, stats.evictions
        ),
    );
    Ok(())
}

/// `affidavit client`: run one request against a resident daemon. The
/// human-format stdout of an explain is byte-identical to the one-shot
/// `affidavit explain` under the same flags; an unreachable daemon
/// exits with code 3 (the broker-lost convention).
pub fn client(args: &[String]) -> Result<(), crate::Failure> {
    use affidavit_serve::{ClientError, ServeClient};
    let p = parse(args);
    let plain = crate::Failure::from;
    let fail = |e: ClientError| crate::Failure {
        code: if matches!(e, ClientError::Lost(_)) {
            affidavit_dist::BROKER_LOST_EXIT_CODE
        } else {
            1
        },
        message: e.to_string(),
    };
    let Some(addr) = p.flag_value("connect") else {
        return Err(plain(format!(
            "client requires --connect HOST:PORT\n{USAGE}"
        )));
    };
    let format = p.flag_value("format").unwrap_or("human");
    let json = match format {
        "human" => false,
        "json" => true,
        other => {
            return Err(plain(format!(
                "unknown --format {other:?} (use human|json)"
            )))
        }
    };
    // Diagnostics go to stderr: plain text under human, NDJSON under
    // json — stdout stays reserved for the data itself either way. The
    // rendering lives in the shared obs layer so every crate's stderr
    // diagnostics speak the same two formats.
    affidavit_obs::set_diag_format(if json {
        affidavit_obs::DiagFormat::Ndjson
    } else {
        affidavit_obs::DiagFormat::Human
    });
    let diag = affidavit_obs::diag;
    let remote = ServeClient::new(addr);
    if p.has("ping") {
        remote.ping().map_err(fail)?;
        if json {
            println!("{{\"status\":\"pong\"}}");
        } else {
            println!("pong from {addr}");
        }
        return Ok(());
    }
    if p.has("server-stats") {
        let stats = remote.stats().map_err(fail)?;
        if json {
            println!(
                "{}",
                serde_json::to_string(&stats).expect("stats serialize")
            );
        } else {
            println!(
                "serve stats: {} requests over {} connections — {} sessions pinned, \
                 {} ingests, {} warm hits, {} evictions",
                stats.requests,
                stats.connections,
                stats.sessions,
                stats.ingests,
                stats.hits,
                stats.evictions
            );
        }
        return Ok(());
    }
    if p.has("metrics") {
        // Prometheus text exposition is already machine-readable, so
        // both formats print it verbatim.
        let text = remote.metrics().map_err(fail)?;
        print!("{text}");
        return Ok(());
    }
    if p.has("pin") {
        // The splitter hands `--pin SRC TGT` over as flag value SRC plus
        // positional TGT; `SRC TGT --pin` arrives as two positionals.
        let (src, tgt) = match (p.flag_value("pin"), &p.positional[..]) {
            (Some(src), [tgt]) => (src, *tgt),
            (None, [src, tgt]) => (*src, *tgt),
            _ => {
                return Err(plain(format!(
                    "client --pin needs two CSV paths (on the server's filesystem)\n{USAGE}"
                )))
            }
        };
        let cfg = build_config(&p).map_err(plain)?;
        let (ingest_opts, pool_cfg) = build_ingest(&p, cfg.threads).map_err(plain)?;
        let spec = build_spec(src, tgt, cfg, &p, &ingest_opts, &pool_cfg);
        let warm = remote.pin(&spec).map_err(fail)?;
        diag(
            "session",
            if warm {
                "warm (already pinned)"
            } else {
                "cold (ingested and pinned on the server)"
            },
        );
        if json {
            println!("{{\"status\":\"pinned\",\"warm\":{warm}}}");
        } else {
            println!(
                "pinned {src} and {tgt} on {addr} ({})",
                if warm { "already warm" } else { "cold" }
            );
        }
        return Ok(());
    }
    if p.has("shutdown") {
        remote.shutdown().map_err(fail)?;
        if json {
            println!("{{\"status\":\"shutting_down\"}}");
        } else {
            println!("server at {addr} is shutting down");
        }
        return Ok(());
    }
    let [src, tgt] = p.positional[..] else {
        return Err(plain(format!(
            "client needs two CSV paths (on the server's filesystem)\n{USAGE}"
        )));
    };
    let cfg = build_config(&p).map_err(plain)?;
    let (ingest_opts, pool_cfg) = build_ingest(&p, cfg.threads).map_err(plain)?;
    let spec = build_spec(src, tgt, cfg, &p, &ingest_opts, &pool_cfg);
    let reply = remote.explain(&spec).map_err(fail)?;
    diag(
        "session",
        if reply.warm {
            "warm (zero ingestion work)"
        } else {
            "cold (ingested on the server)"
        },
    );
    if json {
        println!(
            "{}",
            serde_json::to_string(&reply).expect("replies serialize")
        );
    } else {
        // Exactly the one-shot `affidavit explain` stdout: the rendered
        // report, then the search line (timing zeroed under --stable).
        println!("{}", reply.report);
        let duration = if p.has("stable") {
            std::time::Duration::ZERO
        } else {
            std::time::Duration::from_millis(reply.millis)
        };
        println!(
            "search: {} states polled, {} generated, {duration:?}",
            reply.polled, reply.generated
        );
    }
    Ok(())
}

/// The wire spec for a client `Explain`/`Pin`, from the parsed flags.
fn build_spec(
    src: &str,
    tgt: &str,
    cfg: AffidavitConfig,
    p: &Parsed<'_>,
    ingest_opts: &IngestOptions,
    pool_cfg: &PoolConfig,
) -> affidavit_serve::ExplainSpec {
    affidavit_serve::ExplainSpec {
        source: src.to_owned(),
        target: tgt.to_owned(),
        config: cfg,
        align: p.has("align"),
        ingest_chunk_rows: ingest_opts.chunk_rows,
        pool_backend: match pool_cfg.backend {
            PoolBackend::Ram => "ram".to_owned(),
            PoolBackend::Disk => "disk".to_owned(),
        },
        pool_budget_bytes: pool_cfg.budget_bytes,
        delta: p.has("delta"),
        delta_state: p.flag_value("delta-state").map(str::to_owned),
    }
}

/// `affidavit diff`: classic key-based comparison.
pub fn diff(args: &[String]) -> Result<(), String> {
    let p = parse(args);
    let [src, tgt] = p.positional[..] else {
        return Err(format!("diff needs two CSV paths\n{USAGE}"));
    };
    let keys = p
        .flag_value("key")
        .ok_or_else(|| "diff requires --key COL[,COL...]".to_owned())?;
    let instance = load_instance(src, tgt)?;
    let key_attrs: Vec<AttrId> = keys
        .split(',')
        .map(|name| {
            instance
                .schema()
                .find(name.trim())
                .ok_or_else(|| format!("unknown key column {name:?}"))
        })
        .collect::<Result<_, _>>()?;
    let report = affidavit_baselines_diff(&instance, &key_attrs);
    println!("{report}");
    Ok(())
}

// The baselines crate is not a CLI dependency (keeps the binary lean), so
// reimplement the small key-diff report here on top of the core types.
fn affidavit_baselines_diff(instance: &ProblemInstance, keys: &[AttrId]) -> String {
    use affidavit_table::{FxHashMap, Sym};
    let mut by_key: FxHashMap<Vec<Sym>, (Vec<affidavit_table::RecordId>, usize)> =
        FxHashMap::default();
    for (tid, rec) in instance.target.iter() {
        let key: Vec<Sym> = keys.iter().map(|a| rec.get(a.index())).collect();
        by_key.entry(key).or_default().0.push(tid);
    }
    let mut matched = 0usize;
    let mut updates = 0usize;
    let mut deletes = 0usize;
    for (sid, rec) in instance.source.iter() {
        let key: Vec<Sym> = keys.iter().map(|a| rec.get(a.index())).collect();
        match by_key.get_mut(&key) {
            Some((tids, next)) if *next < tids.len() => {
                let tid = tids[*next];
                *next += 1;
                matched += 1;
                let changed = instance
                    .schema()
                    .attr_ids()
                    .filter(|a| !keys.contains(a))
                    .any(|a| instance.source.value(sid, a) != instance.target.value(tid, a));
                if changed {
                    updates += 1;
                }
            }
            _ => deletes += 1,
        }
    }
    let inserts: usize = by_key.values().map(|(tids, next)| tids.len() - next).sum();
    format!(
        "key-based diff: {matched} matched ({updates} updated), {deletes} deleted, {inserts} inserted\n\
         note: if keys were reassigned between snapshots this alignment is unreliable — use `affidavit explain`"
    )
}

/// `affidavit apply`: transform unseen rows, either with a freshly learned
/// explanation (three CSV paths) or with a saved one (`--explanation`).
pub fn apply(args: &[String]) -> Result<(), String> {
    let p = parse(args);
    if let Some(expl_path) = p.flag_value("explanation") {
        let [unseen_path] = p.positional[..] else {
            return Err(format!("apply --explanation needs one CSV path\n{USAGE}"));
        };
        let json = std::fs::read_to_string(expl_path).map_err(|e| format!("{expl_path}: {e}"))?;
        let portable = PortableExplanation::from_json(&json)?;
        let mut pool = ValuePool::new();
        let unseen = read_csv(unseen_path, &mut pool)?;
        let names: Vec<&str> = unseen.schema().names().collect();
        if names
            != portable
                .schema
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
        {
            return Err(format!(
                "schema mismatch: explanation was learned over {:?}, input has {:?}",
                portable.schema, names
            ));
        }
        let functions = portable.functions(&mut pool)?;
        let e = affidavit_core::Explanation::new(functions, vec![], vec![], vec![]);
        let (transformed, failed) = transform_table(&e, &unseen, &mut pool);
        eprintln!(
            "applied saved explanation: {} transformed, {} untransformable",
            transformed.len(),
            failed.len()
        );
        return match p.flag_value("out") {
            Some(path) => {
                csv::write_path(path, &transformed, &pool, csv::CsvOptions::default())
                    .map_err(|e| e.to_string())?;
                eprintln!("wrote {path}");
                Ok(())
            }
            None => {
                let mut stdout = std::io::stdout();
                csv::write(&mut stdout, &transformed, &pool, csv::CsvOptions::default())
                    .map_err(|e| e.to_string())
            }
        };
    }
    let [src, tgt, unseen_path] = p.positional[..] else {
        return Err(format!("apply needs three CSV paths\n{USAGE}"));
    };
    let mut instance = load_instance(src, tgt)?;
    let unseen = {
        let mut pool_ref = std::mem::take(&mut instance.pool);
        let t = read_csv(unseen_path, &mut pool_ref)?;
        instance.pool = pool_ref;
        t
    };
    if unseen.schema() != instance.schema() {
        return Err("unseen table schema differs from the snapshots".to_owned());
    }
    let cfg = build_config(&p)?;
    let outcome = Affidavit::new(cfg).explain(&mut instance);
    let (transformed, failed) = transform_table(&outcome.explanation, &unseen, &mut instance.pool);
    eprintln!(
        "learned explanation (core {}, cost {}); transformed {} records, {} untransformable",
        outcome.explanation.core_size(),
        outcome.explanation.cost_units(instance.arity()),
        transformed.len(),
        failed.len()
    );
    match p.flag_value("out") {
        Some(path) => {
            csv::write_path(
                path,
                &transformed,
                &instance.pool,
                csv::CsvOptions::default(),
            )
            .map_err(|e| e.to_string())?;
            eprintln!("wrote {path}");
        }
        None => {
            let mut stdout = std::io::stdout();
            csv::write(
                &mut stdout,
                &transformed,
                &instance.pool,
                csv::CsvOptions::default(),
            )
            .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// `affidavit gen`: write a synthetic §5.1 snapshot pair.
pub fn gen(args: &[String]) -> Result<(), String> {
    let p = parse(args);
    let [dataset] = p.positional[..] else {
        return Err(format!("gen needs a dataset name\n{USAGE}"));
    };
    let spec = affidavit_datasets::by_name(dataset)
        .ok_or_else(|| format!("unknown dataset {dataset:?}"))?;
    let eta: f64 = p
        .flag_value("eta")
        .unwrap_or("0.3")
        .parse()
        .map_err(|_| "bad --eta")?;
    let tau: f64 = p
        .flag_value("tau")
        .unwrap_or("0.3")
        .parse()
        .map_err(|_| "bad --tau")?;
    let seed: u64 = p
        .flag_value("seed")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --seed")?;
    let rows: usize = match p.flag_value("rows") {
        Some(r) => r.parse().map_err(|_| "bad --rows")?,
        None => spec.rows,
    };
    let out_dir = p
        .flag_value("out-dir")
        .ok_or_else(|| "gen requires --out-dir DIR".to_owned())?;
    std::fs::create_dir_all(out_dir).map_err(|e| e.to_string())?;

    let (base, pool) = affidavit_datasets::synth::generate_rows(&spec, rows, seed);
    let generated = Blueprint::new(base, pool, GenConfig::new(eta, tau, seed)).materialize_full();
    let dir = Path::new(out_dir);
    let src_path = dir.join(format!("{dataset}_source.csv"));
    let tgt_path = dir.join(format!("{dataset}_target.csv"));
    csv::write_path(
        &src_path,
        &generated.instance.source,
        &generated.instance.pool,
        csv::CsvOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    csv::write_path(
        &tgt_path,
        &generated.instance.target,
        &generated.instance.pool,
        csv::CsvOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    println!(
        "wrote {} and {} (η={eta}, τ={tau}, {} records each, reference cost {})",
        src_path.display(),
        tgt_path.display(),
        generated.instance.source.len(),
        generated.reference.cost_units(generated.instance.arity())
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_store::PoolBackend;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_positional_and_flags() {
        let args = argv(&[
            "a.csv", "b.csv", "--config", "overlap", "--trace", "--seed", "9",
        ]);
        let p = parse(&args);
        assert_eq!(p.positional, vec!["a.csv", "b.csv"]);
        assert_eq!(p.flag_value("config"), Some("overlap"));
        assert_eq!(p.flag_value("seed"), Some("9"));
        assert!(p.has("trace"));
        assert!(!p.has("sql"));
    }

    #[test]
    fn build_config_variants() {
        let good = argv(&["--config", "overlap", "--seed", "123"]);
        let cfg = build_config(&parse(&good)).unwrap();
        assert_eq!(cfg.seed, 123);
        assert_eq!(cfg.queue_width, 1);
        let bad = argv(&["--config", "nope"]);
        assert!(build_config(&parse(&bad)).is_err());
    }

    #[test]
    fn build_config_speculative_width() {
        let good = argv(&["--threads", "4", "--speculative-width", "8"]);
        let cfg = build_config(&parse(&good)).unwrap();
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.speculative_width, 8);
        let bad = argv(&["--speculative-width", "wide"]);
        assert!(build_config(&parse(&bad)).is_err());
    }

    #[test]
    fn build_ingest_flags() {
        let args = argv(&[
            "--ingest-chunk-rows",
            "128",
            "--pool-backend",
            "disk",
            "--pool-budget-bytes",
            "4096",
        ]);
        let p = parse(&args);
        let (ingest_opts, pool_cfg) = build_ingest(&p, 3).unwrap();
        assert_eq!(ingest_opts.chunk_rows, 128);
        assert_eq!(ingest_opts.threads, 3);
        assert_eq!(pool_cfg.backend, PoolBackend::Disk);
        assert_eq!(pool_cfg.budget_bytes, 4096);
        assert!(build_ingest(&parse(&argv(&["--pool-backend", "mmap"])), 1).is_err());
        assert!(build_ingest(&parse(&argv(&["--ingest-chunk-rows", "many"])), 1).is_err());
    }

    #[test]
    fn explain_runs_with_disk_pool_backend() {
        let dir = std::env::temp_dir().join("affidavit-cli-diskpool-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("s.csv");
        let tgt = dir.join("t.csv");
        let mut s = String::from("k,v\n");
        let mut t = String::from("k,v\n");
        for i in 0..40 {
            s.push_str(&format!("key{i},{}\n", (i + 1) * 1000));
            t.push_str(&format!("key{i},{}\n", i + 1));
        }
        std::fs::write(&src, s).unwrap();
        std::fs::write(&tgt, t).unwrap();
        explain(&argv(&[
            src.to_str().unwrap(),
            tgt.to_str().unwrap(),
            "--pool-backend",
            "disk",
            "--pool-budget-bytes",
            "256",
            "--ingest-chunk-rows",
            "8",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explain_rejects_missing_args() {
        assert!(explain(&argv(&["only-one.csv"])).is_err());
        assert!(diff(&argv(&["a.csv", "b.csv"])).is_err()); // missing --key
        assert!(apply(&argv(&["a.csv", "b.csv"])).is_err());
        assert!(gen(&argv(&[])).is_err());
    }

    #[test]
    fn gen_then_explain_roundtrip() {
        let dir = std::env::temp_dir().join("affidavit-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let dir_s = dir.to_string_lossy().to_string();
        gen(&argv(&[
            "iris",
            "--rows",
            "100",
            "--seed",
            "3",
            "--out-dir",
            &dir_s,
        ]))
        .unwrap();
        let src = dir.join("iris_source.csv");
        let tgt = dir.join("iris_target.csv");
        assert!(src.is_file() && tgt.is_file());
        explain(&argv(&[
            src.to_str().unwrap(),
            tgt.to_str().unwrap(),
            "--seed",
            "4",
        ]))
        .unwrap();
        diff(&argv(&[
            src.to_str().unwrap(),
            tgt.to_str().unwrap(),
            "--key",
            "pk",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn apply_transforms_unseen_rows() {
        let dir = std::env::temp_dir().join("affidavit-cli-apply-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("s.csv");
        let tgt = dir.join("t.csv");
        let unseen = dir.join("u.csv");
        let out = dir.join("o.csv");
        std::fs::write(&src, "k,v\na,1000\nb,2000\nc,3000\n").unwrap();
        std::fs::write(&tgt, "k,v\na,1\nb,2\nc,3\n").unwrap();
        std::fs::write(&unseen, "k,v\nz,9000\n").unwrap();
        apply(&argv(&[
            src.to_str().unwrap(),
            tgt.to_str().unwrap(),
            unseen.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let written = std::fs::read_to_string(&out).unwrap();
        assert!(
            written.contains("z,9"),
            "learned x/1000 must apply: {written}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gen_unknown_dataset_fails() {
        assert!(gen(&argv(&["not-a-dataset", "--out-dir", "/tmp"])).is_err());
    }

    #[test]
    fn every_documented_flag_has_a_default_in_help() {
        // The flag audit: each tunable introduced by the parallel search,
        // streaming ingestion, pool-backend and distribution work must be
        // described in USAGE with its default spelled out.
        for flag in [
            "--config",
            "--seed",
            "--threads",
            "--speculative-width",
            "--speculation-min-records",
            "--ingest-chunk-rows",
            "--pool-backend",
            "--pool-budget-bytes",
            "--delta",
            "--delta-state",
            "--workers",
            "--steal",
            "--expansion-batch",
            "--transport",
            "--listen",
            "--broker",
            "--steal-timeout-secs",
            "--deadline-secs",
            "--stable",
            "--listen",
            "--sessions",
            "--max-inflight",
            "--request-deadline-secs",
            "--expansion-workers",
            "--connect",
            "--format",
            "--ping",
            "--server-stats",
            "--metrics",
            "--pin",
            "--shutdown",
            "--obs-out",
            "--obs-summary",
        ] {
            let line_start = USAGE
                .find(&format!("\n  {flag}"))
                .unwrap_or_else(|| panic!("{flag} missing from the FLAGS sections of USAGE"));
            let description = &USAGE[line_start..][..USAGE[line_start + 1..]
                .find("\n  --")
                .map_or(USAGE.len() - line_start, |i| i + 1)];
            assert!(
                description.contains("(default:"),
                "{flag} must document its default: {description}"
            );
        }
    }

    #[test]
    fn client_round_trips_against_a_daemon_and_codes_its_exits() {
        let dir = std::env::temp_dir().join("affidavit-cli-serve-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("s.csv");
        let tgt = dir.join("t.csv");
        std::fs::write(&src, "k,v\na,1000\nb,2000\nc,3000\n").unwrap();
        std::fs::write(&tgt, "k,v\na,1\nb,2\nc,3\n").unwrap();
        let mut daemon = affidavit_serve::serve(&affidavit_serve::ServeOptions::default()).unwrap();
        let addr = daemon.local_addr().to_string();
        client(&argv(&["--connect", &addr, "--ping"])).unwrap();
        // A full explain (human and json), twice: the repeat is warm.
        for format in ["human", "json"] {
            client(&argv(&[
                "--connect",
                &addr,
                src.to_str().unwrap(),
                tgt.to_str().unwrap(),
                "--stable",
                "--format",
                format,
            ]))
            .unwrap();
        }
        client(&argv(&["--connect", &addr, "--server-stats"])).unwrap();
        let stats = daemon.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.ingests, 1, "the repeat must reuse the session");
        assert_eq!(stats.hits, 1);
        // Pinning the already-explained pair performs zero ingestion
        // work, and the metrics op answers for both formats.
        client(&argv(&[
            "--connect",
            &addr,
            "--pin",
            src.to_str().unwrap(),
            tgt.to_str().unwrap(),
        ]))
        .unwrap();
        let stats = daemon.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.ingests, 1, "a pin of a pinned pair is free");
        client(&argv(&["--connect", &addr, "--metrics"])).unwrap();
        assert_eq!(
            client(&argv(&["--connect", &addr, "--pin"]))
                .unwrap_err()
                .code,
            1,
            "--pin without paths is a usage error"
        );
        // Usage errors are exit code 1; a clean shutdown works; after
        // it, the daemon is unreachable — exit code 3.
        assert_eq!(client(&argv(&["--ping"])).unwrap_err().code, 1);
        let bad = client(&argv(&["--connect", &addr, "--format", "xml"])).unwrap_err();
        assert_eq!(bad.code, 1);
        client(&argv(&["--connect", &addr, "--shutdown"])).unwrap();
        daemon.wait();
        let lost = client(&argv(&["--connect", &addr, "--ping"])).unwrap_err();
        assert_eq!(lost.code, affidavit_dist::BROKER_LOST_EXIT_CODE);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_rejects_bad_flags() {
        assert!(serve(&argv(&["stray-positional"])).is_err());
        assert!(serve(&argv(&["--sessions", "lots"])).is_err());
        assert!(serve(&argv(&["--listen", "not-an-address"])).is_err());
        assert!(serve(&argv(&["--max-inflight", "many"])).is_err());
        assert!(serve(&argv(&["--request-deadline-secs", "soon"])).is_err());
    }

    #[test]
    fn profile_rejects_bad_distribution_flags() {
        let dir = std::env::temp_dir().join("affidavit-cli-distflags-test");
        std::fs::create_dir_all(&dir).unwrap();
        let d = dir.to_str().unwrap();
        let err = profile(&argv(&[d, d, "--workers", "many"])).unwrap_err();
        assert!(err.contains("--workers"), "{err}");
        let err = profile(&argv(&[d, d, "--speculation-min-records", "lots"])).unwrap_err();
        assert!(err.contains("--speculation-min-records"), "{err}");
        let err = profile(&argv(&[d, d, "--broker", "/tmp/spool"])).unwrap_err();
        assert!(err.contains("--workers"), "{err}");
        // Transport flags without a distributed run, or crossed between
        // transports, fail with pointed messages.
        let err = profile(&argv(&[d, d, "--transport", "tcp"])).unwrap_err();
        assert!(err.contains("--workers"), "{err}");
        let err = profile(&argv(&[d, d, "--workers", "2", "--transport", "udp"])).unwrap_err();
        assert!(err.contains("fs|tcp"), "{err}");
        let err = profile(&argv(&[
            d,
            d,
            "--workers",
            "2",
            "--transport",
            "tcp",
            "--broker",
            "/tmp/spool",
        ]))
        .unwrap_err();
        assert!(err.contains("--listen"), "{err}");
        let err = profile(&argv(&[d, d, "--workers", "2", "--listen", "127.0.0.1:0"])).unwrap_err();
        assert!(err.contains("--transport tcp"), "{err}");
        // Expansion-stealing flag validation.
        let err = profile(&argv(&[d, d, "--steal", "rows"])).unwrap_err();
        assert!(err.contains("pairs|expansions"), "{err}");
        let err = profile(&argv(&[d, d, "--expansion-batch", "4"])).unwrap_err();
        assert!(err.contains("--steal expansions"), "{err}");
        let err = profile(&argv(&[d, d, "--steal", "expansions", "--delta"])).unwrap_err();
        assert!(err.contains("--delta"), "{err}");
        let err = profile(&argv(&[
            d,
            d,
            "--steal",
            "expansions",
            "--listen",
            "127.0.0.1:0",
        ]))
        .unwrap_err();
        assert!(err.contains("--transport"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_steals_expansions_in_process() {
        // `--steal expansions` over in-process fleet threads writes the
        // same machine-readable profile as the plain local run.
        let root = std::env::temp_dir().join("affidavit-cli-steal-exp-test");
        std::fs::remove_dir_all(&root).ok();
        let src = root.join("v1");
        let tgt = root.join("v2");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::create_dir_all(&tgt).unwrap();
        std::fs::write(src.join("a.csv"), "k,v\nx,1000\ny,2000\nz,3000\n").unwrap();
        std::fs::write(tgt.join("a.csv"), "k,v\nx,1\ny,2\nz,3\n").unwrap();
        let (s, t) = (src.to_str().unwrap(), tgt.to_str().unwrap());
        let local = root.join("local.json");
        let stolen = root.join("stolen.json");
        profile(&argv(&[
            s,
            t,
            "--stable",
            "--json",
            local.to_str().unwrap(),
        ]))
        .unwrap();
        profile(&argv(&[
            s,
            t,
            "--stable",
            "--steal",
            "expansions",
            "--workers",
            "2",
            "--speculative-width",
            "4",
            // The gate would otherwise keep this tiny fixture local and
            // the test would compare two identical local runs.
            "--speculation-min-records",
            "0",
            "--expansion-batch",
            "1",
            "--json",
            stolen.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&local).unwrap(),
            std::fs::read_to_string(&stolen).unwrap(),
            "expansion stealing must not change the profile"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn delta_flags_validate_and_round_trip() {
        let dir = std::env::temp_dir().join("affidavit-cli-delta-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("s.csv");
        let tgt = dir.join("t.csv");
        std::fs::write(&src, "k,v\na,1000\nb,2000\nc,3000\n").unwrap();
        std::fs::write(&tgt, "k,v\na,1\nb,2\nc,3\n").unwrap();
        let (s, t) = (src.to_str().unwrap(), tgt.to_str().unwrap());
        // Flag validation: search-internal flags and orphaned state.
        let err = explain(&argv(&[s, t, "--delta", "--trace"])).unwrap_err();
        assert!(err.contains("--trace"), "{err}");
        let err = explain(&argv(&[s, t, "--delta-state", "/tmp/x"])).unwrap_err();
        assert!(err.contains("requires --delta"), "{err}");
        let err = profile(&argv(&[s, t, "--delta", "--workers", "2"])).unwrap_err();
        assert!(err.contains("--workers"), "{err}");
        // A run then a re-run: the manifest lands in --delta-state.
        let state = dir.join("state");
        let state_s = state.to_str().unwrap().to_owned();
        explain(&argv(&[
            s,
            t,
            "--delta",
            "--delta-state",
            &state_s,
            "--stable",
        ]))
        .unwrap();
        assert!(state.join("explain.affidavit-delta.json").is_file());
        explain(&argv(&[
            s,
            t,
            "--delta",
            "--delta-state",
            &state_s,
            "--stable",
        ]))
        .unwrap();
        // Without --delta-state the manifest is a sibling of the target.
        explain(&argv(&[s, t, "--delta"])).unwrap();
        assert!(dir.join("t.csv.affidavit-delta.json").is_file());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_delta_round_trips_through_the_cli() {
        let root = std::env::temp_dir().join("affidavit-cli-profile-delta-test");
        std::fs::remove_dir_all(&root).ok();
        let src = root.join("v1");
        let tgt = root.join("v2");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::create_dir_all(&tgt).unwrap();
        std::fs::write(src.join("a.csv"), "k,v\nx,1000\ny,2000\nz,3000\n").unwrap();
        std::fs::write(tgt.join("a.csv"), "k,v\nx,1\ny,2\nz,3\n").unwrap();
        let json1 = root.join("p1.json");
        let json2 = root.join("p2.json");
        let args = |json: &Path| {
            argv(&[
                src.to_str().unwrap(),
                tgt.to_str().unwrap(),
                "--delta",
                "--stable",
                "--json",
                json.to_str().unwrap(),
            ])
        };
        profile(&args(&json1)).unwrap();
        assert!(tgt.join(".affidavit-delta.json").is_file());
        profile(&args(&json2)).unwrap();
        assert_eq!(
            std::fs::read_to_string(&json1).unwrap(),
            std::fs::read_to_string(&json2).unwrap(),
            "a clean --delta re-run must reproduce the profile byte for byte"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn profile_two_snapshot_directories() {
        let root = std::env::temp_dir().join("affidavit-cli-profile-test");
        std::fs::remove_dir_all(&root).ok();
        let src = root.join("v1");
        let tgt = root.join("v2");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::create_dir_all(&tgt).unwrap();
        std::fs::write(src.join("a.csv"), "k,v\nx,1000\ny,2000\nz,3000\n").unwrap();
        std::fs::write(tgt.join("a.csv"), "k,v\nx,1\ny,2\nz,3\n").unwrap();
        std::fs::write(src.join("gone.csv"), "c\n1\n").unwrap();
        let json = root.join("profile.json");
        profile(&argv(&[
            src.to_str().unwrap(),
            tgt.to_str().unwrap(),
            "--json",
            json.to_str().unwrap(),
        ]))
        .unwrap();
        let written = std::fs::read_to_string(&json).unwrap();
        assert!(written.contains("\"missing_in_target\""), "{written}");
        assert!(written.contains("\"explained\""), "{written}");
        // Bad arguments fail cleanly.
        assert!(profile(&argv(&["only-one-dir"])).is_err());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn extended_flag_learns_formatting_and_applies_to_unseen() {
        let dir = std::env::temp_dir().join("affidavit-cli-extended-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("s.csv");
        let tgt = dir.join("t.csv");
        let unseen = dir.join("u.csv");
        let outp = dir.join("o.csv");
        let saved = dir.join("e.json");
        // Amount column gains thousands grouping; org stays put.
        let mut s = String::from("amount,org\n");
        let mut t = String::from("amount,org\n");
        for i in 0..30 {
            let v = 10_000 + i * 7_919;
            let o = ["IBM", "SAP", "BASF"][i % 3];
            s.push_str(&format!("{v},{o}\n"));
            // Grouped amounts contain commas, so the CSV field is quoted.
            t.push_str(&format!(
                "\"{}\",{o}\n",
                affidavit_functions::numeric_format::add_thousands_sep(&v.to_string(), ',')
                    .unwrap()
            ));
        }
        std::fs::write(&src, s).unwrap();
        std::fs::write(&tgt, t).unwrap();
        std::fs::write(&unseen, "amount,org\n7654321,DAB\n").unwrap();
        explain(&argv(&[
            src.to_str().unwrap(),
            tgt.to_str().unwrap(),
            "--extended",
            "--save",
            saved.to_str().unwrap(),
        ]))
        .unwrap();
        apply(&argv(&[
            "--explanation",
            saved.to_str().unwrap(),
            unseen.to_str().unwrap(),
            "--out",
            outp.to_str().unwrap(),
        ]))
        .unwrap();
        let written = std::fs::read_to_string(&outp).unwrap();
        assert!(
            written.contains("7,654,321"),
            "grouping must generalize: {written}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explain_align_normalizes_merged_columns() {
        let dir = std::env::temp_dir().join("affidavit-cli-merge-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("s.csv");
        let tgt = dir.join("t.csv");
        // Source keeps first/last separate; the target merged them.
        let mut s = String::from("first,last,org\n");
        let mut t = String::from("name,org\n");
        for i in 0..25 {
            let f = ["John", "Jane", "Max", "Ada", "Alan"][i % 5];
            let l = ["Doe", "Weber", "Turing", "Hopper", "Liskov"][(i * 2) % 5];
            let o = ["IBM", "SAP"][i % 2];
            s.push_str(&format!("{f}{i},{l},{o}\n"));
            t.push_str(&format!("{f}{i} {l},{o}\n"));
        }
        std::fs::write(&src, s).unwrap();
        std::fs::write(&tgt, t).unwrap();
        explain(&argv(&[
            src.to_str().unwrap(),
            tgt.to_str().unwrap(),
            "--align",
        ]))
        .unwrap();
        // Without --align the arity mismatch must be a clean error.
        assert!(explain(&argv(&[src.to_str().unwrap(), tgt.to_str().unwrap()])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod portable_tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn save_then_apply_saved_explanation() {
        let dir = std::env::temp_dir().join("affidavit-cli-portable-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("s.csv");
        let tgt = dir.join("t.csv");
        let expl = dir.join("e.json");
        let unseen = dir.join("u.csv");
        let out = dir.join("o.csv");
        std::fs::write(&src, "k,v\na,1000\nb,2000\nc,3000\n").unwrap();
        std::fs::write(&tgt, "k,v\na,1\nb,2\nc,3\n").unwrap();
        std::fs::write(&unseen, "k,v\nz,7000\n").unwrap();
        explain(&argv(&[
            src.to_str().unwrap(),
            tgt.to_str().unwrap(),
            "--save",
            expl.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(expl.is_file());
        apply(&argv(&[
            "--explanation",
            expl.to_str().unwrap(),
            unseen.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let written = std::fs::read_to_string(&out).unwrap();
        assert!(written.contains("z,7"), "{written}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn apply_saved_rejects_schema_mismatch() {
        let dir = std::env::temp_dir().join("affidavit-cli-portable-mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let expl = dir.join("e.json");
        let portable = affidavit_core::portable::PortableExplanation {
            schema: vec!["x".into()],
            functions: vec![affidavit_core::portable::PortableFunction::Identity],
            core_size: 0,
            deleted: 0,
            inserted: 0,
        };
        std::fs::write(&expl, portable.to_json()).unwrap();
        let unseen = dir.join("u.csv");
        std::fs::write(&unseen, "different\n1\n").unwrap();
        let err = apply(&argv(&[
            "--explanation",
            expl.to_str().unwrap(),
            unseen.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
