//! Explanations (Def. 3.2) and their construction from attribute functions
//! (Prop. 3.6).

use affidavit_functions::{AppliedFunction, AttrFunction};
use affidavit_table::{FxHashMap, RecordId, Sym};

use crate::instance::ProblemInstance;

/// A valid explanation `E = (S^E−, T^E+, F^E)` together with the witnessing
/// core bijection.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// One attribute function per schema attribute (`F^E`).
    pub functions: Vec<AttrFunction>,
    /// Source records labeled deleted (`S^E−`).
    pub deleted: Vec<RecordId>,
    /// Target records labeled inserted (`T^E+`).
    pub inserted: Vec<RecordId>,
    /// The core bijection: `(s, t)` pairs with `F^E(s) = t` as tuples.
    core: Vec<(RecordId, RecordId)>,
}

impl Explanation {
    /// Assemble an explanation from explicit components (used by the
    /// reference-explanation builder in `affidavit-datagen` and by tests).
    /// No validity check is performed here — call [`Explanation::validate`].
    pub fn new(
        functions: Vec<AttrFunction>,
        deleted: Vec<RecordId>,
        inserted: Vec<RecordId>,
        core: Vec<(RecordId, RecordId)>,
    ) -> Explanation {
        Explanation {
            functions,
            deleted,
            inserted,
            core,
        }
    }

    /// Prop. 3.6: construct a valid explanation from attribute functions by
    /// choosing `S^E` maximal under the bijection constraint.
    ///
    /// Matching is *multiset* matching on full transformed tuples: if `j`
    /// core images equal a target tuple occurring `m` times in `T`,
    /// `min(j, m)` sources join the core (the proof's "remove all but one"
    /// step, generalized to duplicate rows).
    pub fn from_functions(
        functions: Vec<AttrFunction>,
        instance: &mut ProblemInstance,
    ) -> Explanation {
        assert_eq!(
            functions.len(),
            instance.arity(),
            "need exactly one function per attribute"
        );
        let mut applied: Vec<AppliedFunction> = functions
            .iter()
            .cloned()
            .map(AppliedFunction::new)
            .collect();

        // Index target tuples; values are the target ids carrying that
        // tuple, consumed front-to-back for determinism.
        let mut tgt_index: FxHashMap<Box<[Sym]>, (Vec<RecordId>, usize)> = FxHashMap::default();
        for (tid, rec) in instance.target.iter() {
            tgt_index
                .entry(rec.to_vec().into())
                .or_insert_with(|| (Vec::new(), 0))
                .0
                .push(tid);
        }

        let mut core = Vec::new();
        let mut deleted = Vec::new();
        let arity = instance.arity();
        let mut image: Vec<Sym> = Vec::with_capacity(arity);
        let n_src = instance.source.len();
        for raw in 0..n_src {
            let sid = RecordId(raw as u32);
            image.clear();
            let mut ok = true;
            #[allow(clippy::needless_range_loop)] // indexes two parallel arrays
            for a in 0..arity {
                let v = instance
                    .source
                    .value(sid, affidavit_table::AttrId(a as u32));
                match applied[a].apply(v, &mut instance.pool) {
                    Some(out) => image.push(out),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            let matched = ok
                && match tgt_index.get_mut(image.as_slice()) {
                    Some((tids, next)) if *next < tids.len() => {
                        core.push((sid, tids[*next]));
                        *next += 1;
                        true
                    }
                    _ => false,
                };
            if !matched {
                deleted.push(sid);
            }
        }

        let mut inserted: Vec<RecordId> = Vec::new();
        for (tids, next) in tgt_index.values() {
            inserted.extend_from_slice(&tids[*next..]);
        }
        inserted.sort();

        Explanation {
            functions,
            deleted,
            inserted,
            core,
        }
    }

    /// The trivial explanation `E^∅ = (S, T, {id}^d)`: everything deleted
    /// and inserted. Always valid (§3.1).
    pub fn trivial(instance: &ProblemInstance) -> Explanation {
        Explanation {
            functions: vec![AttrFunction::Identity; instance.arity()],
            deleted: instance.source.record_ids().collect(),
            inserted: instance.target.record_ids().collect(),
            core: Vec::new(),
        }
    }

    /// The core bijection pairs `(s, t)`.
    pub fn core_pairs(&self) -> &[(RecordId, RecordId)] {
        &self.core
    }

    /// `|S^E|` — the core size.
    pub fn core_size(&self) -> usize {
        self.core.len()
    }

    /// `L(F^E) = Σ ψ(f_a)` (Def. 3.9).
    pub fn l_functions(&self) -> u64 {
        self.functions.iter().map(AttrFunction::psi).sum()
    }

    /// `L(T^E+) = |A| · |T^E+|` (Def. 3.8).
    pub fn l_inserted(&self, arity: usize) -> u64 {
        arity as u64 * self.inserted.len() as u64
    }

    /// `c(E) = 2α·L(T^E+) + 2(1−α)·L(F^E)` (Def. 3.10).
    pub fn cost(&self, alpha: f64, arity: usize) -> f64 {
        2.0 * alpha * self.l_inserted(arity) as f64
            + 2.0 * (1.0 - alpha) * self.l_functions() as f64
    }

    /// Integer cost at the default α = 0.5: `L(T^E+) + L(F^E)`.
    pub fn cost_units(&self, arity: usize) -> u64 {
        self.l_inserted(arity) + self.l_functions()
    }

    /// Check the validity conditions of Def. 3.5 against the instance:
    /// the deleted/core sets partition `S`, the inserted/image sets
    /// partition `T`, the core is a bijection, and every core pair's image
    /// equals its target tuple.
    pub fn validate(&self, instance: &mut ProblemInstance) -> Result<(), String> {
        let n_s = instance.source.len();
        let n_t = instance.target.len();
        if self.deleted.len() + self.core.len() != n_s {
            return Err(format!(
                "S is not partitioned: {} deleted + {} core != {}",
                self.deleted.len(),
                self.core.len(),
                n_s
            ));
        }
        if self.inserted.len() + self.core.len() != n_t {
            return Err(format!(
                "T is not partitioned: {} inserted + {} core != {}",
                self.inserted.len(),
                self.core.len(),
                n_t
            ));
        }
        let mut seen_s = vec![false; n_s];
        for &sid in &self.deleted {
            if std::mem::replace(&mut seen_s[sid.index()], true) {
                return Err(format!("source record {sid:?} referenced twice"));
            }
        }
        let mut seen_t = vec![false; n_t];
        for &tid in &self.inserted {
            if std::mem::replace(&mut seen_t[tid.index()], true) {
                return Err(format!("target record {tid:?} referenced twice"));
            }
        }
        let mut applied: Vec<AppliedFunction> = self
            .functions
            .iter()
            .cloned()
            .map(AppliedFunction::new)
            .collect();
        for &(sid, tid) in &self.core {
            if std::mem::replace(&mut seen_s[sid.index()], true) {
                return Err(format!("source record {sid:?} referenced twice"));
            }
            if std::mem::replace(&mut seen_t[tid.index()], true) {
                return Err(format!(
                    "target record {tid:?} matched twice (not a bijection)"
                ));
            }
            #[allow(clippy::needless_range_loop)] // indexes two parallel arrays
            for a in 0..instance.arity() {
                let attr = affidavit_table::AttrId(a as u32);
                let sv = instance.source.value(sid, attr);
                let tv = instance.target.value(tid, attr);
                match applied[a].apply(sv, &mut instance.pool) {
                    Some(out) if out == tv => {}
                    other => {
                        return Err(format!(
                            "core pair ({sid:?}, {tid:?}) attr {a}: image {:?} != target {:?}",
                            other.map(|o| instance.pool.get(o).to_owned()),
                            instance.pool.get(tv)
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::{Rational, Schema, Table, ValuePool};

    fn instance() -> ProblemInstance {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(
            Schema::new(["Val", "Org"]),
            &mut pool,
            vec![
                vec!["80000", "IBM"],
                vec!["65", "SAP"],
                vec!["999", "DEL"], // only matches if 0.999 exists in T
            ],
        );
        let t = Table::from_rows(
            Schema::new(["Val", "Org"]),
            &mut pool,
            vec![vec!["80", "IBM"], vec!["0.065", "SAP"], vec!["1", "INS"]],
        );
        ProblemInstance::new(s, t, pool).unwrap()
    }

    fn div1000() -> AttrFunction {
        AttrFunction::Scale(Rational::new(1, 1000).unwrap())
    }

    #[test]
    fn prop_3_6_construction() {
        let mut inst = instance();
        let e = Explanation::from_functions(vec![div1000(), AttrFunction::Identity], &mut inst);
        assert_eq!(e.core_size(), 2);
        assert_eq!(e.deleted.len(), 1);
        assert_eq!(e.inserted.len(), 1);
        e.validate(&mut inst).unwrap();
    }

    #[test]
    fn trivial_explanation_cost() {
        let inst = instance();
        let e = Explanation::trivial(&inst);
        // |A|·|T| = 2·3 = 6; functions are id (ψ 0).
        assert_eq!(e.cost_units(2), 6);
        let mut inst = inst;
        e.validate(&mut inst).unwrap();
    }

    #[test]
    fn duplicate_rows_multiset_matching() {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(
            Schema::new(["a"]),
            &mut pool,
            vec![vec!["x"], vec!["x"], vec!["x"]],
        );
        let t = Table::from_rows(Schema::new(["a"]), &mut pool, vec![vec!["x"], vec!["x"]]);
        let mut inst = ProblemInstance::new(s, t, pool).unwrap();
        let e = Explanation::from_functions(vec![AttrFunction::Identity], &mut inst);
        // Only two of the three identical sources can join the core.
        assert_eq!(e.core_size(), 2);
        assert_eq!(e.deleted.len(), 1);
        assert_eq!(e.inserted.len(), 0);
        e.validate(&mut inst).unwrap();
    }

    #[test]
    fn partial_application_deletes() {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(Schema::new(["a"]), &mut pool, vec![vec!["IBM"]]);
        let t = Table::from_rows(Schema::new(["a"]), &mut pool, vec![vec!["5"]]);
        let mut inst = ProblemInstance::new(s, t, pool).unwrap();
        let e = Explanation::from_functions(vec![div1000()], &mut inst);
        assert_eq!(e.core_size(), 0);
        assert_eq!(e.deleted.len(), 1);
        assert_eq!(e.inserted.len(), 1);
        e.validate(&mut inst).unwrap();
    }

    #[test]
    fn cost_matches_paper_formula() {
        let mut inst = instance();
        let e = Explanation::from_functions(vec![div1000(), AttrFunction::Identity], &mut inst);
        // 1 inserted × |A|=2 → L(T+)=2; ψ(scale)=1, ψ(id)=0 → L(F)=1.
        assert_eq!(e.cost_units(2), 3);
        assert_eq!(e.cost(0.5, 2), 3.0);
        // α = 1 drops the function term entirely: 2·1·2 = 4.
        assert_eq!(e.cost(1.0, 2), 4.0);
    }

    #[test]
    fn validate_catches_broken_bijection() {
        let mut inst = instance();
        let mut e = Explanation::from_functions(vec![div1000(), AttrFunction::Identity], &mut inst);
        // Corrupt: point both core pairs at the same target.
        if e.core.len() == 2 {
            let t0 = e.core[0].1;
            e.core[1].1 = t0;
        }
        assert!(e.validate(&mut inst).is_err());
    }
}
