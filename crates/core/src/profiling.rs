//! Multi-table snapshot profiling.
//!
//! The paper's stated goal is a comparison tool "that requires minimal user
//! effort to make it practical to profile database snapshots with
//! **hundreds of tables**" (§2). This module drives the single-table search
//! across two snapshot *directories*: tables are paired by file stem, each
//! pair is explained independently, and the results are folded into one
//! summary a database administrator can scan top-down.
//!
//! Schema drift between snapshots is handled per table before the search:
//! unequal arity goes through [`crate::restructure::normalize_arity`]
//! (merged/split columns), renamed or reordered columns through
//! [`crate::schema_align::align_schemas`] — both opt-in via
//! [`ProfileOptions::align`].
//!
//! Re-profiling the same directories after a small edit can skip the
//! clean pairs entirely: [`crate::delta::profile_dirs_delta`] splices
//! unchanged tables from a fingerprinted manifest with output bytes
//! identical to [`profile_dirs`].

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use affidavit_store::{ingest_pair, IngestOptions, PoolConfig, SnapshotPair};
use affidavit_table::{Table, ValuePool};
use serde::{Deserialize, Serialize};

use crate::config::AffidavitConfig;
use crate::explanation::Explanation;
use crate::instance::ProblemInstance;
use crate::restructure::normalize_arity;
use crate::schema_align::align_schemas;
use crate::search::Affidavit;

/// Options for a profiling run. The default uses the paper's robust
/// `H^id` configuration with no schema repair.
#[derive(Clone, Default)]
pub struct ProfileOptions {
    /// Search configuration used for every table.
    pub config: AffidavitConfig,
    /// Repair schema drift (renamed/reordered/merged/split columns) before
    /// the search instead of failing the table.
    pub align: bool,
    /// Streaming-ingestion options for reading each table pair's CSVs
    /// (chunk size, worker threads).
    pub ingest: IngestOptions,
    /// Pool backend for each table pair (RAM or disk-spilled segments).
    pub pool: PoolConfig,
    /// Expansion-stealing executor attached to every table's search
    /// (`None` — the default — expands on the local thread pool only).
    pub executor: Option<std::sync::Arc<dyn crate::expansion::ExpansionExecutor>>,
}

impl std::fmt::Debug for ProfileOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfileOptions")
            .field("config", &self.config)
            .field("align", &self.align)
            .field("ingest", &self.ingest)
            .field("pool", &self.pool)
            .field("executor", &self.executor.is_some())
            .finish()
    }
}

impl ProfileOptions {
    /// The per-table solver these options configure: the search config
    /// plus the expansion executor, if one is attached.
    fn solver(&self) -> Affidavit {
        let solver = Affidavit::new(self.config.clone());
        match &self.executor {
            Some(executor) => solver.with_expansion_executor(executor.clone()),
            None => solver,
        }
    }
}

/// The per-table result of a profiling run.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum TableOutcome {
    /// The search produced an explanation.
    Explained {
        /// Aligned record pairs.
        core: usize,
        /// Source records labelled deleted.
        deleted: usize,
        /// Target records labelled inserted.
        inserted: usize,
        /// Attributes with a non-identity function.
        changed_attributes: usize,
        /// Explanation cost (Def. 3.10, in α = 0.5 units).
        cost: u64,
        /// Cost of the trivial explanation, for scale.
        trivial_cost: u64,
        /// Search wall time in milliseconds.
        millis: u64,
    },
    /// The table exists only in the source snapshot (dropped).
    MissingInTarget,
    /// The table exists only in the target snapshot (created).
    MissingInSource,
    /// The pair could not be profiled (CSV error, unrepairable schema…).
    Failed {
        /// Human-readable reason.
        reason: String,
    },
}

/// One profiled table pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableProfile {
    /// Table name (file stem).
    pub name: String,
    /// What happened.
    pub outcome: TableOutcome,
}

/// A whole-snapshot profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotProfile {
    /// Per-table results, sorted by table name.
    pub tables: Vec<TableProfile>,
}

impl SnapshotProfile {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profiles are serializable")
    }

    /// Tables whose explanation has a non-empty difference (changed
    /// attributes, deletions or insertions).
    pub fn tables_with_changes(&self) -> usize {
        self.tables
            .iter()
            .filter(|t| match &t.outcome {
                TableOutcome::Explained {
                    deleted,
                    inserted,
                    changed_attributes,
                    ..
                } => *deleted + *inserted + *changed_attributes > 0,
                TableOutcome::MissingInSource | TableOutcome::MissingInTarget => true,
                TableOutcome::Failed { .. } => false,
            })
            .count()
    }

    /// Zero every wall-clock field (`millis`) so two profiles of the same
    /// snapshots can be compared byte for byte. Search timings are the only
    /// nondeterministic part of a profile; everything else is invariant
    /// under thread count, speculative width, worker count and — for
    /// distributed runs — the broker transport carrying the jobs
    /// (spool directory or TCP).
    pub fn strip_timing(&mut self) {
        for t in &mut self.tables {
            if let TableOutcome::Explained { millis, .. } = &mut t.outcome {
                *millis = 0;
            }
        }
    }

    /// Render the administrator-facing summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8}",
            "table", "core", "deleted", "inserted", "Δattrs", "cost", "t"
        );
        for t in &self.tables {
            match &t.outcome {
                TableOutcome::Explained {
                    core,
                    deleted,
                    inserted,
                    changed_attributes,
                    cost,
                    trivial_cost,
                    millis,
                } => {
                    let _ = writeln!(
                        out,
                        "{:<24} {core:>8} {deleted:>8} {inserted:>8} {changed_attributes:>8} {:>10} {:>7}ms",
                        t.name,
                        format!("{cost}/{trivial_cost}"),
                        millis
                    );
                }
                TableOutcome::MissingInTarget => {
                    let _ = writeln!(out, "{:<24} (dropped in target snapshot)", t.name);
                }
                TableOutcome::MissingInSource => {
                    let _ = writeln!(out, "{:<24} (new in target snapshot)", t.name);
                }
                TableOutcome::Failed { reason } => {
                    let _ = writeln!(out, "{:<24} FAILED: {reason}", t.name);
                }
            }
        }
        let _ = writeln!(
            out,
            "\n{} tables, {} with changes",
            self.tables.len(),
            self.tables_with_changes()
        );
        out
    }
}

/// Stage a table pair for the search: repair schema drift (when
/// [`ProfileOptions::align`] is set) and bundle the snapshots into a
/// [`ProblemInstance`]. This is the last step before an instance either
/// enters the local search or is serialized for a remote worker.
pub fn stage_tables(
    mut source: Table,
    mut target: Table,
    mut pool: ValuePool,
    opts: &ProfileOptions,
) -> Result<ProblemInstance, String> {
    if opts.align {
        if source.schema().arity() != target.schema().arity() {
            let (s2, t2, _) = normalize_arity(&source, &target, &mut pool).ok_or_else(|| {
                "column counts differ and no merge/split evidence was found".to_owned()
            })?;
            source = s2;
            target = t2;
        }
        let alignment = align_schemas(&source, &target, &pool);
        target = alignment.reorder_target(&target, source.schema());
    }
    ProblemInstance::new(source, target, pool).map_err(|e| e.to_string())
}

/// Explain one table pair already loaded into a shared pool.
pub fn profile_tables(
    source: Table,
    target: Table,
    pool: ValuePool,
    opts: &ProfileOptions,
) -> Result<(Explanation, ProblemInstance, u64), String> {
    let mut instance = stage_tables(source, target, pool, opts)?;
    let started = std::time::Instant::now();
    let outcome = opts.solver().explain(&mut instance);
    let millis = started.elapsed().as_millis() as u64;
    Ok((outcome.explanation, instance, millis))
}

/// Stage an already-ingested snapshot pair — the hot path of a resident
/// service, where the pair is a clone of a pinned session rather than a
/// fresh ingestion. Staging from a pinned clone produces exactly the
/// instance a cold [`stage_file_pair`] would, so warm results stay
/// byte-identical to the one-shot CLI.
pub fn stage_snapshot_pair(
    pair: SnapshotPair,
    opts: &ProfileOptions,
) -> Result<ProblemInstance, String> {
    stage_tables(pair.source, pair.target, pair.pool, opts)
}

/// Ingest and stage one table pair from its CSV files — everything the
/// local profiler does before the search, shared with the distributed
/// coordinator and the resident service so failure messages are
/// identical in all modes.
pub fn stage_file_pair(
    src_path: &Path,
    tgt_path: &Path,
    opts: &ProfileOptions,
) -> Result<ProblemInstance, String> {
    let pair = ingest_pair(src_path, tgt_path, &opts.ingest, &opts.pool)?;
    stage_snapshot_pair(pair, opts)
}

/// Fold a finished search into the per-table summary row. Shared by the
/// local profiler and the distributed coordinator so both render the same
/// bytes for the same explanation.
pub fn outcome_for(
    explanation: &Explanation,
    instance: &ProblemInstance,
    millis: u64,
) -> TableOutcome {
    let arity = instance.arity();
    TableOutcome::Explained {
        core: explanation.core_size(),
        deleted: explanation.deleted.len(),
        inserted: explanation.inserted.len(),
        changed_attributes: explanation
            .functions
            .iter()
            .filter(|f| !f.is_identity())
            .count(),
        cost: explanation.cost_units(arity),
        trivial_cost: Explanation::trivial(instance).cost_units(arity),
        millis,
    }
}

/// One `<stem>.csv` pairing across two snapshot directories.
#[derive(Debug, Clone)]
pub struct PairedStem {
    /// Table name (file stem).
    pub name: String,
    /// The file in the source snapshot, if present.
    pub source: Option<PathBuf>,
    /// The file in the target snapshot, if present.
    pub target: Option<PathBuf>,
}

fn csv_stems(dir: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.extension().is_some_and(|x| x == "csv") {
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| format!("non-UTF8 file name: {}", path.display()))?
                .to_owned();
            out.push((stem, path));
        }
    }
    out.sort();
    Ok(out)
}

/// Enumerate every `<name>.csv` present in either snapshot directory,
/// paired by file stem and sorted by name — the job list of a profiling
/// run, shared by [`profile_dirs`] and the distributed coordinator.
pub fn paired_csv_stems(source_dir: &Path, target_dir: &Path) -> Result<Vec<PairedStem>, String> {
    let mut by_name: std::collections::BTreeMap<String, PairedStem> =
        std::collections::BTreeMap::new();
    for (stem, path) in csv_stems(source_dir)? {
        by_name.insert(
            stem.clone(),
            PairedStem {
                name: stem,
                source: Some(path),
                target: None,
            },
        );
    }
    for (stem, path) in csv_stems(target_dir)? {
        by_name
            .entry(stem.clone())
            .or_insert_with(|| PairedStem {
                name: stem,
                source: None,
                target: None,
            })
            .target = Some(path);
    }
    Ok(by_name.into_values().collect())
}

/// Profile two snapshot directories: every `<name>.csv` present in either
/// directory becomes one [`TableProfile`], paired by file stem.
///
/// Table pairs are profiled in parallel (each has its own pool and RNG
/// seeded from the configuration, so the result is deterministic and
/// identical to a sequential run — parallelism across *independent*
/// instances is the same trick the evaluation harness uses, and the
/// natural use of the paper's 24-core evaluation machine).
pub fn profile_dirs(
    source_dir: &Path,
    target_dir: &Path,
    opts: &ProfileOptions,
) -> Result<SnapshotProfile, String> {
    use rayon::prelude::*;

    let pairs = paired_csv_stems(source_dir, target_dir)?;
    let tables: Vec<TableProfile> = pairs
        .par_iter()
        .map(|pair| {
            let outcome = match (&pair.source, &pair.target) {
                (Some(src_path), Some(tgt_path)) => profile_file_pair(src_path, tgt_path, opts),
                (Some(_), None) => TableOutcome::MissingInTarget,
                (None, Some(_)) => TableOutcome::MissingInSource,
                (None, None) => unreachable!("a paired stem exists in at least one snapshot"),
            };
            TableProfile {
                name: pair.name.clone(),
                outcome,
            }
        })
        .collect();
    Ok(SnapshotProfile { tables })
}

fn profile_file_pair(src_path: &Path, tgt_path: &Path, opts: &ProfileOptions) -> TableOutcome {
    let mut instance = match stage_file_pair(src_path, tgt_path, opts) {
        Ok(instance) => instance,
        Err(reason) => return TableOutcome::Failed { reason },
    };
    let started = std::time::Instant::now();
    let outcome = opts.solver().explain(&mut instance);
    let millis = started.elapsed().as_millis() as u64;
    outcome_for(&outcome.explanation, &instance, millis)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_dirs(root: &Path) -> (PathBuf, PathBuf) {
        let src = root.join("before");
        let tgt = root.join("after");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::create_dir_all(&tgt).unwrap();

        // Table with a systematic change (rescaled values).
        let mut a_s = String::from("k,v\n");
        let mut a_t = String::from("k,v\n");
        for i in 0..25 {
            a_s.push_str(&format!("k{i},{}\n", i * 1000));
            a_t.push_str(&format!("k{i},{i}\n"));
        }
        std::fs::write(src.join("accounts.csv"), a_s).unwrap();
        std::fs::write(tgt.join("accounts.csv"), a_t).unwrap();

        // Unchanged table.
        let b = "x,y\n1,a\n2,b\n3,c\n";
        std::fs::write(src.join("static.csv"), b).unwrap();
        std::fs::write(tgt.join("static.csv"), b).unwrap();

        // Dropped and created tables.
        std::fs::write(src.join("dropped.csv"), "a\n1\n").unwrap();
        std::fs::write(tgt.join("created.csv"), "a\n1\n").unwrap();

        // Malformed target.
        std::fs::write(src.join("broken.csv"), "a,b\n1,2\n").unwrap();
        std::fs::write(tgt.join("broken.csv"), "a,b\n1\n").unwrap();
        (src, tgt)
    }

    #[test]
    fn profiles_a_directory_pair() {
        let root = std::env::temp_dir().join("affidavit-profiling-test");
        std::fs::remove_dir_all(&root).ok();
        let (src, tgt) = write_dirs(&root);
        let profile = profile_dirs(&src, &tgt, &ProfileOptions::default()).unwrap();

        let by_name: std::collections::BTreeMap<&str, &TableOutcome> = profile
            .tables
            .iter()
            .map(|t| (t.name.as_str(), &t.outcome))
            .collect();
        assert!(matches!(
            by_name["accounts"],
            TableOutcome::Explained {
                core: 25,
                changed_attributes: 1,
                ..
            }
        ));
        assert!(matches!(
            by_name["static"],
            TableOutcome::Explained {
                cost: 0,
                changed_attributes: 0,
                ..
            }
        ));
        assert!(matches!(by_name["dropped"], TableOutcome::MissingInTarget));
        assert!(matches!(by_name["created"], TableOutcome::MissingInSource));
        assert!(matches!(by_name["broken"], TableOutcome::Failed { .. }));

        // 4 with changes: accounts, dropped, created — static is clean and
        // broken is a failure, not a change.
        assert_eq!(profile.tables_with_changes(), 3);

        let rendered = profile.render();
        assert!(rendered.contains("accounts"));
        assert!(rendered.contains("dropped in target"));
        assert!(rendered.contains("FAILED"));

        let json = profile.to_json();
        let back: SnapshotProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.tables.len(), profile.tables.len());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn align_repairs_schema_drift_per_table() {
        let root = std::env::temp_dir().join("affidavit-profiling-align-test");
        std::fs::remove_dir_all(&root).ok();
        let src = root.join("before");
        let tgt = root.join("after");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::create_dir_all(&tgt).unwrap();
        // first/last merged into one target column.
        let mut s = String::from("first,last,org\n");
        let mut t = String::from("name,org\n");
        for i in 0..20 {
            let f = ["ada", "max", "eva", "kim"][i % 4];
            let l = ["doe", "ray", "lin", "fox"][(i * 3) % 4];
            s.push_str(&format!("{f}{i},{l},o{}\n", i % 3));
            t.push_str(&format!("{f}{i} {l},o{}\n", i % 3));
        }
        std::fs::write(src.join("people.csv"), s).unwrap();
        std::fs::write(tgt.join("people.csv"), t).unwrap();

        // Without align: failure. With align: explained.
        let plain = profile_dirs(&src, &tgt, &ProfileOptions::default()).unwrap();
        assert!(matches!(
            plain.tables[0].outcome,
            TableOutcome::Failed { .. }
        ));

        let opts = ProfileOptions {
            align: true,
            ..ProfileOptions::default()
        };
        let aligned = profile_dirs(&src, &tgt, &opts).unwrap();
        assert!(
            matches!(
                aligned.tables[0].outcome,
                TableOutcome::Explained { core: 20, .. }
            ),
            "{:?}",
            aligned.tables[0].outcome
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_directory_is_an_error() {
        let opts = ProfileOptions::default();
        assert!(profile_dirs(Path::new("/no/such/dir"), Path::new("/tmp"), &opts).is_err());
    }
}
