//! Portable explanations: save a learned transformation to JSON, load it
//! later and apply it to new data — without re-running the search.
//!
//! `AttrFunction` parameters are interned symbols, which are only meaningful
//! relative to one `ValuePool`; the portable form stores plain strings (and
//! exact numerics as strings) so it can cross process boundaries. The CLI
//! exposes this as `affidavit explain --save f.json` /
//! `affidavit apply --explanation f.json`.

use affidavit_functions::datetime::DateFormat;
use affidavit_functions::substring::{Segment, TokenProgram};
use affidavit_functions::{AttrFunction, ValueMap};
use affidavit_table::{Decimal, Rational, ValuePool};
use serde::{Deserialize, Serialize};

use crate::explanation::Explanation;
use crate::instance::ProblemInstance;

/// A pool-independent attribute function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum PortableFunction {
    /// `x ↦ x`.
    Identity,
    /// `x ↦ UPPER(x)`.
    Uppercase,
    /// `x ↦ lower(x)`.
    Lowercase,
    /// `x ↦ value`.
    Constant {
        /// The constant output value.
        value: String,
    },
    /// `x ↦ x + y` (`y` in canonical decimal notation).
    Add {
        /// The addend.
        y: String,
    },
    /// `x ↦ x · num/den`.
    Scale {
        /// Numerator (stringified `i128`).
        num: String,
        /// Denominator (stringified `i128`, positive).
        den: String,
    },
    /// Replace the first `|mask|` characters with `mask`.
    FrontMask {
        /// The mask.
        mask: String,
    },
    /// Replace the last `|mask|` characters with `mask`.
    BackMask {
        /// The mask.
        mask: String,
    },
    /// Strip leading repetitions of `ch`.
    FrontCharTrim {
        /// The trimmed character.
        ch: char,
    },
    /// Strip trailing repetitions of `ch`.
    BackCharTrim {
        /// The trimmed character.
        ch: char,
    },
    /// `x ↦ y ◦ x`.
    Prefix {
        /// The prefix.
        y: String,
    },
    /// `x ↦ x ◦ y`.
    Suffix {
        /// The suffix.
        y: String,
    },
    /// `y ◦ x ↦ z ◦ x`, identity otherwise.
    PrefixReplace {
        /// Matched prefix.
        y: String,
        /// Replacement prefix.
        z: String,
    },
    /// `x ◦ y ↦ x ◦ z`, identity otherwise.
    SuffixReplace {
        /// Matched suffix.
        y: String,
        /// Replacement suffix.
        z: String,
    },
    /// Date format conversion.
    DateConvert {
        /// Source format.
        from: DateFormat,
        /// Target format.
        to: DateFormat,
    },
    /// Zero-pad digit strings to `width`.
    ZeroPad {
        /// Target width in characters.
        width: u32,
    },
    /// Insert a thousands separator.
    ThousandsSep {
        /// The separator character.
        sep: char,
    },
    /// Remove a thousands separator.
    SepStrip {
        /// The separator character.
        sep: char,
    },
    /// Round to `places` fraction digits.
    Round {
        /// Number of fraction digits kept.
        places: u32,
    },
    /// FlashFill-lite token program.
    TokenProgram {
        /// Segments: literals are strings, token references are indices
        /// (negative = from the back, `-1` is the last token).
        segments: Vec<PortableSegment>,
    },
    /// Explicit value mapping (identity fallback).
    Map {
        /// `(input, output)` pairs.
        entries: Vec<(String, String)>,
    },
}

/// One pool-independent token-program segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum PortableSegment {
    /// A literal glue string.
    Literal(String),
    /// A token reference: 0-based from the front, or negative from the
    /// back (`-1` = last token).
    Token(i32),
}

impl PortableFunction {
    /// Convert from an interned function.
    pub fn from_attr(f: &AttrFunction, pool: &ValuePool) -> PortableFunction {
        match f {
            AttrFunction::Identity => PortableFunction::Identity,
            AttrFunction::Uppercase => PortableFunction::Uppercase,
            AttrFunction::Lowercase => PortableFunction::Lowercase,
            AttrFunction::Constant(v) => PortableFunction::Constant {
                value: pool.get(*v).to_owned(),
            },
            AttrFunction::Add(y) => PortableFunction::Add { y: y.to_string() },
            AttrFunction::Scale(r) => PortableFunction::Scale {
                num: r.num().to_string(),
                den: r.den().to_string(),
            },
            AttrFunction::FrontMask(m) => PortableFunction::FrontMask {
                mask: pool.get(*m).to_owned(),
            },
            AttrFunction::BackMask(m) => PortableFunction::BackMask {
                mask: pool.get(*m).to_owned(),
            },
            AttrFunction::FrontCharTrim(c) => PortableFunction::FrontCharTrim { ch: *c },
            AttrFunction::BackCharTrim(c) => PortableFunction::BackCharTrim { ch: *c },
            AttrFunction::Prefix(y) => PortableFunction::Prefix {
                y: pool.get(*y).to_owned(),
            },
            AttrFunction::Suffix(y) => PortableFunction::Suffix {
                y: pool.get(*y).to_owned(),
            },
            AttrFunction::PrefixReplace(y, z) => PortableFunction::PrefixReplace {
                y: pool.get(*y).to_owned(),
                z: pool.get(*z).to_owned(),
            },
            AttrFunction::SuffixReplace(y, z) => PortableFunction::SuffixReplace {
                y: pool.get(*y).to_owned(),
                z: pool.get(*z).to_owned(),
            },
            AttrFunction::DateConvert(from, to) => PortableFunction::DateConvert {
                from: *from,
                to: *to,
            },
            AttrFunction::ZeroPad(width) => PortableFunction::ZeroPad { width: *width },
            AttrFunction::ThousandsSep(sep) => PortableFunction::ThousandsSep { sep: *sep },
            AttrFunction::SepStrip(sep) => PortableFunction::SepStrip { sep: *sep },
            AttrFunction::Round(places) => PortableFunction::Round { places: *places },
            AttrFunction::TokenProgram(prog) => PortableFunction::TokenProgram {
                segments: prog
                    .segments()
                    .iter()
                    .map(|seg| match *seg {
                        Segment::Literal(l) => PortableSegment::Literal(pool.get(l).to_owned()),
                        Segment::Token {
                            idx,
                            from_end: false,
                        } => PortableSegment::Token(idx as i32),
                        Segment::Token {
                            idx,
                            from_end: true,
                        } => PortableSegment::Token(-(idx as i32) - 1),
                    })
                    .collect(),
            },
            AttrFunction::Map(m) => PortableFunction::Map {
                entries: m
                    .entries()
                    .iter()
                    .map(|&(k, v)| (pool.get(k).to_owned(), pool.get(v).to_owned()))
                    .collect(),
            },
        }
    }

    /// Convert back into an interned function. Fails on malformed numeric
    /// parameters (hand-edited files).
    pub fn to_attr(&self, pool: &mut ValuePool) -> Result<AttrFunction, String> {
        self.to_attr_in(pool)
    }

    /// [`to_attr`](PortableFunction::to_attr) against any
    /// [`Interner`](affidavit_table::Interner) —
    /// the delta layer interns into a `ScratchPool` overlay here, so
    /// checking a manifest's functions never mutates the instance pool.
    pub fn to_attr_in<I: affidavit_table::Interner>(
        &self,
        pool: &mut I,
    ) -> Result<AttrFunction, String> {
        Ok(match self {
            PortableFunction::Identity => AttrFunction::Identity,
            PortableFunction::Uppercase => AttrFunction::Uppercase,
            PortableFunction::Lowercase => AttrFunction::Lowercase,
            PortableFunction::Constant { value } => AttrFunction::Constant(pool.intern(value)),
            PortableFunction::Add { y } => {
                AttrFunction::Add(Decimal::parse(y).ok_or_else(|| format!("bad addend {y:?}"))?)
            }
            PortableFunction::Scale { num, den } => {
                let num: i128 = num.parse().map_err(|_| format!("bad numerator {num:?}"))?;
                let den: i128 = den
                    .parse()
                    .map_err(|_| format!("bad denominator {den:?}"))?;
                AttrFunction::Scale(
                    Rational::new(num, den).ok_or_else(|| "zero denominator".to_owned())?,
                )
            }
            PortableFunction::FrontMask { mask } => AttrFunction::FrontMask(pool.intern(mask)),
            PortableFunction::BackMask { mask } => AttrFunction::BackMask(pool.intern(mask)),
            PortableFunction::FrontCharTrim { ch } => AttrFunction::FrontCharTrim(*ch),
            PortableFunction::BackCharTrim { ch } => AttrFunction::BackCharTrim(*ch),
            PortableFunction::Prefix { y } => AttrFunction::Prefix(pool.intern(y)),
            PortableFunction::Suffix { y } => AttrFunction::Suffix(pool.intern(y)),
            PortableFunction::PrefixReplace { y, z } => {
                AttrFunction::PrefixReplace(pool.intern(y), pool.intern(z))
            }
            PortableFunction::SuffixReplace { y, z } => {
                AttrFunction::SuffixReplace(pool.intern(y), pool.intern(z))
            }
            PortableFunction::DateConvert { from, to } => AttrFunction::DateConvert(*from, *to),
            PortableFunction::ZeroPad { width } => AttrFunction::ZeroPad(*width),
            PortableFunction::ThousandsSep { sep } => AttrFunction::ThousandsSep(*sep),
            PortableFunction::SepStrip { sep } => AttrFunction::SepStrip(*sep),
            PortableFunction::Round { places } => AttrFunction::Round(*places),
            PortableFunction::TokenProgram { segments } => {
                let segs = segments
                    .iter()
                    .map(|seg| {
                        Ok(match seg {
                            PortableSegment::Literal(l) => Segment::Literal(pool.intern(l)),
                            PortableSegment::Token(i) if *i >= 0 && *i < 256 => Segment::Token {
                                idx: *i as u8,
                                from_end: false,
                            },
                            PortableSegment::Token(i) if *i < 0 && *i >= -256 => Segment::Token {
                                idx: (-*i - 1) as u8,
                                from_end: true,
                            },
                            PortableSegment::Token(i) => {
                                return Err(format!("token index {i} out of range"))
                            }
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                AttrFunction::TokenProgram(
                    TokenProgram::new(segs).ok_or_else(|| "degenerate token program".to_owned())?,
                )
            }
            PortableFunction::Map { entries } => AttrFunction::Map(ValueMap::from_pairs(
                entries
                    .iter()
                    .map(|(k, v)| (pool.intern(k), pool.intern(v))),
            )),
        })
    }
}

/// A saved explanation: the learned functions plus provenance metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortableExplanation {
    /// Schema the functions were learned over (column names, in order).
    pub schema: Vec<String>,
    /// One function per column.
    pub functions: Vec<PortableFunction>,
    /// Core size at learning time (provenance).
    pub core_size: usize,
    /// Deleted/inserted counts at learning time (provenance).
    pub deleted: usize,
    /// Inserted count at learning time.
    pub inserted: usize,
}

impl PortableExplanation {
    /// Capture an explanation for persistence.
    pub fn from_explanation(e: &Explanation, instance: &ProblemInstance) -> PortableExplanation {
        PortableExplanation {
            schema: instance.schema().names().map(str::to_owned).collect(),
            functions: e
                .functions
                .iter()
                .map(|f| PortableFunction::from_attr(f, &instance.pool))
                .collect(),
            core_size: e.core_size(),
            deleted: e.deleted.len(),
            inserted: e.inserted.len(),
        }
    }

    /// Reconstruct the interned function tuple against a (possibly new)
    /// pool. The caller is responsible for checking `schema` compatibility.
    pub fn functions(&self, pool: &mut ValuePool) -> Result<Vec<AttrFunction>, String> {
        self.functions.iter().map(|f| f.to_attr(pool)).collect()
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("portable explanations are serializable")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<PortableExplanation, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::{Schema, Table};

    fn instance() -> ProblemInstance {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(
            Schema::new(["Val", "Unit", "Date"]),
            &mut pool,
            vec![vec!["80000", "USD", "99991231"]],
        );
        let t = Table::from_rows(
            Schema::new(["Val", "Unit", "Date"]),
            &mut pool,
            vec![vec!["80", "k $", "20180701"]],
        );
        ProblemInstance::new(s, t, pool).unwrap()
    }

    fn sample_functions(pool: &mut ValuePool) -> Vec<AttrFunction> {
        vec![
            AttrFunction::Scale(Rational::new(1, 1000).unwrap()),
            AttrFunction::Constant(pool.intern("k $")),
            AttrFunction::PrefixReplace(pool.intern("9999123"), pool.intern("2018070")),
        ]
    }

    #[test]
    fn roundtrip_through_json() {
        let mut inst = instance();
        let funcs = sample_functions(&mut inst.pool);
        let e = Explanation::from_functions(funcs.clone(), &mut inst);
        let portable = PortableExplanation::from_explanation(&e, &inst);
        let json = portable.to_json();
        let back = PortableExplanation::from_json(&json).unwrap();
        assert_eq!(back.schema, vec!["Val", "Unit", "Date"]);

        // Reconstruct against a *fresh* pool and verify behaviour matches.
        let mut pool2 = ValuePool::new();
        let funcs2 = back.functions(&mut pool2).unwrap();
        assert_eq!(funcs2.len(), 3);
        let x = pool2.intern("65000");
        let out = funcs2[0].apply(x, &mut pool2).unwrap();
        assert_eq!(pool2.get(out), "65");
        let d = pool2.intern("99991231");
        let out = funcs2[2].apply(d, &mut pool2).unwrap();
        assert_eq!(pool2.get(out), "20180701");
    }

    #[test]
    fn every_variant_roundtrips() {
        let mut pool = ValuePool::new();
        let all = vec![
            AttrFunction::Identity,
            AttrFunction::Uppercase,
            AttrFunction::Lowercase,
            AttrFunction::Constant(pool.intern("c")),
            AttrFunction::Add(Decimal::parse("-2.5").unwrap()),
            AttrFunction::Scale(Rational::new(3, 8).unwrap()),
            AttrFunction::FrontMask(pool.intern("XX")),
            AttrFunction::BackMask(pool.intern("YY")),
            AttrFunction::FrontCharTrim('0'),
            AttrFunction::BackCharTrim(' '),
            AttrFunction::Prefix(pool.intern("p-")),
            AttrFunction::Suffix(pool.intern("-s")),
            AttrFunction::PrefixReplace(pool.intern("a"), pool.intern("b")),
            AttrFunction::SuffixReplace(pool.intern("x"), pool.intern("y")),
            AttrFunction::DateConvert(DateFormat::YyyyMmDd, DateFormat::IsoDashed),
            AttrFunction::ZeroPad(6),
            AttrFunction::ThousandsSep(','),
            AttrFunction::SepStrip(','),
            AttrFunction::Round(1),
            AttrFunction::TokenProgram(
                TokenProgram::new(vec![
                    Segment::Token {
                        idx: 0,
                        from_end: true,
                    },
                    Segment::Literal(pool.intern("-")),
                    Segment::Token {
                        idx: 0,
                        from_end: false,
                    },
                ])
                .expect("valid program"),
            ),
            AttrFunction::Map(ValueMap::from_pairs([
                (pool.intern("1"), pool.intern("one")),
                (pool.intern("2"), pool.intern("two")),
            ])),
        ];
        for f in all {
            let p = PortableFunction::from_attr(&f, &pool);
            let json = serde_json::to_string(&p).unwrap();
            let p2: PortableFunction = serde_json::from_str(&json).unwrap();
            let mut pool2 = ValuePool::new();
            let f2 = p2.to_attr(&mut pool2).unwrap();
            // Behavioural equality on a probe value.
            let probe = "120";
            let a = {
                let mut pp = pool.clone();
                let s = pp.intern(probe);
                f.apply(s, &mut pp).map(|o| pp.get(o).to_owned())
            };
            let b = {
                let s = pool2.intern(probe);
                f2.apply(s, &mut pool2).map(|o| pool2.get(o).to_owned())
            };
            assert_eq!(a, b, "behaviour differs after roundtrip: {f:?}");
        }
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(PortableExplanation::from_json("{not json").is_err());
        let bad = PortableFunction::Scale {
            num: "1".into(),
            den: "0".into(),
        };
        let mut pool = ValuePool::new();
        assert!(bad.to_attr(&mut pool).is_err());
    }
}
