//! Candidate ranking by histogram overlap (§4.4.3).
//!
//! The most frequently generated candidate is not necessarily the best
//! (functions are only induced from examples where their effect is
//! visible). Candidates are therefore scored by how many records they would
//! align: `k'` source records are sampled (Cochran-sized), their blocks are
//! evaluated *exhaustively* — every candidate is applied to every source
//! value of the block and the resulting histogram is intersected with the
//! block's target-value histogram. The score is total overlap minus the
//! candidate's description length.

use affidavit_blocking::Blocking;
use affidavit_functions::{AppliedFunction, AttrFunction};
use affidavit_table::{AttrId, FxHashMap, FxHashSet, Interner, Sym, Table};
use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;

/// A ranked candidate: function plus its estimated alignment overlap.
#[derive(Debug, Clone)]
pub struct RankedCandidate {
    /// The candidate function.
    pub func: AttrFunction,
    /// Total histogram overlap over the evaluated blocks.
    pub overlap: u64,
    /// Ranking score: overlap − ψ.
    pub score: i64,
}

/// Rank `candidates` for `attr`, returning the best `beta` in descending
/// score order.
#[allow(clippy::too_many_arguments)]
pub fn rank_candidates<I: Interner>(
    blocking: &Blocking,
    attr: AttrId,
    candidates: Vec<AttrFunction>,
    source: &Table,
    target: &Table,
    pool: &mut I,
    k_prime: usize,
    beta: usize,
    rng: &mut StdRng,
) -> Vec<RankedCandidate> {
    if candidates.is_empty() || beta == 0 {
        return Vec::new();
    }
    // Sample k' source records from mixed blocks; evaluate each containing
    // block once.
    let mut mixed_sources: Vec<usize> = Vec::new(); // block indices, one per source record
    for (bi, block) in blocking.blocks.iter().enumerate() {
        if block.is_mixed() {
            mixed_sources.extend(std::iter::repeat_n(bi, block.src.len()));
        }
    }
    if mixed_sources.is_empty() {
        return Vec::new();
    }
    let k = k_prime.min(mixed_sources.len());
    let mut blocks_to_eval: Vec<usize> = index_sample(rng, mixed_sources.len(), k)
        .into_iter()
        .map(|i| mixed_sources[i])
        .collect();
    blocks_to_eval.sort_unstable();
    blocks_to_eval.dedup();

    let mut applied: Vec<AppliedFunction> = candidates
        .iter()
        .cloned()
        .map(AppliedFunction::new)
        .collect();
    let mut overlaps = vec![0u64; applied.len()];

    let mut src_hist: FxHashMap<Sym, u32> = FxHashMap::default();
    let mut tgt_hist: FxHashMap<Sym, u32> = FxHashMap::default();
    let mut out_hist: FxHashMap<Sym, u32> = FxHashMap::default();

    for &bi in &blocks_to_eval {
        let block = &blocking.blocks[bi];
        src_hist.clear();
        for &sid in &block.src {
            *src_hist.entry(source.value(sid, attr)).or_default() += 1;
        }
        tgt_hist.clear();
        for &tid in &block.tgt {
            *tgt_hist.entry(target.value(tid, attr)).or_default() += 1;
        }
        for (fi, func) in applied.iter_mut().enumerate() {
            out_hist.clear();
            for (&v, &n) in &src_hist {
                if let Some(w) = func.apply(v, pool) {
                    *out_hist.entry(w).or_default() += n;
                }
            }
            let mut overlap = 0u64;
            for (&w, &n) in &out_hist {
                if let Some(&m) = tgt_hist.get(&w) {
                    overlap += n.min(m) as u64;
                }
            }
            overlaps[fi] += overlap;
        }
    }

    let mut ranked: Vec<RankedCandidate> = candidates
        .into_iter()
        .zip(overlaps)
        .map(|(func, overlap)| {
            let score = overlap as i64 - func.psi() as i64;
            RankedCandidate {
                func,
                overlap,
                score,
            }
        })
        .collect();
    ranked.sort_by(|a, b| b.score.cmp(&a.score).then_with(|| a.func.cmp(&b.func)));
    ranked.truncate(beta);
    ranked
}

/// Dedupe helper used by the extender: candidates surviving induction may
/// contain semantically identical functions reached via different examples;
/// structural equality already dedupes them, this guards the Vec path.
pub fn dedupe_functions(funcs: Vec<AttrFunction>) -> Vec<AttrFunction> {
    let mut seen: FxHashSet<AttrFunction> = FxHashSet::default();
    funcs
        .into_iter()
        .filter(|f| seen.insert(f.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_blocking::Blocking;
    use affidavit_functions::ApplyScratch;
    use affidavit_table::{Rational, Schema, ValuePool};
    use rand::SeedableRng;

    /// Blocks keyed by `k`; Val divided by 1000 in the target. A constant
    /// function can only ever match one value per block, so the true
    /// scaling function must win the ranking.
    fn setup() -> (Table, Table, ValuePool, Blocking) {
        let mut pool = ValuePool::new();
        let rows_s: Vec<Vec<String>> = (0..30)
            .map(|i| vec![format!("g{}", i % 3), format!("{}", 1000 + i * 1000)])
            .collect();
        let rows_t: Vec<Vec<String>> = (0..30)
            .map(|i| vec![format!("g{}", i % 3), format!("{}", 1 + i)])
            .collect();
        let s = Table::from_rows(Schema::new(["k", "Val"]), &mut pool, rows_s);
        let t = Table::from_rows(Schema::new(["k", "Val"]), &mut pool, rows_t);
        let blocking = Blocking::root(&s, &t).refine(
            AttrId(0),
            &AttrFunction::Identity,
            &mut ApplyScratch::new(),
            &s,
            &t,
            &mut pool,
        );
        (s, t, pool, blocking)
    }

    #[test]
    fn true_function_outranks_constant() {
        let (s, t, mut pool, blocking) = setup();
        let c9 = pool.intern("9");
        let candidates = vec![
            AttrFunction::Constant(c9),
            AttrFunction::Scale(Rational::new(1, 1000).unwrap()),
        ];
        let mut rng = StdRng::seed_from_u64(4);
        let ranked = rank_candidates(
            &blocking,
            AttrId(1),
            candidates,
            &s,
            &t,
            &mut pool,
            139,
            2,
            &mut rng,
        );
        assert_eq!(ranked.len(), 2);
        assert!(
            matches!(ranked[0].func, AttrFunction::Scale(_)),
            "ranking: {ranked:?}"
        );
        assert!(ranked[0].overlap > ranked[1].overlap);
    }

    #[test]
    fn beta_truncates() {
        let (s, t, mut pool, blocking) = setup();
        let c1 = pool.intern("1");
        let c2 = pool.intern("2");
        let candidates = vec![
            AttrFunction::Constant(c1),
            AttrFunction::Constant(c2),
            AttrFunction::Scale(Rational::new(1, 1000).unwrap()),
        ];
        let mut rng = StdRng::seed_from_u64(4);
        let ranked = rank_candidates(
            &blocking,
            AttrId(1),
            candidates,
            &s,
            &t,
            &mut pool,
            139,
            1,
            &mut rng,
        );
        assert_eq!(ranked.len(), 1);
        assert!(matches!(ranked[0].func, AttrFunction::Scale(_)));
    }

    #[test]
    fn psi_breaks_overlap_ties() {
        // Two functions with identical overlap: the cheaper one ranks first.
        let mut pool = ValuePool::new();
        let s = Table::from_rows(Schema::new(["k", "v"]), &mut pool, vec![vec!["a", "x"]; 10]);
        let t = Table::from_rows(Schema::new(["k", "v"]), &mut pool, vec![vec!["a", "x"]; 10]);
        let blocking = Blocking::root(&s, &t).refine(
            AttrId(0),
            &AttrFunction::Identity,
            &mut ApplyScratch::new(),
            &s,
            &t,
            &mut pool,
        );
        let x = pool.lookup("x").unwrap();
        let candidates = vec![AttrFunction::Constant(x), AttrFunction::Identity];
        let mut rng = StdRng::seed_from_u64(0);
        let ranked = rank_candidates(
            &blocking,
            AttrId(1),
            candidates,
            &s,
            &t,
            &mut pool,
            139,
            2,
            &mut rng,
        );
        assert!(ranked[0].func.is_identity()); // ψ 0 beats ψ 1
        assert_eq!(ranked[0].overlap, ranked[1].overlap);
    }

    #[test]
    fn dedupe() {
        let funcs = vec![
            AttrFunction::Identity,
            AttrFunction::Identity,
            AttrFunction::Uppercase,
        ];
        assert_eq!(dedupe_functions(funcs).len(), 2);
    }
}
