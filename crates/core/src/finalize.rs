//! ⊞ resolution — the `Finalize` step of Algorithm 1.
//!
//! When the search concludes that all remaining attributes need value
//! mappings, they are resolved one after another: sample a fresh random
//! alignment respecting the *current* blocking, build the greedy map for
//! the next attribute, assign it, refine, repeat — "we re-sample a new
//! random alignment after each ⊞ is replaced in order to have the next map
//! respect the previous assignment".

use affidavit_blocking::{greedy_map_from_alignment, sample_random_alignment};
use affidavit_functions::AttrFunction;
use affidavit_table::AttrId;

use crate::extend::make_child;
use crate::search::Ctx;
use crate::state::SearchState;

/// Resolve every open (`∗`/`⊞`) attribute of `state` with greedy value
/// maps, producing an end state.
pub(crate) fn finalize(ctx: &mut Ctx<'_>, state: &SearchState) -> SearchState {
    let _span = affidavit_obs::span("search.finalize");
    let mut current = state.clone();
    loop {
        // Next open attribute, most determined first under the *current*
        // blocking.
        let open: Vec<usize> = current
            .assignments
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_open())
            .map(|(i, _)| i)
            .collect();
        if open.is_empty() {
            return current;
        }
        let attr = open
            .iter()
            .copied()
            .min_by_key(|&a| {
                (
                    current
                        .blocking
                        .indeterminacy(AttrId(a as u32), &ctx.instance.source),
                    a,
                )
            })
            .expect("open is non-empty");
        let alignment = sample_random_alignment(&current.blocking, &mut ctx.rng);
        let map = greedy_map_from_alignment(
            &alignment,
            AttrId(attr as u32),
            &ctx.instance.source,
            &ctx.instance.target,
        );
        // An empty greedy map is the identity; keep explanations clean.
        let func = if map.is_empty() {
            AttrFunction::Identity
        } else {
            AttrFunction::Map(map)
        };
        current = make_child(ctx, &current, attr, func);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AffidavitConfig;
    use crate::instance::ProblemInstance;
    use crate::state::Assignment;
    use affidavit_table::{Schema, Table, ValuePool};

    /// Permuted-key instance: both attributes are random permutations, so
    /// only value maps can explain them.
    fn permuted_instance() -> ProblemInstance {
        let mut pool = ValuePool::new();
        let rows_s: Vec<Vec<String>> = (0..10)
            .map(|i| vec![format!("a{i}"), format!("b{i}")])
            .collect();
        let rows_t: Vec<Vec<String>> = (0..10)
            .map(|i| vec![format!("a{}", (i + 3) % 10), format!("b{}", (i + 3) % 10)])
            .collect();
        let s = Table::from_rows(Schema::new(["x", "y"]), &mut pool, rows_s);
        let t = Table::from_rows(Schema::new(["x", "y"]), &mut pool, rows_t);
        ProblemInstance::new(s, t, pool).unwrap()
    }

    #[test]
    fn finalize_produces_end_state() {
        let mut inst = permuted_instance();
        let cfg = AffidavitConfig::paper_id();
        let mut ctx = Ctx::new(&mut inst, &cfg);
        let root = ctx.root_state();
        let end = finalize(&mut ctx, &root);
        assert!(end.is_end_state());
        // Both attributes resolved with maps.
        for a in &end.assignments {
            assert!(matches!(a, Assignment::Assigned(AttrFunction::Map(_))));
        }
    }

    #[test]
    fn later_maps_respect_earlier_assignments() {
        // With the root block containing all records, the first map is a
        // random alignment's greedy map; the second must then align
        // perfectly (cost bound: at an end state the maps reproduce the
        // pairing chosen by the first map). We check the end state aligns
        // all records (ct = 0) — possible only if map 2 respects map 1.
        let mut inst = permuted_instance();
        let cfg = AffidavitConfig::paper_id();
        let mut ctx = Ctx::new(&mut inst, &cfg);
        let root = ctx.root_state();
        let end = finalize(&mut ctx, &root);
        assert_eq!(end.blocking.ct(), 0, "all records must align");
        assert_eq!(end.blocking.cs(), 0);
    }
}
