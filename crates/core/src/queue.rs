//! The modified priority queue of §4.6.
//!
//! Best-first search over the assignment lattice would otherwise linger on
//! states with few assignments (costs increase monotonically with
//! assignments) and visit exponentially many subsets. The queue is bounded
//! per level: level `i` (states with `i` assignments) holds at most
//! `max(1, ϱ − i + 1)` states. A full level accepts a new state only if it
//! is not worse than every resident of the level, evicting the worst.
//! Polling returns the globally cheapest state; ties prefer more
//! assignments.

use crate::state::SearchState;

/// Level-bounded priority queue.
#[derive(Debug, Default)]
pub struct BoundedLevelQueue {
    levels: Vec<Vec<SearchState>>,
    rho: usize,
    len: usize,
}

impl BoundedLevelQueue {
    /// Create a queue with width parameter ϱ.
    pub fn new(rho: usize) -> BoundedLevelQueue {
        BoundedLevelQueue {
            levels: Vec::new(),
            rho: rho.max(1),
            len: 0,
        }
    }

    /// Capacity of level `i`: `max(1, ϱ − i + 1)`.
    pub fn capacity(&self, level: usize) -> usize {
        (self.rho + 1).saturating_sub(level).max(1)
    }

    /// Number of queued states.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no states are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a state, respecting the level bound. Returns `false` if the
    /// state was rejected (level full of strictly better states).
    pub fn push(&mut self, state: SearchState) -> bool {
        let level = state.level();
        if self.levels.len() <= level {
            self.levels.resize_with(level + 1, Vec::new);
        }
        let cap = self.capacity(level);
        let bucket = &mut self.levels[level];
        if bucket.len() < cap {
            bucket.push(state);
            self.len += 1;
            return true;
        }
        // Find the worst resident (max cost; ties towards older states so
        // fresh equal-cost states replace stale ones deterministically).
        let (worst_idx, worst_cost) = bucket
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.cost))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("costs are never NaN"))
            .expect("bucket is non-empty when full");
        if state.cost <= worst_cost {
            bucket[worst_idx] = state;
            true
        } else {
            false
        }
    }

    /// Remove and return the globally cheapest state. Ties are broken
    /// towards states with more assignments ("returns states with a higher
    /// number of assignments first"), then towards *older* ids — children
    /// are generated in ranking order, so earlier ids carry better-ranked
    /// candidates.
    pub fn poll(&mut self) -> Option<SearchState> {
        let mut best: Option<(usize, usize)> = None; // (level, index)
        let mut best_key: Option<(f64, usize, usize)> = None; // (cost, -level ordering handled manually)
        for (level, bucket) in self.levels.iter().enumerate() {
            for (i, s) in bucket.iter().enumerate() {
                let better = match best_key {
                    None => true,
                    Some((bc, blvl, bid)) => {
                        match s.cost.partial_cmp(&bc).expect("costs are never NaN") {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Greater => false,
                            std::cmp::Ordering::Equal => {
                                level > blvl || (level == blvl && s.id < bid)
                            }
                        }
                    }
                };
                if better {
                    best = Some((level, i));
                    best_key = Some((s.cost, level, s.id));
                }
            }
        }
        let (level, idx) = best?;
        self.len -= 1;
        Some(self.levels[level].swap_remove(idx))
    }

    /// Peek at the cheapest cost without removing.
    pub fn min_cost(&self) -> Option<f64> {
        self.levels
            .iter()
            .flatten()
            .map(|s| s.cost)
            .min_by(|a, b| a.partial_cmp(b).expect("costs are never NaN"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Assignment;
    use affidavit_blocking::Blocking;
    use affidavit_functions::AttrFunction;
    use std::sync::Arc;

    fn state(id: usize, level: usize, cost: f64) -> SearchState {
        let mut assignments = vec![Assignment::Undecided; 8];
        for a in assignments.iter_mut().take(level) {
            *a = Assignment::Assigned(AttrFunction::Identity);
        }
        SearchState {
            assignments,
            blocking: Arc::new(Blocking::default()),
            cost,
            id,
            parent: None,
        }
    }

    #[test]
    fn capacities_match_paper() {
        let q = BoundedLevelQueue::new(3);
        // max(1, ϱ − i + 1): level 1 → 3, level 2 → 2, level 3 → 1, 4 → 1.
        assert_eq!(q.capacity(1), 3);
        assert_eq!(q.capacity(2), 2);
        assert_eq!(q.capacity(3), 1);
        assert_eq!(q.capacity(4), 1);
        assert_eq!(q.capacity(7), 1);
    }

    #[test]
    fn poll_returns_cheapest() {
        let mut q = BoundedLevelQueue::new(5);
        q.push(state(1, 1, 10.0));
        q.push(state(2, 1, 3.0));
        q.push(state(3, 2, 7.0));
        assert_eq!(q.poll().unwrap().id, 2);
        assert_eq!(q.poll().unwrap().id, 3);
        assert_eq!(q.poll().unwrap().id, 1);
        assert!(q.poll().is_none());
    }

    #[test]
    fn tie_prefers_higher_level() {
        let mut q = BoundedLevelQueue::new(5);
        q.push(state(1, 1, 5.0));
        q.push(state(2, 3, 5.0));
        assert_eq!(q.poll().unwrap().id, 2);
    }

    #[test]
    fn full_level_rejects_worse() {
        let mut q = BoundedLevelQueue::new(1); // level 1 capacity = 1
        assert!(q.push(state(1, 1, 5.0)));
        assert!(!q.push(state(2, 1, 9.0))); // worse than all residents
        assert!(q.push(state(3, 1, 4.0))); // better: evicts
        assert_eq!(q.len(), 1);
        assert_eq!(q.poll().unwrap().id, 3);
    }

    #[test]
    fn equal_cost_is_accepted_on_full_level() {
        // "not worse than all states" — equal cost must be accepted.
        let mut q = BoundedLevelQueue::new(1);
        q.push(state(1, 1, 5.0));
        assert!(q.push(state(2, 1, 5.0)));
        assert_eq!(q.poll().unwrap().id, 2);
    }

    #[test]
    fn eviction_keeps_level_size() {
        let mut q = BoundedLevelQueue::new(2); // level 1 cap = 2
        q.push(state(1, 1, 5.0));
        q.push(state(2, 1, 6.0));
        q.push(state(3, 1, 1.0)); // evicts id 2
        assert_eq!(q.len(), 2);
        let a = q.poll().unwrap();
        let b = q.poll().unwrap();
        assert_eq!((a.id, b.id), (3, 1));
    }
}
