//! The modified priority queue of §4.6.
//!
//! Best-first search over the assignment lattice would otherwise linger on
//! states with few assignments (costs increase monotonically with
//! assignments) and visit exponentially many subsets. The queue is bounded
//! per level: level `i` (states with `i` assignments) holds at most
//! `max(1, ϱ − i + 1)` states. A full level accepts a new state only if it
//! is not worse than every resident of the level, evicting the worst.
//! Polling returns the globally cheapest state; ties prefer more
//! assignments.

use crate::state::SearchState;

/// Undo log of one [`BoundedLevelQueue::poll_batch`]: the `(level, index)`
/// of each removal in poll order, enough for
/// [`BoundedLevelQueue::restore`] to rebuild the exact pre-batch layout.
#[derive(Debug)]
pub struct BatchReceipt {
    removals: Vec<(usize, usize)>,
}

/// Level-bounded priority queue.
#[derive(Debug, Default)]
pub struct BoundedLevelQueue {
    levels: Vec<Vec<SearchState>>,
    rho: usize,
    len: usize,
}

impl BoundedLevelQueue {
    /// Create a queue with width parameter ϱ. `rho = 0` is honoured as
    /// written: every level then holds exactly one state (the paper's
    /// `max(1, ϱ − i + 1)` with ϱ = 0), making the search fully greedy.
    pub fn new(rho: usize) -> BoundedLevelQueue {
        BoundedLevelQueue {
            levels: Vec::new(),
            rho,
            len: 0,
        }
    }

    /// Capacity of level `i`: `max(1, ϱ − i + 1)`.
    pub fn capacity(&self, level: usize) -> usize {
        (self.rho + 1).saturating_sub(level).max(1)
    }

    /// Number of queued states.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no states are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a state, respecting the level bound. Returns `false` if the
    /// state was rejected (level full of strictly better states).
    pub fn push(&mut self, state: SearchState) -> bool {
        let level = state.level();
        if self.levels.len() <= level {
            self.levels.resize_with(level + 1, Vec::new);
        }
        let cap = self.capacity(level);
        let bucket = &mut self.levels[level];
        if bucket.len() < cap {
            bucket.push(state);
            self.len += 1;
            return true;
        }
        // Find the worst resident (max cost; ties towards older states so
        // fresh equal-cost states replace stale ones deterministically).
        let (worst_idx, worst_cost) = bucket
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.cost))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("costs are never NaN"))
            .expect("bucket is non-empty when full");
        if state.cost <= worst_cost {
            bucket[worst_idx] = state;
            true
        } else {
            false
        }
    }

    /// Position `(level, index)` of the state the next [`poll`] returns.
    ///
    /// [`poll`]: BoundedLevelQueue::poll
    fn poll_position(&self) -> Option<(usize, usize)> {
        let mut best: Option<(usize, usize)> = None; // (level, index)
        let mut best_key: Option<(f64, usize, usize)> = None; // (cost, level, id)
        for (level, bucket) in self.levels.iter().enumerate() {
            for (i, s) in bucket.iter().enumerate() {
                let better = match best_key {
                    None => true,
                    Some((bc, blvl, bid)) => {
                        match s.cost.partial_cmp(&bc).expect("costs are never NaN") {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Greater => false,
                            std::cmp::Ordering::Equal => {
                                level > blvl || (level == blvl && s.id < bid)
                            }
                        }
                    }
                };
                if better {
                    best = Some((level, i));
                    best_key = Some((s.cost, level, s.id));
                }
            }
        }
        best
    }

    /// Remove and return the globally cheapest state. Ties are broken
    /// towards states with more assignments ("returns states with a higher
    /// number of assignments first"), then towards *older* ids — children
    /// are generated in ranking order, so earlier ids carry better-ranked
    /// candidates.
    pub fn poll(&mut self) -> Option<SearchState> {
        let (level, idx) = self.poll_position()?;
        self.len -= 1;
        Some(self.levels[level].swap_remove(idx))
    }

    /// Drain up to `max` states in exact successive-[`poll`] order — the
    /// speculation batch of the K-way frontier expansion. The returned
    /// [`BatchReceipt`] lets [`restore`] undo the drain precisely: the
    /// eviction tie-break of [`push`] depends on bucket-internal order, so
    /// putting unconsumed speculated states back must reproduce the exact
    /// pre-poll bucket contents, not merely the same state set.
    ///
    /// [`poll`]: BoundedLevelQueue::poll
    /// [`push`]: BoundedLevelQueue::push
    /// [`restore`]: BoundedLevelQueue::restore
    pub fn poll_batch(&mut self, max: usize) -> (Vec<SearchState>, BatchReceipt) {
        let mut states = Vec::new();
        let mut removals = Vec::new();
        while states.len() < max {
            let Some((level, idx)) = self.poll_position() else {
                break;
            };
            self.len -= 1;
            removals.push((level, idx));
            states.push(self.levels[level].swap_remove(idx));
        }
        (states, BatchReceipt { removals })
    }

    /// Put the states of a [`poll_batch`] back, restoring the queue to its
    /// exact pre-batch contents (bucket order included). Must be called
    /// with the batch's own states and receipt, before any interleaved
    /// `push`/`poll` — the receipt's positions are only meaningful against
    /// the post-drain layout it was recorded from.
    ///
    /// [`poll_batch`]: BoundedLevelQueue::poll_batch
    pub fn restore(&mut self, states: Vec<SearchState>, receipt: BatchReceipt) {
        assert_eq!(
            states.len(),
            receipt.removals.len(),
            "restore needs exactly the states its receipt recorded"
        );
        // Undo the swap_removes in reverse order: the displaced element (if
        // any) was the bucket's last, so it goes back to the end.
        for (state, (level, idx)) in states.into_iter().zip(receipt.removals).rev() {
            let bucket = &mut self.levels[level];
            if idx == bucket.len() {
                bucket.push(state);
            } else {
                let displaced = std::mem::replace(&mut bucket[idx], state);
                bucket.push(displaced);
            }
            self.len += 1;
        }
    }

    /// The state the next [`poll`] would return, without removing it —
    /// lets the driver size up the head of the frontier (e.g. the
    /// speculation fan-out gate) without touching the queue.
    ///
    /// [`poll`]: BoundedLevelQueue::poll
    pub fn peek(&self) -> Option<&SearchState> {
        self.poll_position()
            .map(|(level, idx)| &self.levels[level][idx])
    }

    /// Peek at the cheapest cost without removing.
    pub fn min_cost(&self) -> Option<f64> {
        self.levels
            .iter()
            .flatten()
            .map(|s| s.cost)
            .min_by(|a, b| a.partial_cmp(b).expect("costs are never NaN"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Assignment;
    use affidavit_blocking::Blocking;
    use affidavit_functions::AttrFunction;
    use std::sync::Arc;

    fn state(id: usize, level: usize, cost: f64) -> SearchState {
        let mut assignments = vec![Assignment::Undecided; 8];
        for a in assignments.iter_mut().take(level) {
            *a = Assignment::Assigned(AttrFunction::Identity);
        }
        SearchState {
            assignments,
            blocking: Arc::new(Blocking::default()),
            cost,
            id,
            parent: None,
        }
    }

    #[test]
    fn capacities_match_paper() {
        let q = BoundedLevelQueue::new(3);
        // max(1, ϱ − i + 1): level 1 → 3, level 2 → 2, level 3 → 1, 4 → 1.
        assert_eq!(q.capacity(1), 3);
        assert_eq!(q.capacity(2), 2);
        assert_eq!(q.capacity(3), 1);
        assert_eq!(q.capacity(4), 1);
        assert_eq!(q.capacity(7), 1);
    }

    #[test]
    fn poll_returns_cheapest() {
        let mut q = BoundedLevelQueue::new(5);
        q.push(state(1, 1, 10.0));
        q.push(state(2, 1, 3.0));
        q.push(state(3, 2, 7.0));
        assert_eq!(q.poll().unwrap().id, 2);
        assert_eq!(q.poll().unwrap().id, 3);
        assert_eq!(q.poll().unwrap().id, 1);
        assert!(q.poll().is_none());
    }

    #[test]
    fn tie_prefers_higher_level() {
        let mut q = BoundedLevelQueue::new(5);
        q.push(state(1, 1, 5.0));
        q.push(state(2, 3, 5.0));
        assert_eq!(q.poll().unwrap().id, 2);
    }

    #[test]
    fn full_level_rejects_worse() {
        let mut q = BoundedLevelQueue::new(1); // level 1 capacity = 1
        assert!(q.push(state(1, 1, 5.0)));
        assert!(!q.push(state(2, 1, 9.0))); // worse than all residents
        assert!(q.push(state(3, 1, 4.0))); // better: evicts
        assert_eq!(q.len(), 1);
        assert_eq!(q.poll().unwrap().id, 3);
    }

    #[test]
    fn equal_cost_is_accepted_on_full_level() {
        // "not worse than all states" — equal cost must be accepted.
        let mut q = BoundedLevelQueue::new(1);
        q.push(state(1, 1, 5.0));
        assert!(q.push(state(2, 1, 5.0)));
        assert_eq!(q.poll().unwrap().id, 2);
    }

    #[test]
    fn eviction_keeps_level_size() {
        let mut q = BoundedLevelQueue::new(2); // level 1 cap = 2
        q.push(state(1, 1, 5.0));
        q.push(state(2, 1, 6.0));
        q.push(state(3, 1, 1.0)); // evicts id 2
        assert_eq!(q.len(), 2);
        let a = q.poll().unwrap();
        let b = q.poll().unwrap();
        assert_eq!((a.id, b.id), (3, 1));
    }

    #[test]
    fn capacity_beyond_rho_clamps_to_one() {
        // Regression: the formula `max(1, ϱ − i + 1)` must clamp for every
        // level past ϱ, not just the ones existing tests touched.
        let q = BoundedLevelQueue::new(3);
        for level in 4..64 {
            assert_eq!(q.capacity(level), 1, "level {level}");
        }
        // And push honours the clamp far beyond ϱ.
        let mut q = BoundedLevelQueue::new(2);
        assert!(q.push(state(1, 7, 5.0)));
        assert!(
            !q.push(state(2, 7, 9.0)),
            "worse state on a full deep level"
        );
        assert!(q.push(state(3, 7, 4.0)), "better state evicts");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn rho_zero_follows_the_paper_formula() {
        // Regression: ϱ = 0 used to be silently clamped to 1, giving level
        // 0 capacity 2 instead of the paper's max(1, 0 − 0 + 1) = 1.
        let q = BoundedLevelQueue::new(0);
        for level in 0..8 {
            assert_eq!(q.capacity(level), 1, "level {level}");
        }
        let mut q = BoundedLevelQueue::new(0);
        assert!(q.push(state(1, 0, 5.0)));
        assert!(!q.push(state(2, 0, 9.0)), "level 0 holds exactly one state");
        assert!(
            q.push(state(3, 0, 2.0)),
            "cheaper state evicts the resident"
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.poll().unwrap().id, 3);
    }

    /// Bucket layout fingerprint: state ids per level, in bucket order.
    fn layout(q: &BoundedLevelQueue) -> Vec<Vec<usize>> {
        q.levels
            .iter()
            .map(|bucket| bucket.iter().map(|s| s.id).collect())
            .collect()
    }

    #[test]
    fn poll_batch_matches_successive_polls() {
        let fill = |q: &mut BoundedLevelQueue| {
            for (id, level, cost) in [
                (1, 1, 9.0),
                (2, 1, 3.0),
                (3, 2, 3.0), // ties id 2 on cost; higher level wins
                (4, 2, 7.0),
                (5, 3, 1.0),
                (6, 1, 4.0),
            ] {
                q.push(state(id, level, cost));
            }
        };
        let mut a = BoundedLevelQueue::new(5);
        let mut b = BoundedLevelQueue::new(5);
        fill(&mut a);
        fill(&mut b);
        let (batch, _) = a.poll_batch(4);
        let batch_ids: Vec<usize> = batch.iter().map(|s| s.id).collect();
        let serial_ids: Vec<usize> = (0..4).map(|_| b.poll().unwrap().id).collect();
        assert_eq!(batch_ids, serial_ids);
        // Global cost order with the more-assignments tie-break: cost 1
        // first, then the 3.0 tie resolved towards level 2.
        assert_eq!(batch_ids, vec![5, 3, 2, 6]);
        // The remainder still polls identically.
        assert_eq!(a.poll().unwrap().id, b.poll().unwrap().id);
    }

    #[test]
    fn peek_matches_poll_without_removing() {
        let mut q = BoundedLevelQueue::new(5);
        assert!(q.peek().is_none());
        q.push(state(1, 1, 9.0));
        q.push(state(2, 2, 3.0));
        assert_eq!(q.peek().unwrap().id, 2);
        assert_eq!(q.len(), 2, "peek must not remove");
        assert_eq!(q.poll().unwrap().id, 2);
        assert_eq!(q.peek().unwrap().id, 1);
    }

    #[test]
    fn poll_batch_stops_at_queue_len() {
        let mut q = BoundedLevelQueue::new(3);
        q.push(state(1, 1, 2.0));
        q.push(state(2, 2, 1.0));
        let (batch, _) = q.poll_batch(10);
        assert_eq!(batch.len(), 2);
        assert!(q.is_empty());
        assert!(q.poll().is_none());
    }

    #[test]
    fn poll_batch_sees_only_states_retained_by_level_bounds() {
        // Level capacities govern what the batch can contain: overflowing
        // pushes were rejected/evicted, so the drained sequence reflects
        // the bounded frontier, not everything ever pushed.
        let mut q = BoundedLevelQueue::new(1); // level 1 capacity = 1
        q.push(state(1, 1, 5.0));
        q.push(state(2, 1, 9.0)); // rejected: worse than the resident
        q.push(state(3, 1, 4.0)); // evicts id 1
        let (batch, _) = q.poll_batch(8);
        let ids: Vec<usize> = batch.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![3]);
    }

    #[test]
    fn restore_rebuilds_exact_pre_poll_contents() {
        let mut q = BoundedLevelQueue::new(5);
        for (id, level, cost) in [
            (1, 1, 9.0),
            (2, 1, 3.0),
            (3, 1, 6.0),
            (4, 2, 7.0),
            (5, 2, 2.0),
            (6, 3, 1.0),
        ] {
            q.push(state(id, level, cost));
        }
        let before = layout(&q);
        let (batch, receipt) = q.poll_batch(4);
        assert_eq!(q.len(), 2);
        q.restore(batch, receipt);
        assert_eq!(q.len(), 6);
        assert_eq!(
            layout(&q),
            before,
            "restore must rebuild exact bucket order, not just the state set"
        );
        // Polling after a restore behaves as if the batch never happened.
        assert_eq!(q.poll().unwrap().id, 6);
        assert_eq!(q.poll().unwrap().id, 5);
    }

    #[test]
    fn restore_preserves_eviction_behavior() {
        // The eviction tie-break (`max_by` keeps the *last* worst) reads
        // bucket order, so a sloppy restore would change which equal-cost
        // resident a later push replaces.
        let build = || {
            let mut q = BoundedLevelQueue::new(1); // level 1 capacity = 1... cap(1)=1
            q.push(state(1, 1, 5.0));
            q
        };
        let mut touched = build();
        let (batch, receipt) = touched.poll_batch(1);
        touched.restore(batch, receipt);
        let mut untouched = build();
        for q in [&mut touched, &mut untouched] {
            assert!(q.push(state(9, 1, 5.0)), "equal cost is accepted");
        }
        assert_eq!(layout(&touched), layout(&untouched));
        assert_eq!(touched.poll().unwrap().id, untouched.poll().unwrap().id);
    }
}
