//! Generalizing a learned explanation to unseen records.
//!
//! The paper's headline benefit over diff tools: the explanation "can be
//! used to transform additional, unseen records of the source table because
//! it generalizes the value changes instead of only listing them" (§1).

use affidavit_functions::{AppliedFunction, AttrFunction};
use affidavit_table::{Record, Table, ValuePool};

use crate::explanation::Explanation;

/// Apply an explanation's attribute functions to a single record.
/// Returns `None` if any attribute value cannot be transformed.
pub fn transform_record(
    functions: &[AttrFunction],
    record: &Record,
    pool: &mut ValuePool,
) -> Option<Record> {
    debug_assert_eq!(functions.len(), record.arity());
    let mut out = Vec::with_capacity(record.arity());
    let mut applied: Vec<AppliedFunction> = functions
        .iter()
        .cloned()
        .map(AppliedFunction::new)
        .collect();
    for (a, f) in applied.iter_mut().enumerate() {
        out.push(f.apply(record.get(a), pool)?);
    }
    Some(Record::new(out))
}

/// Apply an explanation to a whole table of unseen records. Records with
/// untransformable values are reported separately.
pub fn transform_table(
    explanation: &Explanation,
    table: &Table,
    pool: &mut ValuePool,
) -> (Table, Vec<affidavit_table::RecordId>) {
    let mut out = Table::with_capacity(table.schema().clone(), table.len());
    let mut failed = Vec::new();
    let mut applied: Vec<AppliedFunction> = explanation
        .functions
        .iter()
        .cloned()
        .map(AppliedFunction::new)
        .collect();
    for (rid, record) in table.iter() {
        let mut values = Vec::with_capacity(record.arity());
        let mut ok = true;
        for (a, f) in applied.iter_mut().enumerate() {
            match f.apply(record.get(a), pool) {
                Some(v) => values.push(v),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            out.push(Record::new(values));
        } else {
            failed.push(rid);
        }
    }
    (out, failed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::{Rational, Schema};

    #[test]
    fn transforms_unseen_records() {
        let mut pool = ValuePool::new();
        let unseen = Table::from_rows(
            Schema::new(["Val", "Unit"]),
            &mut pool,
            vec![vec!["123000", "USD"], vec!["7", "USD"]],
        );
        let k = pool.intern("k $");
        let functions = vec![
            AttrFunction::Scale(Rational::new(1, 1000).unwrap()),
            AttrFunction::Constant(k),
        ];
        let rec = transform_record(
            &functions,
            unseen.record(affidavit_table::RecordId(0)),
            &mut pool,
        )
        .unwrap();
        assert_eq!(pool.get(rec.get(0)), "123");
        assert_eq!(pool.get(rec.get(1)), "k $");
        let rec2 = transform_record(
            &functions,
            unseen.record(affidavit_table::RecordId(1)),
            &mut pool,
        )
        .unwrap();
        assert_eq!(pool.get(rec2.get(0)), "0.007");
    }

    #[test]
    fn untransformable_records_are_reported() {
        let mut pool = ValuePool::new();
        let unseen = Table::from_rows(
            Schema::new(["Val"]),
            &mut pool,
            vec![vec!["1000"], vec!["not-a-number"]],
        );
        let functions = vec![AttrFunction::Scale(Rational::new(1, 1000).unwrap())];
        let expl = Explanation::new(functions, vec![], vec![], vec![]);
        let (out, failed) = transform_table(&expl, &unseen, &mut pool);
        assert_eq!(out.len(), 1);
        assert_eq!(failed.len(), 1);
    }
}
