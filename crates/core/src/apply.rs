//! Generalizing a learned explanation to unseen records.
//!
//! The paper's headline benefit over diff tools: the explanation "can be
//! used to transform additional, unseen records of the source table because
//! it generalizes the value changes instead of only listing them" (§1).
//!
//! [`transform_table`] is columnar: each attribute function runs as one
//! tight loop over the table's contiguous column, with a per-worker
//! [`ApplyScratch`] memo (one application per *distinct* input symbol) and
//! a failure bitmask so rows that died under an earlier attribute are
//! skipped, matching the row-major short-circuit semantics exactly.

use affidavit_functions::{ApplyScratch, AttrFunction};
use affidavit_table::{AttrId, Record, RecordId, Sym, Table, ValuePool};

use crate::explanation::Explanation;

/// Apply an explanation's attribute functions to a single record.
/// Returns `None` if any attribute value cannot be transformed.
pub fn transform_record(
    functions: &[AttrFunction],
    record: &Record,
    pool: &mut ValuePool,
) -> Option<Record> {
    debug_assert_eq!(functions.len(), record.arity());
    let mut out = Vec::with_capacity(record.arity());
    for (a, f) in functions.iter().enumerate() {
        out.push(f.apply(record.get(a), pool)?);
    }
    Some(Record::new(out))
}

/// Apply an explanation to a whole table of unseen records. Records with
/// untransformable values are reported separately.
///
/// Column-major: attribute `a`'s function transforms the whole column
/// `a` before attribute `a + 1` starts. A row fails as soon as any
/// attribute value is untransformable; its remaining attributes are
/// skipped via the failure bitmask, exactly as the row-major loop
/// short-circuited.
pub fn transform_table(
    explanation: &Explanation,
    table: &Table,
    pool: &mut ValuePool,
) -> (Table, Vec<RecordId>) {
    let _span = affidavit_obs::span("apply.transform");
    let arity = table.schema().arity();
    let rows = table.len();
    if arity == 0 {
        return (table.clone(), Vec::new());
    }
    // One bit per row, set once any attribute of the row fails.
    let mut dead = vec![0u64; rows.div_ceil(64)];
    let is_dead = |dead: &[u64], i: usize| dead[i / 64] >> (i % 64) & 1 == 1;
    let mut out_cols: Vec<Vec<Sym>> = Vec::with_capacity(arity);
    let mut scratch = ApplyScratch::new();
    for a in 0..arity {
        let func = &explanation.functions[a];
        let col = table.column(AttrId(a as u32));
        // Dead rows keep the placeholder; they are compacted away below.
        let mut out = vec![Sym(0); rows];
        scratch.begin();
        for (i, &x) in col.iter().enumerate() {
            if is_dead(&dead, i) {
                continue;
            }
            match scratch.apply(func, x, pool) {
                Some(y) => out[i] = y,
                None => dead[i / 64] |= 1 << (i % 64),
            }
        }
        out_cols.push(out);
    }
    let mut failed = Vec::new();
    let mut keep: Vec<usize> = Vec::new();
    for i in 0..rows {
        if is_dead(&dead, i) {
            failed.push(RecordId(i as u32));
        } else {
            keep.push(i);
        }
    }
    if failed.is_empty() {
        return (
            Table::from_columns(table.schema().clone(), out_cols),
            failed,
        );
    }
    for col in &mut out_cols {
        for (w, &i) in keep.iter().enumerate() {
            col[w] = col[i];
        }
        col.truncate(keep.len());
    }
    (
        Table::from_columns(table.schema().clone(), out_cols),
        failed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::{Rational, Schema};

    #[test]
    fn transforms_unseen_records() {
        let mut pool = ValuePool::new();
        let unseen = Table::from_rows(
            Schema::new(["Val", "Unit"]),
            &mut pool,
            vec![vec!["123000", "USD"], vec!["7", "USD"]],
        );
        let k = pool.intern("k $");
        let functions = vec![
            AttrFunction::Scale(Rational::new(1, 1000).unwrap()),
            AttrFunction::Constant(k),
        ];
        let rec = transform_record(
            &functions,
            &unseen.record(affidavit_table::RecordId(0)),
            &mut pool,
        )
        .unwrap();
        assert_eq!(pool.get(rec.get(0)), "123");
        assert_eq!(pool.get(rec.get(1)), "k $");
        let rec2 = transform_record(
            &functions,
            &unseen.record(affidavit_table::RecordId(1)),
            &mut pool,
        )
        .unwrap();
        assert_eq!(pool.get(rec2.get(0)), "0.007");
    }

    #[test]
    fn untransformable_records_are_reported() {
        let mut pool = ValuePool::new();
        let unseen = Table::from_rows(
            Schema::new(["Val"]),
            &mut pool,
            vec![vec!["1000"], vec!["not-a-number"]],
        );
        let functions = vec![AttrFunction::Scale(Rational::new(1, 1000).unwrap())];
        let expl = Explanation::new(functions, vec![], vec![], vec![]);
        let (out, failed) = transform_table(&expl, &unseen, &mut pool);
        assert_eq!(out.len(), 1);
        assert_eq!(failed.len(), 1);
    }

    #[test]
    fn columnar_transform_matches_per_record_application() {
        let mut pool = ValuePool::new();
        let unseen = Table::from_rows(
            Schema::new(["Val", "Unit"]),
            &mut pool,
            vec![
                vec!["1000", "EUR"],
                vec!["oops", "EUR"],
                vec!["2000", "EUR"],
                vec!["3000", "EUR"],
            ],
        );
        let k = pool.intern("k€");
        let functions = vec![
            AttrFunction::Scale(Rational::new(1, 1000).unwrap()),
            AttrFunction::Constant(k),
        ];
        let expl = Explanation::new(functions.clone(), vec![], vec![], vec![]);
        let (out, failed) = transform_table(&expl, &unseen, &mut pool);
        assert_eq!(failed, vec![RecordId(1)]);
        assert_eq!(out.len(), 3);
        let mut want = Vec::new();
        for (rid, _) in unseen.iter() {
            if rid == RecordId(1) {
                continue;
            }
            want.push(transform_record(&functions, &unseen.record(rid), &mut pool).unwrap());
        }
        for (i, rec) in want.iter().enumerate() {
            for a in 0..2u32 {
                assert_eq!(
                    pool.get(out.value(RecordId(i as u32), AttrId(a))),
                    pool.get(rec.get(a as usize)),
                );
            }
        }
    }
}
