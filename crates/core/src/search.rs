//! The Affidavit driver — Algorithm 1.

use std::sync::Arc;
use std::time::{Duration, Instant};

use affidavit_blocking::{overlap_start_attrs, sample_random_alignment, Blocking, OverlapConfig};
use affidavit_functions::{ApplyScratch, AttrFunction};
use affidavit_table::{AttrId, FxHashSet, ScratchPool, Table, ValuePool};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::config::{AffidavitConfig, InitStrategy};
use crate::cost::state_cost;
use crate::expansion::{ExpansionExecutor, ExpansionRequest};
use crate::explanation::Explanation;
use crate::extend::{
    consume_state_expansion, expand_state, extensions, make_child, StateExpansion,
};
use crate::finalize::finalize;
use crate::instance::ProblemInstance;
use crate::queue::BoundedLevelQueue;
use crate::state::{Assignment, SearchState};
use crate::stats::{cochran_sample_size, induction_sample_size};
use crate::trace::{SearchTrace, TraceNode};

/// Counters describing one search run.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// States extracted from the queue.
    pub polled: usize,
    /// States expanded (non-end states extracted).
    pub expansions: usize,
    /// States generated (children built, kept or not).
    pub states_generated: usize,
    /// Wall-clock duration of the search.
    pub duration: Duration,
    /// Cost of the returned end state (Def. 4.6 normalization).
    pub end_state_cost: f64,
    /// Whether the safety valve (`max_expansions`) fired.
    pub hit_expansion_limit: bool,
    /// Wall-clock time spent in the `Extensions(H)` candidate-generation
    /// phase (the part that fans out across worker threads).
    pub extension_time: Duration,
    /// Expansions computed speculatively, ahead of their poll turn
    /// (`speculative_width > 1` only). Unlike `polled`/`expansions`, this
    /// may vary with the width — it counts work performed, not the
    /// (invariant) reconciled search sequence.
    pub speculative_expansions: usize,
    /// Speculative expansions discarded because reconciliation invalidated
    /// them (an earlier sibling ended the search, evicted them, overtook
    /// them with a cheaper child, or fell back to ⊞ finalization).
    pub speculation_discarded: usize,
}

impl SearchStats {
    /// Publish these counters into the process-wide metrics registry
    /// under the `search_*` series, verbatim. A pure side effect at the
    /// end of a run; nothing in the search reads the registry back.
    pub fn publish(&self) {
        let m = affidavit_obs::metrics();
        m.set_counter("search_polled", self.polled as u64);
        m.set_counter("search_expansions", self.expansions as u64);
        m.set_counter("search_states_generated", self.states_generated as u64);
        m.set_counter(
            "search_speculative_expansions",
            self.speculative_expansions as u64,
        );
        m.set_counter(
            "search_speculation_discarded",
            self.speculation_discarded as u64,
        );
        m.set_gauge("search_end_state_cost", self.end_state_cost);
        m.set_gauge(
            "search_hit_expansion_limit",
            if self.hit_expansion_limit { 1.0 } else { 0.0 },
        );
        m.observe("search_duration_micros", self.duration.as_micros() as f64);
        m.observe(
            "search_extension_micros",
            self.extension_time.as_micros() as f64,
        );
    }
}

/// The search overran the wall-clock deadline passed to
/// [`Affidavit::explain_until`]. A cooperative abort: the driver checks
/// between iterations, so the partial work is simply dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineExceeded;

impl std::fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "search exceeded its deadline")
    }
}

impl std::error::Error for DeadlineExceeded {}

/// The result of a search: explanation, counters, optional trace.
#[derive(Debug)]
pub struct SearchOutcome {
    /// The produced (always valid) explanation.
    pub explanation: Explanation,
    /// Run counters.
    pub stats: SearchStats,
    /// The recorded search tree, if tracing was enabled.
    pub trace: Option<SearchTrace>,
}

/// The read-only half of the search context.
///
/// Everything candidate generation needs to read — snapshots, the frozen
/// value pool, configuration and derived sample sizes — without any
/// mutable state. `SearchCtx` is `Sync`; every extension worker shares one
/// instance by reference while the driver's mutable state ([`Ctx`]) stays
/// on the coordinating thread.
pub(crate) struct SearchCtx<'a> {
    pub source: &'a Table,
    pub target: &'a Table,
    pub pool: &'a ValuePool,
    pub cfg: &'a AffidavitConfig,
    pub k_induce: usize,
    pub k_rank: usize,
    pub delta: i64,
    pub arity: usize,
}

/// Per-worker mutable scratch for one attribute expansion: an interning
/// overlay over the frozen pool, a reusable function-application memo and
/// a per-attribute deterministic RNG. Nothing in here is shared — workers
/// never contend, and results are independent of scheduling.
pub(crate) struct WorkerScratch<'a> {
    pub pool: ScratchPool<'a>,
    pub apply: ApplyScratch,
    pub rng: StdRng,
}

impl<'a> SearchCtx<'a> {
    /// Scratch for expanding `attr` out of the state with id `state_id`.
    ///
    /// The RNG seed mixes `(cfg.seed, state_id, attr)` — state ids are
    /// assigned in deterministic merge order, so every worker draws an
    /// identical stream at any thread count.
    pub(crate) fn scratch_for(&self, state_id: usize, attr: usize) -> WorkerScratch<'a> {
        WorkerScratch {
            pool: ScratchPool::new(self.pool.reader()),
            apply: ApplyScratch::new(),
            rng: StdRng::seed_from_u64(mix3(self.cfg.seed, state_id as u64, attr as u64)),
        }
    }
}

/// SplitMix64-style mixing of three words into one seed.
fn mix3(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_add(b.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(c.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The mutable half of the search context, owned by the driver thread:
/// the problem instance (whose pool only grows when worker results are
/// absorbed between parallel phases), run counters, the trace, the
/// alignment-sampling RNG and the id counter.
pub(crate) struct Ctx<'a> {
    pub instance: &'a mut ProblemInstance,
    pub cfg: &'a AffidavitConfig,
    pub rng: StdRng,
    pub scratch: ApplyScratch,
    pub k_induce: usize,
    pub k_rank: usize,
    pub delta: i64,
    pub arity: usize,
    pub stats: SearchStats,
    pub trace: Option<SearchTrace>,
    next_id: usize,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(instance: &'a mut ProblemInstance, cfg: &'a AffidavitConfig) -> Ctx<'a> {
        let delta = instance.delta();
        let arity = instance.arity();
        Ctx {
            instance,
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            scratch: ApplyScratch::new(),
            k_induce: induction_sample_size(cfg.theta, cfg.confidence),
            k_rank: cochran_sample_size(cfg.theta),
            delta,
            arity,
            stats: SearchStats::default(),
            trace: if cfg.trace {
                Some(SearchTrace::new())
            } else {
                None
            },
            next_id: 0,
        }
    }

    /// Freeze the read-only view for a parallel phase. The borrow ends
    /// before the driver absorbs worker results back into the pool.
    pub(crate) fn search_ctx(&self) -> SearchCtx<'_> {
        SearchCtx {
            source: &self.instance.source,
            target: &self.instance.target,
            pool: &self.instance.pool,
            cfg: self.cfg,
            k_induce: self.k_induce,
            k_rank: self.k_rank,
            delta: self.delta,
            arity: self.arity,
        }
    }

    pub(crate) fn next_id(&mut self) -> usize {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// The all-`∗` root state over the root blocking.
    pub(crate) fn root_state(&mut self) -> SearchState {
        let blocking = Blocking::root(&self.instance.source, &self.instance.target);
        let assignments = vec![Assignment::Undecided; self.arity];
        let cost = state_cost(
            &assignments,
            &blocking,
            self.delta,
            self.cfg.alpha,
            self.arity,
        );
        let id = self.next_id();
        if let Some(trace) = self.trace.as_mut() {
            trace.add(TraceNode {
                id,
                parent: None,
                level: 0,
                cost,
                label: "H∅ (∗, …, ∗)".to_owned(),
                polled_order: None,
                kept: true,
                end: self.arity == 0,
            });
        }
        SearchState {
            assignments,
            blocking: Arc::new(blocking),
            cost,
            id,
            parent: None,
        }
    }

    /// The configured start states `H0` (§4.2).
    fn start_states(&mut self) -> Vec<SearchState> {
        let root = self.root_state();
        match self.cfg.init {
            InitStrategy::Empty => vec![root],
            InitStrategy::Id => {
                if self.arity == 0 {
                    return vec![root];
                }
                (0..self.arity)
                    .map(|a| make_child(self, &root, a, AttrFunction::Identity))
                    .collect()
            }
            InitStrategy::Overlap => {
                let attrs = overlap_start_attrs(
                    &self.instance.source,
                    &self.instance.target,
                    OverlapConfig {
                        max_pairs_per_value: self.cfg.max_block_size,
                    },
                );
                if attrs.is_empty() {
                    return vec![root];
                }
                let mut state = root;
                for AttrId(a) in attrs {
                    state = make_child(self, &state, a as usize, AttrFunction::Identity);
                }
                vec![state]
            }
        }
    }
}

/// Push freshly generated children into the frontier, de-duplicating on
/// the assignment vector (end states bypass duplicate detection: their
/// value maps make signatures heavy and they terminate the search quickly
/// anyway). One serial body shared by the plain loop and the speculative
/// reconciliation replay, so both push in the identical order.
fn push_children(
    ctx: &mut Ctx<'_>,
    queue: &mut BoundedLevelQueue,
    visited: &mut FxHashSet<Vec<Assignment>>,
    children: Vec<SearchState>,
) {
    for child in children {
        if child.is_end_state() || visited.insert(child.assignments.clone()) {
            let kept = queue.push(child.clone());
            if let Some(trace) = ctx.trace.as_mut() {
                trace.mark_kept(child.id, kept);
            }
        }
    }
}

/// The Affidavit search algorithm.
#[derive(Clone, Default)]
pub struct Affidavit {
    cfg: AffidavitConfig,
    executor: Option<Arc<dyn ExpansionExecutor>>,
}

impl std::fmt::Debug for Affidavit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Affidavit")
            .field("cfg", &self.cfg)
            .field("executor", &self.executor.is_some())
            .finish()
    }
}

impl Affidavit {
    /// Create a solver with the given configuration.
    pub fn new(cfg: AffidavitConfig) -> Affidavit {
        Affidavit {
            cfg,
            executor: None,
        }
    }

    /// Attach a remote phase-1 executor (builder style): speculated
    /// K-way batches are offered to `executor` — a worker fleet stealing
    /// expansion jobs from a broker queue — before the local thread pool.
    /// A declined batch (`None`) falls back to the local path, and the
    /// serial-replay reconciliation consumes either source identically,
    /// so results are byte-identical with or without an executor.
    pub fn with_expansion_executor(mut self, executor: Arc<dyn ExpansionExecutor>) -> Affidavit {
        self.executor = Some(executor);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &AffidavitConfig {
        &self.cfg
    }

    /// Solve the instance: run the best-first search until an end state is
    /// polled, then convert it into a valid explanation (Prop. 3.6).
    ///
    /// Always returns a valid explanation: if the queue drains or the
    /// expansion limit fires, the best partial state is finalized with
    /// greedy maps.
    ///
    /// With `cfg.threads != 1` the candidate-generation phase of every
    /// expansion fans out across a persistent rayon pool; with
    /// `cfg.speculative_width > 1` the best-first loop itself goes wide,
    /// expanding up to K frontier states per iteration and reconciling
    /// them in deterministic poll order. The result is byte-identical to
    /// the sequential run at any thread count and any width (see
    /// [`AffidavitConfig::paper_id`]'s `threads` / `speculative_width`
    /// docs).
    pub fn explain(&self, instance: &mut ProblemInstance) -> SearchOutcome {
        self.explain_until(instance, None)
            .expect("a deadline-free search cannot time out")
    }

    /// [`Affidavit::explain`] with an optional wall-clock deadline.
    ///
    /// The driver checks the deadline between iterations (never inside
    /// a parallel phase), so an abort is cooperative and prompt at the
    /// granularity of one expansion batch. `None` never fails.
    pub fn explain_until(
        &self,
        instance: &mut ProblemInstance,
        deadline: Option<Instant>,
    ) -> Result<SearchOutcome, DeadlineExceeded> {
        // `threads == 0` autosizes to the hardware (`--threads 0`).
        let threads = self.cfg.effective_threads();
        if threads == 1 && self.cfg.threads == 1 {
            return self.explain_inner(instance, deadline);
        }
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        pool.install(|| self.explain_inner(instance, deadline))
    }

    fn explain_inner(
        &self,
        instance: &mut ProblemInstance,
        deadline: Option<Instant>,
    ) -> Result<SearchOutcome, DeadlineExceeded> {
        let _span = affidavit_obs::span("search.explain");
        let started = Instant::now();
        let mut ctx = Ctx::new(instance, &self.cfg);
        let mut queue = BoundedLevelQueue::new(self.cfg.queue_width);
        let mut visited: FxHashSet<Vec<Assignment>> = FxHashSet::default();

        for st in ctx.start_states() {
            if let Some(trace) = ctx.trace.as_mut() {
                trace.mark_kept(st.id, true);
            }
            visited.insert(st.assignments.clone());
            queue.push(st);
        }

        let width = self.cfg.speculative_width.max(1);
        let mut last_polled: Option<SearchState> = None;
        let end_state = 'search: loop {
            // Deadline checks sit between iterations only: an abort is
            // cooperative, and a run that finishes in time never
            // branches on the clock — output stays deadline-independent.
            if let Some(limit) = deadline {
                if Instant::now() >= limit {
                    return Err(DeadlineExceeded);
                }
            }
            // ---- Speculation phase (K-way frontier expansion). ----
            //
            // Drain the next up-to-K poll results, put them straight back
            // (the queue must hold them during reconciliation so push
            // evictions behave exactly as in the serial run), expand the
            // batch concurrently against the frozen context, then replay
            // serial polls, consuming each cached expansion only when its
            // state really is the next poll.
            //
            // The fan-out gate mirrors `parallel_min_records` one level
            // up: below `speculation_min_records` the head state's
            // expansion is too cheap to amortize the discarded-sibling
            // work, so the iteration takes the serial path — which is
            // byte-identical anyway.
            let speculation_pays = || {
                queue.peek().is_some_and(|head| {
                    head.blocking.live_sources() + head.blocking.total_targets()
                        >= self.cfg.speculation_min_records
                })
            };
            if width > 1 && queue.len() > 1 && speculation_pays() {
                let (batch, receipt) = queue.poll_batch(width);
                // Never expand past an end state: polling it ends the
                // search, so later siblings' turns cannot come.
                let cut = batch
                    .iter()
                    .position(|s| s.is_end_state())
                    .unwrap_or(batch.len());
                /// Pure phase-1 output for one speculated batch, indexed
                /// in poll order; nothing in here has touched shared
                /// search state yet.
                struct SpeculationCache {
                    spec_ids: Vec<usize>,
                    expansions: Vec<StateExpansion>,
                    rng_before: Vec<StdRng>,
                    rng_after: Vec<StdRng>,
                }
                let mut speculated: Option<SpeculationCache> = None;
                if cut > 1 {
                    let spec = &batch[..cut];
                    // Pre-draw each state's alignment in poll order, with
                    // RNG snapshots bracketing every draw so reconciliation
                    // can rewind to the exact serial RNG state on any
                    // divergence.
                    let mut rng_before: Vec<StdRng> = Vec::with_capacity(spec.len());
                    let mut rng_after: Vec<StdRng> = Vec::with_capacity(spec.len());
                    let mut alignments = Vec::with_capacity(spec.len());
                    for st in spec {
                        rng_before.push(ctx.rng.clone());
                        alignments.push(sample_random_alignment(&st.blocking, &mut ctx.rng));
                        rng_after.push(ctx.rng.clone());
                    }

                    // Phase 1: expand all speculated states concurrently,
                    // borrowing them straight out of the drained batch —
                    // only their ids are needed for reconciliation, so the
                    // (potentially record-sized) states are never cloned.
                    let started_ext = Instant::now();
                    let expansions: Vec<StateExpansion> = {
                        let _span = affidavit_obs::span("search.speculate");
                        // Offer the batch to the remote executor first; a
                        // declined (or malformed) batch falls back to the
                        // local pool. Expansions are pure, so the two
                        // sources are interchangeable byte-for-byte.
                        let remote = self.executor.as_ref().and_then(|executor| {
                            let requests: Vec<ExpansionRequest> = spec
                                .iter()
                                .zip(&alignments)
                                .map(|(st, al)| ExpansionRequest {
                                    state: st.clone(),
                                    alignment: al.clone(),
                                })
                                .collect();
                            executor
                                .expand_batch(ctx.instance, &self.cfg, &requests)
                                .filter(|r| r.len() == requests.len())
                                .map(|r| {
                                    r.into_iter()
                                        .map(StateExpansion::from_portable)
                                        .collect::<Vec<_>>()
                                })
                        });
                        match remote {
                            Some(expansions) => expansions,
                            None => {
                                let sctx = ctx.search_ctx();
                                let expand = |i: usize| {
                                    let t = Instant::now();
                                    let exp = expand_state(&sctx, &spec[i], &alignments[i]);
                                    affidavit_obs::metrics().observe(
                                        "search_expansion_micros",
                                        t.elapsed().as_micros() as f64,
                                    );
                                    exp
                                };
                                if self.cfg.threads != 1 {
                                    (0..spec.len()).into_par_iter().map(expand).collect()
                                } else {
                                    (0..spec.len()).map(expand).collect()
                                }
                            }
                        }
                    };
                    ctx.stats.extension_time += started_ext.elapsed();
                    ctx.stats.speculative_expansions += expansions.len();
                    let spec_ids: Vec<usize> = spec.iter().map(|s| s.id).collect();
                    speculated = Some(SpeculationCache {
                        spec_ids,
                        expansions,
                        rng_before,
                        rng_after,
                    });
                }
                // The queue must hold the speculated states during
                // reconciliation so push evictions behave exactly as in
                // the serial run.
                queue.restore(batch, receipt);
                if let Some(SpeculationCache {
                    spec_ids,
                    expansions,
                    rng_before,
                    rng_after,
                }) = speculated
                {
                    let _span = affidavit_obs::span("search.reconcile");
                    // Phase 2: reconciliation replay, in exact serial order.
                    let mut expansions = expansions.into_iter();
                    for i in 0..spec_ids.len() {
                        let state = queue
                            .poll()
                            .expect("speculated states stay queued until their turn");
                        ctx.stats.polled += 1;
                        if let Some(trace) = ctx.trace.as_mut() {
                            trace.mark_polled(state.id);
                        }
                        let expansion = expansions.next().expect("one expansion per state");
                        if state.id != spec_ids[i] {
                            // Miss: a child pushed during reconciliation
                            // overtook (or evicted) the speculated sibling.
                            // Rewind the RNG to the serial position and
                            // process this poll cold; the rest of the cache
                            // is void.
                            ctx.rng = rng_before[i].clone();
                            ctx.stats.speculation_discarded += spec_ids.len() - i;
                            if state.is_end_state() {
                                break 'search state;
                            }
                            ctx.stats.expansions += 1;
                            if ctx.stats.expansions > self.cfg.max_expansions {
                                ctx.stats.hit_expansion_limit = true;
                                break 'search finalize(&mut ctx, &state);
                            }
                            let children = {
                                let _span = affidavit_obs::span("search.expand");
                                extensions(&mut ctx, &state)
                            };
                            last_polled = Some(state);
                            push_children(&mut ctx, &mut queue, &mut visited, children);
                            continue 'search;
                        }
                        // Hit: this state's serial turn arrived — consume
                        // the cached expansion. (Speculated states are
                        // never end states; the batch was cut before one.)
                        ctx.stats.expansions += 1;
                        if ctx.stats.expansions > self.cfg.max_expansions {
                            ctx.stats.hit_expansion_limit = true;
                            // The serial run finalizes before drawing this
                            // state's alignment.
                            ctx.rng = rng_before[i].clone();
                            ctx.stats.speculation_discarded += spec_ids.len() - i;
                            break 'search finalize(&mut ctx, &state);
                        }
                        let mut children = consume_state_expansion(&mut ctx, &state, expansion);
                        let map_suited = children.is_empty();
                        if map_suited {
                            // ⊞ fallback: finalize draws further from the
                            // driver RNG, so the pre-drawn alignments of
                            // the later siblings no longer match the
                            // serial stream — discard them.
                            ctx.rng = rng_after[i].clone();
                            children = vec![finalize(&mut ctx, &state)];
                        }
                        last_polled = Some(state);
                        push_children(&mut ctx, &mut queue, &mut visited, children);
                        if map_suited {
                            ctx.stats.speculation_discarded += spec_ids.len() - i - 1;
                            continue 'search;
                        }
                    }
                    continue 'search;
                }
            }

            // ---- Serial iteration (speculation off or frontier ≤ 1). ----
            let Some(state) = queue.poll() else {
                // Queue drained without reaching an end state (all children
                // were duplicates or evicted): finalize the last polled
                // state — or the root if nothing was ever polled.
                let basis = match last_polled.take() {
                    Some(s) => s,
                    None => ctx.root_state(),
                };
                break finalize(&mut ctx, &basis);
            };
            ctx.stats.polled += 1;
            if let Some(trace) = ctx.trace.as_mut() {
                trace.mark_polled(state.id);
            }
            if state.is_end_state() {
                break state;
            }
            ctx.stats.expansions += 1;
            if ctx.stats.expansions > self.cfg.max_expansions {
                ctx.stats.hit_expansion_limit = true;
                break finalize(&mut ctx, &state);
            }
            let children = {
                let _span = affidavit_obs::span("search.expand");
                extensions(&mut ctx, &state)
            };
            last_polled = Some(state);
            push_children(&mut ctx, &mut queue, &mut visited, children);
        };

        ctx.stats.end_state_cost = end_state.cost;
        let functions = end_state
            .functions()
            .expect("finalized states are end states");
        let explanation = Explanation::from_functions(functions, ctx.instance);
        let mut stats = ctx.stats;
        stats.duration = started.elapsed();
        stats.publish();
        Ok(SearchOutcome {
            explanation,
            stats,
            trace: ctx.trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::{Schema, Table, ValuePool};

    /// 30 records; Val scaled by 1/1000, Unit constant-replaced, key and
    /// Org unchanged; 3 deleted + 3 inserted noise records.
    fn noisy_instance() -> ProblemInstance {
        let mut pool = ValuePool::new();
        let orgs = ["IBM", "SAP", "BASF"];
        let mut rows_s: Vec<Vec<String>> = (0..30)
            .map(|i| {
                vec![
                    format!("k{i}"),
                    format!("{}", (i + 1) * 1000),
                    "USD".to_owned(),
                    orgs[i % 3].to_owned(),
                ]
            })
            .collect();
        let mut rows_t: Vec<Vec<String>> = (0..30)
            .map(|i| {
                vec![
                    format!("k{i}"),
                    format!("{}", i + 1),
                    "k $".to_owned(),
                    orgs[i % 3].to_owned(),
                ]
            })
            .collect();
        // Noise: deleted-only sources and inserted-only targets.
        for i in 30..33 {
            rows_s.push(vec![
                format!("del{i}"),
                format!("{}", i * 7000),
                "USD".to_owned(),
                "NOISE".to_owned(),
            ]);
            rows_t.push(vec![
                format!("ins{i}"),
                format!("{}", i * 13),
                "k $".to_owned(),
                "NOISE".to_owned(),
            ]);
        }
        let schema = Schema::new(["key", "Val", "Unit", "Org"]);
        let s = Table::from_rows(schema.clone(), &mut pool, rows_s);
        let t = Table::from_rows(schema, &mut pool, rows_t);
        ProblemInstance::new(s, t, pool).unwrap()
    }

    #[test]
    fn finds_the_reference_explanation_id_config() {
        let mut inst = noisy_instance();
        let out = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut inst);
        let e = &out.explanation;
        e.validate(&mut inst).unwrap();
        assert_eq!(e.core_size(), 30, "core must align all 30 real records");
        assert_eq!(e.deleted.len(), 3);
        assert_eq!(e.inserted.len(), 3);
        // The learned functions: id, x/1000, const 'k $', id.
        assert!(e.functions[0].is_identity());
        assert!(
            matches!(&e.functions[1], AttrFunction::Scale(r) if r.num() == 1 && r.den() == 1000),
            "{:?}",
            e.functions[1]
        );
        // The Unit function must send 'USD' to 'k $' with a single-parameter
        // function (Constant and full-width FrontMask are equally cheap).
        assert_eq!(e.functions[2].psi(), 1);
        let usd = inst.pool.lookup("USD").unwrap();
        let out = e.functions[2].apply(usd, &mut inst.pool).unwrap();
        assert_eq!(inst.pool.get(out), "k $");
        assert!(e.functions[3].is_identity());
    }

    #[test]
    fn overlap_config_also_solves_it() {
        let mut inst = noisy_instance();
        let out = Affidavit::new(AffidavitConfig::paper_overlap()).explain(&mut inst);
        let e = &out.explanation;
        e.validate(&mut inst).unwrap();
        assert_eq!(e.core_size(), 30);
        assert!(matches!(&e.functions[1], AttrFunction::Scale(_)));
    }

    #[test]
    fn end_state_cost_matches_explanation_cost() {
        // The Def. 4.6 normalization (see cost.rs): at an end state the
        // search cost equals the explanation cost.
        let mut inst = noisy_instance();
        let out = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut inst);
        let arity = 4;
        assert_eq!(
            out.stats.end_state_cost,
            out.explanation.cost(0.5, arity),
            "end-state bound must be tight"
        );
    }

    #[test]
    fn explanation_beats_trivial() {
        let mut inst = noisy_instance();
        let trivial_cost = Explanation::trivial(&inst).cost_units(4);
        let out = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut inst);
        assert!(out.explanation.cost_units(4) < trivial_cost);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut inst = noisy_instance();
            let cfg = AffidavitConfig::paper_id().with_seed(seed);
            let out = Affidavit::new(cfg).explain(&mut inst);
            (
                out.explanation.functions.clone(),
                out.explanation.core_size(),
            )
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn identical_snapshots_need_identity_only() {
        let mut pool = ValuePool::new();
        let rows: Vec<Vec<String>> = (0..20).map(|i| vec![format!("v{i}")]).collect();
        let s = Table::from_rows(Schema::new(["a"]), &mut pool, rows.clone());
        let t = Table::from_rows(Schema::new(["a"]), &mut pool, rows);
        let mut inst = ProblemInstance::new(s, t, pool).unwrap();
        let out = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut inst);
        assert!(out.explanation.functions[0].is_identity());
        assert_eq!(out.explanation.core_size(), 20);
        assert_eq!(out.explanation.cost_units(1), 0);
    }

    #[test]
    fn empty_tables_yield_trivial_core() {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(Schema::new(["a"]), &mut pool, Vec::<Vec<&str>>::new());
        let t = Table::from_rows(Schema::new(["a"]), &mut pool, vec![vec!["x"]]);
        let mut inst = ProblemInstance::new(s, t, pool).unwrap();
        let out = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut inst);
        out.explanation.validate(&mut inst).unwrap();
        assert_eq!(out.explanation.inserted.len(), 1);
    }

    #[test]
    fn speculative_widths_are_byte_identical() {
        // The reconciliation invariant at driver level: polled/expansion
        // counters, the full trace and the explanation match the serial
        // engine at every (width, threads) combination.
        let fingerprint = |width: usize, threads: usize| {
            let mut inst = noisy_instance();
            let mut cfg = AffidavitConfig::paper_id()
                .with_trace()
                .with_threads(threads)
                .with_speculative_width(width);
            cfg.parallel_min_records = 0; // force the fan-out paths
            cfg.speculation_min_records = 0; // tiny instance: open the gate
            let out = Affidavit::new(cfg).explain(&mut inst);
            (
                format!("{:?}", out.explanation.functions),
                out.explanation.core_size(),
                out.stats.polled,
                out.stats.expansions,
                out.stats.states_generated,
                out.stats.end_state_cost.to_bits(),
                out.trace.expect("trace enabled").render(),
            )
        };
        let base = fingerprint(1, 1);
        for (width, threads) in [(2, 1), (4, 1), (8, 1), (0, 1), (4, 2), (8, 4)] {
            assert_eq!(
                base,
                fingerprint(width, threads),
                "width {width} threads {threads} diverged"
            );
        }
    }

    #[test]
    fn speculation_reports_its_extra_work() {
        let mut inst = noisy_instance();
        let cfg = AffidavitConfig::paper_id()
            .with_speculative_width(4)
            .with_speculation_min_records(0);
        let out = Affidavit::new(cfg).explain(&mut inst);
        assert!(
            out.stats.speculative_expansions > 0,
            "a width-4 run on a multi-state frontier must speculate"
        );
        assert!(out.stats.speculation_discarded <= out.stats.speculative_expansions);
    }

    #[test]
    fn fanout_gate_suppresses_speculation_below_the_floor() {
        // The default `speculation_min_records` (4096) dwarfs this ~66
        // record instance: a width-4 run must take the serial path on
        // every iteration — no speculative work, identical output.
        let run = |width: usize| {
            let mut inst = noisy_instance();
            let out = Affidavit::new(AffidavitConfig::paper_id().with_speculative_width(width))
                .explain(&mut inst);
            (
                format!("{:?}", out.explanation.functions),
                out.stats.polled,
                out.stats.expansions,
                out.stats.states_generated,
                out.stats.speculative_expansions,
            )
        };
        let serial = run(1);
        let gated = run(4);
        assert_eq!(gated.4, 0, "a gated run performs zero speculative work");
        assert_eq!(serial, gated);
    }

    #[test]
    fn expansion_executor_results_are_absorbed_byte_identically() {
        use crate::expansion::{expand_portable, ExpansionRequest, PortableExpansion};
        use std::sync::atomic::{AtomicUsize, Ordering};

        /// An executor that recomputes every request from first
        /// principles via `expand_portable` — exactly what a worker
        /// process does after decoding the wire job.
        struct Recompute {
            batches: AtomicUsize,
        }
        impl ExpansionExecutor for Recompute {
            fn expand_batch(
                &self,
                instance: &ProblemInstance,
                cfg: &AffidavitConfig,
                batch: &[ExpansionRequest],
            ) -> Option<Vec<PortableExpansion>> {
                self.batches.fetch_add(1, Ordering::SeqCst);
                Some(
                    batch
                        .iter()
                        .map(|req| expand_portable(instance, cfg, req))
                        .collect(),
                )
            }
        }

        let fingerprint = |executor: Option<Arc<Recompute>>| {
            let mut inst = noisy_instance();
            let cfg = AffidavitConfig::paper_id()
                .with_trace()
                .with_speculative_width(4)
                .with_speculation_min_records(0);
            let mut solver = Affidavit::new(cfg);
            if let Some(ex) = executor {
                solver = solver.with_expansion_executor(ex);
            }
            let out = solver.explain(&mut inst);
            (
                format!("{:?}", out.explanation.functions),
                out.explanation.core_size(),
                out.stats.polled,
                out.stats.expansions,
                out.stats.states_generated,
                out.stats.end_state_cost.to_bits(),
                out.trace.expect("trace enabled").render(),
            )
        };
        let local = fingerprint(None);
        let executor = Arc::new(Recompute {
            batches: AtomicUsize::new(0),
        });
        let remote = fingerprint(Some(executor.clone()));
        assert!(
            executor.batches.load(Ordering::SeqCst) > 0,
            "the executor must have been offered at least one batch"
        );
        assert_eq!(local, remote);
    }

    #[test]
    fn a_declining_executor_falls_back_to_the_local_path() {
        struct Decline;
        impl ExpansionExecutor for Decline {
            fn expand_batch(
                &self,
                _instance: &ProblemInstance,
                _cfg: &AffidavitConfig,
                _batch: &[ExpansionRequest],
            ) -> Option<Vec<crate::expansion::PortableExpansion>> {
                None
            }
        }
        let mut inst = noisy_instance();
        let cfg = AffidavitConfig::paper_id()
            .with_speculative_width(4)
            .with_speculation_min_records(0);
        let out = Affidavit::new(cfg.clone())
            .with_expansion_executor(Arc::new(Decline))
            .explain(&mut inst);
        let mut inst2 = noisy_instance();
        let base = Affidavit::new(cfg).explain(&mut inst2);
        assert_eq!(
            format!("{:?}", out.explanation.functions),
            format!("{:?}", base.explanation.functions)
        );
        assert_eq!(out.stats.polled, base.stats.polled);
    }

    #[test]
    fn expired_deadline_aborts_cooperatively() {
        let mut inst = noisy_instance();
        let past = Instant::now() - Duration::from_millis(1);
        let err = Affidavit::new(AffidavitConfig::paper_id())
            .explain_until(&mut inst, Some(past))
            .unwrap_err();
        assert_eq!(err, DeadlineExceeded);
    }

    #[test]
    fn generous_deadline_matches_the_deadline_free_run() {
        let fingerprint = |deadline: Option<Instant>| {
            let mut inst = noisy_instance();
            let out = Affidavit::new(AffidavitConfig::paper_id())
                .explain_until(&mut inst, deadline)
                .expect("an hour is plenty");
            (
                format!("{:?}", out.explanation.functions),
                out.stats.polled,
                out.stats.expansions,
            )
        };
        assert_eq!(
            fingerprint(None),
            fingerprint(Some(Instant::now() + Duration::from_secs(3600)))
        );
    }

    #[test]
    fn trace_records_polls() {
        let mut inst = noisy_instance();
        let cfg = AffidavitConfig::paper_id().with_trace();
        let out = Affidavit::new(cfg).explain(&mut inst);
        let trace = out.trace.expect("trace enabled");
        assert!(trace.nodes.iter().any(|n| n.polled_order.is_some()));
        let rendered = trace.render();
        assert!(rendered.contains("[1]"));
    }
}
