//! Statistical sample sizing (§4.4.2 and §4.4.3).
//!
//! * [`induction_sample_size`] — the smallest `k` such that a Binomial
//!   experiment with success chance θ yields at least [`MIN_HITS`] successes
//!   with probability ≥ ρ. This sizes the target-record sample for function
//!   induction: a true function whose effect is visible in a θ-fraction of
//!   targets is then generated a statistically significant number of times
//!   with confidence ρ.
//! * [`cochran_sample_size`] — Cochran's formula `k' ≥ z²·p(1−p)/e²` sizing
//!   the source-record sample for candidate ranking (z = 1.96, e = 0.05,
//!   p = θ gives 95 % confidence of ±5 % overlap estimation error).

/// The significance threshold targeted by the binomial sizing (`P(X ≥ 5)`).
pub const MIN_HITS: u32 = 5;

/// `P(X ≥ min_hits)` for `X ~ Bin(k, theta)`, computed stably via the
/// complement of the lower tail.
pub fn binomial_at_least(k: u64, theta: f64, min_hits: u32) -> f64 {
    if theta <= 0.0 {
        return if min_hits == 0 { 1.0 } else { 0.0 };
    }
    if theta >= 1.0 {
        return if k >= min_hits as u64 { 1.0 } else { 0.0 };
    }
    if (k as u128) < min_hits as u128 {
        return 0.0;
    }
    // Lower tail P(X <= min_hits - 1) via iterative pmf updates:
    // pmf(0) = (1-θ)^k, pmf(i+1) = pmf(i) · (k-i)/(i+1) · θ/(1-θ).
    let mut pmf = (1.0 - theta).powf(k as f64);
    let mut cdf = pmf;
    let ratio = theta / (1.0 - theta);
    for i in 0..(min_hits as u64 - 1).min(k) {
        pmf *= (k - i) as f64 / (i + 1) as f64 * ratio;
        cdf += pmf;
    }
    (1.0 - cdf).clamp(0.0, 1.0)
}

/// Smallest `k` with `P(Bin(k, theta) ≥ MIN_HITS) ≥ rho`.
pub fn induction_sample_size(theta: f64, rho: f64) -> usize {
    assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
    assert!(rho > 0.0 && rho < 1.0, "rho must be in (0, 1)");
    // P(X >= 5) is monotone increasing in k; exponential + binary search.
    let mut lo = MIN_HITS as u64;
    let mut hi = lo;
    while binomial_at_least(hi, theta, MIN_HITS) < rho {
        hi *= 2;
        if hi > 1 << 32 {
            // Unreachable for sane θ; avoid infinite loops on extreme input.
            return hi as usize;
        }
    }
    while lo < hi {
        let mid = (lo + hi) / 2;
        if binomial_at_least(mid, theta, MIN_HITS) >= rho {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo as usize
}

/// Cochran's sample size `⌈z²·p(1−p)/e²⌉` with z = 1.96, e = 0.05.
pub fn cochran_sample_size(p: f64) -> usize {
    const Z: f64 = 1.96;
    const E: f64 = 0.05;
    let p = p.clamp(1e-9, 1.0 - 1e-9);
    (Z * Z * p * (1.0 - p) / (E * E)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_basics() {
        // P(X >= 5) with k = 5, θ = 1 is 1; with θ = 0 is 0.
        assert_eq!(binomial_at_least(5, 1.0, 5), 1.0);
        assert_eq!(binomial_at_least(100, 0.0, 5), 0.0);
        // With k < 5 it's impossible.
        assert_eq!(binomial_at_least(4, 0.9, 5), 0.0);
        // Sanity: P(X >= 5) for Bin(50, 0.1): mean 5, so ~0.5-ish.
        let p = binomial_at_least(50, 0.1, 5);
        assert!((0.3..0.7).contains(&p), "{p}");
    }

    #[test]
    fn binomial_monotone_in_k() {
        let mut prev = 0.0;
        for k in (10..200).step_by(10) {
            let p = binomial_at_least(k, 0.1, 5);
            assert!(p >= prev - 1e-12);
            prev = p;
        }
    }

    #[test]
    fn paper_parameters() {
        // θ = 0.1, ρ = 0.95 — the Table 2 configuration. The sample must
        // satisfy the guarantee and be minimal.
        let k = induction_sample_size(0.1, 0.95);
        assert!(binomial_at_least(k as u64, 0.1, 5) >= 0.95);
        assert!(binomial_at_least(k as u64 - 1, 0.1, 5) < 0.95);
        // For θ=0.1 the answer is in the low hundreds (mean must clear 5
        // with margin): sanity-band check.
        assert!((60..150).contains(&k), "k = {k}");
    }

    #[test]
    fn cochran_paper_value() {
        // §4.4.3: z = 1.96, e = 0.05, p = θ = 0.1
        // → 1.96² · 0.1 · 0.9 / 0.0025 = 138.3 → 139.
        assert_eq!(cochran_sample_size(0.1), 139);
        // p = 0.5 is the conservative maximum: 384.16 → 385.
        assert_eq!(cochran_sample_size(0.5), 385);
    }

    #[test]
    fn larger_theta_needs_smaller_sample() {
        let k1 = induction_sample_size(0.1, 0.95);
        let k2 = induction_sample_size(0.5, 0.95);
        assert!(k2 < k1, "θ=0.5 needs {k2}, θ=0.1 needs {k1}");
    }
}
