//! Schema restructuring — the second half of the §6 future-work variant:
//! "table modifications like attribute renaming, **merging or splitting**
//! could be supported".
//!
//! [`crate::schema_align`] recovers renamed/reordered columns but requires
//! equal arity. This module handles the arity-changing cases:
//!
//! * **merge** — two source columns were concatenated (with a separator)
//!   into one target column, e.g. `first` + `last` → `full_name`;
//! * **split** — one source column was cut into two target columns, e.g.
//!   `period` → `year` + `month`.
//!
//! Detection works **without any record alignment**, in the same spirit as
//! the overlap matcher of §4.2: a candidate `(left, right, sep, whole)` is
//! scored by the fraction of distinct *whole*-column values that decompose
//! as `l ◦ sep ◦ r` with `l` and `r` drawn from the *left*/*right* columns'
//! distinct-value sets. Membership tests are interning lookups, so scoring
//! a candidate is linear in the number of distinct values examined.
//!
//! [`normalize_arity`] applies detected restructures until both snapshots
//! have the same arity, after which [`crate::schema_align::align_schemas`]
//! and the ordinary search take over.
//!
//! ```
//! use affidavit_core::restructure::{normalize_arity, Restructure};
//! use affidavit_table::{Schema, Table, ValuePool};
//!
//! let mut pool = ValuePool::new();
//! let source = Table::from_rows(
//!     Schema::new(["first", "last"]),
//!     &mut pool,
//!     vec![vec!["John", "Doe"], vec!["Ada", "Lovelace"], vec!["Alan", "Turing"]],
//! );
//! let target = Table::from_rows(
//!     Schema::new(["name"]),
//!     &mut pool,
//!     vec![vec!["John Doe"], vec!["Ada Lovelace"], vec!["Alan Turing"]],
//! );
//! let (source, target, applied) = normalize_arity(&source, &target, &mut pool).unwrap();
//! assert_eq!(source.schema().arity(), target.schema().arity());
//! assert!(matches!(&applied[0], Restructure::Merge { sep, .. } if sep == " "));
//! ```

use affidavit_table::{AttrId, FxHashSet, Record, Schema, Sym, Table, ValuePool};

/// Candidate separators, tried in order; the empty separator (any split
/// position) comes last so that an explicit separator wins ties.
pub const SEPARATORS: [&str; 8] = [" ", ", ", "-", "_", "/", ":", ",", ""];

/// Minimum fraction of decomposable whole-column values for a candidate to
/// be reported. Noise records (η) dilute the score, so this is
/// deliberately below the paper's practical noise ceiling of 0.7.
pub const MIN_SCORE: f64 = 0.55;

/// Cap on the distinct whole-column values examined per candidate.
const MAX_PROBED: usize = 1_000;

/// One detected arity-changing schema modification.
#[derive(Debug, Clone, PartialEq)]
pub enum Restructure {
    /// Source columns `left` and `right` were concatenated (with `sep`)
    /// into target column `target`.
    Merge {
        /// The merged target column.
        target: AttrId,
        /// Source column providing the part before the separator.
        left: AttrId,
        /// Source column providing the part after the separator.
        right: AttrId,
        /// The separator between the parts (possibly empty).
        sep: String,
        /// Fraction of probed target values that decompose.
        score: f64,
    },
    /// Source column `source` was split into target columns `left` and
    /// `right` (separated by `sep` in the source value).
    Split {
        /// The split source column.
        source: AttrId,
        /// Target column receiving the part before the separator.
        left: AttrId,
        /// Target column receiving the part after the separator.
        right: AttrId,
        /// The separator between the parts (possibly empty).
        sep: String,
        /// Fraction of probed source values that decompose.
        score: f64,
    },
}

impl Restructure {
    /// The evidence score of the candidate.
    pub fn score(&self) -> f64 {
        match self {
            Restructure::Merge { score, .. } | Restructure::Split { score, .. } => *score,
        }
    }
}

fn distinct_column(table: &Table, col: usize) -> Vec<Sym> {
    let mut seen: FxHashSet<Sym> = FxHashSet::default();
    let mut out = Vec::new();
    for &v in table.column(AttrId(col as u32)) {
        if seen.insert(v) {
            out.push(v);
        }
    }
    out
}

/// Does `v = l ◦ sep ◦ r` for some non-empty `l ∈ left`, `r ∈ right`?
fn decomposes(
    v: &str,
    sep: &str,
    left: &FxHashSet<Sym>,
    right: &FxHashSet<Sym>,
    pool: &ValuePool,
) -> bool {
    let in_set = |part: &str, set: &FxHashSet<Sym>| {
        !part.is_empty() && pool.lookup(part).is_some_and(|s| set.contains(&s))
    };
    if sep.is_empty() {
        // Any interior char boundary.
        v.char_indices()
            .skip(1)
            .any(|(i, _)| in_set(&v[..i], left) && in_set(&v[i..], right))
    } else {
        v.match_indices(sep)
            .any(|(i, _)| in_set(&v[..i], left) && in_set(&v[i + sep.len()..], right))
    }
}

/// Fraction of (up to [`MAX_PROBED`]) distinct whole-column values that
/// decompose into the two part columns with `sep`.
fn concat_score(
    whole: &[Sym],
    sep: &str,
    left: &FxHashSet<Sym>,
    right: &FxHashSet<Sym>,
    pool: &ValuePool,
) -> f64 {
    if whole.is_empty() {
        return 0.0;
    }
    let probe = &whole[..whole.len().min(MAX_PROBED)];
    let hits = probe
        .iter()
        .filter(|&&v| decomposes(pool.get(v), sep, left, right, pool))
        .count();
    hits as f64 / probe.len() as f64
}

/// Detect merge candidates: `source` has more columns than `target`, so
/// some target column may hold the concatenation of two source columns.
fn detect_merges(source: &Table, target: &Table, pool: &ValuePool) -> Vec<Restructure> {
    let s_arity = source.schema().arity();
    let t_arity = target.schema().arity();
    let src_sets: Vec<FxHashSet<Sym>> = (0..s_arity)
        .map(|c| distinct_column(source, c).into_iter().collect())
        .collect();
    let mut out = Vec::new();
    for j in 0..t_arity {
        let whole = distinct_column(target, j);
        let mut best: Option<Restructure> = None;
        for a in 0..s_arity {
            for b in 0..s_arity {
                if a == b {
                    continue;
                }
                for sep in SEPARATORS {
                    let score = concat_score(&whole, sep, &src_sets[a], &src_sets[b], pool);
                    if score >= MIN_SCORE && best.as_ref().is_none_or(|r| score > r.score()) {
                        best = Some(Restructure::Merge {
                            target: AttrId(j as u32),
                            left: AttrId(a as u32),
                            right: AttrId(b as u32),
                            sep: sep.to_owned(),
                            score,
                        });
                    }
                }
            }
        }
        out.extend(best);
    }
    out
}

/// Detect split candidates: `target` has more columns than `source`, so
/// some source column may decompose into two target columns.
fn detect_splits(source: &Table, target: &Table, pool: &ValuePool) -> Vec<Restructure> {
    let s_arity = source.schema().arity();
    let t_arity = target.schema().arity();
    let tgt_sets: Vec<FxHashSet<Sym>> = (0..t_arity)
        .map(|c| distinct_column(target, c).into_iter().collect())
        .collect();
    let mut out = Vec::new();
    for a in 0..s_arity {
        let whole = distinct_column(source, a);
        let mut best: Option<Restructure> = None;
        for j in 0..t_arity {
            for k in 0..t_arity {
                if j == k {
                    continue;
                }
                for sep in SEPARATORS {
                    let score = concat_score(&whole, sep, &tgt_sets[j], &tgt_sets[k], pool);
                    if score >= MIN_SCORE && best.as_ref().is_none_or(|r| score > r.score()) {
                        best = Some(Restructure::Split {
                            source: AttrId(a as u32),
                            left: AttrId(j as u32),
                            right: AttrId(k as u32),
                            sep: sep.to_owned(),
                            score,
                        });
                    }
                }
            }
        }
        out.extend(best);
    }
    out
}

/// Detect arity-changing schema modifications between two snapshots.
/// Returns merge candidates when the source is wider, split candidates when
/// the target is wider, and nothing for equal arity. Candidates are sorted
/// by descending score.
pub fn detect_restructures(source: &Table, target: &Table, pool: &ValuePool) -> Vec<Restructure> {
    let s = source.schema().arity();
    let t = target.schema().arity();
    let mut found = match s.cmp(&t) {
        std::cmp::Ordering::Greater => detect_merges(source, target, pool),
        std::cmp::Ordering::Less => detect_splits(source, target, pool),
        std::cmp::Ordering::Equal => Vec::new(),
    };
    found.sort_by(|x, y| {
        y.score()
            .partial_cmp(&x.score())
            .expect("scores are finite")
    });
    found
}

/// Replace columns `a` and `b` of `table` by their concatenation
/// `a ◦ sep ◦ b` (placed at `a`'s position; `b` is dropped). The merged
/// column is named `"{name_a}+{name_b}"`.
fn concat_columns(table: &Table, a: usize, b: usize, sep: &str, pool: &mut ValuePool) -> Table {
    let arity = table.schema().arity();
    let names: Vec<String> = (0..arity)
        .filter(|&c| c != b)
        .map(|c| {
            if c == a {
                format!(
                    "{}+{}",
                    table.schema().name(AttrId(a as u32)),
                    table.schema().name(AttrId(b as u32))
                )
            } else {
                table.schema().name(AttrId(c as u32)).to_owned()
            }
        })
        .collect();
    let schema = Schema::new(names);
    let mut out = Table::with_capacity(schema, table.len());
    let mut buf = String::new();
    for rec in table.rows() {
        let values: Vec<Sym> = (0..arity)
            .filter(|&c| c != b)
            .map(|c| {
                if c == a {
                    buf.clear();
                    buf.push_str(pool.get(rec.get(a)));
                    buf.push_str(sep);
                    buf.push_str(pool.get(rec.get(b)));
                    pool.intern(&buf)
                } else {
                    rec.get(c)
                }
            })
            .collect();
        out.push(Record::new(values));
    }
    out
}

/// Apply detected restructures until both snapshots have the same arity.
///
/// Merges are *applied to the source* (re-creating the concatenated column
/// the target already has); splits are *applied to the target* (undoing the
/// cut so the source column matches). Returns the rewritten tables and the
/// applied restructures, or `None` when the arity gap cannot be explained
/// by concatenation evidence.
pub fn normalize_arity(
    source: &Table,
    target: &Table,
    pool: &mut ValuePool,
) -> Option<(Table, Table, Vec<Restructure>)> {
    let mut src = source.clone();
    let mut tgt = target.clone();
    let mut applied = Vec::new();
    while src.schema().arity() != tgt.schema().arity() {
        let found = detect_restructures(&src, &tgt, pool);
        let best = found.into_iter().next()?;
        match &best {
            Restructure::Merge {
                left, right, sep, ..
            } => {
                src = concat_columns(&src, left.0 as usize, right.0 as usize, sep, pool);
            }
            Restructure::Split {
                left, right, sep, ..
            } => {
                tgt = concat_columns(&tgt, left.0 as usize, right.0 as usize, sep, pool);
            }
        }
        applied.push(best);
    }
    Some((src, tgt, applied))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AffidavitConfig;
    use crate::instance::ProblemInstance;
    use crate::schema_align::align_schemas;
    use crate::search::Affidavit;

    fn names() -> (Vec<&'static str>, Vec<&'static str>) {
        (
            vec![
                "John", "Jane", "Max", "Ada", "Alan", "Grace", "Kurt", "Emmy", "Carl", "Sofia",
            ],
            vec![
                "Doe", "Weber", "Turing", "Hopper", "Liskov", "Noether", "Gauss", "Euler", "Curie",
                "Mayer",
            ],
        )
    }

    /// Source: (first, last, org); target: ("first last", org).
    fn merge_tables(pool: &mut ValuePool) -> (Table, Table) {
        let (firsts, lasts) = names();
        let orgs = ["IBM", "SAP", "BASF"];
        let mut rows_s = Vec::new();
        let mut rows_t = Vec::new();
        for i in 0..30usize {
            let f = firsts[i % firsts.len()];
            let l = lasts[(i * 3) % lasts.len()];
            let o = orgs[i % orgs.len()];
            rows_s.push(vec![f.to_owned(), l.to_owned(), o.to_owned()]);
            rows_t.push(vec![format!("{f} {l}"), o.to_owned()]);
        }
        let s = Table::from_rows(Schema::new(["first", "last", "org"]), pool, rows_s);
        let t = Table::from_rows(Schema::new(["name", "org"]), pool, rows_t);
        (s, t)
    }

    #[test]
    fn detects_merge_with_separator() {
        let mut pool = ValuePool::new();
        let (s, t) = merge_tables(&mut pool);
        let found = detect_restructures(&s, &t, &pool);
        assert!(!found.is_empty());
        let Restructure::Merge {
            target,
            left,
            right,
            sep,
            score,
        } = &found[0]
        else {
            panic!("expected merge, got {:?}", found[0]);
        };
        assert_eq!((*target, *left, *right), (AttrId(0), AttrId(0), AttrId(1)));
        assert_eq!(sep, " ");
        assert!(*score > 0.9, "score {score}");
    }

    #[test]
    fn detects_split() {
        let mut pool = ValuePool::new();
        // Source has "2019-08" periods; target splits into year / month.
        let mut rows_s = Vec::new();
        let mut rows_t = Vec::new();
        for i in 0..24usize {
            let y = 2015 + i / 12;
            let m = 1 + i % 12;
            rows_s.push(vec![format!("{y}-{m:02}"), format!("v{i}")]);
            rows_t.push(vec![format!("{y}"), format!("{m:02}"), format!("v{i}")]);
        }
        let s = Table::from_rows(Schema::new(["period", "val"]), &mut pool, rows_s);
        let t = Table::from_rows(Schema::new(["year", "month", "val"]), &mut pool, rows_t);
        let found = detect_restructures(&s, &t, &pool);
        let Restructure::Split {
            source,
            left,
            right,
            sep,
            ..
        } = &found[0]
        else {
            panic!("expected split, got {:?}", found[0]);
        };
        assert_eq!((*source, *left, *right), (AttrId(0), AttrId(0), AttrId(1)));
        assert_eq!(sep, "-");
    }

    #[test]
    fn empty_separator_merge() {
        let mut pool = ValuePool::new();
        // Codes "AA"‥ and "01"‥ merged without separator.
        let letters = ["AA", "BB", "CC", "DD"];
        let mut rows_s = Vec::new();
        let mut rows_t = Vec::new();
        for i in 0..20usize {
            let l = letters[i % letters.len()];
            let n = format!("{:02}", i % 50);
            rows_s.push(vec![l.to_owned(), n.clone(), format!("x{i}")]);
            rows_t.push(vec![format!("{l}{n}"), format!("x{i}")]);
        }
        let s = Table::from_rows(Schema::new(["cls", "num", "k"]), &mut pool, rows_s);
        let t = Table::from_rows(Schema::new(["code", "k"]), &mut pool, rows_t);
        let found = detect_restructures(&s, &t, &pool);
        let Restructure::Merge {
            sep, left, right, ..
        } = &found[0]
        else {
            panic!("expected merge");
        };
        assert_eq!(sep, "");
        assert_eq!((*left, *right), (AttrId(0), AttrId(1)));
    }

    #[test]
    fn equal_arity_detects_nothing() {
        let mut pool = ValuePool::new();
        let (s, _) = merge_tables(&mut pool);
        assert!(detect_restructures(&s, &s, &pool).is_empty());
    }

    #[test]
    fn merge_detected_under_noise() {
        // 30 % of target rows are inserts whose parts never occur in the
        // source — the score drops but stays above MIN_SCORE.
        let mut pool = ValuePool::new();
        let (firsts, lasts) = names();
        let mut rows_s = Vec::new();
        let mut rows_t = Vec::new();
        for i in 0..30usize {
            let f = format!("{}{i}", firsts[i % firsts.len()]);
            let l = lasts[(i * 3) % lasts.len()];
            rows_s.push(vec![f.clone(), l.to_owned(), format!("k{i}")]);
            rows_t.push(vec![format!("{f} {l}"), format!("k{i}")]);
        }
        for i in 0..12usize {
            rows_t.push(vec![format!("Unseen Person{i}"), format!("n{i}")]);
        }
        let s = Table::from_rows(Schema::new(["first", "last", "k"]), &mut pool, rows_s);
        let t = Table::from_rows(Schema::new(["name", "k"]), &mut pool, rows_t);
        let found = detect_restructures(&s, &t, &pool);
        let Restructure::Merge { score, sep, .. } = &found[0] else {
            panic!("expected merge under noise");
        };
        assert_eq!(sep, " ");
        assert!(*score >= MIN_SCORE && *score < 1.0, "score {score}");
    }

    #[test]
    fn explicit_separator_beats_empty_on_ties() {
        // Both " " and "" decompose every value (parts interned either
        // way); the explicit separator must win because "" is tried last
        // and ties keep the first maximum.
        let mut pool = ValuePool::new();
        let (firsts, lasts) = names();
        let mut rows_s = Vec::new();
        let mut rows_t = Vec::new();
        for i in 0..20usize {
            let f = firsts[i % firsts.len()];
            let l = lasts[(i * 7) % lasts.len()];
            rows_s.push(vec![format!("{f} "), l.to_owned(), format!("k{i}")]);
            rows_t.push(vec![format!("{f} {l}"), format!("k{i}")]);
        }
        let s = Table::from_rows(Schema::new(["a", "b", "k"]), &mut pool, rows_s);
        let t = Table::from_rows(Schema::new(["m", "k"]), &mut pool, rows_t);
        let found = detect_restructures(&s, &t, &pool);
        assert!(!found.is_empty());
        // Whatever separator wins, the normalization must reproduce the
        // target column exactly.
        let (s2, _, _) = normalize_arity(&s, &t, &mut pool).expect("normalizable");
        let merged: Vec<&str> = s2.column(AttrId(0)).iter().map(|&v| pool.get(v)).collect();
        assert!(merged.iter().all(|v| v.contains(' ')));
    }

    #[test]
    fn unrelated_wide_table_yields_none() {
        let mut pool = ValuePool::new();
        let rows_s: Vec<Vec<String>> = (0..20)
            .map(|i| vec![format!("alpha{i}"), format!("beta{i}"), format!("gamma{i}")])
            .collect();
        let rows_t: Vec<Vec<String>> = (0..20)
            .map(|i| vec![format!("delta{i}"), format!("epsilon{i}")])
            .collect();
        let s = Table::from_rows(Schema::new(["a", "b", "c"]), &mut pool, rows_s);
        let t = Table::from_rows(Schema::new(["x", "y"]), &mut pool, rows_t);
        assert!(normalize_arity(&s, &t, &mut pool).is_none());
    }

    #[test]
    fn normalize_then_search_explains_merge() {
        let mut pool = ValuePool::new();
        let (s, t) = merge_tables(&mut pool);
        let (s2, t2, applied) = normalize_arity(&s, &t, &mut pool).expect("normalizable");
        assert_eq!(applied.len(), 1);
        assert_eq!(s2.schema().arity(), 2);
        assert_eq!(s2.schema().name(AttrId(0)), "first+last");

        // After normalization the ordinary pipeline takes over.
        let al = align_schemas(&s2, &t2, &pool);
        let t3 = al.reorder_target(&t2, s2.schema());
        let mut inst = ProblemInstance::new(s2, t3, pool).unwrap();
        let out = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut inst);
        out.explanation.validate(&mut inst).unwrap();
        assert_eq!(out.explanation.core_size(), 30);
        assert!(out.explanation.functions.iter().all(|f| f.is_identity()));
    }

    #[test]
    fn normalize_applies_split_to_target() {
        let mut pool = ValuePool::new();
        let mut rows_s = Vec::new();
        let mut rows_t = Vec::new();
        for i in 0..24usize {
            let y = 2015 + i / 12;
            let m = 1 + i % 12;
            rows_s.push(vec![format!("{y}-{m:02}"), format!("v{i}")]);
            rows_t.push(vec![format!("{y}"), format!("{m:02}"), format!("v{i}")]);
        }
        let s = Table::from_rows(Schema::new(["period", "val"]), &mut pool, rows_s);
        let t = Table::from_rows(Schema::new(["year", "month", "val"]), &mut pool, rows_t);
        let (s2, t2, applied) = normalize_arity(&s, &t, &mut pool).expect("normalizable");
        assert_eq!(applied.len(), 1);
        assert_eq!(s2.schema().arity(), t2.schema().arity());

        let al = align_schemas(&s2, &t2, &pool);
        let t3 = al.reorder_target(&t2, s2.schema());
        let mut inst = ProblemInstance::new(s2, t3, pool).unwrap();
        let out = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut inst);
        out.explanation.validate(&mut inst).unwrap();
        assert_eq!(out.explanation.core_size(), 24);
    }
}
