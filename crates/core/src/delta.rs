//! Incremental re-profiling (`--delta`): fingerprinted block reuse.
//!
//! A profiling run spends almost all of its time re-deriving answers for
//! table pairs that did not change since the previous run. This module
//! persists a compact *manifest* next to each run — per-pair raw file
//! fingerprints, the final function assignment, the induced block-group
//! fingerprints of [`affidavit_blocking::delta`], the per-group partition
//! of the explanation, and the rendered report — and on a re-run splices
//! prior results for clean pairs while only dirty pairs re-enter the
//! search.
//!
//! Reuse is **per pair, all or nothing**. The search itself is a
//! best-first exploration whose polled/generated trajectory feeds user
//! output; warm-starting it from partial prior state would change those
//! bytes. So a pair is either *spliced* (its stored result provably still
//! applies) or fully *redone* — the group fingerprints exist to make the
//! "provably" cheap and to resolve reuse counters at sub-pair granularity.
//!
//! Two splice tiers:
//!
//! 1. **Raw tier** — the source and target file fingerprints and the
//!    config fingerprint match the manifest: the stored report is the
//!    answer, zero ingestion.
//! 2. **Staged tier** — the raw bytes differ but, after ingest and
//!    staging, the header fingerprint and *every* block-group fingerprint
//!    match (a CRLF or quoting no-op rewrite): the stored explanation is
//!    reassembled from the per-group partition, [`Explanation::validate`]d
//!    against the freshly staged instance, re-rendered, and compared
//!    against the stored report byte for byte. Any mismatch at any step
//!    falls back to a full redo on a pristine re-staged instance.
//!
//! The load-bearing invariant — proven by the delta-fuzz battery in
//! `tests/properties_delta.rs` — is that for every input and every edit
//! the delta output bytes equal the from-scratch output bytes; a
//! fingerprint mismatch can only ever cost time, never correctness.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use affidavit_blocking::delta::{
    final_blocking, group_fingerprints, group_records, header_fingerprint,
};
use affidavit_store::{fingerprint_file, manifest, Fingerprint};
use affidavit_table::{RecordId, ScratchPool};
use serde::{Deserialize, Serialize};

use crate::config::AffidavitConfig;
use crate::explanation::Explanation;
use crate::instance::ProblemInstance;
use crate::portable::PortableFunction;
use crate::profiling::{
    outcome_for, paired_csv_stems, stage_file_pair, ProfileOptions, SnapshotProfile, TableOutcome,
    TableProfile,
};
use crate::report::render_report;
use crate::search::Affidavit;

/// Manifest format version. Bumped on any incompatible change so stale
/// manifests fall back to a full redo instead of misparsing.
pub const DELTA_FORMAT_VERSION: u32 = 1;

/// One fingerprint group's slice of the stored explanation. Core pairs
/// are parallel arrays (`core_src[i]` aligns with `core_tgt[i]`); groups
/// are keyed by position, matching the group-fingerprint vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupRecord {
    /// The group fingerprint at record time (`Display` form).
    pub fp: String,
    /// Source ids of core pairs whose source record lives in this group.
    pub core_src: Vec<u32>,
    /// Target ids parallel to `core_src`.
    pub core_tgt: Vec<u32>,
    /// Deleted source ids in this group.
    pub deleted: Vec<u32>,
    /// Inserted target ids in this group.
    pub inserted: Vec<u32>,
}

/// Everything needed to splice one table pair without re-searching.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairRecord {
    /// Raw content fingerprint of the source CSV file.
    pub source_fp: String,
    /// Raw content fingerprint of the target CSV file.
    pub target_fp: String,
    /// [`header_fingerprint`] of the staged pair's final blocking.
    pub header_fp: String,
    /// The final function assignment, in interning-independent form.
    pub functions: Vec<PortableFunction>,
    /// Per-group fingerprints and explanation slices (dead-source
    /// pseudo-group last, mirroring [`group_fingerprints`]).
    pub groups: Vec<GroupRecord>,
    /// The rendered report at record time.
    pub report: String,
    /// Search states polled at record time.
    pub polled: u64,
    /// Search states generated at record time.
    pub generated: u64,
    /// Search wall time at record time, in milliseconds.
    pub millis: u64,
}

/// The persisted state of an `explain --delta` run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplainManifest {
    /// [`DELTA_FORMAT_VERSION`] at write time.
    pub version: u32,
    /// [`config_fingerprint`] at write time.
    pub config_fp: String,
    /// The single explained pair.
    pub pair: PairRecord,
}

/// One table's entry in a [`ProfileManifest`], keyed by file stem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableRecord {
    /// Table name (file stem), the pairing key across runs.
    pub stem: String,
    /// The summary row recorded for this pair.
    pub outcome: TableOutcome,
    /// The splice state for this pair.
    pub pair: PairRecord,
}

/// The persisted state of a `profile --delta` run. Tables that failed or
/// were missing in one snapshot carry no record and always re-derive.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileManifest {
    /// [`DELTA_FORMAT_VERSION`] at write time.
    pub version: u32,
    /// [`config_fingerprint`] at write time.
    pub config_fp: String,
    /// Per-table records, sorted by stem.
    pub tables: Vec<TableRecord>,
}

/// Reuse counters for one delta run. Block counts are in fingerprint
/// groups (see [`affidavit_blocking::delta::MAX_GROUPS`]); a spliced pair
/// reuses all of its groups, a redone pair redoes all of them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Fingerprint groups seen across all processed pairs.
    pub blocks_total: u64,
    /// Groups whose pair was spliced from the manifest.
    pub blocks_reused: u64,
    /// Groups whose pair re-entered the search.
    pub blocks_redone: u64,
    /// Broken-manifest events (unparsable, version or config mismatch,
    /// failed validation) that forced a full redo. Plain data dirt is
    /// *not* a fallback.
    pub fallbacks: u64,
    /// Pairs spliced without a search.
    pub pairs_spliced: u64,
    /// Pairs that re-entered the search.
    pub pairs_redone: u64,
}

impl DeltaStats {
    /// Fold another run's counters into this one.
    pub fn merge(&mut self, other: DeltaStats) {
        self.blocks_total += other.blocks_total;
        self.blocks_reused += other.blocks_reused;
        self.blocks_redone += other.blocks_redone;
        self.fallbacks += other.fallbacks;
        self.pairs_spliced += other.pairs_spliced;
        self.pairs_redone += other.pairs_redone;
    }

    /// Publish the counters to the process-global metrics registry
    /// (`delta_blocks_reused_total` …), where the resident service's
    /// metrics endpoint renders them.
    pub fn publish(&self) {
        let m = affidavit_obs::metrics();
        m.add_counter("delta_blocks_total", self.blocks_total);
        m.add_counter("delta_blocks_reused_total", self.blocks_reused);
        m.add_counter("delta_blocks_redone_total", self.blocks_redone);
        m.add_counter("delta_fallbacks_total", self.fallbacks);
        m.add_counter("delta_pairs_spliced_total", self.pairs_spliced);
        m.add_counter("delta_pairs_redone_total", self.pairs_redone);
    }

    /// One-line human summary for stderr diagnostics.
    pub fn summary(&self) -> String {
        format!(
            "{}/{} blocks reused, {} redone, {} fallbacks ({} pairs spliced, {} redone)",
            self.blocks_reused,
            self.blocks_total,
            self.blocks_redone,
            self.fallbacks,
            self.pairs_spliced,
            self.pairs_redone
        )
    }
}

/// The result of an `explain --delta` run.
pub struct DeltaReport {
    /// The rendered report — byte-identical to a from-scratch run.
    pub report: String,
    /// Search states polled (stored value when spliced).
    pub polled: u64,
    /// Search states generated (stored value when spliced).
    pub generated: u64,
    /// Search wall time (stored value when spliced).
    pub duration: Duration,
    /// Whether the result was spliced from the manifest.
    pub spliced: bool,
    /// Reuse counters for this run.
    pub stats: DeltaStats,
    /// The staged instance, when the run went through the search (used
    /// by differential tests to compare pool state against a
    /// from-scratch run). `None` when spliced.
    pub instance: Option<ProblemInstance>,
}

/// Fingerprint the parts of the configuration that shape output bytes:
/// the search configuration and schema alignment. Ingestion chunking and
/// pool backend are deliberately excluded — they are byte-transparent, so
/// a manifest recorded under one backend splices under another.
pub fn config_fingerprint(config: &AffidavitConfig, align: bool) -> String {
    let mut fnv = affidavit_store::Fnv::new();
    fnv.update_str(&serde_json::to_string(config).expect("configs are serializable"));
    fnv.update(&[u8::from(align)]);
    fnv.update_u64(u64::from(DELTA_FORMAT_VERSION));
    fnv.finish().to_string()
}

/// Default manifest path for `explain --delta`: a sibling of the target
/// CSV named `<target>.affidavit-delta.json`.
pub fn default_explain_state(target: &Path) -> PathBuf {
    let mut name = target
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "target".to_owned());
    name.push_str(".affidavit-delta.json");
    target.with_file_name(name)
}

/// Default manifest path for `profile --delta`:
/// `<target_dir>/.affidavit-delta.json` (invisible to the `*.csv` stem
/// enumeration).
pub fn default_profile_state(target_dir: &Path) -> PathBuf {
    target_dir.join(".affidavit-delta.json")
}

fn file_fp(path: &Path) -> Result<Fingerprint, String> {
    fingerprint_file(path).map_err(|e| format!("{}: {e}", path.display()))
}

/// Record the splice state of a finished pair. Blocking is derived on a
/// scratch overlay so the instance pool is left untouched — the redo
/// path's pool bytes are compared against from-scratch runs by the fuzz
/// battery.
#[allow(clippy::too_many_arguments)]
fn record_pair(
    raw_src: &Fingerprint,
    raw_tgt: &Fingerprint,
    explanation: &Explanation,
    report: &str,
    instance: &ProblemInstance,
    polled: u64,
    generated: u64,
    millis: u64,
) -> PairRecord {
    let mut scratch = ScratchPool::new(instance.pool.reader());
    let blocking = final_blocking(
        &explanation.functions,
        &instance.source,
        &instance.target,
        &mut scratch,
    );
    let fps = group_fingerprints(&blocking, &instance.source, &instance.target, &scratch);
    let header = header_fingerprint(&blocking, &instance.source, &instance.target);
    let map = group_records(&blocking, instance.source.len(), instance.target.len());
    let mut groups: Vec<GroupRecord> = fps
        .iter()
        .map(|fp| GroupRecord {
            fp: fp.to_string(),
            core_src: Vec::new(),
            core_tgt: Vec::new(),
            deleted: Vec::new(),
            inserted: Vec::new(),
        })
        .collect();
    for &(sid, tid) in explanation.core_pairs() {
        let g = map.src_group[sid.index()] as usize;
        groups[g].core_src.push(sid.0);
        groups[g].core_tgt.push(tid.0);
    }
    for &sid in &explanation.deleted {
        groups[map.src_group[sid.index()] as usize]
            .deleted
            .push(sid.0);
    }
    for &tid in &explanation.inserted {
        groups[map.tgt_group[tid.index()] as usize]
            .inserted
            .push(tid.0);
    }
    PairRecord {
        source_fp: raw_src.to_string(),
        target_fp: raw_tgt.to_string(),
        header_fp: header.to_string(),
        functions: explanation
            .functions
            .iter()
            .map(|f| PortableFunction::from_attr(f, &instance.pool))
            .collect(),
        groups,
        report: report.to_owned(),
        polled,
        generated,
        millis,
    }
}

/// The outcome of checking a staged instance against a stored pair.
enum BlockCheck {
    /// Header and every group fingerprint match: the staged pair is
    /// identical (as indexed sequences) to the recorded one.
    Clean,
    /// Data changed; `dirty` of `total` groups differ.
    Dirty {
        /// Differing group count, for diagnostics.
        dirty: usize,
        /// Total group count of the staged instance.
        total: usize,
    },
    /// The manifest cannot be interpreted against this instance.
    Broken(String),
}

/// Re-derive the final blocking from the stored functions on a scratch
/// overlay and compare fingerprints against the stored groups.
fn check_blocks(pair: &PairRecord, instance: &ProblemInstance) -> BlockCheck {
    let mut scratch = ScratchPool::new(instance.pool.reader());
    let functions: Vec<_> = match pair
        .functions
        .iter()
        .map(|f| f.to_attr_in(&mut scratch))
        .collect::<Result<_, _>>()
    {
        Ok(fns) => fns,
        Err(e) => return BlockCheck::Broken(format!("manifest functions: {e}")),
    };
    if functions.len() != instance.arity() {
        return BlockCheck::Broken(format!(
            "manifest has {} functions for arity {}",
            functions.len(),
            instance.arity()
        ));
    }
    let blocking = final_blocking(&functions, &instance.source, &instance.target, &mut scratch);
    let fps = group_fingerprints(&blocking, &instance.source, &instance.target, &scratch);
    let total = fps.len();
    if header_fingerprint(&blocking, &instance.source, &instance.target).to_string()
        != pair.header_fp
        || total != pair.groups.len()
    {
        return BlockCheck::Dirty {
            dirty: total,
            total,
        };
    }
    let dirty = fps
        .iter()
        .zip(&pair.groups)
        .filter(|(fp, g)| fp.to_string() != g.fp)
        .count();
    if dirty == 0 {
        BlockCheck::Clean
    } else {
        BlockCheck::Dirty { dirty, total }
    }
}

/// Reassemble the stored explanation against a freshly staged instance,
/// validate it, re-render the report and require it to match the stored
/// bytes. On success the stored report *is* the from-scratch answer.
///
/// Interns into `instance.pool` (function constants, validation images);
/// on `Err` the caller must re-stage before redoing.
fn splice_pair(pair: &PairRecord, instance: &mut ProblemInstance) -> Result<Explanation, String> {
    let functions = pair
        .functions
        .iter()
        .map(|f| f.to_attr(&mut instance.pool))
        .collect::<Result<Vec<_>, _>>()?;
    let n_src = instance.source.len() as u32;
    let n_tgt = instance.target.len() as u32;
    let mut core = Vec::new();
    let mut deleted = Vec::new();
    let mut inserted = Vec::new();
    for g in &pair.groups {
        if g.core_src.len() != g.core_tgt.len() {
            return Err("manifest group has unpaired core ids".to_owned());
        }
        for (&s, &t) in g.core_src.iter().zip(&g.core_tgt) {
            if s >= n_src || t >= n_tgt {
                return Err("manifest core id out of range".to_owned());
            }
            core.push((RecordId(s), RecordId(t)));
        }
        for &s in &g.deleted {
            if s >= n_src {
                return Err("manifest deleted id out of range".to_owned());
            }
            deleted.push(RecordId(s));
        }
        for &t in &g.inserted {
            if t >= n_tgt {
                return Err("manifest inserted id out of range".to_owned());
            }
            inserted.push(RecordId(t));
        }
    }
    // `Explanation::from_functions` emits core ascending by source id,
    // deleted ascending and inserted sorted; restore that order after the
    // per-group concatenation so rendering matches byte for byte.
    core.sort_unstable_by_key(|&(s, _)| s);
    deleted.sort_unstable();
    inserted.sort_unstable();
    let explanation = Explanation::new(functions, deleted, inserted, core);
    explanation.validate(instance)?;
    let rendered = render_report(&explanation, instance);
    if rendered != pair.report {
        return Err("stored report does not match the reassembled explanation".to_owned());
    }
    Ok(explanation)
}

fn load_explain_manifest(
    state: &Path,
    config_fp: &str,
    stats: &mut DeltaStats,
) -> Option<ExplainManifest> {
    let text = load_state_text(state, stats)?;
    match serde_json::from_str::<ExplainManifest>(&text) {
        Ok(m) if m.version == DELTA_FORMAT_VERSION && m.config_fp == config_fp => Some(m),
        Ok(_) => {
            stats.fallbacks += 1;
            affidavit_obs::diag(
                "delta.fallback",
                &format!("{}: version or config mismatch, full redo", state.display()),
            );
            None
        }
        Err(e) => {
            stats.fallbacks += 1;
            affidavit_obs::diag(
                "delta.fallback",
                &format!("{}: unparsable manifest ({e}), full redo", state.display()),
            );
            None
        }
    }
}

fn load_profile_manifest(
    state: &Path,
    config_fp: &str,
    stats: &mut DeltaStats,
) -> Option<ProfileManifest> {
    let text = load_state_text(state, stats)?;
    match serde_json::from_str::<ProfileManifest>(&text) {
        Ok(m) if m.version == DELTA_FORMAT_VERSION && m.config_fp == config_fp => Some(m),
        Ok(_) => {
            stats.fallbacks += 1;
            affidavit_obs::diag(
                "delta.fallback",
                &format!("{}: version or config mismatch, full redo", state.display()),
            );
            None
        }
        Err(e) => {
            stats.fallbacks += 1;
            affidavit_obs::diag(
                "delta.fallback",
                &format!("{}: unparsable manifest ({e}), full redo", state.display()),
            );
            None
        }
    }
}

fn load_state_text(state: &Path, stats: &mut DeltaStats) -> Option<String> {
    match manifest::load_string(state) {
        Ok(text) => text, // None = first run, not a fallback
        Err(e) => {
            stats.fallbacks += 1;
            affidavit_obs::diag(
                "delta.fallback",
                &format!("{}: {e}, full redo", state.display()),
            );
            None
        }
    }
}

/// A manifest-save failure must not fail the run — delta is an
/// optimization; the report is already correct.
fn save_state(state: &Path, json: &str) {
    if let Err(e) = manifest::save_atomic(state, json) {
        affidavit_obs::diag(
            "delta.state",
            &format!("{}: could not save manifest: {e}", state.display()),
        );
    }
}

/// `explain --delta` for one CSV pair, staging through the one-shot
/// ingestion path.
pub fn explain_delta(
    source: &Path,
    target: &Path,
    opts: &ProfileOptions,
    state: &Path,
) -> Result<DeltaReport, String> {
    explain_delta_with(source, target, opts, state, &mut || {
        stage_file_pair(source, target, opts)
    })
}

/// `explain --delta` with a caller-supplied staging hook — the resident
/// service stages through its pinned-session LRU instead of a cold
/// ingest. The hook may run zero times (raw-tier splice), once, or twice
/// (re-stage after a failed staged-tier splice).
pub fn explain_delta_with(
    source: &Path,
    target: &Path,
    opts: &ProfileOptions,
    state: &Path,
    stage: &mut dyn FnMut() -> Result<ProblemInstance, String>,
) -> Result<DeltaReport, String> {
    let config_fp = config_fingerprint(&opts.config, opts.align);
    let mut stats = DeltaStats::default();
    let prior = load_explain_manifest(state, &config_fp, &mut stats);
    let raw_src = file_fp(source)?;
    let raw_tgt = file_fp(target)?;

    if let Some(m) = &prior {
        let raw_clean = {
            let _s = affidavit_obs::span("delta.diff");
            m.pair.source_fp == raw_src.to_string() && m.pair.target_fp == raw_tgt.to_string()
        };
        if raw_clean {
            let _s = affidavit_obs::span("delta.splice");
            let n = m.pair.groups.len() as u64;
            stats.blocks_total += n;
            stats.blocks_reused += n;
            stats.pairs_spliced += 1;
            stats.publish();
            return Ok(DeltaReport {
                report: m.pair.report.clone(),
                polled: m.pair.polled,
                generated: m.pair.generated,
                duration: Duration::from_millis(m.pair.millis),
                spliced: true,
                stats,
                instance: None,
            });
        }
    }

    let mut instance = stage()?;
    let mut restage = false;
    if let Some(m) = &prior {
        let check = {
            let _s = affidavit_obs::span("delta.diff");
            check_blocks(&m.pair, &instance)
        };
        match check {
            BlockCheck::Clean => {
                let _s = affidavit_obs::span("delta.splice");
                match splice_pair(&m.pair, &mut instance) {
                    Ok(_) => {
                        let n = m.pair.groups.len() as u64;
                        stats.blocks_total += n;
                        stats.blocks_reused += n;
                        stats.pairs_spliced += 1;
                        // Refresh the raw fingerprints so the next run of
                        // this byte-form takes the raw tier.
                        let mut refreshed = m.clone();
                        refreshed.pair.source_fp = raw_src.to_string();
                        refreshed.pair.target_fp = raw_tgt.to_string();
                        save_state(
                            state,
                            &serde_json::to_string(&refreshed).expect("manifests are serializable"),
                        );
                        stats.publish();
                        return Ok(DeltaReport {
                            report: m.pair.report.clone(),
                            polled: m.pair.polled,
                            generated: m.pair.generated,
                            duration: Duration::from_millis(m.pair.millis),
                            spliced: true,
                            stats,
                            instance: None,
                        });
                    }
                    Err(reason) => {
                        stats.fallbacks += 1;
                        affidavit_obs::diag(
                            "delta.fallback",
                            &format!("splice rejected ({reason}), full redo"),
                        );
                        restage = true; // the splice attempt interned into the pool
                    }
                }
            }
            BlockCheck::Dirty { dirty, total } => {
                affidavit_obs::diag("delta.diff", &format!("{dirty}/{total} groups dirty, redo"));
            }
            BlockCheck::Broken(reason) => {
                stats.fallbacks += 1;
                affidavit_obs::diag("delta.fallback", &format!("{reason}, full redo"));
            }
        }
    }
    if restage {
        instance = stage()?;
    }

    let _s = affidavit_obs::span("delta.redo");
    let started = Instant::now();
    let outcome = Affidavit::new(opts.config.clone()).explain(&mut instance);
    let millis = started.elapsed().as_millis() as u64;
    let report = render_report(&outcome.explanation, &instance);
    let polled = outcome.stats.polled as u64;
    let generated = outcome.stats.states_generated as u64;
    let pair = record_pair(
        &raw_src,
        &raw_tgt,
        &outcome.explanation,
        &report,
        &instance,
        polled,
        generated,
        millis,
    );
    let n = pair.groups.len() as u64;
    stats.blocks_total += n;
    stats.blocks_redone += n;
    stats.pairs_redone += 1;
    save_state(
        state,
        &serde_json::to_string(&ExplainManifest {
            version: DELTA_FORMAT_VERSION,
            config_fp,
            pair,
        })
        .expect("manifests are serializable"),
    );
    stats.publish();
    Ok(DeltaReport {
        report,
        polled,
        generated,
        duration: outcome.stats.duration,
        spliced: false,
        stats,
        instance: Some(instance),
    })
}

/// `profile --delta`: profile two snapshot directories, splicing clean
/// table pairs from the manifest at `state` and re-searching only dirty
/// ones. The returned profile is byte-identical to
/// [`crate::profiling::profile_dirs`] on the same inputs (timing fields
/// aside — spliced rows keep their recorded `millis`).
pub fn profile_dirs_delta(
    source_dir: &Path,
    target_dir: &Path,
    opts: &ProfileOptions,
    state: &Path,
) -> Result<(SnapshotProfile, DeltaStats), String> {
    use rayon::prelude::*;

    let config_fp = config_fingerprint(&opts.config, opts.align);
    let mut stats = DeltaStats::default();
    let prior = load_profile_manifest(state, &config_fp, &mut stats);
    let prior_by_stem: HashMap<&str, &TableRecord> = prior
        .iter()
        .flat_map(|m| m.tables.iter())
        .map(|t| (t.stem.as_str(), t))
        .collect();

    let pairs = paired_csv_stems(source_dir, target_dir)?;
    let results: Vec<(TableProfile, Option<TableRecord>, DeltaStats)> = pairs
        .par_iter()
        .map(|pair| match (&pair.source, &pair.target) {
            (Some(src), Some(tgt)) => delta_table(
                &pair.name,
                src,
                tgt,
                opts,
                prior_by_stem.get(pair.name.as_str()).copied(),
            ),
            (Some(_), None) => (
                TableProfile {
                    name: pair.name.clone(),
                    outcome: TableOutcome::MissingInTarget,
                },
                None,
                DeltaStats::default(),
            ),
            (None, Some(_)) => (
                TableProfile {
                    name: pair.name.clone(),
                    outcome: TableOutcome::MissingInSource,
                },
                None,
                DeltaStats::default(),
            ),
            (None, None) => unreachable!("a paired stem exists in at least one snapshot"),
        })
        .collect();

    let mut tables = Vec::with_capacity(results.len());
    let mut records = Vec::new();
    for (profile, record, table_stats) in results {
        stats.merge(table_stats);
        tables.push(profile);
        records.extend(record);
    }
    save_state(
        state,
        &serde_json::to_string(&ProfileManifest {
            version: DELTA_FORMAT_VERSION,
            config_fp,
            tables: records,
        })
        .expect("manifests are serializable"),
    );
    stats.publish();
    Ok((SnapshotProfile { tables }, stats))
}

/// One table pair of a delta profiling run: raw-tier splice, staged-tier
/// splice, or redo — mirroring [`explain_delta_with`] but folding into a
/// [`TableOutcome`] row and a fresh [`TableRecord`].
fn delta_table(
    stem: &str,
    src: &Path,
    tgt: &Path,
    opts: &ProfileOptions,
    prior: Option<&TableRecord>,
) -> (TableProfile, Option<TableRecord>, DeltaStats) {
    let mut stats = DeltaStats::default();
    let raw_src = fingerprint_file(src).ok();
    let raw_tgt = fingerprint_file(tgt).ok();

    if let (Some(rec), Some(rs), Some(rt)) = (prior, &raw_src, &raw_tgt) {
        let raw_clean = {
            let _s = affidavit_obs::span("delta.diff");
            rec.pair.source_fp == rs.to_string() && rec.pair.target_fp == rt.to_string()
        };
        if raw_clean {
            let _s = affidavit_obs::span("delta.splice");
            let n = rec.pair.groups.len() as u64;
            stats.blocks_total += n;
            stats.blocks_reused += n;
            stats.pairs_spliced += 1;
            return (
                TableProfile {
                    name: stem.to_owned(),
                    outcome: rec.outcome.clone(),
                },
                Some(rec.clone()),
                stats,
            );
        }
    }

    let failed = |reason: String, stats: DeltaStats| {
        (
            TableProfile {
                name: stem.to_owned(),
                outcome: TableOutcome::Failed { reason },
            },
            None,
            stats,
        )
    };
    let mut instance = match stage_file_pair(src, tgt, opts) {
        Ok(instance) => instance,
        Err(reason) => return failed(reason, stats),
    };

    let mut restage = false;
    if let Some(rec) = prior {
        let check = {
            let _s = affidavit_obs::span("delta.diff");
            check_blocks(&rec.pair, &instance)
        };
        match check {
            BlockCheck::Clean => {
                let _s = affidavit_obs::span("delta.splice");
                let spliced = splice_pair(&rec.pair, &mut instance).and_then(|explanation| {
                    // The stored summary row must match the reassembled
                    // explanation too, not just the report.
                    let outcome = outcome_for(&explanation, &instance, rec.pair.millis);
                    let same = serde_json::to_string(&outcome).ok()
                        == serde_json::to_string(&rec.outcome).ok();
                    same.then_some(outcome)
                        .ok_or_else(|| "stored outcome does not match".to_owned())
                });
                match spliced {
                    Ok(outcome) => {
                        let n = rec.pair.groups.len() as u64;
                        stats.blocks_total += n;
                        stats.blocks_reused += n;
                        stats.pairs_spliced += 1;
                        let mut refreshed = rec.clone();
                        if let (Some(rs), Some(rt)) = (&raw_src, &raw_tgt) {
                            refreshed.pair.source_fp = rs.to_string();
                            refreshed.pair.target_fp = rt.to_string();
                        }
                        return (
                            TableProfile {
                                name: stem.to_owned(),
                                outcome,
                            },
                            Some(refreshed),
                            stats,
                        );
                    }
                    Err(reason) => {
                        stats.fallbacks += 1;
                        affidavit_obs::diag(
                            "delta.fallback",
                            &format!("{stem}: splice rejected ({reason}), full redo"),
                        );
                        restage = true;
                    }
                }
            }
            BlockCheck::Dirty { dirty, total } => {
                affidavit_obs::diag(
                    "delta.diff",
                    &format!("{stem}: {dirty}/{total} groups dirty, redo"),
                );
            }
            BlockCheck::Broken(reason) => {
                stats.fallbacks += 1;
                affidavit_obs::diag("delta.fallback", &format!("{stem}: {reason}, full redo"));
            }
        }
    }
    if restage {
        instance = match stage_file_pair(src, tgt, opts) {
            Ok(instance) => instance,
            Err(reason) => return failed(reason, stats),
        };
    }

    let _s = affidavit_obs::span("delta.redo");
    let started = Instant::now();
    let outcome = Affidavit::new(opts.config.clone()).explain(&mut instance);
    let millis = started.elapsed().as_millis() as u64;
    let table_outcome = outcome_for(&outcome.explanation, &instance, millis);
    let record = if let (Some(rs), Some(rt)) = (&raw_src, &raw_tgt) {
        let report = render_report(&outcome.explanation, &instance);
        let pair = record_pair(
            rs,
            rt,
            &outcome.explanation,
            &report,
            &instance,
            outcome.stats.polled as u64,
            outcome.stats.states_generated as u64,
            millis,
        );
        stats.blocks_total += pair.groups.len() as u64;
        stats.blocks_redone += pair.groups.len() as u64;
        Some(TableRecord {
            stem: stem.to_owned(),
            outcome: table_outcome.clone(),
            pair,
        })
    } else {
        None
    };
    stats.pairs_redone += 1;
    (
        TableProfile {
            name: stem.to_owned(),
            outcome: table_outcome,
        },
        record,
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_pair(root: &Path, src: &str, tgt: &str) -> (PathBuf, PathBuf) {
        std::fs::create_dir_all(root).unwrap();
        let s = root.join("src.csv");
        let t = root.join("tgt.csv");
        std::fs::write(&s, src).unwrap();
        std::fs::write(&t, tgt).unwrap();
        (s, t)
    }

    fn scratch_report(s: &Path, t: &Path, opts: &ProfileOptions) -> String {
        let mut instance = stage_file_pair(s, t, opts).unwrap();
        let outcome = Affidavit::new(opts.config.clone()).explain(&mut instance);
        render_report(&outcome.explanation, &instance)
    }

    #[test]
    fn explain_delta_splices_then_redoes_on_edit() {
        let root = std::env::temp_dir().join("affidavit-delta-explain-test");
        std::fs::remove_dir_all(&root).ok();
        let src = "k,v\nk0,1000\nk1,2000\nk2,3000\n";
        let (s, t) = write_pair(&root, src, "k,v\nk0,1\nk1,2\nk2,3\n");
        let opts = ProfileOptions::default();
        let state = default_explain_state(&t);
        assert!(state.ends_with("tgt.csv.affidavit-delta.json"));

        let first = explain_delta(&s, &t, &opts, &state).unwrap();
        assert!(!first.spliced);
        assert_eq!(first.stats.pairs_redone, 1);
        assert_eq!(first.stats.blocks_redone, first.stats.blocks_total);
        assert_eq!(first.report, scratch_report(&s, &t, &opts));

        // Unchanged inputs: raw-tier splice, byte-identical report.
        let second = explain_delta(&s, &t, &opts, &state).unwrap();
        assert!(second.spliced);
        assert_eq!(second.stats.pairs_spliced, 1);
        assert_eq!(second.stats.blocks_reused, second.stats.blocks_total);
        assert_eq!(second.report, first.report);

        // A CRLF rewrite dirties the raw tier but splices on the staged
        // tier (every group fingerprint still matches).
        std::fs::write(&t, "k,v\r\nk0,1\r\nk1,2\r\nk2,3\r\n").unwrap();
        let crlf = explain_delta(&s, &t, &opts, &state).unwrap();
        assert!(
            crlf.spliced,
            "no-op rewrite must splice: {}",
            crlf.stats.summary()
        );
        assert_eq!(crlf.report, first.report);
        // ... and the refreshed manifest makes the next run raw-tier again.
        let warm = explain_delta(&s, &t, &opts, &state).unwrap();
        assert!(warm.spliced && warm.instance.is_none());

        // A real edit forces a redo whose report matches from-scratch.
        std::fs::write(&t, "k,v\nk0,1\nk1,9\nk2,3\n").unwrap();
        let edited = explain_delta(&s, &t, &opts, &state).unwrap();
        assert!(!edited.spliced);
        assert_eq!(edited.stats.fallbacks, 0, "data dirt is not a fallback");
        assert_eq!(edited.report, scratch_report(&s, &t, &opts));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn a_corrupt_manifest_falls_back_to_a_correct_redo() {
        let root = std::env::temp_dir().join("affidavit-delta-corrupt-test");
        std::fs::remove_dir_all(&root).ok();
        let (s, t) = write_pair(&root, "a\n1\n2\n", "a\n1\n2\n");
        let opts = ProfileOptions::default();
        let state = root.join("state.json");
        explain_delta(&s, &t, &opts, &state).unwrap();

        std::fs::write(&state, "{not json").unwrap();
        let report = explain_delta(&s, &t, &opts, &state).unwrap();
        assert!(!report.spliced);
        assert_eq!(report.stats.fallbacks, 1);
        assert_eq!(report.report, scratch_report(&s, &t, &opts));
        // The redo rewrote a valid manifest; the next run splices again.
        assert!(explain_delta(&s, &t, &opts, &state).unwrap().spliced);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn a_config_change_invalidates_the_manifest() {
        let root = std::env::temp_dir().join("affidavit-delta-config-test");
        std::fs::remove_dir_all(&root).ok();
        let (s, t) = write_pair(&root, "a\n1\n", "a\n1\n");
        let state = root.join("state.json");
        let id = ProfileOptions::default();
        explain_delta(&s, &t, &id, &state).unwrap();
        let sem = ProfileOptions {
            config: AffidavitConfig::paper_overlap(),
            ..ProfileOptions::default()
        };
        let report = explain_delta(&s, &t, &sem, &state).unwrap();
        assert!(!report.spliced);
        assert_eq!(report.stats.fallbacks, 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn profile_delta_reuses_clean_tables_and_redoes_dirty_ones() {
        let root = std::env::temp_dir().join("affidavit-delta-profile-test");
        std::fs::remove_dir_all(&root).ok();
        let src = root.join("before");
        let tgt = root.join("after");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::create_dir_all(&tgt).unwrap();
        for i in 0..4 {
            let body: String = (0..10).map(|r| format!("k{r},{}\n", r * (i + 1))).collect();
            std::fs::write(src.join(format!("t{i}.csv")), format!("k,v\n{body}")).unwrap();
            std::fs::write(tgt.join(format!("t{i}.csv")), format!("k,v\n{body}")).unwrap();
        }
        std::fs::write(src.join("gone.csv"), "a\n1\n").unwrap();
        let opts = ProfileOptions::default();
        let state = default_profile_state(&tgt);

        let (first, s1) = profile_dirs_delta(&src, &tgt, &opts, &state).unwrap();
        assert_eq!(s1.pairs_redone, 4);
        let baseline = {
            let mut p = crate::profiling::profile_dirs(&src, &tgt, &opts).unwrap();
            p.strip_timing();
            p.to_json()
        };
        let strip = |mut p: SnapshotProfile| {
            p.strip_timing();
            p.to_json()
        };
        assert_eq!(strip(first), baseline);

        // Clean re-run: everything splices, nothing redone.
        let (second, s2) = profile_dirs_delta(&src, &tgt, &opts, &state).unwrap();
        assert_eq!(s2.pairs_spliced, 4);
        assert_eq!(s2.blocks_redone, 0);
        assert_eq!(strip(second), baseline);

        // Edit one table: exactly one pair redone, profile still matches
        // from-scratch.
        let edited = tgt.join("t2.csv");
        let mut body = std::fs::read_to_string(&edited).unwrap();
        body.push_str("k10,999\n");
        std::fs::write(&edited, body).unwrap();
        let (third, s3) = profile_dirs_delta(&src, &tgt, &opts, &state).unwrap();
        assert_eq!(s3.pairs_redone, 1);
        assert_eq!(s3.pairs_spliced, 3);
        let rebaseline = {
            let mut p = crate::profiling::profile_dirs(&src, &tgt, &opts).unwrap();
            p.strip_timing();
            p.to_json()
        };
        assert_eq!(strip(third), rebaseline);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn config_fingerprint_separates_configs_and_align() {
        let id = AffidavitConfig::paper_id();
        let sem = AffidavitConfig::paper_overlap();
        assert_eq!(
            config_fingerprint(&id, false),
            config_fingerprint(&id, false)
        );
        assert_ne!(
            config_fingerprint(&id, false),
            config_fingerprint(&sem, false)
        );
        assert_ne!(
            config_fingerprint(&id, false),
            config_fingerprint(&id, true)
        );
    }
}
