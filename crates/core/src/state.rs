//! Search states (Def. 4.1).
//!
//! A state is a `d`-tuple assigning to each attribute either `∗`
//! (undecided), `⊞` (identified as needing a value mapping, resolved at
//! finalization) or a concrete function from `F`.

use std::sync::Arc;

use affidavit_blocking::Blocking;
use affidavit_functions::AttrFunction;

/// Per-attribute component of a search state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Assignment {
    /// `∗` — the function of this attribute is still undecided.
    Undecided,
    /// `⊞` — a value mapping is best suited; resolved at the very end of
    /// the search when the alignment is maximally determined.
    MapMarked,
    /// A concrete attribute function.
    Assigned(AttrFunction),
}

impl Assignment {
    /// True for `∗` or `⊞` (the function is not yet determined).
    pub fn is_open(&self) -> bool {
        !matches!(self, Assignment::Assigned(_))
    }
}

/// A node of the search lattice, carrying its blocking result and cost.
#[derive(Debug, Clone)]
pub struct SearchState {
    /// One assignment per attribute.
    pub assignments: Vec<Assignment>,
    /// The blocking result Φ^H under the assigned functions (shared with
    /// children until they refine it).
    pub blocking: Arc<Blocking>,
    /// `c(H)` per Def. 4.6 (see `cost` module for normalization notes).
    pub cost: f64,
    /// Unique id (tracing / parent links).
    pub id: usize,
    /// Id of the parent state, if any.
    pub parent: Option<usize>,
}

impl SearchState {
    /// Number of concretely assigned attributes — the state's level in the
    /// search lattice.
    pub fn level(&self) -> usize {
        self.assignments
            .iter()
            .filter(|a| matches!(a, Assignment::Assigned(_)))
            .count()
    }

    /// End state check (Def. 4.2): every attribute's function is
    /// determined, i.e. no `∗` and no `⊞` remains.
    pub fn is_end_state(&self) -> bool {
        self.assignments
            .iter()
            .all(|a| matches!(a, Assignment::Assigned(_)))
    }

    /// Indices of `∗` attributes.
    pub fn undecided_attrs(&self) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a, Assignment::Undecided))
            .map(|(i, _)| i)
            .collect()
    }

    /// The concrete function tuple, if this is an end state.
    pub fn functions(&self) -> Option<Vec<AttrFunction>> {
        self.assignments
            .iter()
            .map(|a| match a {
                Assignment::Assigned(f) => Some(f.clone()),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_blocking::Blocking;

    fn state(assignments: Vec<Assignment>) -> SearchState {
        SearchState {
            assignments,
            blocking: Arc::new(Blocking::default()),
            cost: 0.0,
            id: 0,
            parent: None,
        }
    }

    #[test]
    fn level_counts_assigned_only() {
        let st = state(vec![
            Assignment::Assigned(AttrFunction::Identity),
            Assignment::Undecided,
            Assignment::MapMarked,
        ]);
        assert_eq!(st.level(), 1);
        assert!(!st.is_end_state());
        assert_eq!(st.undecided_attrs(), vec![1]);
        assert!(st.functions().is_none());
    }

    #[test]
    fn end_state() {
        let st = state(vec![
            Assignment::Assigned(AttrFunction::Identity),
            Assignment::Assigned(AttrFunction::Uppercase),
        ]);
        assert!(st.is_end_state());
        assert_eq!(st.functions().unwrap().len(), 2);
    }
}
