//! Schema alignment — the §6 future-work variant "without knowledge of the
//! schema alignment", covering attribute **renaming and reordering**
//! (merging/splitting is out of scope, as in the paper's sketch).
//!
//! Target columns are matched to source columns by a blend of
//!
//! * **value overlap** — histogram intersection of the two columns' value
//!   multisets (strong when the attribute was not transformed), and
//! * **profile similarity** — numeric fraction, distinct fraction and mean
//!   string length (robust when the values were systematically transformed
//!   and exact overlap is zero).
//!
//! The resulting column permutation lets the ordinary Affidavit search run
//! on snapshots whose schemas no longer line up by name or position.

use affidavit_table::{AttrId, FxHashMap, Sym, Table, ValuePool};

/// A proposed column correspondence.
#[derive(Debug, Clone)]
pub struct SchemaAlignment {
    /// `mapping[i] = j` — source column `i` corresponds to target column
    /// `j`. A permutation of `0..arity`.
    pub mapping: Vec<usize>,
    /// Per-source-column confidence scores in `[0, 1]`.
    pub scores: Vec<f64>,
}

/// Per-column profile used for the transformed-column fallback signal.
#[derive(Debug, Clone, Copy, Default)]
struct ColumnProfile {
    numeric_fraction: f64,
    distinct_fraction: f64,
    mean_len: f64,
}

fn profile(table: &Table, col: usize, pool: &ValuePool) -> ColumnProfile {
    let n = table.len();
    if n == 0 {
        return ColumnProfile::default();
    }
    let mut numeric = 0usize;
    let mut len_sum = 0usize;
    let mut distinct: affidavit_table::FxHashSet<Sym> = Default::default();
    for &v in table.column(AttrId(col as u32)) {
        distinct.insert(v);
        if pool.decimal(v).is_some() {
            numeric += 1;
        }
        len_sum += pool.get(v).chars().count();
    }
    ColumnProfile {
        numeric_fraction: numeric as f64 / n as f64,
        distinct_fraction: distinct.len() as f64 / n as f64,
        mean_len: len_sum as f64 / n as f64,
    }
}

fn histogram(table: &Table, col: usize) -> FxHashMap<Sym, u32> {
    let mut h: FxHashMap<Sym, u32> = FxHashMap::default();
    for &v in table.column(AttrId(col as u32)) {
        *h.entry(v).or_default() += 1;
    }
    h
}

/// Normalized histogram intersection in `[0, 1]`.
fn overlap(a: &FxHashMap<Sym, u32>, b: &FxHashMap<Sym, u32>, rows: usize) -> f64 {
    if rows == 0 {
        return 0.0;
    }
    let mut inter = 0u64;
    for (v, &na) in a {
        if let Some(&nb) = b.get(v) {
            inter += na.min(nb) as u64;
        }
    }
    inter as f64 / rows as f64
}

/// Profile closeness in `[0, 1]` (1 = identical profiles).
fn profile_similarity(a: ColumnProfile, b: ColumnProfile) -> f64 {
    let num = 1.0 - (a.numeric_fraction - b.numeric_fraction).abs();
    let dis = 1.0 - (a.distinct_fraction - b.distinct_fraction).abs();
    let len_max = a.mean_len.max(b.mean_len).max(1.0);
    let len = 1.0 - (a.mean_len - b.mean_len).abs() / len_max;
    (num + dis + len) / 3.0
}

/// Weight of exact value overlap vs profile similarity in the blend.
const OVERLAP_WEIGHT: f64 = 0.7;

/// Align the target's columns to the source's by content. Both tables must
/// have equal arity; the result is a permutation (greedy best-first
/// assignment on the blended score matrix).
pub fn align_schemas(source: &Table, target: &Table, pool: &ValuePool) -> SchemaAlignment {
    let arity = source.schema().arity();
    assert_eq!(
        arity,
        target.schema().arity(),
        "schema alignment requires equal arity (merging/splitting is out of scope)"
    );
    let rows = source.len().min(target.len());

    let src_hists: Vec<_> = (0..arity).map(|c| histogram(source, c)).collect();
    let tgt_hists: Vec<_> = (0..arity).map(|c| histogram(target, c)).collect();
    let src_profiles: Vec<_> = (0..arity).map(|c| profile(source, c, pool)).collect();
    let tgt_profiles: Vec<_> = (0..arity).map(|c| profile(target, c, pool)).collect();

    let mut scored: Vec<(f64, usize, usize)> = Vec::with_capacity(arity * arity);
    for i in 0..arity {
        for j in 0..arity {
            let ov = overlap(&src_hists[i], &tgt_hists[j], rows);
            let ps = profile_similarity(src_profiles[i], tgt_profiles[j]);
            scored.push((OVERLAP_WEIGHT * ov + (1.0 - OVERLAP_WEIGHT) * ps, i, j));
        }
    }
    // Greedy best-first unique assignment; ties towards (i, j) order for
    // determinism (same-name columns win ties implicitly via ordering when
    // schemas agree).
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("scores are finite")
            .then((a.1, a.2).cmp(&(b.1, b.2)))
    });
    let mut mapping = vec![usize::MAX; arity];
    let mut scores = vec![0.0; arity];
    let mut used_tgt = vec![false; arity];
    let mut assigned = 0;
    for (score, i, j) in scored {
        if mapping[i] == usize::MAX && !used_tgt[j] {
            mapping[i] = j;
            scores[i] = score;
            used_tgt[j] = true;
            assigned += 1;
            if assigned == arity {
                break;
            }
        }
    }
    SchemaAlignment { mapping, scores }
}

impl SchemaAlignment {
    /// Rewrite `target` into the source's column order (and the source's
    /// column *names*), so an ordinary [`crate::instance::ProblemInstance`]
    /// can be built.
    pub fn reorder_target(&self, target: &Table, source_schema: &affidavit_table::Schema) -> Table {
        // O(attrs): permute shared column handles, then rename.
        let keep: Vec<AttrId> = self.mapping.iter().map(|&j| AttrId(j as u32)).collect();
        target.project(&keep).renamed(source_schema.clone())
    }

    /// The permutation as `(source AttrId, target AttrId)` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (AttrId, AttrId)> + '_ {
        self.mapping
            .iter()
            .enumerate()
            .map(|(i, &j)| (AttrId(i as u32), AttrId(j as u32)))
    }

    /// Minimum per-column confidence — a low value signals that some column
    /// correspondence is guesswork.
    pub fn min_confidence(&self) -> f64 {
        self.scores.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::Schema;

    fn source(pool: &mut ValuePool) -> Table {
        let rows: Vec<Vec<String>> = (0..40)
            .map(|i| {
                vec![
                    format!("k{i}"),
                    format!("{}", i * 100),
                    ["red", "blue", "green"][i % 3].to_owned(),
                ]
            })
            .collect();
        Table::from_rows(Schema::new(["key", "amount", "color"]), pool, rows)
    }

    #[test]
    fn recovers_column_permutation() {
        let mut pool = ValuePool::new();
        let s = source(&mut pool);
        // Target: same values, columns rotated and renamed.
        let rows: Vec<Vec<String>> = (0..40)
            .map(|i| {
                vec![
                    ["red", "blue", "green"][i % 3].to_owned(),
                    format!("k{i}"),
                    format!("{}", i * 100),
                ]
            })
            .collect();
        let t = Table::from_rows(Schema::new(["c1", "c2", "c3"]), &mut pool, rows);
        let al = align_schemas(&s, &t, &pool);
        assert_eq!(al.mapping, vec![1, 2, 0]);
        assert!(al.min_confidence() > 0.7);
    }

    #[test]
    fn transformed_column_matched_by_profile() {
        let mut pool = ValuePool::new();
        let s = source(&mut pool);
        // Amount rescaled (zero exact overlap) and moved to column 0; the
        // other two columns keep their values.
        let rows: Vec<Vec<String>> = (0..40)
            .map(|i| {
                vec![
                    format!("{}", i), // amount / 100
                    ["red", "blue", "green"][i % 3].to_owned(),
                    format!("k{i}"),
                ]
            })
            .collect();
        let t = Table::from_rows(Schema::new(["a", "b", "c"]), &mut pool, rows);
        let al = align_schemas(&s, &t, &pool);
        // key → c (2), color → b (1); amount must take the leftover 0.
        assert_eq!(al.mapping, vec![2, 0, 1]);
    }

    #[test]
    fn reorder_target_enables_ordinary_search() {
        let mut pool = ValuePool::new();
        let s = source(&mut pool);
        let rows: Vec<Vec<String>> = (0..40)
            .map(|i| {
                vec![
                    ["red", "blue", "green"][i % 3].to_owned(),
                    format!("k{i}"),
                    format!("{}", i), // amount / 100
                ]
            })
            .collect();
        let t = Table::from_rows(Schema::new(["x", "y", "z"]), &mut pool, rows);
        let al = align_schemas(&s, &t, &pool);
        let t2 = al.reorder_target(&t, s.schema());
        let mut inst = crate::instance::ProblemInstance::new(s, t2, pool).unwrap();
        let out = crate::search::Affidavit::new(crate::config::AffidavitConfig::paper_id())
            .explain(&mut inst);
        out.explanation.validate(&mut inst).unwrap();
        assert_eq!(out.explanation.core_size(), 40);
        // amount / 100 learned despite the column shuffle.
        assert!(matches!(
            &out.explanation.functions[1],
            affidavit_functions::AttrFunction::Scale(r) if r.den() == 100
        ));
    }

    #[test]
    #[should_panic(expected = "equal arity")]
    fn arity_mismatch_panics() {
        let mut pool = ValuePool::new();
        let s = source(&mut pool);
        let t = Table::from_rows(Schema::new(["only"]), &mut pool, vec![vec!["x"]]);
        let _ = align_schemas(&s, &t, &pool);
    }
}
