//! Configuration of the Affidavit search.
//!
//! The two named constructors correspond to the configurations evaluated in
//! Table 2 of the paper:
//!
//! * [`AffidavitConfig::paper_id`] — start states `H^id`, β = 2, ϱ = 5.
//! * [`AffidavitConfig::paper_overlap`] — start state `Hs` from overlap
//!   scores (max block size 100 000), β = 1, ϱ = 1 (a greedy search).
//!
//! Both use α = 0.5, θ = 0.1 and ρ = 0.95.

use affidavit_functions::Registry;
use serde::{Deserialize, Serialize};

/// How the set of start states `H0` is chosen (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitStrategy {
    /// `H^∅ = {(∗, …, ∗)}` — no assumptions.
    Empty,
    /// `H^id` — one start state per attribute, each assuming that attribute
    /// unchanged.
    Id,
    /// `Hs` — a single start state from overlap-score a-priori matching.
    Overlap,
}

/// Tunable parameters of Algorithm 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AffidavitConfig {
    /// Cost balance α ∈ [0, 1] between unexplained records and function
    /// complexity (Def. 3.10). Paper default 0.5.
    pub alpha: f64,
    /// Branching factor β: number of attributes polled per extension and
    /// number of function candidates kept per attribute.
    pub beta: usize,
    /// Queue width ϱ: level `i` of the search lattice holds at most
    /// `max(1, ϱ − i + 1)` states (§4.6).
    pub queue_width: usize,
    /// Estimated fraction θ of target records in which the effect of the
    /// optimal function is visible (§4.4.2). Paper default 0.1.
    pub theta: f64,
    /// Confidence level ρ for the sampling guarantees. Paper default 0.95.
    pub confidence: f64,
    /// Start-state strategy.
    pub init: InitStrategy,
    /// Maximum source×target pairs a single value may generate during
    /// overlap matching (`Hs` only). Paper default 100 000.
    pub max_block_size: usize,
    /// Minimum number of times a candidate must be generated to survive
    /// filtering — the "statistically significant amount" the binomial
    /// sizing targets (`P(X ≥ 5) ≥ ρ`; see DESIGN.md §5.1).
    pub min_support: u32,
    /// Cap on distinct source values examined per sampled target during
    /// induction (implementation safeguard for degenerate huge blocks).
    pub max_examples_per_target: usize,
    /// Enabled meta functions.
    pub registry: Registry,
    /// Also retrieve candidates from the built-in function corpus (the §6
    /// TDE-style future-work extension). Off by default — the paper's
    /// configurations use induction only.
    pub use_corpus: bool,
    /// RNG seed — all sampling is deterministic given the seed.
    pub seed: u64,
    /// Safety valve: maximum number of state expansions before the best
    /// state found so far is finalized into an explanation.
    pub max_expansions: usize,
    /// Record a search trace (Figure 4) — costs a little memory.
    pub trace: bool,
    /// Minimum number of records (live sources + targets) in a state's
    /// blocking before an extension batch is fanned out across the worker
    /// pool; below it the batch runs on the calling thread, since spawn
    /// overhead would exceed the work. Purely a scheduling knob — results
    /// are identical either way.
    pub parallel_min_records: usize,
    /// Worker threads for candidate generation during state extension.
    /// `1` (the default) runs fully sequentially on the calling thread;
    /// `0` means "one per hardware thread". Results are identical at
    /// every thread count: each attribute's induction/ranking runs on a
    /// per-attribute seeded RNG and the extensions are merged in a stable
    /// order.
    pub threads: usize,
    /// Speculative frontier width K: up to K frontier states are drained
    /// per driver iteration (in exact poll order) and expanded
    /// concurrently, then reconciled back in that order. A speculated
    /// sibling whose turn never comes — an earlier sibling polled an end
    /// state, evicted it, or produced a cheaper child that overtakes it —
    /// is discarded unconsumed, so the polled/expanded sequence, trace and
    /// explanation are byte-identical to `speculative_width = 1`.
    /// `1` (the default) disables speculation; `0` is treated as `1`.
    pub speculative_width: usize,
    /// Minimum number of records (live sources + targets) in the head
    /// frontier state's blocking before the driver speculates ahead of
    /// the serial poll order. Below it a K-way batch costs more in
    /// discarded sibling work and cache pressure than the serial loop —
    /// the frontier-level analogue of `parallel_min_records`. Gated
    /// iterations run the exact width-1 code path, so results are
    /// identical either way; purely a scheduling knob.
    pub speculation_min_records: usize,
}

impl Default for AffidavitConfig {
    fn default() -> Self {
        AffidavitConfig::paper_id()
    }
}

impl AffidavitConfig {
    /// The robust `H^id` configuration of Table 2 (β = 2, ϱ = 5).
    pub fn paper_id() -> AffidavitConfig {
        AffidavitConfig {
            alpha: 0.5,
            beta: 2,
            queue_width: 5,
            theta: 0.1,
            confidence: 0.95,
            init: InitStrategy::Id,
            max_block_size: 100_000,
            min_support: 5,
            max_examples_per_target: 1_000,
            registry: Registry::default(),
            use_corpus: false,
            seed: 0xEDB7_2020,
            max_expansions: 10_000,
            trace: false,
            parallel_min_records: 4096,
            threads: 1,
            speculative_width: 1,
            speculation_min_records: 4096,
        }
    }

    /// The fast `Hs` configuration of Table 2 (overlap start state, β = 1,
    /// ϱ = 1 — a greedy search without backtracking).
    pub fn paper_overlap() -> AffidavitConfig {
        AffidavitConfig {
            beta: 1,
            queue_width: 1,
            init: InitStrategy::Overlap,
            ..AffidavitConfig::paper_id()
        }
    }

    /// Replace the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> AffidavitConfig {
        self.seed = seed;
        self
    }

    /// Replace α (builder style).
    pub fn with_alpha(mut self, alpha: f64) -> AffidavitConfig {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        self.alpha = alpha;
        self
    }

    /// Enable search tracing (builder style).
    pub fn with_trace(mut self) -> AffidavitConfig {
        self.trace = true;
        self
    }

    /// Set the extension worker-thread count (builder style); `0` means
    /// one worker per hardware thread.
    pub fn with_threads(mut self, threads: usize) -> AffidavitConfig {
        self.threads = threads;
        self
    }

    /// Set the speculative frontier width (builder style); results are
    /// byte-identical at every width.
    pub fn with_speculative_width(mut self, width: usize) -> AffidavitConfig {
        self.speculative_width = width;
        self
    }

    /// Set the minimum head-state record count for speculative fan-out
    /// (builder style); `0` speculates on every frontier, whatever its
    /// size. Results are identical at every setting.
    pub fn with_speculation_min_records(mut self, records: usize) -> AffidavitConfig {
        self.speculation_min_records = records;
        self
    }

    /// The worker-thread count this configuration resolves to: `threads`
    /// itself, or — when `threads == 0` ("one per hardware thread") —
    /// [`std::thread::available_parallelism`].
    pub fn effective_threads(&self) -> usize {
        resolve_parallelism(self.threads)
    }
}

/// Resolve a `0 = autosize` parallelism knob (`--threads 0`,
/// `--workers 0`) to [`std::thread::available_parallelism`], falling back
/// to `1` when the hardware cannot be queried.
pub fn resolve_parallelism(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs() {
        let id = AffidavitConfig::paper_id();
        assert_eq!((id.beta, id.queue_width), (2, 5));
        assert_eq!(id.init, InitStrategy::Id);
        let ov = AffidavitConfig::paper_overlap();
        assert_eq!((ov.beta, ov.queue_width), (1, 1));
        assert_eq!(ov.init, InitStrategy::Overlap);
        assert_eq!(ov.max_block_size, 100_000);
        for c in [&id, &ov] {
            assert_eq!(c.alpha, 0.5);
            assert_eq!(c.theta, 0.1);
            assert_eq!(c.confidence, 0.95);
        }
    }

    #[test]
    #[should_panic]
    fn alpha_out_of_range_panics() {
        let _ = AffidavitConfig::paper_id().with_alpha(1.5);
    }

    #[test]
    fn zero_threads_resolve_to_the_hardware() {
        assert_eq!(resolve_parallelism(3), 3);
        let auto = resolve_parallelism(0);
        assert!(auto >= 1);
        assert_eq!(
            AffidavitConfig::paper_id()
                .with_threads(0)
                .effective_threads(),
            auto
        );
        assert_eq!(AffidavitConfig::paper_id().effective_threads(), 1);
    }
}
