//! Candidate induction from noisy block-sampled examples (§4.4.2).
//!
//! Up to `k` distinct target records are sampled from blocks that contain
//! both source and target records; for each one, candidate functions are
//! induced that produce its attribute value from *any* distinct source
//! value in the same block. A candidate's support is the number of sampled
//! target records whose examples generated it; candidates below the
//! significance threshold (`min_support`, the `P(X ≥ 5)` target of the
//! binomial sizing) are filtered.

use affidavit_blocking::Blocking;
use affidavit_functions::{induce_from_example, AttrFunction, Registry};
use affidavit_table::{AttrId, FxHashMap, FxHashSet, Interner, Sym, Table};
use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;

/// A candidate function with its generation support.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The induced function.
    pub func: AttrFunction,
    /// Number of sampled target records that generated it.
    pub support: u32,
}

/// Parameters of the induction sampling.
#[derive(Debug, Clone, Copy)]
pub struct InductionParams {
    /// Target sample size `k` (from the binomial sizing).
    pub k: usize,
    /// Minimum support for a candidate to survive filtering.
    pub min_support: u32,
    /// Cap on distinct source values examined per sampled target.
    pub max_examples_per_target: usize,
    /// Additionally retrieve fitting functions from the built-in corpus
    /// (TDE-style; §6 future work).
    pub use_corpus: bool,
}

/// Induce and filter candidate functions for `attr` under a blocking
/// result. Deterministic given the RNG state.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn induce_candidates<I: Interner>(
    blocking: &Blocking,
    attr: AttrId,
    source: &Table,
    target: &Table,
    pool: &mut I,
    registry: &Registry,
    params: InductionParams,
    rng: &mut StdRng,
) -> Vec<Candidate> {
    let _span = affidavit_obs::span("induce.candidates");
    // Enumerate targets living in mixed blocks (block index, target id).
    let mut mixed_targets: Vec<(usize, affidavit_table::RecordId)> = Vec::new();
    for (bi, block) in blocking.blocks.iter().enumerate() {
        if block.is_mixed() {
            mixed_targets.extend(block.tgt.iter().map(|&tid| (bi, tid)));
        }
    }
    if mixed_targets.is_empty() {
        return Vec::new();
    }

    let k = params.k.min(mixed_targets.len());
    let mut chosen: Vec<(usize, affidavit_table::RecordId)> =
        index_sample(rng, mixed_targets.len(), k)
            .into_iter()
            .map(|i| mixed_targets[i])
            .collect();
    // Group by block so distinct source values are computed once per block.
    chosen.sort_by_key(|&(bi, tid)| (bi, tid));

    let mut counts: FxHashMap<AttrFunction, u32> = FxHashMap::default();
    let mut per_target: FxHashSet<AttrFunction> = FxHashSet::default();
    let mut src_values: Vec<Sym> = Vec::new();
    let mut seen_vals: FxHashSet<Sym> = FxHashSet::default();
    let mut current_block = usize::MAX;

    for (bi, tid) in chosen {
        if bi != current_block {
            current_block = bi;
            src_values.clear();
            seen_vals.clear();
            for &sid in &blocking.blocks[bi].src {
                let v = source.value(sid, attr);
                if seen_vals.insert(v) {
                    src_values.push(v);
                    if src_values.len() >= params.max_examples_per_target {
                        break;
                    }
                }
            }
        }
        let t_val = target.value(tid, attr);
        per_target.clear();
        for &s_val in &src_values {
            for f in induce_from_example(s_val, t_val, pool, registry) {
                per_target.insert(f);
            }
            if params.use_corpus {
                for f in affidavit_functions::corpus_candidates(s_val, t_val, pool) {
                    per_target.insert(f);
                }
            }
        }
        for f in per_target.drain() {
            *counts.entry(f).or_default() += 1;
        }
    }

    let mut out: Vec<Candidate> = counts
        .into_iter()
        .filter(|&(_, n)| n >= params.min_support.min(k as u32))
        .map(|(func, support)| Candidate { func, support })
        .collect();
    // Deterministic order: support desc, then structural function order.
    out.sort_by(|a, b| b.support.cmp(&a.support).then_with(|| a.func.cmp(&b.func)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_blocking::Blocking;
    use affidavit_functions::{ApplyScratch, AttrFunction};
    use affidavit_table::{Schema, Table, ValuePool};
    use rand::SeedableRng;

    /// 40 records, Val divided by 1000, blocked perfectly by the key.
    fn setup() -> (Table, Table, ValuePool, Blocking) {
        let mut pool = ValuePool::new();
        let rows_s: Vec<Vec<String>> = (0..40)
            .map(|i| vec![format!("k{i}"), format!("{}", i * 500)])
            .collect();
        let rows_t: Vec<Vec<String>> = (0..40)
            .map(|i| vec![format!("k{i}"), format!("{}", (i as f64) * 0.5)])
            .collect();
        let s = Table::from_rows(Schema::new(["k", "Val"]), &mut pool, rows_s);
        let t = Table::from_rows(Schema::new(["k", "Val"]), &mut pool, rows_t);
        let blocking = Blocking::root(&s, &t).refine(
            AttrId(0),
            &AttrFunction::Identity,
            &mut ApplyScratch::new(),
            &s,
            &t,
            &mut pool,
        );
        (s, t, pool, blocking)
    }

    fn params() -> InductionParams {
        InductionParams {
            k: 30,
            min_support: 5,
            max_examples_per_target: 1000,
            use_corpus: false,
        }
    }

    #[test]
    fn finds_the_true_scaling_function() {
        let (s, t, mut pool, blocking) = setup();
        let mut rng = StdRng::seed_from_u64(11);
        let cands = induce_candidates(
            &blocking,
            AttrId(1),
            &s,
            &t,
            &mut pool,
            &Registry::default(),
            params(),
            &mut rng,
        );
        assert!(!cands.is_empty());
        // x/1000 must be among the survivors, with high support.
        let scale = cands
            .iter()
            .find(|c| matches!(&c.func, AttrFunction::Scale(r) if r.num() == 1 && r.den() == 1000))
            .expect("true function filtered out");
        assert!(scale.support >= 25, "support {}", scale.support);
    }

    #[test]
    fn constants_do_not_survive_filtering() {
        // Each Constant(t_val) is generated for exactly one sampled target
        // (distinct values per block) — support 1 < 5.
        let (s, t, mut pool, blocking) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let cands = induce_candidates(
            &blocking,
            AttrId(1),
            &s,
            &t,
            &mut pool,
            &Registry::default(),
            params(),
            &mut rng,
        );
        assert!(
            !cands
                .iter()
                .any(|c| matches!(c.func, AttrFunction::Constant(_))),
            "constants should be filtered: {cands:?}"
        );
    }

    #[test]
    fn empty_when_no_mixed_blocks() {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(Schema::new(["a"]), &mut pool, vec![vec!["x"]]);
        let t = Table::from_rows(Schema::new(["a"]), &mut pool, vec![vec!["y"]]);
        // Block on a: "x" and "y" land in different blocks → no mixed.
        let blocking = Blocking::root(&s, &t).refine(
            AttrId(0),
            &AttrFunction::Identity,
            &mut ApplyScratch::new(),
            &s,
            &t,
            &mut pool,
        );
        let mut rng = StdRng::seed_from_u64(0);
        let cands = induce_candidates(
            &blocking,
            AttrId(0),
            &s,
            &t,
            &mut pool,
            &Registry::default(),
            params(),
            &mut rng,
        );
        assert!(cands.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let (s, t, mut pool, blocking) = setup();
        let run = |pool: &mut ValuePool| {
            let mut rng = StdRng::seed_from_u64(99);
            induce_candidates(
                &blocking,
                AttrId(1),
                &s,
                &t,
                pool,
                &Registry::default(),
                params(),
                &mut rng,
            )
            .into_iter()
            .map(|c| (c.func, c.support))
            .collect::<Vec<_>>()
        };
        let a = run(&mut pool);
        let b = run(&mut pool);
        assert_eq!(a, b);
    }

    #[test]
    fn min_support_relaxed_for_tiny_samples() {
        // With only 3 targets available, k = 3 < 5: the threshold adapts so
        // small instances (like the running example) still induce functions.
        let mut pool = ValuePool::new();
        let s = Table::from_rows(
            Schema::new(["k", "v"]),
            &mut pool,
            vec![vec!["a", "100"], vec!["b", "200"], vec!["c", "300"]],
        );
        let t = Table::from_rows(
            Schema::new(["k", "v"]),
            &mut pool,
            vec![vec!["a", "0.1"], vec!["b", "0.2"], vec!["c", "0.3"]],
        );
        let blocking = Blocking::root(&s, &t).refine(
            AttrId(0),
            &AttrFunction::Identity,
            &mut ApplyScratch::new(),
            &s,
            &t,
            &mut pool,
        );
        let mut rng = StdRng::seed_from_u64(5);
        let cands = induce_candidates(
            &blocking,
            AttrId(1),
            &s,
            &t,
            &mut pool,
            &Registry::default(),
            params(),
            &mut rng,
        );
        assert!(cands
            .iter()
            .any(|c| matches!(&c.func, AttrFunction::Scale(r) if r.den() == 1000)));
    }
}
