//! The portable expansion seam: phase-1 frontier expansions as plain
//! data, computable by any process that holds the same frozen instance.
//!
//! The speculation driver ([`Affidavit`](crate::search::Affidavit)) polls
//! up to K frontier states per iteration and expands them against the
//! frozen search context. That phase is *pure*:
//! given the instance (snapshots + pool prefix), the configuration, the
//! state and its pre-drawn alignment, the expansion is a deterministic
//! value — the per-attribute RNG self-seeds from
//! `mix3(seed, state_id, attr)` and never touches shared search state.
//! This module names that value ([`PortableExpansion`]) and the function
//! that computes it ([`expand_portable`]), so phase 1 can run on a local
//! thread pool, a worker process on another machine, or both stealing
//! from one queue — the driver's serial-replay reconciliation consumes
//! whichever expansions arrive and cannot tell the difference.
//!
//! [`ExpansionExecutor`] is the pluggable transport: the driver hands it
//! the frozen instance and the speculated batch; the executor returns the
//! expansions in batch order, or `None` to decline (the driver then falls
//! back to its local path). `affidavit-dist` implements it over the
//! work-stealing broker (`dist::expansion`).

use std::sync::Arc;

use affidavit_table::RecordId;

use crate::config::AffidavitConfig;
use crate::extend::expand_state_portable;
use crate::instance::ProblemInstance;
use crate::state::SearchState;

/// One speculated frontier expansion to compute: the polled state and the
/// alignment the driver pre-drew for it (the only driver-RNG input of
/// phase 1 — shipping the drawn pairs instead of RNG internals keeps the
/// wire format engine-version independent).
#[derive(Debug, Clone)]
pub struct ExpansionRequest {
    /// The frontier state to expand. Its assigned functions and blocking
    /// are symbol-/record-indexed against the instance the driver passes
    /// alongside the batch.
    pub state: SearchState,
    /// The pre-drawn random alignment for the greedy-map benchmark, in
    /// draw order.
    pub alignment: Vec<(RecordId, RecordId)>,
}

/// One candidate child inside a [`PortableExpansion`]: the induced
/// function (symbols below the part's `base_len` reference the shipped
/// pool; symbols at or above it index into `new_strings`), the refined
/// blocking (record ids — globally valid) and the child cost.
#[derive(Debug, Clone)]
pub struct PortableChild {
    /// The candidate function, in job symbol coordinates.
    pub func: affidavit_functions::AttrFunction,
    /// The blocking refined under `func`.
    pub blocking: affidavit_blocking::Blocking,
    /// The child's cost (Def. 4.6).
    pub cost: f64,
    /// Whether the candidate beat its greedy-map benchmark (only kept
    /// children enter the frontier; the rest still get trace nodes).
    pub kept: bool,
}

/// Everything phase 1 produced for one attribute of one state.
#[derive(Debug, Clone)]
pub struct PortableAttrExpansion {
    /// The expanded attribute index.
    pub attr: usize,
    /// Pool length the expansion was frozen at: symbols below it are the
    /// shipped pool's, symbols at `base_len + i` mean `new_strings[i]`.
    pub base_len: usize,
    /// Strings interned past `base_len`, in interning order. The driver
    /// absorbs the *whole* list (consumed by a child or not) — pool
    /// growth order is part of the byte-identity contract.
    pub new_strings: Vec<Arc<str>>,
    /// The greedy-map benchmark child `Hд` (registered for trace parity,
    /// never kept).
    pub greedy: PortableChild,
    /// All ranked candidates, in rank order (kept and rejected).
    pub ranked: Vec<PortableChild>,
}

/// Everything phase 1 produced for one state: per-attribute expansions in
/// processed order. Pure worker output — nothing in here has touched
/// shared search state, so an expansion computed for a state whose poll
/// turn never comes is dropped without a trace.
#[derive(Debug, Clone)]
pub struct PortableExpansion {
    /// Per-attribute expansions, in the order the expansion loop
    /// processed them.
    pub parts: Vec<PortableAttrExpansion>,
    /// Whether any ranked candidate beat its greedy benchmark (an empty
    /// result means every expanded attribute is map-suited and the driver
    /// finalizes).
    pub any_kept: bool,
}

/// Compute one frontier expansion from first principles — the remote half
/// of the speculation engine. Equivalent to the driver's own phase 1:
/// byte-for-byte the same [`PortableExpansion`] as a local
/// `expand_state` over the same instance, configuration, state and
/// alignment, at any thread count (each attribute's RNG seeds from
/// `(cfg.seed, state.id, attr)`).
///
/// The caller guarantees `request.state` is not an end state (the driver
/// cuts speculation batches before end states).
pub fn expand_portable(
    instance: &ProblemInstance,
    cfg: &AffidavitConfig,
    request: &ExpansionRequest,
) -> PortableExpansion {
    expand_state_portable(instance, cfg, &request.state, &request.alignment)
}

/// A pluggable phase-1 executor: computes a speculated batch somewhere
/// else — a worker fleet, a broker queue, another machine.
///
/// Contract: return `Some` with exactly one [`PortableExpansion`] per
/// request, in request order, each byte-identical to what
/// [`expand_portable`] computes for it over the same `instance`/`cfg`;
/// or `None` to decline the batch (transport down, fleet saturated), in
/// which case the driver expands locally. Because expansions are pure,
/// an executor may compute redundantly, race local work, or time out and
/// decline — none of it can perturb the search.
pub trait ExpansionExecutor: Send + Sync {
    /// Execute the batch, or decline with `None`.
    fn expand_batch(
        &self,
        instance: &ProblemInstance,
        cfg: &AffidavitConfig,
        batch: &[ExpansionRequest],
    ) -> Option<Vec<PortableExpansion>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_functions::AttrFunction;
    use affidavit_table::{Schema, Table, ValuePool};

    fn instance() -> ProblemInstance {
        let mut pool = ValuePool::new();
        let rows_s: Vec<Vec<String>> = (0..30)
            .map(|i| vec![format!("k{i}"), format!("{}", (i + 1) * 1000), "usd".into()])
            .collect();
        let rows_t: Vec<Vec<String>> = (0..30)
            .map(|i| vec![format!("k{i}"), format!("{}", i + 1), "USD".into()])
            .collect();
        let s = Table::from_rows(Schema::new(["k", "Val", "Unit"]), &mut pool, rows_s);
        let t = Table::from_rows(Schema::new(["k", "Val", "Unit"]), &mut pool, rows_t);
        ProblemInstance::new(s, t, pool).unwrap()
    }

    /// A fingerprint of an expansion that covers everything the driver
    /// absorbs: strings, functions, costs, blockings, keep flags.
    fn fingerprint(e: &PortableExpansion) -> String {
        let child = |c: &PortableChild| {
            format!(
                "{:?}|{:?}|{}|{}",
                c.func,
                c.blocking.blocks.len(),
                c.cost.to_bits(),
                c.kept
            )
        };
        let parts: Vec<String> = e
            .parts
            .iter()
            .map(|p| {
                format!(
                    "attr={} base={} new={:?} g={} ranked=[{}]",
                    p.attr,
                    p.base_len,
                    p.new_strings,
                    child(&p.greedy),
                    p.ranked.iter().map(child).collect::<Vec<_>>().join(";"),
                )
            })
            .collect();
        format!("any_kept={} {}", e.any_kept, parts.join("\n"))
    }

    #[test]
    fn portable_expansion_is_a_pure_function_of_its_inputs() {
        let inst = instance();
        let cfg = AffidavitConfig::paper_id();
        let blocking = affidavit_blocking::Blocking::root(&inst.source, &inst.target);
        let state = SearchState {
            assignments: vec![
                crate::state::Assignment::Assigned(AttrFunction::Identity),
                crate::state::Assignment::Undecided,
                crate::state::Assignment::Undecided,
            ],
            blocking: Arc::new(blocking),
            cost: 0.0,
            id: 1,
            parent: None,
        };
        let alignment: Vec<(RecordId, RecordId)> =
            (0..30).map(|i| (RecordId(i), RecordId(i))).collect();
        let request = ExpansionRequest { state, alignment };
        let a = expand_portable(&inst, &cfg, &request);
        let b = expand_portable(&instance(), &cfg, &request);
        assert!(!a.parts.is_empty());
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }
}
