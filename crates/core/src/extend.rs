//! State extension — the `Extensions(H)` procedure of Algorithm 1, as a
//! parallel two-phase engine.
//!
//! For a polled state, the β most determined undecided attributes are
//! tried: candidate functions are induced from block-sampled examples,
//! ranked by histogram overlap, and an extension is kept only if it is
//! cheaper than extending with the *greedy map* `Hд` built from a random
//! alignment — the signal that a simple function genuinely explains the
//! attribute. Attributes where the greedy map wins are ⊞-marked; if every
//! remaining attribute is map-suited the state is finalized into an end
//! state by resolving the ⊞s one after another (§4.3).
//!
//! # Two-phase structure
//!
//! **Phase 1 (parallel, read-only):** every attribute of the β-batch is
//! expanded by an independent worker against the *frozen* shared state
//! (`SearchCtx`): greedy benchmark, candidate induction, ranking and
//! child blocking/cost all run on a per-worker `WorkerScratch` — an
//! interning overlay over the frozen pool plus a per-attribute seeded
//! RNG. Workers share nothing mutable.
//!
//! **Phase 2 (sequential merge):** the driver walks the results in batch
//! order, absorbs each worker's newly interned strings into the shared
//! pool, rewrites escaping symbols through the returned remap, assigns
//! state ids and records trace nodes. Because both the per-worker RNG
//! streams and the merge order are independent of scheduling, the search
//! is byte-identical at every thread count.

use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

use affidavit_blocking::{greedy_map_from_alignment, sample_random_alignment, Blocking};
use affidavit_functions::AttrFunction;
use affidavit_table::{AttrId, RecordId};

use crate::config::AffidavitConfig;
use crate::cost::child_state_cost;
use crate::expansion::{PortableAttrExpansion, PortableChild, PortableExpansion};
use crate::induction::{induce_candidates, InductionParams};
use crate::instance::ProblemInstance;
use crate::ranking::rank_candidates;
use crate::search::{Ctx, SearchCtx};
use crate::state::{Assignment, SearchState};
use crate::stats::{cochran_sample_size, induction_sample_size};
use crate::trace::TraceNode;

/// Create the child of `state` that assigns `func` to `attr`, refining the
/// blocking and computing the child's cost. Driver-side (sequential) path:
/// interns directly into the shared pool.
pub(crate) fn make_child(
    ctx: &mut Ctx<'_>,
    state: &SearchState,
    attr: usize,
    func: AttrFunction,
) -> SearchState {
    // Driver-side refinements (start states, ⊞ finalization) touch every
    // live record; above the fan-out threshold, split the work over the
    // worker pool — `refine_parallel` is byte-identical to the serial
    // path, including the shared pool's contents.
    let records = state.blocking.live_sources() + state.blocking.total_targets();
    let blocking = if ctx.cfg.threads != 1 && records >= ctx.cfg.parallel_min_records {
        state.blocking.refine_parallel(
            AttrId(attr as u32),
            &func,
            &ctx.instance.source,
            &ctx.instance.target,
            &mut ctx.instance.pool,
        )
    } else {
        state.blocking.refine(
            AttrId(attr as u32),
            &func,
            &mut ctx.scratch,
            &ctx.instance.source,
            &ctx.instance.target,
            &mut ctx.instance.pool,
        )
    };
    let cost = child_cost(ctx.search_ctx().cost_params(), state, &func, &blocking);
    register_child(ctx, state, attr, func, blocking, cost)
}

/// The `(delta, alpha, arity)` triple `child_cost` needs, extracted so
/// both the driver and the workers can call it.
#[derive(Clone, Copy)]
pub(crate) struct CostParams {
    pub delta: i64,
    pub alpha: f64,
    pub arity: usize,
}

impl SearchCtx<'_> {
    pub(crate) fn cost_params(&self) -> CostParams {
        CostParams {
            delta: self.delta,
            alpha: self.cfg.alpha,
            arity: self.arity,
        }
    }
}

/// Cost of the child of `state` assigning `func` to a previously open
/// attribute, over `blocking`. ψ of a function does not read the pool, so
/// this is valid for functions still carrying scratch symbols, and it is
/// computed incrementally — no assignment-vector clone.
fn child_cost(
    params: CostParams,
    state: &SearchState,
    func: &AttrFunction,
    blocking: &Blocking,
) -> f64 {
    child_state_cost(
        &state.assignments,
        func.psi(),
        blocking,
        params.delta,
        params.alpha,
        params.arity,
    )
}

/// Driver-side: materialize a child state from already-computed parts,
/// assigning its id and recording trace/stat bookkeeping. This is the
/// single point where extension results enter shared search state, and it
/// runs in deterministic merge order.
fn register_child(
    ctx: &mut Ctx<'_>,
    state: &SearchState,
    attr: usize,
    func: AttrFunction,
    blocking: Blocking,
    cost: f64,
) -> SearchState {
    // `cost` was computed incrementally as cf(parent) + ψ(func), which is
    // only valid when the attribute was previously open (contributing 0).
    debug_assert!(
        state.assignments[attr].is_open(),
        "extensions must target open attributes"
    );
    let mut assignments = state.assignments.clone();
    assignments[attr] = Assignment::Assigned(func.clone());
    let id = ctx.next_id();
    ctx.stats.states_generated += 1;
    if let Some(trace) = ctx.trace.as_mut() {
        let name = ctx.instance.schema().name(AttrId(attr as u32)).to_owned();
        let label = format!("{} ← {}", name, func.display(&ctx.instance.pool));
        let level = assignments
            .iter()
            .filter(|a| matches!(a, Assignment::Assigned(_)))
            .count();
        trace.add(TraceNode {
            id,
            parent: Some(state.id),
            level,
            cost,
            label,
            polled_order: None,
            kept: false,
            end: assignments
                .iter()
                .all(|a| matches!(a, Assignment::Assigned(_))),
        });
    }
    SearchState {
        assignments,
        blocking: Arc::new(blocking),
        cost,
        id,
        parent: Some(state.id),
    }
}

/// Undecided attributes ordered by indeterminacy (most determined first,
/// ties towards the lower attribute index) — the `Order-By-Indeterminacy`
/// step. Takes the source table directly so speculative workers can order
/// a frozen state without the driver context.
pub(crate) fn order_by_indeterminacy(
    source: &affidavit_table::Table,
    state: &SearchState,
) -> Vec<usize> {
    let mut attrs = state.undecided_attrs();
    let keys: Vec<usize> = attrs
        .iter()
        .map(|&a| state.blocking.indeterminacy(AttrId(a as u32), source))
        .collect();
    let mut order: Vec<usize> = (0..attrs.len()).collect();
    order.sort_by_key(|&i| (keys[i], attrs[i]));
    attrs = order.into_iter().map(|i| attrs[i]).collect();
    attrs
}

/// One candidate child computed by a worker: function (possibly carrying
/// scratch symbols), refined blocking and cost. Blockings store only
/// record ids, so they are valid globally as-is.
struct CandChild {
    func: AttrFunction,
    blocking: Blocking,
    cost: f64,
    /// Beat the greedy benchmark (only such children enter the frontier;
    /// the rest still get trace nodes, as in the sequential engine).
    kept: bool,
}

/// Everything one worker produced for one attribute.
struct AttrExpansion {
    attr: usize,
    /// Pool length the worker's scratch was frozen at.
    base_len: usize,
    /// Strings the worker interned, in interning order.
    new_strings: Vec<Arc<str>>,
    /// The greedy-map benchmark child `Hд`.
    greedy: CandChild,
    /// All ranked candidates, in rank order (kept and rejected).
    ranked: Vec<CandChild>,
}

/// Phase 1 worker: expand one attribute against the frozen context.
/// Shares nothing mutable; deterministic given `(cfg.seed, state.id, attr)`.
fn expand_attr(
    sctx: &SearchCtx<'_>,
    state: &SearchState,
    attr: usize,
    alignment: &[(RecordId, RecordId)],
) -> AttrExpansion {
    let mut ws = sctx.scratch_for(state.id, attr);
    let params = sctx.cost_params();

    // The greedy-map benchmark Hд. An empty map (every aligned value
    // already agrees) is the identity — normalize so explanations never
    // show `map{}`.
    let gmap = greedy_map_from_alignment(alignment, AttrId(attr as u32), sctx.source, sctx.target);
    let g_func = if gmap.is_empty() {
        AttrFunction::Identity
    } else {
        AttrFunction::Map(gmap)
    };
    let g_blocking = state.blocking.refine(
        AttrId(attr as u32),
        &g_func,
        &mut ws.apply,
        sctx.source,
        sctx.target,
        &mut ws.pool,
    );
    let g_cost = child_cost(params, state, &g_func, &g_blocking);

    // Induce and rank candidates for this attribute.
    let induction = InductionParams {
        k: sctx.k_induce,
        min_support: sctx.cfg.min_support,
        max_examples_per_target: sctx.cfg.max_examples_per_target,
        use_corpus: sctx.cfg.use_corpus,
    };
    let cands = induce_candidates(
        &state.blocking,
        AttrId(attr as u32),
        sctx.source,
        sctx.target,
        &mut ws.pool,
        &sctx.cfg.registry,
        induction,
        &mut ws.rng,
    );
    let ranked = rank_candidates(
        &state.blocking,
        AttrId(attr as u32),
        cands.into_iter().map(|c| c.func).collect(),
        sctx.source,
        sctx.target,
        &mut ws.pool,
        sctx.k_rank,
        sctx.cfg.beta.max(1),
        &mut ws.rng,
    );

    let mut children = Vec::new();
    for rc in ranked {
        let blocking = state.blocking.refine(
            AttrId(attr as u32),
            &rc.func,
            &mut ws.apply,
            sctx.source,
            sctx.target,
            &mut ws.pool,
        );
        let cost = child_cost(params, state, &rc.func, &blocking);
        children.push(CandChild {
            func: rc.func,
            blocking,
            cost,
            kept: cost < g_cost,
        });
    }

    AttrExpansion {
        attr,
        base_len: ws.pool.base_len(),
        new_strings: ws.pool.take_new_strings(),
        greedy: CandChild {
            func: g_func,
            blocking: g_blocking,
            cost: g_cost,
            kept: false,
        },
        ranked: children,
    }
}

/// Everything phase 1 produced for one polled state: per-attribute
/// expansions in processed order, plus whether any candidate beat its
/// greedy benchmark. Pure worker output — nothing here has touched shared
/// search state, so an expansion computed speculatively for a state whose
/// poll turn never comes can be dropped without a trace.
pub(crate) struct StateExpansion {
    parts: Vec<AttrExpansion>,
    any_kept: bool,
}

impl CandChild {
    fn into_portable(self) -> PortableChild {
        PortableChild {
            func: self.func,
            blocking: self.blocking,
            cost: self.cost,
            kept: self.kept,
        }
    }

    fn from_portable(p: PortableChild) -> CandChild {
        CandChild {
            func: p.func,
            blocking: p.blocking,
            cost: p.cost,
            kept: p.kept,
        }
    }
}

impl StateExpansion {
    /// Re-express as the public [`PortableExpansion`] — a move of the same
    /// data, so the portable form is exactly what phase 2 absorbs.
    pub(crate) fn into_portable(self) -> PortableExpansion {
        PortableExpansion {
            parts: self
                .parts
                .into_iter()
                .map(|p| PortableAttrExpansion {
                    attr: p.attr,
                    base_len: p.base_len,
                    new_strings: p.new_strings,
                    greedy: p.greedy.into_portable(),
                    ranked: p.ranked.into_iter().map(CandChild::into_portable).collect(),
                })
                .collect(),
            any_kept: self.any_kept,
        }
    }

    /// Inverse of [`StateExpansion::into_portable`]; used by the driver to
    /// absorb expansions an [`crate::expansion::ExpansionExecutor`]
    /// computed elsewhere.
    pub(crate) fn from_portable(p: PortableExpansion) -> StateExpansion {
        StateExpansion {
            parts: p
                .parts
                .into_iter()
                .map(|p| AttrExpansion {
                    attr: p.attr,
                    base_len: p.base_len,
                    new_strings: p.new_strings,
                    greedy: CandChild::from_portable(p.greedy),
                    ranked: p.ranked.into_iter().map(CandChild::from_portable).collect(),
                })
                .collect(),
            any_kept: p.any_kept,
        }
    }
}

/// Phase 1 from a bare instance + configuration: build the frozen
/// read-only context from first principles and expand one state. The
/// worker-process entry point behind
/// [`expand_portable`](crate::expansion::expand_portable) — derived
/// sample sizes, Δ and arity are recomputed exactly as
/// [`Ctx::new`] computes them, so the result is byte-identical to the
/// driver's own phase 1.
pub(crate) fn expand_state_portable(
    instance: &ProblemInstance,
    cfg: &AffidavitConfig,
    state: &SearchState,
    alignment: &[(RecordId, RecordId)],
) -> PortableExpansion {
    let sctx = SearchCtx {
        source: &instance.source,
        target: &instance.target,
        pool: &instance.pool,
        cfg,
        k_induce: induction_sample_size(cfg.theta, cfg.confidence),
        k_rank: cochran_sample_size(cfg.theta),
        delta: instance.delta(),
        arity: instance.arity(),
    };
    expand_state(&sctx, state, alignment).into_portable()
}

/// Phase 1 for a whole state: order the undecided attributes, expand the
/// β-batch (and, while nothing beats its greedy benchmark, one further
/// attribute at a time) against the frozen context. Runs on the driver for
/// the serial path and on pool workers for speculative frontier
/// expansion; results are identical either way.
pub(crate) fn expand_state(
    sctx: &SearchCtx<'_>,
    state: &SearchState,
    alignment: &[(RecordId, RecordId)],
) -> StateExpansion {
    let astar = order_by_indeterminacy(sctx.source, state);
    debug_assert!(!astar.is_empty(), "expand_state called on an end state");
    let mut cursor = astar.iter().copied();
    // Poll β attributes first, then one at a time.
    let mut batch: Vec<usize> = cursor.by_ref().take(sctx.cfg.beta.max(1)).collect();
    let worth_spawning = state.blocking.live_sources() + state.blocking.total_targets()
        >= sctx.cfg.parallel_min_records;
    let mut parts: Vec<AttrExpansion> = Vec::new();
    let mut any_kept = false;

    while !any_kept && !batch.is_empty() {
        // Attribute-level fan-out. Inside a speculative state worker this
        // runs inline (pool workers pin their thread count to 1), so the
        // two parallelism levels never oversubscribe.
        let expanded: Vec<AttrExpansion> =
            if sctx.cfg.threads != 1 && batch.len() > 1 && worth_spawning {
                batch
                    .par_iter()
                    .map(|&attr| expand_attr(sctx, state, attr, alignment))
                    .collect()
            } else {
                batch
                    .iter()
                    .map(|&attr| expand_attr(sctx, state, attr, alignment))
                    .collect()
            };
        for exp in expanded {
            any_kept |= exp.ranked.iter().any(|c| c.kept);
            parts.push(exp);
        }
        batch = cursor.by_ref().take(1).collect();
    }

    StateExpansion { parts, any_kept }
}

/// Phase 2: absorb a state expansion into the shared pool and register
/// every child (greedy benchmark + ranked candidates, in processed order),
/// returning the kept extensions. Runs strictly in poll order — this is
/// where ids, trace nodes and pool contents are assigned, so consuming
/// expansions in serial order makes speculation invisible.
///
/// An empty result means every expanded attribute is map-suited; the
/// caller finalizes (that fallback draws from the driver RNG, which is the
/// caller's to manage during speculative replay).
pub(crate) fn consume_state_expansion(
    ctx: &mut Ctx<'_>,
    state: &SearchState,
    exp: StateExpansion,
) -> Vec<SearchState> {
    let mut ext: Vec<SearchState> = Vec::new();
    for part in exp.parts {
        let remap = ctx.instance.pool.absorb(part.base_len, &part.new_strings);
        // Register the greedy benchmark child (id + trace parity with
        // the historical sequential engine; never kept).
        let _hg = register_child(
            ctx,
            state,
            part.attr,
            part.greedy.func.remap(&remap),
            part.greedy.blocking,
            part.greedy.cost,
        );
        for cand in part.ranked {
            let child = register_child(
                ctx,
                state,
                part.attr,
                cand.func.remap(&remap),
                cand.blocking,
                cand.cost,
            );
            if cand.kept {
                ext.push(child);
            }
        }
        // Map-marking is implicit: attrs with no kept candidate stay ∗.
    }
    debug_assert_eq!(exp.any_kept, !ext.is_empty());
    ext
}

/// The `Extensions(H)` procedure. Returns the kept extensions, or — when
/// every undecided attribute turns out to be map-suited — a single
/// finalized end state.
pub(crate) fn extensions(ctx: &mut Ctx<'_>, state: &SearchState) -> Vec<SearchState> {
    let alignment = sample_random_alignment(&state.blocking, &mut ctx.rng);
    let started = Instant::now();
    let exp = {
        let sctx = ctx.search_ctx();
        expand_state(&sctx, state, &alignment)
    };
    let elapsed = started.elapsed();
    ctx.stats.extension_time += elapsed;
    affidavit_obs::metrics().observe("search_expansion_micros", elapsed.as_micros() as f64);
    let ext = consume_state_expansion(ctx, state, exp);
    if ext.is_empty() {
        // Every undecided attribute is best served by a value mapping:
        // mark all ⊞ and finalize (Algorithm 1's fallback branch).
        return vec![crate::finalize::finalize(ctx, state)];
    }
    ext
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AffidavitConfig;
    use crate::instance::ProblemInstance;
    use crate::search::Ctx;
    use affidavit_blocking::Blocking;
    use affidavit_table::{Schema, Table, ValuePool};

    fn instance() -> ProblemInstance {
        let mut pool = ValuePool::new();
        let rows_s: Vec<Vec<String>> = (0..30)
            .map(|i| vec![format!("k{i}"), format!("{}", i * 1000), "usd".into()])
            .collect();
        let rows_t: Vec<Vec<String>> = (0..30)
            .map(|i| vec![format!("k{i}"), format!("{i}"), "USD".into()])
            .collect();
        let s = Table::from_rows(Schema::new(["k", "Val", "Unit"]), &mut pool, rows_s);
        let t = Table::from_rows(Schema::new(["k", "Val", "Unit"]), &mut pool, rows_t);
        ProblemInstance::new(s, t, pool).unwrap()
    }

    #[test]
    fn extends_with_cheap_functions() {
        let mut inst = instance();
        let cfg = AffidavitConfig::paper_id();
        let mut ctx = Ctx::new(&mut inst, &cfg);
        // Start from the state that assigns id to the key attribute.
        let root = ctx.root_state();
        let start = make_child(&mut ctx, &root, 0, AttrFunction::Identity);
        let exts = extensions(&mut ctx, &start);
        assert!(!exts.is_empty());
        // Every extension must be cheaper than its greedy-map benchmark
        // and strictly extend the parent.
        for e in &exts {
            assert_eq!(e.level(), 2);
            assert_eq!(e.parent, Some(start.id));
        }
        // Among the extensions there should be the true scaling or the
        // uppercase function (both are dramatically cheaper than maps).
        let found_structural = exts.iter().any(|e| {
            e.assignments.iter().any(|a| {
                matches!(
                    a,
                    Assignment::Assigned(AttrFunction::Scale(_))
                        | Assignment::Assigned(AttrFunction::Uppercase)
                )
            })
        });
        assert!(found_structural);
    }

    #[test]
    fn parallel_extensions_match_sequential() {
        // The two-phase engine must produce identical children (functions,
        // costs, ids) at any thread count.
        let describe = |threads: usize| {
            let mut inst = instance();
            let mut cfg = AffidavitConfig::paper_id().with_threads(threads);
            cfg.parallel_min_records = 0; // force the fan-out path even on this tiny instance
            let mut ctx = Ctx::new(&mut inst, &cfg);
            let root = ctx.root_state();
            let start = make_child(&mut ctx, &root, 0, AttrFunction::Identity);
            extensions(&mut ctx, &start)
                .iter()
                .map(|e| (e.id, e.cost, format!("{:?}", e.assignments)))
                .collect::<Vec<_>>()
        };
        let seq = describe(1);
        let par = describe(4);
        assert_eq!(seq, par);
    }

    #[test]
    fn indeterminacy_ordering_prefers_determined() {
        let mut inst = instance();
        let cfg = AffidavitConfig::paper_id();
        let mut ctx = Ctx::new(&mut inst, &cfg);
        let root = ctx.root_state();
        let start = make_child(&mut ctx, &root, 0, AttrFunction::Identity);
        let order = order_by_indeterminacy(&ctx.instance.source, &start);
        // Unit has 1 distinct source value per block; Val has 1 as well
        // (singleton blocks) — ties break towards the lower index (1).
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn root_state_blocking_is_single_block() {
        let mut inst = instance();
        let cfg = AffidavitConfig::paper_id();
        let mut ctx = Ctx::new(&mut inst, &cfg);
        let root = ctx.root_state();
        assert_eq!(root.blocking.len(), 1);
        assert!(Blocking::root(&ctx.instance.source, &ctx.instance.target).blocks[0].is_mixed());
    }
}
