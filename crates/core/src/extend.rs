//! State extension — the `Extensions(H)` procedure of Algorithm 1.
//!
//! For a polled state, the β most determined undecided attributes are
//! tried: candidate functions are induced from block-sampled examples,
//! ranked by histogram overlap, and an extension is kept only if it is
//! cheaper than extending with the *greedy map* `Hд` built from a random
//! alignment — the signal that a simple function genuinely explains the
//! attribute. Attributes where the greedy map wins are ⊞-marked; if every
//! remaining attribute is map-suited the state is finalized into an end
//! state by resolving the ⊞s one after another (§4.3).

use affidavit_blocking::{greedy_map_from_alignment, sample_random_alignment};
use affidavit_functions::{AppliedFunction, AttrFunction};
use affidavit_table::AttrId;
use std::sync::Arc;

use crate::cost::state_cost;
use crate::induction::{induce_candidates, InductionParams};
use crate::ranking::rank_candidates;
use crate::search::Ctx;
use crate::state::{Assignment, SearchState};
use crate::trace::TraceNode;

/// Create the child of `state` that assigns `func` to `attr`, refining the
/// blocking and computing the child's cost.
pub(crate) fn make_child(
    ctx: &mut Ctx<'_>,
    state: &SearchState,
    attr: usize,
    func: AttrFunction,
) -> SearchState {
    let mut assignments = state.assignments.clone();
    assignments[attr] = Assignment::Assigned(func.clone());
    let mut applied = AppliedFunction::new(func.clone());
    let blocking = state.blocking.refine(
        AttrId(attr as u32),
        &mut applied,
        &ctx.instance.source,
        &ctx.instance.target,
        &mut ctx.instance.pool,
    );
    let cost = state_cost(
        &assignments,
        &blocking,
        ctx.delta,
        ctx.cfg.alpha,
        ctx.arity,
    );
    let id = ctx.next_id();
    ctx.stats.states_generated += 1;
    if let Some(trace) = ctx.trace.as_mut() {
        let name = ctx.instance.schema().name(AttrId(attr as u32)).to_owned();
        let label = format!("{} ← {}", name, func.display(&ctx.instance.pool));
        let level = assignments
            .iter()
            .filter(|a| matches!(a, Assignment::Assigned(_)))
            .count();
        trace.add(TraceNode {
            id,
            parent: Some(state.id),
            level,
            cost,
            label,
            polled_order: None,
            kept: false,
            end: assignments.iter().all(|a| matches!(a, Assignment::Assigned(_))),
        });
    }
    SearchState {
        assignments,
        blocking: Arc::new(blocking),
        cost,
        id,
        parent: Some(state.id),
    }
}

/// Undecided attributes ordered by indeterminacy (most determined first,
/// ties towards the lower attribute index) — the `Order-By-Indeterminacy`
/// step.
pub(crate) fn order_by_indeterminacy(ctx: &Ctx<'_>, state: &SearchState) -> Vec<usize> {
    let mut attrs = state.undecided_attrs();
    let keys: Vec<usize> = attrs
        .iter()
        .map(|&a| state.blocking.indeterminacy(AttrId(a as u32), &ctx.instance.source))
        .collect();
    let mut order: Vec<usize> = (0..attrs.len()).collect();
    order.sort_by_key(|&i| (keys[i], attrs[i]));
    attrs = order.into_iter().map(|i| attrs[i]).collect();
    attrs
}

/// The `Extensions(H)` procedure. Returns the kept extensions, or — when
/// every undecided attribute turns out to be map-suited — a single
/// finalized end state.
pub(crate) fn extensions(ctx: &mut Ctx<'_>, state: &SearchState) -> Vec<SearchState> {
    let astar = order_by_indeterminacy(ctx, state);
    debug_assert!(!astar.is_empty(), "extensions called on an end state");

    let alignment = sample_random_alignment(&state.blocking, &mut ctx.rng);
    let mut ext: Vec<SearchState> = Vec::new();
    let mut cursor = astar.iter().copied();
    // Poll β attributes first, then one at a time.
    let mut batch: Vec<usize> = cursor.by_ref().take(ctx.cfg.beta.max(1)).collect();

    while ext.is_empty() && !batch.is_empty() {
        for &attr in &batch {
            // The greedy-map benchmark Hд. An empty map (every aligned
            // value already agrees) is the identity — normalize so
            // explanations never show `map{}`.
            let gmap = greedy_map_from_alignment(
                &alignment,
                AttrId(attr as u32),
                &ctx.instance.source,
                &ctx.instance.target,
            );
            let g_func = if gmap.is_empty() {
                AttrFunction::Identity
            } else {
                AttrFunction::Map(gmap)
            };
            let hg = make_child(ctx, state, attr, g_func);

            // Induce and rank candidates for this attribute.
            let params = InductionParams {
                k: ctx.k_induce,
                min_support: ctx.cfg.min_support,
                max_examples_per_target: ctx.cfg.max_examples_per_target,
                use_corpus: ctx.cfg.use_corpus,
            };
            let cands = induce_candidates(
                &state.blocking,
                AttrId(attr as u32),
                &ctx.instance.source,
                &ctx.instance.target,
                &mut ctx.instance.pool,
                &ctx.cfg.registry,
                params,
                &mut ctx.rng,
            );
            let ranked = rank_candidates(
                &state.blocking,
                AttrId(attr as u32),
                cands.into_iter().map(|c| c.func).collect(),
                &ctx.instance.source,
                &ctx.instance.target,
                &mut ctx.instance.pool,
                ctx.k_rank,
                ctx.cfg.beta.max(1),
                &mut ctx.rng,
            );

            let mut kept_any = false;
            for rc in ranked {
                let hf = make_child(ctx, state, attr, rc.func);
                if hf.cost < hg.cost {
                    kept_any = true;
                    ext.push(hf);
                }
            }
            let _ = kept_any; // map-marking is implicit: unkept attrs stay ∗
        }
        batch = cursor.by_ref().take(1).collect();
    }

    if ext.is_empty() {
        // Every undecided attribute is best served by a value mapping:
        // mark all ⊞ and finalize (Algorithm 1's fallback branch).
        return vec![crate::finalize::finalize(ctx, state)];
    }
    ext
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AffidavitConfig;
    use crate::instance::ProblemInstance;
    use crate::search::Ctx;
    use affidavit_blocking::Blocking;
    use affidavit_table::{Schema, Table, ValuePool};

    fn instance() -> ProblemInstance {
        let mut pool = ValuePool::new();
        let rows_s: Vec<Vec<String>> = (0..30)
            .map(|i| vec![format!("k{i}"), format!("{}", i * 1000), "usd".into()])
            .collect();
        let rows_t: Vec<Vec<String>> = (0..30)
            .map(|i| vec![format!("k{i}"), format!("{i}"), "USD".into()])
            .collect();
        let s = Table::from_rows(Schema::new(["k", "Val", "Unit"]), &mut pool, rows_s);
        let t = Table::from_rows(Schema::new(["k", "Val", "Unit"]), &mut pool, rows_t);
        ProblemInstance::new(s, t, pool).unwrap()
    }

    #[test]
    fn extends_with_cheap_functions() {
        let mut inst = instance();
        let cfg = AffidavitConfig::paper_id();
        let mut ctx = Ctx::new(&mut inst, &cfg);
        // Start from the state that assigns id to the key attribute.
        let root = ctx.root_state();
        let start = make_child(&mut ctx, &root, 0, AttrFunction::Identity);
        let exts = extensions(&mut ctx, &start);
        assert!(!exts.is_empty());
        // Every extension must be cheaper than its greedy-map benchmark
        // and strictly extend the parent.
        for e in &exts {
            assert_eq!(e.level(), 2);
            assert_eq!(e.parent, Some(start.id));
        }
        // Among the extensions there should be the true scaling or the
        // uppercase function (both are dramatically cheaper than maps).
        let found_structural = exts.iter().any(|e| {
            e.assignments.iter().any(|a| {
                matches!(
                    a,
                    Assignment::Assigned(AttrFunction::Scale(_))
                        | Assignment::Assigned(AttrFunction::Uppercase)
                )
            })
        });
        assert!(found_structural);
    }

    #[test]
    fn indeterminacy_ordering_prefers_determined() {
        let mut inst = instance();
        let cfg = AffidavitConfig::paper_id();
        let mut ctx = Ctx::new(&mut inst, &cfg);
        let root = ctx.root_state();
        let start = make_child(&mut ctx, &root, 0, AttrFunction::Identity);
        let order = order_by_indeterminacy(&ctx, &start);
        // Unit has 1 distinct source value per block; Val has 1 as well
        // (singleton blocks) — ties break towards the lower index (1).
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn root_state_blocking_is_single_block() {
        let mut inst = instance();
        let cfg = AffidavitConfig::paper_id();
        let mut ctx = Ctx::new(&mut inst, &cfg);
        let root = ctx.root_state();
        assert_eq!(root.blocking.len(), 1);
        assert!(Blocking::root(&ctx.instance.source, &ctx.instance.target)
            .blocks[0]
            .is_mixed());
    }
}
