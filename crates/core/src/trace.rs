//! Search tracing — enough to reproduce Figure 4's search tree.
//!
//! When `AffidavitConfig::trace` is set, every generated state becomes a
//! node with a human-readable label, its cost, parent link, whether it was
//! kept (entered the queue) and the order in which it was polled. The
//! renderer prints an indented tree with `[n]` poll-order markers like the
//! figure.

/// One node of the search tree.
#[derive(Debug, Clone)]
pub struct TraceNode {
    /// State id.
    pub id: usize,
    /// Parent state id.
    pub parent: Option<usize>,
    /// Lattice level (number of assignments).
    pub level: usize,
    /// State cost.
    pub cost: f64,
    /// Human-readable description of the newest assignment (or the start
    /// state).
    pub label: String,
    /// Poll order (1-based), if the state was ever extracted from the queue.
    pub polled_order: Option<usize>,
    /// Whether the state entered the queue (false = rejected/pruned, the
    /// greyed-out arrows of Figure 4).
    pub kept: bool,
    /// Whether this is an end state.
    pub end: bool,
}

/// A recorded search tree.
#[derive(Debug, Clone, Default)]
pub struct SearchTrace {
    /// All nodes, indexed by state id.
    pub nodes: Vec<TraceNode>,
    next_poll: usize,
}

impl SearchTrace {
    /// Create an empty trace.
    pub fn new() -> SearchTrace {
        SearchTrace::default()
    }

    /// Record a generated state. Ids must be dense and increasing.
    pub fn add(&mut self, node: TraceNode) {
        debug_assert_eq!(node.id, self.nodes.len(), "trace ids must be dense");
        self.nodes.push(node);
    }

    /// Mark a state as polled, assigning the next poll order.
    pub fn mark_polled(&mut self, id: usize) {
        self.next_poll += 1;
        if let Some(n) = self.nodes.get_mut(id) {
            n.polled_order = Some(self.next_poll);
        }
    }

    /// Mark whether a generated state was kept in the queue.
    pub fn mark_kept(&mut self, id: usize, kept: bool) {
        if let Some(n) = self.nodes.get_mut(id) {
            n.kept = kept;
        }
    }

    /// Render the tree as indented ASCII (Figure 4 style): poll order in
    /// square brackets, costs in parentheses, `✗` for pruned states.
    pub fn render(&self) -> String {
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        let mut roots = Vec::new();
        for n in &self.nodes {
            match n.parent {
                Some(p) => children[p].push(n.id),
                None => roots.push(n.id),
            }
        }
        let mut out = String::new();
        for &r in &roots {
            self.render_node(r, 0, &children, &mut out);
        }
        out
    }

    fn render_node(&self, id: usize, depth: usize, children: &[Vec<usize>], out: &mut String) {
        let n = &self.nodes[id];
        for _ in 0..depth {
            out.push_str("  ");
        }
        match n.polled_order {
            Some(k) => out.push_str(&format!("[{k}] ")),
            None => out.push_str(if n.kept { "    " } else { " ✗  " }),
        }
        out.push_str(&n.label);
        out.push_str(&format!(" (c={:.0})", n.cost));
        if n.end {
            out.push_str("  ◀ end state");
        }
        out.push('\n');
        for &c in &children[id] {
            self.render_node(c, depth + 1, children, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: usize, parent: Option<usize>, label: &str) -> TraceNode {
        TraceNode {
            id,
            parent,
            level: 0,
            cost: 42.0,
            label: label.to_owned(),
            polled_order: None,
            kept: true,
            end: false,
        }
    }

    #[test]
    fn render_tree() {
        let mut t = SearchTrace::new();
        t.add(node(0, None, "start"));
        t.add(node(1, Some(0), "ID2 ← id"));
        t.add(node(2, Some(0), "Unit ← const"));
        t.mark_polled(0);
        t.mark_polled(2);
        t.mark_kept(1, false);
        let s = t.render();
        assert!(s.contains("[1] start"));
        assert!(s.contains("[2] Unit ← const"));
        assert!(s.contains("✗  ID2 ← id"));
    }

    #[test]
    fn poll_order_is_sequential() {
        let mut t = SearchTrace::new();
        t.add(node(0, None, "a"));
        t.add(node(1, Some(0), "b"));
        t.mark_polled(0);
        t.mark_polled(1);
        assert_eq!(t.nodes[0].polled_order, Some(1));
        assert_eq!(t.nodes[1].polled_order, Some(2));
    }
}

impl SearchTrace {
    /// Render the search tree as Graphviz DOT (Figure 4 as a diagram):
    /// polled states carry their extraction order, pruned states are grey.
    pub fn to_dot(&self) -> String {
        let mut out =
            String::from("digraph search {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
        for n in &self.nodes {
            let label = n.label.replace('\\', "\\\\").replace('"', "\\\"");
            let order = n
                .polled_order
                .map(|k| format!("[{k}] "))
                .unwrap_or_default();
            let style = if n.end {
                ", style=filled, fillcolor=lightblue"
            } else if n.polled_order.is_some() {
                ", style=filled, fillcolor=lightyellow"
            } else if !n.kept {
                ", color=grey, fontcolor=grey"
            } else {
                ""
            };
            out.push_str(&format!(
                "  n{} [label=\"{}{} (c={:.0})\"{}];\n",
                n.id, order, label, n.cost, style
            ));
            if let Some(p) = n.parent {
                let edge_style = if n.kept { "" } else { " [color=grey]" };
                out.push_str(&format!("  n{p} -> n{}{edge_style};\n", n.id));
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_output_is_wellformed() {
        let mut t = SearchTrace::new();
        t.add(TraceNode {
            id: 0,
            parent: None,
            level: 0,
            cost: 1.0,
            label: "root \"quoted\"".into(),
            polled_order: None,
            kept: true,
            end: false,
        });
        t.add(TraceNode {
            id: 1,
            parent: Some(0),
            level: 1,
            cost: 2.0,
            label: "child".into(),
            polled_order: None,
            kept: false,
            end: true,
        });
        t.mark_polled(0);
        let dot = t.to_dot();
        assert!(dot.starts_with("digraph search {"));
        assert!(dot.contains("n0 -> n1 [color=grey];"));
        assert!(dot.contains("\\\"quoted\\\""));
        assert!(dot.contains("[1] root"));
        assert!(dot.ends_with("}\n"));
    }
}
