//! Explanation reporting: pretty printing and SQL export.
//!
//! The table-comparison tools of §2 "export executable SQL scripts that
//! implement the transformation of the data" but "do not generalize well to
//! unknown records because the value changes are explicitly stated per
//! record". An Affidavit explanation exports *generalizing* SQL: one
//! `UPDATE` per systematically transformed attribute, plus explicit
//! `DELETE`/`INSERT` only for the noise records.

use std::fmt::Write as _;

use affidavit_functions::AttrFunction;
use affidavit_table::AttrId;

use crate::explanation::Explanation;
use crate::instance::ProblemInstance;

/// Render a human-readable report of an explanation.
pub fn render_report(explanation: &Explanation, instance: &ProblemInstance) -> String {
    let _span = affidavit_obs::span("report.render");
    let mut out = String::new();
    let arity = instance.arity();
    let _ = writeln!(
        out,
        "Explanation: core={} deleted={} inserted={} cost={}",
        explanation.core_size(),
        explanation.deleted.len(),
        explanation.inserted.len(),
        explanation.cost_units(arity),
    );
    let _ = writeln!(
        out,
        "  L(T+)={} (|A|={} × {} inserted), L(F)={}",
        explanation.l_inserted(arity),
        arity,
        explanation.inserted.len(),
        explanation.l_functions(),
    );
    let _ = writeln!(out, "Attribute functions:");
    for (a, f) in explanation.functions.iter().enumerate() {
        let name = instance.schema().name(AttrId(a as u32));
        let _ = writeln!(
            out,
            "  f_{name}: {}   (ψ={})",
            f.display(&instance.pool),
            f.psi()
        );
    }
    out
}

/// Quote a value as a SQL string literal.
fn sql_quote(v: &str) -> String {
    format!("'{}'", v.replace('\'', "''"))
}

/// Quote an identifier.
fn sql_ident(v: &str) -> String {
    format!("\"{}\"", v.replace('"', "\"\""))
}

/// Render one attribute function as the right-hand side of
/// `SET col = <expr>`; `None` for identity (no update needed).
fn sql_expr(f: &AttrFunction, col: &str, instance: &ProblemInstance) -> Option<String> {
    let pool = &instance.pool;
    let c = sql_ident(col);
    match f {
        AttrFunction::Identity => None,
        AttrFunction::Uppercase => Some(format!("UPPER({c})")),
        AttrFunction::Lowercase => Some(format!("LOWER({c})")),
        AttrFunction::Constant(v) => Some(sql_quote(pool.get(*v))),
        AttrFunction::Add(y) => Some(format!("{c} + {y}")),
        AttrFunction::Scale(r) => {
            if r.den() == 1 {
                Some(format!("{c} * {}", r.num()))
            } else if r.num() == 1 {
                Some(format!("{c} / {}", r.den()))
            } else {
                Some(format!("{c} * {} / {}", r.num(), r.den()))
            }
        }
        AttrFunction::FrontMask(m) => {
            let mask = pool.get(*m);
            let k = mask.chars().count();
            Some(format!(
                "{} || SUBSTR({c}, {})",
                sql_quote(mask),
                k + 1
            ))
        }
        AttrFunction::BackMask(m) => {
            let mask = pool.get(*m);
            let k = mask.chars().count();
            Some(format!(
                "SUBSTR({c}, 1, LENGTH({c}) - {k}) || {}",
                sql_quote(mask)
            ))
        }
        AttrFunction::FrontCharTrim(ch) => Some(format!("LTRIM({c}, {})", sql_quote(&ch.to_string()))),
        AttrFunction::BackCharTrim(ch) => Some(format!("RTRIM({c}, {})", sql_quote(&ch.to_string()))),
        AttrFunction::Prefix(y) => Some(format!("{} || {c}", sql_quote(pool.get(*y)))),
        AttrFunction::Suffix(y) => Some(format!("{c} || {}", sql_quote(pool.get(*y)))),
        AttrFunction::PrefixReplace(y, z) => {
            let y = pool.get(*y);
            let z = pool.get(*z);
            Some(format!(
                "CASE WHEN {c} LIKE {like} THEN {zq} || SUBSTR({c}, {n}) ELSE {c} END",
                like = sql_quote(&format!("{y}%")),
                zq = sql_quote(z),
                n = y.chars().count() + 1,
            ))
        }
        AttrFunction::SuffixReplace(y, z) => {
            let y = pool.get(*y);
            let z = pool.get(*z);
            Some(format!(
                "CASE WHEN {c} LIKE {like} THEN SUBSTR({c}, 1, LENGTH({c}) - {n}) || {zq} ELSE {c} END",
                like = sql_quote(&format!("%{y}")),
                zq = sql_quote(z),
                n = y.chars().count(),
            ))
        }
        AttrFunction::DateConvert(from, to) => Some(format!(
            "/* date {} -> {} */ {c}",
            from.name(),
            to.name()
        )),
        AttrFunction::ZeroPad(w) => Some(format!(
            "CASE WHEN LENGTH({c}) < {w} THEN SUBSTR('{zeros}', 1, {w} - LENGTH({c})) || {c} ELSE {c} END",
            zeros = "0".repeat(*w as usize),
        )),
        // Locale-dependent number formatting has no portable SQL; emit the
        // intent as a comment so the migration script stays reviewable.
        AttrFunction::ThousandsSep(sep) => Some(format!(
            "/* group thousands with {:?} */ {c}",
            sep
        )),
        AttrFunction::SepStrip(sep) => Some(format!(
            "REPLACE({c}, {}, '')",
            sql_quote(&sep.to_string())
        )),
        AttrFunction::Round(places) => Some(format!("ROUND({c}, {places})")),
        AttrFunction::TokenProgram(prog) => Some(format!(
            "/* token program: {} */ {c}",
            prog.display(pool)
        )),
        AttrFunction::Map(m) => {
            let mut expr = String::from("CASE");
            for (k, v) in m.entries() {
                let _ = write!(
                    expr,
                    " WHEN {c} = {} THEN {}",
                    sql_quote(pool.get(*k)),
                    sql_quote(pool.get(*v))
                );
            }
            let _ = write!(expr, " ELSE {c} END");
            Some(expr)
        }
    }
}

/// Export the explanation as a SQL migration script for `table_name`.
pub fn to_sql(explanation: &Explanation, instance: &ProblemInstance, table_name: &str) -> String {
    let mut out = String::new();
    let tbl = sql_ident(table_name);
    let _ = writeln!(
        out,
        "-- Affidavit migration script: {} core, {} deleted, {} inserted",
        explanation.core_size(),
        explanation.deleted.len(),
        explanation.inserted.len()
    );
    // Systematic attribute transformations.
    let mut sets: Vec<String> = Vec::new();
    for (a, f) in explanation.functions.iter().enumerate() {
        let col = instance.schema().name(AttrId(a as u32));
        if let Some(expr) = sql_expr(f, col, instance) {
            sets.push(format!("{} = {}", sql_ident(col), expr));
        }
    }
    if !sets.is_empty() {
        let _ = writeln!(out, "UPDATE {tbl} SET\n  {};", sets.join(",\n  "));
    }
    // Noise records.
    for &sid in &explanation.deleted {
        let rec = instance.source.record(sid);
        let conds: Vec<String> = rec
            .values()
            .iter()
            .enumerate()
            .map(|(a, &v)| {
                format!(
                    "{} = {}",
                    sql_ident(instance.schema().name(AttrId(a as u32))),
                    sql_quote(instance.pool.get(v))
                )
            })
            .collect();
        let _ = writeln!(out, "DELETE FROM {tbl} WHERE {};", conds.join(" AND "));
    }
    for &tid in &explanation.inserted {
        let rec = instance.target.record(tid);
        let cols: Vec<String> = instance.schema().names().map(sql_ident).collect();
        let vals: Vec<String> = rec
            .values()
            .iter()
            .map(|&v| sql_quote(instance.pool.get(v)))
            .collect();
        let _ = writeln!(
            out,
            "INSERT INTO {tbl} ({}) VALUES ({});",
            cols.join(", "),
            vals.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::{Rational, Schema, Table, ValuePool};

    fn instance() -> ProblemInstance {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(
            Schema::new(["Val", "Unit"]),
            &mut pool,
            vec![vec!["80000", "USD"], vec!["999", "USD"]],
        );
        let t = Table::from_rows(
            Schema::new(["Val", "Unit"]),
            &mut pool,
            vec![vec!["80", "k $"], vec!["5", "k $"]],
        );
        ProblemInstance::new(s, t, pool).unwrap()
    }

    fn explanation(instance: &mut ProblemInstance) -> Explanation {
        let k = instance.pool.intern("k $");
        Explanation::from_functions(
            vec![
                AttrFunction::Scale(Rational::new(1, 1000).unwrap()),
                AttrFunction::Constant(k),
            ],
            instance,
        )
    }

    #[test]
    fn report_mentions_all_functions() {
        let mut inst = instance();
        let e = explanation(&mut inst);
        let report = render_report(&e, &inst);
        assert!(report.contains("f_Val"));
        assert!(report.contains("f_Unit"));
        assert!(report.contains("x / 1000"));
    }

    #[test]
    fn sql_contains_generalizing_update() {
        let mut inst = instance();
        let e = explanation(&mut inst);
        let sql = to_sql(&e, &inst, "erp_values");
        assert!(sql.contains("UPDATE \"erp_values\" SET"));
        assert!(sql.contains("\"Val\" = \"Val\" / 1000"));
        assert!(sql.contains("\"Unit\" = 'k $'"));
        // One deleted source (999 doesn't divide to 5) + one inserted.
        assert!(sql.contains("DELETE FROM"));
        assert!(sql.contains("INSERT INTO"));
    }

    #[test]
    fn sql_quoting_escapes() {
        assert_eq!(sql_quote("o'brien"), "'o''brien'");
        assert_eq!(sql_ident("we\"ird"), "\"we\"\"ird\"");
    }

    #[test]
    fn sql_for_extension_kinds() {
        let mut inst = instance();
        let e = Explanation::from_functions(
            vec![AttrFunction::ZeroPad(6), AttrFunction::Round(2)],
            &mut inst,
        );
        let sql = to_sql(&e, &inst, "t");
        assert!(sql.contains("LENGTH(\"Val\") < 6"), "{sql}");
        assert!(sql.contains("ROUND(\"Unit\", 2)"), "{sql}");
    }

    #[test]
    fn sql_comments_for_non_portable_kinds() {
        use affidavit_functions::substring::{Segment, TokenProgram};
        let mut inst = instance();
        let prog = TokenProgram::new(vec![
            Segment::Token {
                idx: 1,
                from_end: false,
            },
            Segment::Literal(inst.pool.intern(" ")),
            Segment::Token {
                idx: 0,
                from_end: false,
            },
        ])
        .unwrap();
        let e = Explanation::from_functions(
            vec![
                AttrFunction::TokenProgram(prog),
                AttrFunction::ThousandsSep(','),
            ],
            &mut inst,
        );
        let sql = to_sql(&e, &inst, "t");
        // No portable SQL exists; the intent must survive as a comment so
        // the script stays reviewable rather than silently wrong.
        assert!(sql.contains("/* token program:"), "{sql}");
        assert!(sql.contains("/* group thousands"), "{sql}");
    }
}
