//! Problem instances (Def. 3.1).
//!
//! An instance bundles the source snapshot `S`, the target snapshot `T`
//! (same schema `A`) and the shared [`ValuePool`] both were interned into.
//! The candidate function set `F` is described implicitly by the enabled
//! meta functions in the search configuration.

use affidavit_table::{Schema, Table, TableError, ValuePool};

/// A problem instance `I = (S, T, A, F)`.
#[derive(Debug, Clone)]
pub struct ProblemInstance {
    /// Source snapshot `S`.
    pub source: Table,
    /// Target snapshot `T`.
    pub target: Table,
    /// The shared value pool. Mutated during search as transformed values
    /// are interned.
    pub pool: ValuePool,
}

impl ProblemInstance {
    /// Build an instance, verifying the snapshots share a schema.
    pub fn new(
        source: Table,
        target: Table,
        pool: ValuePool,
    ) -> Result<ProblemInstance, TableError> {
        if source.schema() != target.schema() {
            return Err(TableError::SchemaMismatch {
                detail: format!(
                    "source schema {:?} != target schema {:?}",
                    source.schema().names().collect::<Vec<_>>(),
                    target.schema().names().collect::<Vec<_>>()
                ),
            });
        }
        Ok(ProblemInstance {
            source,
            target,
            pool,
        })
    }

    /// The shared schema `A`.
    pub fn schema(&self) -> &Schema {
        self.source.schema()
    }

    /// Number of attributes `d = |A|`.
    pub fn arity(&self) -> usize {
        self.source.schema().arity()
    }

    /// `Δ = |S| − |T|` (Corollary 4.5).
    pub fn delta(&self) -> i64 {
        self.source.len() as i64 - self.target.len() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_mismatch_rejected() {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(Schema::new(["a"]), &mut pool, vec![vec!["1"]]);
        let t = Table::from_rows(Schema::new(["b"]), &mut pool, vec![vec!["1"]]);
        assert!(ProblemInstance::new(s, t, pool).is_err());
    }

    #[test]
    fn delta() {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(Schema::new(["a"]), &mut pool, vec![vec!["1"], vec!["2"]]);
        let t = Table::from_rows(Schema::new(["a"]), &mut pool, vec![vec!["1"]]);
        let inst = ProblemInstance::new(s, t, pool).unwrap();
        assert_eq!(inst.delta(), 1);
        assert_eq!(inst.arity(), 1);
    }
}
