//! The Affidavit search algorithm — the paper's primary contribution.
//!
//! Solves practical instances of **Explain-Table-Delta** (Def. 3.11): given
//! two unaligned snapshots of a table, find the cheapest explanation
//! `E = (S^E−, T^E+, F^E)` of the differences under the minimum-description-
//! length cost of Def. 3.10. The problem is NP-hard (Thm. 3.12); Affidavit
//! is the best-first search of Algorithm 1 over partial attribute-function
//! assignments.
//!
//! Entry point: [`search::Affidavit`].
//!
//! ```
//! use affidavit_core::config::AffidavitConfig;
//! use affidavit_core::instance::ProblemInstance;
//! use affidavit_core::search::Affidavit;
//! use affidavit_table::{Schema, Table, ValuePool};
//!
//! let mut pool = ValuePool::new();
//! let source = Table::from_rows(
//!     Schema::new(["Val", "Org"]),
//!     &mut pool,
//!     vec![vec!["80000", "IBM"], vec!["65", "SAP"], vec!["21000", "IBM"]],
//! );
//! let target = Table::from_rows(
//!     Schema::new(["Val", "Org"]),
//!     &mut pool,
//!     vec![vec!["80", "IBM"], vec!["0.065", "SAP"], vec!["21", "IBM"]],
//! );
//! let mut instance = ProblemInstance::new(source, target, pool).unwrap();
//! let result = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut instance);
//! assert_eq!(result.explanation.core_pairs().len(), 3); // everything aligns
//! ```

#![warn(missing_docs)]

pub mod apply;
pub mod config;
pub mod cost;
pub mod delta;
pub mod expansion;
pub mod explanation;
pub mod extend;
pub mod finalize;
pub mod induction;
pub mod instance;
pub mod portable;
pub mod profiling;
pub mod queue;
pub mod ranking;
pub mod report;
pub mod restructure;
pub mod schema_align;
pub mod search;
pub mod state;
pub mod stats;
pub mod trace;

pub use config::{resolve_parallelism, AffidavitConfig, InitStrategy};
pub use expansion::{
    expand_portable, ExpansionExecutor, ExpansionRequest, PortableAttrExpansion, PortableChild,
    PortableExpansion,
};
pub use explanation::Explanation;
pub use instance::ProblemInstance;
pub use search::{Affidavit, DeadlineExceeded, SearchOutcome};
