//! Search-state costs (Def. 4.6) and their relation to explanation costs
//! (Def. 3.10).
//!
//! As printed, Def. 4.6 reads `c(H) = 2α·cf(H) + 2(α−1)·max(ct, cs − Δ)`,
//! which is negative for the record term and swaps the roles of α relative
//! to Def. 3.10. We implement the evidently intended lower bound of the
//! final explanation cost:
//!
//! ```text
//! c(H) = 2α·|A|·max(ct(H), cs(H) − Δ) + 2(1−α)·cf(H)
//! ```
//!
//! * the record term is scaled by `|A|`, matching `L(T^E+) = |A|·|T^E+|`
//!   (Def. 3.8) — each unexplained target record costs `|A|` data values;
//! * α weighs the record term and `(1−α)` the function term, as in
//!   Def. 3.10;
//! * `max(ct, cs − Δ)` is the tighter of the two lower bounds on `|T^E+|`
//!   (§4.5, Corollary 4.5), clamped at 0.
//!
//! With this normalization an *end state's* cost equals the cost of the
//! explanation constructed from it: at an end state the blocking groups
//! records by their full transformed tuples, so `ct` counts exactly the
//! target records that no core record can produce (`|T^E+|`), and `cf`
//! equals `L(F^E)` (verified by `search::tests::end_state_cost_matches_
//! explanation_cost`).

use affidavit_blocking::Blocking;

use crate::state::Assignment;

/// `cf(H) = Σ ψ(h_i)` over concretely assigned attributes.
pub fn cf(assignments: &[Assignment]) -> u64 {
    assignments
        .iter()
        .map(|a| match a {
            Assignment::Assigned(f) => f.psi(),
            _ => 0,
        })
        .sum()
}

/// The `max(ct, cs − Δ)` lower bound on `|T^E+|`, clamped at 0.
pub fn record_bound(blocking: &Blocking, delta: i64) -> u64 {
    let ct = blocking.ct() as i64;
    let cs = blocking.cs() as i64;
    ct.max(cs - delta).max(0) as u64
}

/// Cost of the child that extends `parent` by assigning a function with
/// description length `func_psi` to a previously *open* attribute, over
/// the child's `blocking`. Computed incrementally from the parent's
/// assignments (`cf(child) = cf(parent) + ψ(f)` since an open attribute
/// contributes no ψ) — avoids cloning the assignment vector on the
/// extension hot path.
pub fn child_state_cost(
    parent: &[Assignment],
    func_psi: u64,
    blocking: &Blocking,
    delta: i64,
    alpha: f64,
    arity: usize,
) -> f64 {
    let records = record_bound(blocking, delta) as f64;
    let funcs = (cf(parent) + func_psi) as f64;
    2.0 * alpha * (arity as f64) * records + 2.0 * (1.0 - alpha) * funcs
}

/// Full state cost `c(H)`.
pub fn state_cost(
    assignments: &[Assignment],
    blocking: &Blocking,
    delta: i64,
    alpha: f64,
    arity: usize,
) -> f64 {
    let records = record_bound(blocking, delta) as f64;
    let funcs = cf(assignments) as f64;
    2.0 * alpha * (arity as f64) * records + 2.0 * (1.0 - alpha) * funcs
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_blocking::Block;
    use affidavit_functions::AttrFunction;
    use affidavit_table::RecordId;

    fn blocking(shape: &[(usize, usize)], dead: usize) -> Blocking {
        let mut b = Blocking::default();
        let mut next = 0u32;
        for &(ns, nt) in shape {
            let src = (0..ns).map(|_| RecordId(0)).collect();
            let tgt = (0..nt).map(|_| RecordId(0)).collect();
            b.blocks.push(Block { src, tgt });
        }
        for _ in 0..dead {
            b.dead_src.push(RecordId(next));
            next += 1;
        }
        b
    }

    #[test]
    fn cf_sums_assigned_only() {
        let a = vec![
            Assignment::Assigned(AttrFunction::Identity), // ψ 0
            Assignment::Undecided,
            Assignment::MapMarked,
            Assignment::Assigned(AttrFunction::FrontCharTrim('0')), // ψ 1
        ];
        assert_eq!(cf(&a), 1);
    }

    #[test]
    fn record_bound_uses_tighter_side() {
        // Block shapes: (src, tgt). ct = 2 (surplus targets), cs = 3.
        let b = blocking(&[(0, 2), (4, 1)], 0);
        assert_eq!(b.ct(), 2);
        assert_eq!(b.cs(), 3);
        // Δ = 0: |T^E+| = |S^E−| − Δ = cs ⇒ bound = max(2, 3) = 3.
        assert_eq!(record_bound(&b, 0), 3);
        // Δ = 3 (S three records larger): bound = max(2, 0) = 2.
        assert_eq!(record_bound(&b, 3), 2);
        // Δ = −5: cs − Δ = 8.
        assert_eq!(record_bound(&b, -5), 8);
    }

    #[test]
    fn dead_sources_tighten_cs() {
        let b = blocking(&[(1, 1)], 2);
        assert_eq!(record_bound(&b, 0), 2);
    }

    #[test]
    fn alpha_weights() {
        let b = blocking(&[(0, 1)], 0); // one unmatched target
        let a = vec![Assignment::Assigned(AttrFunction::FrontCharTrim('0'))];
        // α=0.5, |A|=3: cost = 3·1 + 1 = 4.
        assert_eq!(state_cost(&a, &b, 0, 0.5, 3), 4.0);
        // α=1: only records count: 2·3·1 = 6.
        assert_eq!(state_cost(&a, &b, 0, 1.0, 3), 6.0);
        // α=0: only functions count: 2·1 = 2.
        assert_eq!(state_cost(&a, &b, 0, 0.0, 3), 2.0);
    }
}
