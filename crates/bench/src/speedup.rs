//! Parallel-speedup validity for the benchmark JSON artifacts.
//!
//! Every `BENCH_*.json` that reports a thread-scaling ratio carries a
//! `hardware_threads` / `speedup_valid` pair so a reader can tell a real
//! slowdown from measurement noise on a machine that cannot physically
//! run two threads at once. The repro binaries all derive both fields
//! from this module (instead of each re-querying
//! `std::thread::available_parallelism()` inline), and
//! [`warn_if_invalid`] prints one explicit stderr warning on such hosts
//! so a CI log shows *why* the speedup columns are flat.

use std::sync::Once;

/// Hardware threads available on the measuring machine, as reported by
/// `std::thread::available_parallelism()` (1 when the query fails).
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// True when this host can physically exhibit parallel speedup.
pub fn speedup_valid() -> bool {
    speedup_valid_for(hardware_threads())
}

/// The predicate behind [`speedup_valid`], split out so it is unit
/// testable without depending on the host the tests run on: a speedup
/// ratio is only meaningful with more than one hardware thread.
pub fn speedup_valid_for(hardware_threads: usize) -> bool {
    hardware_threads > 1
}

/// The warning for a host whose speedup columns are noise, or `None`
/// when the measurement is valid. Names `available_parallelism()`
/// explicitly so the log points at the actual signal consulted.
pub fn invalid_speedup_warning(hardware_threads: usize) -> Option<String> {
    if speedup_valid_for(hardware_threads) {
        return None;
    }
    Some(format!(
        "warning: std::thread::available_parallelism() reports {hardware_threads} hardware \
         thread(s); parallel speedup ratios in this run are measurement noise \
         (speedup_valid = false in the emitted JSON). `--threads 0` and `--workers 0` \
         autosize to this same count, so they buy nothing on this host either"
    ))
}

/// Print [`invalid_speedup_warning`] to stderr — once per process, no
/// matter how many benchmarks a binary runs. Returns the validity so
/// callers can thread it straight into their JSON structs.
pub fn warn_if_invalid() -> bool {
    static ONCE: Once = Once::new();
    let threads = hardware_threads();
    if let Some(warning) = invalid_speedup_warning(threads) {
        ONCE.call_once(|| eprintln!("{warning}"));
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_single_hardware_thread_invalidates_speedup() {
        assert!(!speedup_valid_for(1));
        assert!(speedup_valid_for(2));
        assert!(speedup_valid_for(64));
    }

    #[test]
    fn the_warning_names_the_parallelism_query() {
        let warning = invalid_speedup_warning(1).expect("1 thread must warn");
        assert!(
            warning.contains("available_parallelism()"),
            "the warning must name the signal it consulted: {warning}"
        );
        assert!(warning.contains("speedup_valid = false"), "{warning}");
        // The autosizing flags resolve to the same query, so the warning
        // names them too.
        assert!(warning.contains("--threads 0"), "{warning}");
        assert!(warning.contains("--workers 0"), "{warning}");
        assert_eq!(invalid_speedup_warning(2), None);
        assert_eq!(invalid_speedup_warning(8), None);
    }

    #[test]
    fn host_queries_are_consistent() {
        assert_eq!(speedup_valid(), speedup_valid_for(hardware_threads()));
        assert!(hardware_threads() >= 1);
    }
}
