//! Shared experiment harness: run Affidavit configurations over generated
//! problem instances and aggregate the §5.2 metrics.

use std::time::Instant;

use affidavit_core::{Affidavit, AffidavitConfig};
use affidavit_datagen::blueprint::{Blueprint, GenConfig};
use affidavit_datagen::metrics::{evaluate, InstanceMetrics};
use affidavit_datasets::specs::DatasetSpec;
use affidavit_datasets::synth::generate_rows;
use rayon::prelude::*;
use serde::Serialize;

/// The two Table 2 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ConfigKind {
    /// `Hs`: overlap start state, β = 1, ϱ = 1.
    Hs,
    /// `H^id`: id start states, β = 2, ϱ = 5.
    Hid,
}

impl ConfigKind {
    /// Short label as used in Table 2.
    pub fn label(&self) -> &'static str {
        match self {
            ConfigKind::Hs => "Hs",
            ConfigKind::Hid => "Hid",
        }
    }

    /// The corresponding solver configuration.
    pub fn to_config(self, seed: u64) -> AffidavitConfig {
        match self {
            ConfigKind::Hs => AffidavitConfig::paper_overlap().with_seed(seed),
            ConfigKind::Hid => AffidavitConfig::paper_id().with_seed(seed),
        }
    }
}

/// Averaged metrics of one Table 2 cell (dataset × setting × config).
#[derive(Debug, Clone, Serialize)]
pub struct CellResult {
    /// Dataset name.
    pub dataset: String,
    /// Attribute count of the materialized instances (incl. pk).
    pub attrs: usize,
    /// Record count of the base table used.
    pub records: usize,
    /// Configuration label.
    pub config: &'static str,
    /// Noise fraction η.
    pub eta: f64,
    /// Transformation fraction τ.
    pub tau: f64,
    /// Number of problem instances averaged.
    pub runs: usize,
    /// Mean runtime in seconds.
    pub t_secs: f64,
    /// Mean relative core size.
    pub delta_core: f64,
    /// Mean relative costs.
    pub delta_costs: f64,
    /// Mean cell accuracy.
    pub acc: f64,
}

impl CellResult {
    /// Render as a Table 2 style row fragment.
    pub fn row(&self) -> String {
        format!(
            "{:<12} {:>3} {:>7}  {:<3}  η=τ={:.1}  t={:>8.2}s  Δcore={:>5.2}  Δcosts={:>5.2}  acc={:>5.2}",
            self.dataset,
            self.attrs,
            self.records,
            self.config,
            self.eta,
            self.t_secs,
            self.delta_core,
            self.delta_costs,
            self.acc
        )
    }
}

/// Run one instance: solve and evaluate.
///
/// When `rows` caps the dataset below its paper size, the `Hs` overlap
/// pair budget is scaled down quadratically (`pairs ∝ rows²`) so the
/// matcher's collapse on low-distinctness tables — the Table 2 effect on
/// chess/nursery/letter — is preserved at laptop scale.
#[allow(clippy::too_many_arguments)]
pub fn run_one(
    spec: &DatasetSpec,
    rows: usize,
    eta: f64,
    tau: f64,
    kind: ConfigKind,
    seed: u64,
    threads: usize,
) -> InstanceMetrics {
    let (base, pool) = generate_rows(spec, rows, seed);
    let blueprint = Blueprint::new(base, pool, GenConfig::new(eta, tau, seed));
    let mut generated = blueprint.materialize_full();
    let mut cfg = kind.to_config(seed).with_threads(threads);
    if rows < spec.rows {
        let ratio = rows as f64 / spec.rows as f64;
        cfg.max_block_size = ((cfg.max_block_size as f64) * ratio * ratio)
            .ceil()
            .max(4.0) as usize;
    }
    let solver = Affidavit::new(cfg);
    let started = Instant::now();
    let outcome = solver.explain(&mut generated.instance);
    let runtime = started.elapsed();
    evaluate(&outcome.explanation, &mut generated, runtime)
}

/// Run a full Table 2 cell: `runs` instances in parallel, averaged.
#[allow(clippy::too_many_arguments)]
pub fn run_cell(
    spec: &DatasetSpec,
    rows: usize,
    eta: f64,
    tau: f64,
    kind: ConfigKind,
    runs: usize,
    base_seed: u64,
    threads: usize,
) -> CellResult {
    let metrics: Vec<InstanceMetrics> = (0..runs)
        .into_par_iter()
        .map(|i| run_one(spec, rows, eta, tau, kind, base_seed + i as u64, threads))
        .collect();
    let n = metrics.len() as f64;
    CellResult {
        dataset: spec.name.to_owned(),
        attrs: spec.attrs,
        records: rows,
        config: kind.label(),
        eta,
        tau,
        runs,
        t_secs: metrics.iter().map(|m| m.runtime.as_secs_f64()).sum::<f64>() / n,
        delta_core: metrics.iter().map(|m| m.delta_core).sum::<f64>() / n,
        delta_costs: metrics.iter().map(|m| m.delta_costs).sum::<f64>() / n,
        acc: metrics.iter().map(|m| m.accuracy).sum::<f64>() / n,
    }
}

/// The three Table 2 difficulty settings.
pub const SETTINGS: [(f64, f64); 3] = [(0.3, 0.3), (0.5, 0.5), (0.7, 0.7)];

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_datasets::by_name;

    #[test]
    fn easy_cell_reaches_high_accuracy() {
        let spec = by_name("iris").unwrap();
        let cell = run_cell(&spec, 150, 0.3, 0.3, ConfigKind::Hid, 3, 77, 1);
        assert!(cell.acc > 0.9, "acc {}", cell.acc);
        assert!(cell.delta_core > 0.9, "Δcore {}", cell.delta_core);
        assert!(
            (cell.delta_costs - 1.0).abs() < 0.3,
            "Δcosts {}",
            cell.delta_costs
        );
    }

    #[test]
    fn config_kinds_map_to_paper_parameters() {
        let hs = ConfigKind::Hs.to_config(1);
        assert_eq!((hs.beta, hs.queue_width), (1, 1));
        let hid = ConfigKind::Hid.to_config(1);
        assert_eq!((hid.beta, hid.queue_width), (2, 5));
    }
}
