//! Reproduce Figure 2 / Theorem 3.12: the 3-SAT reduction.
//!
//! Builds the example reduction (3 source, 11 target records), solves it
//! optimally, and extracts a model — demonstrating that optimal
//! Explain-Table-Delta decides satisfiability.

use affidavit_baselines::sat::{figure2_cnf, reduce, Cnf, Lit};
use affidavit_table::AttrId;

fn print_table(label: &str, table: &affidavit_table::Table, pool: &affidavit_table::ValuePool) {
    println!("{label} ({} records):", table.len());
    let names: Vec<&str> = table.schema().names().collect();
    println!("  {}", names.join(" | "));
    for (_, rec) in table.iter() {
        let row: Vec<&str> = rec.iter().map(|v| pool.get(v)).collect();
        println!("  {}", row.join(" | "));
    }
}

fn main() {
    println!("=== Figure 2: reduction of (v1 ∨ v2 ∨ ¬v3) ∧ (¬v1 ∨ v4) ∧ v3 ===\n");
    let cnf = figure2_cnf();
    let mut red = reduce(&cnf);
    print_table("Source records S", &red.instance.source, &red.instance.pool);
    println!();
    print_table("Target records T", &red.instance.target, &red.instance.pool);

    println!(
        "\nattributes: {:?}",
        red.instance.schema().names().collect::<Vec<_>>()
    );
    assert_eq!(red.instance.source.len(), 3, "paper: 3 source records");
    assert_eq!(red.instance.target.len(), 11, "paper: 11 target records");

    match red.solve() {
        Some(model) => {
            println!("\nsatisfiable — model extracted from the optimal explanation:");
            for (i, v) in model.iter().enumerate() {
                println!("  v{} = {}", i + 1, v);
            }
            assert!(cnf.eval(&model), "model must satisfy the formula");
            println!("model verified against the CNF ✓");
        }
        None => println!("\nunsatisfiable (optimal explanation must delete a clause record)"),
    }

    // Contrast with an unsatisfiable formula.
    println!("\n=== Unsatisfiable control: v1 ∧ ¬v1 ===");
    let unsat = Cnf {
        num_vars: 1,
        clauses: vec![vec![Lit::pos(0)], vec![Lit::neg(0)]],
    };
    let mut red = reduce(&unsat);
    println!(
        "reduction: {} source, {} target records",
        red.instance.source.len(),
        red.instance.target.len()
    );
    match red.solve() {
        Some(_) => println!("unexpected: found a model"),
        None => println!("correctly detected as unsatisfiable ✓"),
    }

    let _ = AttrId(0); // keep the import used in all feature combinations
}
