//! Reproduce Figure 5: row scalability on flight-500k.
//!
//! A single (η=0.3, τ=0.3) blueprint of flight-500k is materialized at
//! 10 %–100 % scale and solved with the H^id configuration. The paper's
//! claims: runtime grows linearly in the number of records, and the
//! reference explanation is recovered in every run.
//!
//! Default row base is 50 000 (laptop scale); `--full` uses 500 000.

use std::time::Instant;

use affidavit_bench::args::Args;
use affidavit_bench::harness::ConfigKind;
use affidavit_core::Affidavit;
use affidavit_datagen::blueprint::{Blueprint, GenConfig};
use affidavit_datagen::metrics::evaluate;
use affidavit_datasets::specs::by_name;
use affidavit_datasets::synth::generate_rows;

fn main() {
    let args = Args::parse();
    let full = args.has("full");
    let base_rows = args.get_or("rows", if full { 500_000 } else { 50_000 });
    let seed: u64 = args.get_or("seed", 500);
    let threads: usize = args.get_or("threads", 1usize);
    let spec = by_name("flight-500k").expect("spec exists");

    println!("=== Figure 5: row scalability (flight-500k @ {base_rows} rows, η=τ=0.3, H^id) ===");
    let (base, pool) = generate_rows(&spec, base_rows, seed);
    let blueprint = Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, seed));

    println!(
        "{:>6} {:>9} {:>10} {:>10} {:>7} {:>6}",
        "scale", "records", "t", "t/record", "Δcore", "acc"
    );
    let mut series: Vec<(usize, f64)> = Vec::new();
    for pct in (10..=100).step_by(10) {
        let mut generated = blueprint.materialize(pct as f64 / 100.0);
        let records = generated.instance.source.len();
        let solver = Affidavit::new(ConfigKind::Hid.to_config(seed).with_threads(threads));
        let started = Instant::now();
        let out = solver.explain(&mut generated.instance);
        let runtime = started.elapsed();
        let m = evaluate(&out.explanation, &mut generated, runtime);
        println!(
            "{:>5}% {:>9} {:>9.2}s {:>9.2}µs {:>7.2} {:>6.2}",
            pct,
            records,
            m.runtime.as_secs_f64(),
            m.runtime.as_secs_f64() * 1e6 / records as f64,
            m.delta_core,
            m.accuracy
        );
        series.push((records, m.runtime.as_secs_f64()));
    }

    // Linearity check: compare per-record time at both ends of the series.
    if let (Some(first), Some(last)) = (series.first(), series.last()) {
        let per_first = first.1 / first.0 as f64;
        let per_last = last.1 / last.0 as f64;
        println!(
            "\nper-record runtime 10% vs 100%: {:.2}µs vs {:.2}µs (ratio {:.2} — \
             ~1.0 means linear scaling, as in the paper)",
            per_first * 1e6,
            per_last * 1e6,
            per_last / per_first
        );
    }
}
