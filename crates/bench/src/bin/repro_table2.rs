//! Reproduce Table 2: both Affidavit configurations on all 17 datasets
//! across the three (η, τ) difficulty settings.
//!
//! Defaults are laptop-scale: rows capped at `--rows` (default 2000) and
//! `--runs` (default 3) instances per cell instead of the paper's 10.
//! `--full` lifts the row cap and uses 10 runs (paper scale: expect hours).
//!
//! Flags: `--datasets iris,chess,...` to restrict, `--seed N`,
//! `--json out.json` / `--md out.md` for machine-readable results.

use affidavit_bench::args::Args;
use affidavit_bench::harness::{run_cell, CellResult, ConfigKind, SETTINGS};
use affidavit_datasets::specs::table2_specs;

fn main() {
    let args = Args::parse();
    let full = args.has("full");
    let runs = args.get_or("runs", if full { 10 } else { 3 });
    let row_cap = args.get_or("rows", if full { usize::MAX } else { 2000 });
    let seed: u64 = args.get_or("seed", 0xEDB7);
    let threads: usize = args.get_or("threads", 1usize);
    let filter: Option<Vec<String>> = args
        .get_str("datasets")
        .map(|s| s.split(',').map(|x| x.trim().to_owned()).collect());

    let specs: Vec<_> = table2_specs()
        .into_iter()
        .filter(|s| {
            filter
                .as_ref()
                .map(|f| f.iter().any(|n| n == s.name))
                .unwrap_or(true)
        })
        .collect();

    println!(
        "=== Table 2 ({} datasets, {} runs/cell, row cap {}) ===",
        specs.len(),
        runs,
        if row_cap == usize::MAX {
            "none (paper scale)".to_owned()
        } else {
            row_cap.to_string()
        }
    );
    println!(
        "{:<12} {:>3} {:>7}  cfg  setting   {:>10}  {:>6} {:>7} {:>5}",
        "dataset", "|A|", "records", "t", "Δcore", "Δcosts", "acc"
    );

    let mut all: Vec<CellResult> = Vec::new();
    for spec in &specs {
        let rows = spec.rows.min(row_cap);
        for &(eta, tau) in &SETTINGS {
            for kind in [ConfigKind::Hs, ConfigKind::Hid] {
                let cell = run_cell(spec, rows, eta, tau, kind, runs, seed, threads);
                println!("{}", cell.row());
                all.push(cell);
            }
        }
        println!();
    }

    // Paper-shape checks (printed, not asserted, so partial runs still
    // produce output): Hid at (0.3, 0.3) should be accurate nearly
    // everywhere; Hs should collapse (Δcore ≈ 0) on the low-distinctness
    // tables chess / nursery / letter.
    let hid_easy: Vec<&CellResult> = all
        .iter()
        .filter(|c| c.config == "Hid" && c.eta == 0.3)
        .collect();
    if !hid_easy.is_empty() {
        let mean_acc: f64 = hid_easy.iter().map(|c| c.acc).sum::<f64>() / hid_easy.len() as f64;
        println!("H^id mean accuracy at (η=τ=0.3): {mean_acc:.3}  (paper: ~1.0)");
    }
    for name in ["chess", "nursery", "letter"] {
        if let Some(c) = all
            .iter()
            .find(|c| c.dataset == name && c.config == "Hs" && c.eta == 0.3)
        {
            println!(
                "Hs on {name} at (0.3): Δcore={:.2}  (paper: 0 — overlap matcher collapses)",
                c.delta_core
            );
        }
    }

    if let Some(path) = args.get_str("md") {
        let md = affidavit_bench::report::markdown_table(&all);
        std::fs::write(path, md).expect("write markdown");
        println!("wrote {path}");
    }
    if let Some(path) = args.get_str("json") {
        let json = serde_json::to_string_pretty(&all).expect("serializable");
        std::fs::write(path, json).expect("write json");
        println!("wrote {path}");
    }
}
