//! Whole-snapshot profiling throughput — the paper's stated operating
//! point of comparing "database snapshots with hundreds of tables" (§1/§2)
//! with no per-table user effort.
//!
//! Materializes `--tables N` table pairs (cycling through the evaluation
//! dataset shapes, each synthetically transformed at η = τ = 0.3 with its
//! own seed), writes them as two snapshot directories, and profiles the
//! whole pair with `core::profiling::profile_dirs` (parallel across
//! tables). Prints the per-table outcomes plus aggregate throughput.
//!
//! Flags: `--tables N` (default 24), `--rows N` (cap per table, default
//! 400), `--seed N`, `--align` (exercise the schema-repair path).

use std::path::PathBuf;
use std::time::Instant;

use affidavit_bench::args::Args;
use affidavit_core::profiling::{profile_dirs, ProfileOptions, TableOutcome};
use affidavit_datagen::blueprint::{Blueprint, GenConfig};
use affidavit_datasets::specs::all_specs;
use affidavit_datasets::synth::generate_rows;
use affidavit_table::csv;

fn main() {
    let args = Args::parse();
    let tables = args.get_or("tables", 24usize);
    let rows_cap = args.get_or("rows", 400usize);
    let seed: u64 = args.get_or("seed", 0xF00D);
    let align = args.has("align");

    let root = std::env::temp_dir().join(format!("affidavit-repro-profile-{seed}"));
    std::fs::remove_dir_all(&root).ok();
    let before: PathBuf = root.join("before");
    let after: PathBuf = root.join("after");
    std::fs::create_dir_all(&before).expect("temp dir");
    std::fs::create_dir_all(&after).expect("temp dir");

    let specs = all_specs();
    let started_gen = Instant::now();
    let mut total_records = 0usize;
    for i in 0..tables {
        let spec = &specs[i % specs.len()];
        let s = seed + i as u64;
        let rows = spec.rows.min(rows_cap);
        let (base, pool) = generate_rows(spec, rows, s);
        let generated =
            Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, s)).materialize_full();
        total_records += generated.instance.source.len() + generated.instance.target.len();
        let name = format!("{}_{i:03}", spec.name);
        for (dir, table) in [
            (&before, &generated.instance.source),
            (&after, &generated.instance.target),
        ] {
            csv::write_path(
                dir.join(format!("{name}.csv")),
                table,
                &generated.instance.pool,
                csv::CsvOptions::default(),
            )
            .expect("write snapshot CSV");
        }
    }
    println!(
        "materialized {tables} table pairs ({total_records} records) in {:.2?}\n",
        started_gen.elapsed()
    );

    let opts = ProfileOptions {
        align,
        ..ProfileOptions::default()
    };
    let started = Instant::now();
    let profile = profile_dirs(&before, &after, &opts).expect("profiling succeeds");
    let elapsed = started.elapsed();

    println!("{}", profile.render());

    let explained = profile
        .tables
        .iter()
        .filter(|t| matches!(t.outcome, TableOutcome::Explained { .. }))
        .count();
    let failed = profile
        .tables
        .iter()
        .filter(|t| matches!(t.outcome, TableOutcome::Failed { .. }))
        .count();
    println!(
        "profiled {tables} tables in {:.2?} ({:.0} ms/table, {} explained, {} failed)",
        elapsed,
        elapsed.as_secs_f64() * 1e3 / tables as f64,
        explained,
        failed,
    );
    assert_eq!(failed, 0, "no table pair may fail to profile");

    std::fs::remove_dir_all(&root).ok();
}
