//! Whole-snapshot profiling throughput — the paper's stated operating
//! point of comparing "database snapshots with hundreds of tables" (§1/§2)
//! with no per-table user effort.
//!
//! Materializes `--tables N` table pairs (cycling through the evaluation
//! dataset shapes, each synthetically transformed at η = τ = 0.3 with its
//! own seed), writes them as two snapshot directories, and profiles the
//! whole pair with `core::profiling::profile_dirs` (parallel across
//! tables). Prints the per-table outcomes plus aggregate throughput.
//!
//! Flags: `--tables N` (default 24), `--rows N` (cap per table, default
//! 400), `--seed N`, `--align` (exercise the schema-repair path).

use std::path::PathBuf;
use std::time::Instant;

use affidavit_bench::args::Args;
use affidavit_bench::speedup;
use affidavit_core::profiling::{profile_dirs, ProfileOptions, TableOutcome};
use affidavit_datagen::blueprint::{Blueprint, GenConfig};
use affidavit_datasets::specs::all_specs;
use affidavit_datasets::synth::generate_rows;
use affidavit_table::csv;

fn main() {
    let args = Args::parse();
    let tables = args.get_or("tables", 24usize);
    let rows_cap = args.get_or("rows", 400usize);
    let seed: u64 = args.get_or("seed", 0xF00D);
    let align = args.has("align");

    let root = std::env::temp_dir().join(format!("affidavit-repro-profile-{seed}"));
    std::fs::remove_dir_all(&root).ok();
    let before: PathBuf = root.join("before");
    let after: PathBuf = root.join("after");
    std::fs::create_dir_all(&before).expect("temp dir");
    std::fs::create_dir_all(&after).expect("temp dir");

    let specs = all_specs();
    let started_gen = Instant::now();
    let mut total_records = 0usize;
    for i in 0..tables {
        let spec = &specs[i % specs.len()];
        let s = seed + i as u64;
        let rows = spec.rows.min(rows_cap);
        let (base, pool) = generate_rows(spec, rows, s);
        let generated = Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, s)).materialize_full();
        total_records += generated.instance.source.len() + generated.instance.target.len();
        let name = format!("{}_{i:03}", spec.name);
        for (dir, table) in [
            (&before, &generated.instance.source),
            (&after, &generated.instance.target),
        ] {
            csv::write_path(
                dir.join(format!("{name}.csv")),
                table,
                &generated.instance.pool,
                csv::CsvOptions::default(),
            )
            .expect("write snapshot CSV");
        }
    }
    println!(
        "materialized {tables} table pairs ({total_records} records) in {:.2?}\n",
        started_gen.elapsed()
    );

    let opts = ProfileOptions {
        align,
        ..ProfileOptions::default()
    };
    let started = Instant::now();
    let profile = profile_dirs(&before, &after, &opts).expect("profiling succeeds");
    let elapsed = started.elapsed();

    println!("{}", profile.render());

    let explained = profile
        .tables
        .iter()
        .filter(|t| matches!(t.outcome, TableOutcome::Explained { .. }))
        .count();
    let failed = profile
        .tables
        .iter()
        .filter(|t| matches!(t.outcome, TableOutcome::Failed { .. }))
        .count();
    println!(
        "profiled {tables} tables in {:.2?} ({:.0} ms/table, {} explained, {} failed)",
        elapsed,
        elapsed.as_secs_f64() * 1e3 / tables as f64,
        explained,
        failed,
    );
    assert_eq!(failed, 0, "no table pair may fail to profile");

    // Distributed-profiling benchmark: the same snapshot directories
    // profiled through the work-stealing job queue at increasing worker
    // counts. Prefers real `affidavit-worker` child processes (built
    // alongside this binary); falls back to in-process worker threads
    // when the binary is not found. Deterministic absorb keeps the
    // profile byte-identical to `profile_dirs` at every count (asserted).
    let dist = bench_dist(&before, &after, &opts, &[1, 2, 4]);
    println!("\ndistributed profiling ({} jobs):", dist.jobs);
    for row in &dist.rows {
        println!(
            "  {} workers {}: {:.3}s | {:.2}x vs 1 worker | {} steals, {} stragglers requeued, {} duplicates discarded, {} conflicts",
            row.transport,
            row.workers,
            row.total_secs,
            row.speedup_vs_1,
            row.steals,
            row.stragglers_requeued,
            row.duplicates_discarded,
            row.conflicts,
        );
    }
    println!("  expansion stealing (gate opened, width 4):");
    for row in &dist.expansion_rows {
        println!(
            "  {} fleet, {} workers: {:.3}s | {:.2}x vs local | {} expansion jobs stolen, {} stragglers requeued, {} duplicates discarded, {} conflicts",
            row.transport,
            row.workers,
            row.total_secs,
            row.speedup_vs_local,
            row.steals,
            row.stragglers_requeued,
            row.duplicates_discarded,
            row.conflicts,
        );
    }
    for lat in &dist.expansion_latency {
        println!(
            "  {}: {} samples | mean {:.0}us | min {:.0}us | max {:.0}us",
            lat.series, lat.count, lat.mean_micros, lat.min_micros, lat.max_micros,
        );
    }
    println!("  deterministic = {}", dist.deterministic);
    if args.get_str("bench-json").is_some() || args.get_str("dist-json").is_some() {
        let path = args.get_str("dist-json").unwrap_or("BENCH_dist.json");
        let json = serde_json::to_string_pretty(&dist).expect("serializable");
        std::fs::write(path, json).expect("write dist bench json");
        println!("wrote {path}");
    }

    std::fs::remove_dir_all(&root).ok();

    // Extension-phase scaling benchmark: one §5.1 synthetic instance,
    // solved at 1 worker vs `--bench-threads` workers. Because the
    // parallel engine is deterministic, both runs return byte-identical
    // explanations; only the extension phase's wall time may differ.
    let bench_threads = args.get_or("bench-threads", 8usize);
    let bench_rows = args.get_or("bench-rows", 2_000usize);
    let bench_runs = args.get_or("bench-runs", 3usize);
    let bench = bench_extension_phase(bench_rows, seed, bench_runs, bench_threads);
    println!(
        "\nextension phase ({} rows, {} runs): 1 thread {:.3}s | {} threads {:.3}s | speedup {:.2}x (of {:.3}s / {:.3}s total)",
        bench.rows,
        bench.runs,
        bench.extension_secs_serial,
        bench.threads,
        bench.extension_secs_parallel,
        bench.extension_speedup,
        bench.total_secs_serial,
        bench.total_secs_parallel,
    );
    println!(
        "columnar core ({} rows x {} attrs, {} runs): apply row {:.4}s | columnar {:.4}s ({:.2}x) | refine row {:.4}s | columnar {:.4}s ({:.2}x) | deterministic = {}",
        bench.columnar.rows,
        bench.columnar.attrs,
        bench.columnar.runs,
        bench.columnar.apply_row_major_secs,
        bench.columnar.apply_columnar_secs,
        bench.columnar.apply_speedup,
        bench.columnar.refine_row_major_secs,
        bench.columnar.refine_columnar_secs,
        bench.columnar.refine_speedup,
        bench.columnar.deterministic,
    );
    if let Some(path) = args.get_str("bench-json") {
        let json = serde_json::to_string_pretty(&bench).expect("serializable");
        std::fs::write(path, json).expect("write bench json");
        println!("wrote {path}");
    }

    // Ingestion-throughput benchmark: one large synthetic table written as
    // CSV, read back through (a) the serial in-memory parser, (b) the
    // streaming chunked reader at 1 and N threads, and (c) the streaming
    // reader into a disk-spilled SegmentPool. All four produce
    // byte-identical `(Table, ValuePool)` pairs (asserted).
    let ingest_rows = args.get_or("ingest-rows", 20_000usize);
    let ingest_runs = args.get_or("ingest-runs", 3usize);
    let ingest_chunk_rows = args.get_or("ingest-chunk-rows", 4096usize);
    let ingest = bench_ingest(
        ingest_rows,
        seed,
        ingest_runs,
        bench_threads,
        ingest_chunk_rows,
    );
    println!(
        "\ningestion ({} rows, {:.1} MiB, {} runs): read_str {:.3}s | stream@1 {:.3}s | stream@{} {:.3}s ({:.2}x, {:.0} MB/s) | disk backend {:.3}s ({} B spilled) | deterministic = {}",
        ingest.rows,
        ingest.bytes as f64 / (1024.0 * 1024.0),
        ingest.runs,
        ingest.serial_read_str_secs,
        ingest.stream_secs_serial,
        ingest.threads,
        ingest.stream_secs_parallel,
        ingest.stream_speedup,
        ingest.mb_per_s_stream_parallel,
        ingest.disk_backend_secs,
        ingest.disk_spilled_bytes,
        ingest.deterministic,
    );
    if args.get_str("bench-json").is_some() || args.get_str("ingest-json").is_some() {
        let path = args.get_str("ingest-json").unwrap_or("BENCH_ingest.json");
        let json = serde_json::to_string_pretty(&ingest).expect("serializable");
        std::fs::write(path, json).expect("write ingest bench json");
        println!("wrote {path}");
    }

    // Frontier-scaling benchmark: the same instance solved at increasing
    // speculative widths. Reconciliation keeps the search byte-identical,
    // so only wall time and speculation counters may differ.
    let widths = [1usize, 2, 4, 8];
    let frontier = bench_frontier(bench_rows, seed, bench_runs, bench_threads, &widths);
    println!(
        "\nspeculative frontier ({} rows, {} runs, {} threads):",
        frontier.rows, frontier.runs, frontier.threads
    );
    for (i, &w) in frontier.widths.iter().enumerate() {
        println!(
            "  width {w}: {:.3}s total | {:.2}x vs width 1 | {} speculative expansions, {} discarded",
            frontier.total_secs[i],
            frontier.speedup_vs_width1[i],
            frontier.speculative_expansions[i],
            frontier.speculation_discarded[i],
        );
    }
    println!(
        "  fan-out gate: min {} records (gated_serial = {})",
        frontier.speculation_min_records, frontier.gated_serial
    );
    for (i, &w) in frontier.stolen_widths.iter().enumerate() {
        println!(
            "  stolen width {w} ({} fleet workers): {:.3}s",
            frontier.stolen_workers, frontier.stolen_total_secs[i],
        );
    }
    println!(
        "  {} expansion jobs stolen | polled {} / expansions {} at every width | deterministic = {}",
        frontier.stolen_jobs, frontier.polled, frontier.expansions, frontier.deterministic
    );
    if args.get_str("bench-json").is_some() || args.get_str("frontier-json").is_some() {
        let path = args
            .get_str("frontier-json")
            .unwrap_or("BENCH_frontier.json");
        let json = serde_json::to_string_pretty(&frontier).expect("serializable");
        std::fs::write(path, json).expect("write frontier bench json");
        println!("wrote {path}");
    }

    // Incremental re-profiling benchmark: a snapshot-pair corpus profiled
    // through `delta::profile_dirs_delta` at increasing dirty fractions.
    // The spliced profile must stay byte-identical (timing stripped) to
    // the from-scratch `profile_dirs` at every fraction, redo work must
    // scale with the dirty fraction, and a fully clean rerun must redo
    // nothing.
    let delta_tables = args.get_or("delta-tables", 40usize);
    let delta_rows = args.get_or("delta-rows", 60usize);
    let delta = bench_delta(delta_tables, delta_rows, seed, align);
    println!(
        "\nincremental re-profiling ({} tables, {} row cap): full profile {:.3}s",
        delta.tables, delta.rows_cap, delta.full_profile_secs
    );
    for (i, &f) in delta.dirty_fractions.iter().enumerate() {
        println!(
            "  {:>5.1}% dirty ({:>2} tables edited): {:.3}s ({:.2}x vs full) | {}/{} blocks redone | {} pairs spliced, {} redone, {} fallbacks",
            f * 100.0,
            delta.dirty_tables[i],
            delta.delta_secs[i],
            delta.speedup_vs_full[i],
            delta.blocks_redone[i],
            delta.blocks_total[i],
            delta.pairs_spliced[i],
            delta.pairs_redone[i],
            delta.fallbacks[i],
        );
    }
    println!("  deterministic = {}", delta.deterministic);
    if args.get_str("bench-json").is_some() || args.get_str("delta-json").is_some() {
        let path = args.get_str("delta-json").unwrap_or("BENCH_delta.json");
        let json = serde_json::to_string_pretty(&delta).expect("serializable");
        std::fs::write(path, json).expect("write delta bench json");
        println!("wrote {path}");
    }
}

/// One measured (transport, worker-count) configuration of the
/// distributed profiler.
#[derive(serde::Serialize)]
struct DistRow {
    /// `"fs"` (spool-directory broker, real `affidavit-worker` children),
    /// `"tcp"` (coordinator socket, real children dialing `--connect`) or
    /// `"in-process"` (worker threads; fallback when the worker binary is
    /// not found next to this one).
    transport: String,
    /// Worker count of this run.
    workers: usize,
    /// Wall-clock seconds for the whole profile.
    total_secs: f64,
    /// This transport's 1-worker time divided by `total_secs` — only
    /// meaningful when `speedup_valid`.
    speedup_vs_1: f64,
    /// Successful exclusive claims.
    steals: usize,
    /// Claims re-published after the straggler timeout.
    stragglers_requeued: usize,
    /// Duplicate results checked and discarded.
    duplicates_discarded: usize,
    /// Diverging duplicates (must be 0; nonzero fails the run).
    conflicts: usize,
}

/// One measured expansion-stealing configuration: the profile runs
/// in-process, but the speculation driver's K-way frontier batches are
/// published to an [`affidavit_dist::ExpansionFleet`] on this transport.
#[derive(serde::Serialize)]
struct ExpansionRow {
    /// Fleet transport: `"fs"` / `"tcp"` (real `affidavit-worker`
    /// children) or `"in-process"` (worker threads).
    transport: String,
    /// Resolved fleet worker count.
    workers: usize,
    /// Speculative width of the run (frontier states per batch).
    width: usize,
    /// Wall-clock seconds for the whole profile.
    total_secs: f64,
    /// Local (no-fleet, width-1) profile time divided by `total_secs` —
    /// only meaningful when `speedup_valid`.
    speedup_vs_local: f64,
    /// Expansion jobs stolen by fleet workers.
    steals: usize,
    /// Expansion leases re-published after the straggler timeout.
    stragglers_requeued: usize,
    /// Duplicate expansion results checked and discarded.
    duplicates_discarded: usize,
    /// Diverging duplicates (must be 0; nonzero fails the run).
    conflicts: usize,
}

/// Streaming summary of one latency histogram from the metrics registry
/// (the same numbers `client --metrics` renders as `*_count` / `*_sum` /
/// `*_min` / `*_max`).
#[derive(serde::Serialize)]
struct LatencySummary {
    /// Registry series name.
    series: String,
    /// Samples observed.
    count: u64,
    /// Mean sample in microseconds.
    mean_micros: f64,
    /// Smallest sample in microseconds.
    min_micros: f64,
    /// Largest sample in microseconds.
    max_micros: f64,
}

/// Read one histogram series out of the process-wide registry.
fn latency_summary(series: &str) -> LatencySummary {
    let found =
        affidavit_obs::metrics()
            .snapshot()
            .into_iter()
            .find_map(|(name, value)| match value {
                affidavit_obs::MetricValue::Histogram {
                    count,
                    sum,
                    min,
                    max,
                } if name == series => Some((count, sum, min, max)),
                _ => None,
            });
    match found {
        Some((count, sum, min, max)) if count > 0 => LatencySummary {
            series: series.to_owned(),
            count,
            mean_micros: sum / count as f64,
            min_micros: min,
            max_micros: max,
        },
        _ => LatencySummary {
            series: series.to_owned(),
            count: 0,
            mean_micros: 0.0,
            min_micros: 0.0,
            max_micros: 0.0,
        },
    }
}

/// Distributed-profiling scaling measurement, serialized into
/// `BENCH_dist.json` at the repo root. The same snapshot directories are
/// profiled through `affidavit-dist`'s work-stealing job queue on every
/// available transport at each worker count; every run must render
/// byte-identically (timing stripped) to the single-process
/// `profile_dirs`.
#[derive(serde::Serialize)]
struct DistBench {
    /// Table pairs in the snapshot directories.
    tables: usize,
    /// Jobs dispatched per run (pairs that reached the search).
    jobs: usize,
    /// One row per measured (transport, worker-count) configuration.
    rows: Vec<DistRow>,
    /// Expansion-stealing rows: the profile runs in-process with the
    /// fan-out gate opened, and the speculation driver's frontier
    /// batches are stolen by an `ExpansionFleet` on each transport.
    /// Every row must render the local width-1 profile byte-identically
    /// — report, `polled` and `generated` included.
    expansion_rows: Vec<ExpansionRow>,
    /// Per-expansion latency distributions behind the expansion rows:
    /// `search_expansion_micros` (one sample per state expansion) and
    /// `dist_expansion_rtt_micros` (one sample per fetched expansion-job
    /// result, queue wait included).
    expansion_latency: Vec<LatencySummary>,
    /// Hardware threads available on the measuring machine.
    hardware_threads: usize,
    /// False when the machine cannot physically exhibit parallel speedup
    /// (one hardware thread) — treat `speedup_vs_1` as noise.
    speedup_valid: bool,
    /// Every configuration rendered a profile byte-identical to the
    /// single-process run (timing stripped).
    deterministic: bool,
}

fn bench_dist(
    before: &std::path::Path,
    after: &std::path::Path,
    opts: &ProfileOptions,
    worker_counts: &[usize],
) -> DistBench {
    use affidavit_dist::{worker_binary, DistBackend, DistOptions};

    let canonical = |mut p: affidavit_core::profiling::SnapshotProfile| {
        p.strip_timing();
        format!("{}\n{}", p.render(), p.to_json())
    };
    let local_profile = profile_dirs(before, after, opts).expect("local profile");
    let tables = local_profile.tables.len();
    let local = canonical(local_profile);
    // Both real transports when the worker binary is present, the
    // in-process thread backend otherwise.
    let backends: Vec<(&str, DistBackend)> = match worker_binary() {
        Ok(bin) => vec![
            (
                "fs",
                DistBackend::ChildProcesses {
                    broker_dir: None,
                    worker_bin: Some(bin.clone()),
                },
            ),
            (
                "tcp",
                DistBackend::Tcp {
                    listen: None,
                    worker_bin: Some(bin),
                },
            ),
        ],
        Err(_) => vec![("in-process", DistBackend::InProcess)],
    };

    let mut rows: Vec<DistRow> = Vec::new();
    let mut jobs = 0;
    let mut deterministic = true;
    for (transport, backend) in &backends {
        let mut secs_at_1 = None;
        for &workers in worker_counts {
            let dopts = DistOptions {
                workers,
                backend: backend.clone(),
                ..DistOptions::default()
            };
            let started = Instant::now();
            let (profile, stats) =
                affidavit_dist::profile_dirs_distributed(before, after, opts, &dopts)
                    .expect("distributed profile");
            let total_secs = started.elapsed().as_secs_f64();
            let base = *secs_at_1.get_or_insert(total_secs);
            deterministic &= canonical(profile) == local;
            jobs = stats.jobs;
            rows.push(DistRow {
                transport: (*transport).to_owned(),
                workers,
                total_secs,
                speedup_vs_1: base / total_secs.max(1e-12),
                steals: stats.steals,
                stragglers_requeued: stats.stragglers_requeued,
                duplicates_discarded: stats.duplicates_discarded,
                conflicts: stats.conflicts,
            });
        }
    }
    assert!(
        deterministic,
        "every transport and worker count must render the single-process profile byte-identically"
    );

    // Expansion stealing: the same snapshots profiled *in-process*, with
    // the speculation driver's width-4 frontier batches published to an
    // `ExpansionFleet` on each available transport. The fan-out gate is
    // opened (`speculation_min_records = 0`) so the small bench tables
    // actually speculate; serial-replay reconciliation must still render
    // the width-1 local profile byte-identically — `polled` and
    // `generated` counters included, which `canonical` covers via
    // `to_json`.
    let started = Instant::now();
    profile_dirs(before, after, opts).expect("local profile");
    let local_secs = started.elapsed().as_secs_f64();
    let mut expansion_rows = Vec::new();
    for (transport, backend) in &backends {
        for workers in [1usize, 2] {
            let width = 4;
            let fleet = std::sync::Arc::new(
                affidavit_dist::ExpansionFleet::new(affidavit_dist::ExpansionFleetOptions {
                    workers,
                    backend: backend.clone(),
                    ..affidavit_dist::ExpansionFleetOptions::default()
                })
                .expect("expansion fleet"),
            );
            let mut exp_opts = opts.clone();
            exp_opts.config.speculative_width = width;
            exp_opts.config.speculation_min_records = 0;
            exp_opts.executor =
                Some(fleet.clone() as std::sync::Arc<dyn affidavit_core::ExpansionExecutor>);
            let started = Instant::now();
            let profile = profile_dirs(before, after, &exp_opts).expect("stolen profile");
            let total_secs = started.elapsed().as_secs_f64();
            assert_eq!(
                canonical(profile),
                local,
                "expansion stealing over {transport} with {workers} workers must render \
                 the local profile byte-identically"
            );
            let stats = fleet.stats().expect("fleet stats");
            expansion_rows.push(ExpansionRow {
                transport: (*transport).to_owned(),
                workers: fleet.workers(),
                width,
                total_secs,
                speedup_vs_local: local_secs / total_secs.max(1e-12),
                steals: stats.steals,
                stragglers_requeued: stats.requeues,
                duplicates_discarded: stats.duplicates_discarded,
                conflicts: stats.conflicts,
            });
        }
    }
    assert!(
        expansion_rows.iter().any(|r| r.steals > 0),
        "at least one expansion-stealing run must actually steal"
    );

    // Latency regression gate: both per-expansion histograms must have
    // accumulated samples, and the mean round-trip must sit far inside
    // the fleet's per-batch deadline — a mean anywhere near it means
    // every batch is timing out and falling back to local expansion.
    let expansion_latency = vec![
        latency_summary("search_expansion_micros"),
        latency_summary("dist_expansion_rtt_micros"),
    ];
    assert!(
        expansion_latency[0].count > 0,
        "the searches must observe per-expansion latency samples"
    );
    assert!(
        expansion_latency[1].count > 0,
        "the stolen runs must fetch at least one remote expansion result"
    );
    assert!(
        expansion_latency[1].mean_micros < 60e6,
        "mean expansion round-trip {}us is outside the regression gate",
        expansion_latency[1].mean_micros
    );
    assert_eq!(
        affidavit_obs::metrics().counter("dist_expansion_declined"),
        0,
        "no expansion batch may be declined in the bench"
    );

    // Registry regression gate: the deterministic counters this JSON is
    // built from must equal what the coordinator itself published into
    // the process-wide metrics registry during the final run.
    let m = affidavit_obs::metrics();
    let last = rows.last().expect("at least one measured configuration");
    for (series, value) in [
        ("dist_jobs", jobs),
        ("dist_steals", last.steals),
        ("dist_stragglers_requeued", last.stragglers_requeued),
        ("dist_duplicates_discarded", last.duplicates_discarded),
        ("dist_conflicts", last.conflicts),
    ] {
        assert_eq!(
            m.counter(series),
            value as u64,
            "registry {series} must match the final distributed run"
        );
    }
    DistBench {
        tables,
        jobs,
        rows,
        expansion_rows,
        expansion_latency,
        hardware_threads: speedup::hardware_threads(),
        speedup_valid: speedup::warn_if_invalid(),
        deterministic,
    }
}

/// Ingestion-throughput measurement, serialized into `BENCH_ingest.json`
/// at the repo root. Four readers over the same CSV bytes — serial
/// in-memory, streaming at 1 and N threads, streaming into a disk-spilled
/// `SegmentPool` — must produce byte-identical `(Table, ValuePool)` pairs.
#[derive(serde::Serialize)]
struct IngestBench {
    /// Records in the benchmark table.
    rows: usize,
    /// Attribute count of the table.
    attrs: usize,
    /// CSV size in bytes.
    bytes: usize,
    /// Runs averaged per configuration.
    runs: usize,
    /// Worker count of the parallel configuration.
    threads: usize,
    /// Records per chunk for the streaming readers.
    chunk_rows: usize,
    /// Hardware threads available on the measuring machine.
    hardware_threads: usize,
    /// Mean seconds for `csv::read_str` on the pre-loaded string.
    serial_read_str_secs: f64,
    /// Mean seconds for streaming ingestion at 1 thread.
    stream_secs_serial: f64,
    /// Mean seconds for streaming ingestion at `threads` threads.
    stream_secs_parallel: f64,
    /// `stream_secs_serial / stream_secs_parallel`; only meaningful when
    /// `speedup_valid`.
    stream_speedup: f64,
    /// Throughput of the parallel streaming configuration.
    mb_per_s_stream_parallel: f64,
    /// Mean seconds for streaming ingestion into the disk backend.
    disk_backend_secs: f64,
    /// RAM budget of the disk-backend run.
    disk_budget_bytes: usize,
    /// Bytes spilled by the disk-backend run (must be > 0).
    disk_spilled_bytes: u64,
    /// False when the machine cannot physically exhibit parallel speedup
    /// (one hardware thread) — treat `stream_speedup` as noise.
    speedup_valid: bool,
    /// Every reader produced a byte-identical `(Table, ValuePool)`.
    deterministic: bool,
}

fn bench_ingest(
    rows: usize,
    seed: u64,
    runs: usize,
    threads: usize,
    chunk_rows: usize,
) -> IngestBench {
    use affidavit_store::{ingest, IngestOptions, PoolBackend, PoolConfig};
    use affidavit_table::{Table, ValuePool};

    let spec = affidavit_datasets::specs::by_name("adult").expect("dataset exists");
    let (table, pool) = generate_rows(&spec, rows, seed);
    let path = std::env::temp_dir().join(format!("affidavit-bench-ingest-{seed}.csv"));
    csv::write_path(&path, &table, &pool, csv::CsvOptions::default()).expect("write bench CSV");
    let bytes = std::fs::metadata(&path).expect("bench CSV exists").len() as usize;

    let fingerprint = |table: &Table, pool: &ValuePool| {
        let mut out = String::new();
        for (_, s) in pool.iter() {
            out.push_str(s);
            out.push('\u{1}');
        }
        for record in table.rows() {
            for sym in record.iter() {
                out.push_str(&sym.0.to_string());
                out.push(',');
            }
            out.push('\u{2}');
        }
        out
    };

    let mut timings = [0.0f64; 4];
    let mut fingerprints: Vec<String> = Vec::new();
    let mut spilled = 0u64;
    // Registry regression gate: `ingest_rows_total` accumulates across
    // the process, so meter the delta this benchmark's streaming reads
    // contribute and assert it below.
    let rows_metered_before = affidavit_obs::metrics().counter("ingest_rows_total");
    let mut rows_expected = 0u64;
    // Small enough that the distinct-value corpus of the benchmark table
    // cannot fit: the disk run must exercise spill + fault-back paths.
    let disk_budget_bytes = 64 * 1024;
    for _ in 0..runs {
        let mut prints = Vec::new();
        // (a) serial in-memory parse (I/O excluded: the historical path
        // slurped first, so this isolates parse+intern cost).
        let text = std::fs::read_to_string(&path).expect("read bench CSV");
        let started = Instant::now();
        let mut p = ValuePool::new();
        let t = csv::read_str(&text, &mut p, csv::CsvOptions::default()).expect("parse");
        timings[0] += started.elapsed().as_secs_f64();
        prints.push(fingerprint(&t, &p));
        drop(text);
        // (b, c) streaming at 1 and N threads.
        for (slot, n) in [(1usize, 1usize), (2, threads)] {
            let opts = IngestOptions {
                chunk_rows,
                threads: n,
                ..IngestOptions::default()
            };
            let started = Instant::now();
            let mut p = ValuePool::new();
            let t = ingest::read_path(&path, &mut p, &opts).expect("stream");
            timings[slot] += started.elapsed().as_secs_f64();
            rows_expected += t.len() as u64;
            prints.push(fingerprint(&t, &p));
        }
        // (d) streaming into a disk-spilled SegmentPool.
        let opts = IngestOptions {
            chunk_rows,
            threads,
            ..IngestOptions::default()
        };
        let started = Instant::now();
        let mut p = PoolConfig {
            backend: PoolBackend::Disk,
            budget_bytes: disk_budget_bytes,
        }
        .build()
        .expect("disk pool");
        let t = ingest::read_path(&path, &mut p, &opts).expect("disk stream");
        timings[3] += started.elapsed().as_secs_f64();
        spilled = p.store_stats().expect("disk backend").spilled_bytes;
        rows_expected += t.len() as u64;
        prints.push(fingerprint(&t, &p));
        fingerprints.push(prints.join("\u{3}"));
    }
    let rows_metered = affidavit_obs::metrics().counter("ingest_rows_total") - rows_metered_before;
    assert_eq!(
        rows_metered, rows_expected,
        "registry ingest_rows_total must meter every streamed record"
    );
    std::fs::remove_file(&path).ok();
    let deterministic = fingerprints.iter().all(|f| f == &fingerprints[0])
        && fingerprints[0]
            .split('\u{3}')
            .collect::<Vec<_>>()
            .windows(2)
            .all(|w| w[0] == w[1]);
    assert!(
        deterministic,
        "all ingestion paths must produce byte-identical pools and tables"
    );
    assert!(spilled > 0, "the disk-backend run must spill");
    let [serial, stream1, stream_n, disk] = timings.map(|t| t / runs as f64);
    IngestBench {
        rows,
        attrs: spec.attrs,
        bytes,
        runs,
        threads,
        chunk_rows,
        hardware_threads: speedup::hardware_threads(),
        serial_read_str_secs: serial,
        stream_secs_serial: stream1,
        stream_secs_parallel: stream_n,
        stream_speedup: stream1 / stream_n.max(1e-12),
        mb_per_s_stream_parallel: bytes as f64 / (1024.0 * 1024.0) / stream_n.max(1e-12),
        disk_backend_secs: disk,
        disk_budget_bytes,
        disk_spilled_bytes: spilled,
        speedup_valid: speedup::warn_if_invalid(),
        deterministic,
    }
}

/// Frontier-scaling measurement: one §5.1 synthetic instance solved at
/// several `speculative_width`s, serialized into `BENCH_frontier.json` at
/// the repo root. The indexed vectors (`total_secs`, …) line up with
/// `widths`.
#[derive(serde::Serialize)]
struct FrontierBench {
    /// Base-table rows of the synthetic instance.
    rows: usize,
    /// Attribute count of the instance.
    attrs: usize,
    /// Solver runs averaged per width.
    runs: usize,
    /// Worker threads used at every width.
    threads: usize,
    /// Hardware threads available on the measuring machine.
    hardware_threads: usize,
    /// The speculative widths measured.
    widths: Vec<usize>,
    /// Mean wall-clock seconds per solve at each width.
    total_secs: Vec<f64>,
    /// `total_secs[0] / total_secs[i]` — only meaningful when
    /// `speedup_valid`.
    speedup_vs_width1: Vec<f64>,
    /// Expansions computed speculatively at each width (work performed).
    speculative_expansions: Vec<usize>,
    /// Speculative expansions invalidated by reconciliation at each width.
    speculation_discarded: Vec<usize>,
    /// States polled per solve — identical at every width by the
    /// reconciliation invariant (asserted).
    polled: usize,
    /// State expansions per solve — identical at every width (asserted).
    expansions: usize,
    /// The fan-out gate (`speculation_min_records`): frontier states with
    /// fewer live records expand on the serial path regardless of width.
    speculation_min_records: usize,
    /// True when every measured width stayed under the gate (zero
    /// speculative expansions): all widths then run the *same* serial
    /// code path, so `speedup_vs_width1` is 1 by construction —
    /// `total_secs` still carries the raw per-width timings.
    gated_serial: bool,
    /// Widths of the expansion-stealing sweep: the gate is opened and
    /// each width's frontier batches are published to an in-process
    /// `ExpansionFleet` instead of the local thread pool.
    stolen_widths: Vec<usize>,
    /// Fleet worker threads of the stolen sweep.
    stolen_workers: usize,
    /// Mean wall-clock seconds per stolen solve at each stolen width.
    stolen_total_secs: Vec<f64>,
    /// Expansion jobs stolen by the fleet across the stolen sweep.
    stolen_jobs: usize,
    /// False when the machine cannot physically exhibit parallel speedup
    /// (one hardware thread) — treat `speedup_vs_width1` as noise.
    speedup_valid: bool,
    /// Every width — serial-pool and fleet-stolen alike — returned a
    /// byte-identical rendered explanation, cost, and poll/expansion
    /// counters.
    deterministic: bool,
}

fn bench_frontier(
    rows: usize,
    seed: u64,
    runs: usize,
    threads: usize,
    widths: &[usize],
) -> FrontierBench {
    use affidavit_core::Affidavit;

    let spec = affidavit_datasets::specs::by_name("adult").expect("dataset exists");
    let solve =
        |width: usize,
         min_records: Option<usize>,
         executor: Option<std::sync::Arc<dyn affidavit_core::ExpansionExecutor>>| {
            let mut total = 0.0f64;
            let mut speculative = 0usize;
            let mut discarded = 0usize;
            let mut polled = 0usize;
            let mut expansions = 0usize;
            let mut last_run = (0usize, 0usize);
            let mut fingerprint = String::new();
            for run in 0..runs {
                let (base, pool) = generate_rows(&spec, rows.min(spec.rows), seed + run as u64);
                let mut generated =
                    Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, seed + run as u64))
                        .materialize_full();
                let mut cfg = affidavit_core::AffidavitConfig::paper_id()
                    .with_seed(seed + run as u64)
                    .with_threads(threads)
                    .with_speculative_width(width);
                if let Some(floor) = min_records {
                    cfg.speculation_min_records = floor;
                }
                let mut solver = Affidavit::new(cfg);
                if let Some(executor) = &executor {
                    solver = solver.with_expansion_executor(executor.clone());
                }
                let out = solver.explain(&mut generated.instance);
                total += out.stats.duration.as_secs_f64();
                speculative += out.stats.speculative_expansions;
                discarded += out.stats.speculation_discarded;
                polled += out.stats.polled;
                expansions += out.stats.expansions;
                last_run = (out.stats.polled, out.stats.expansions);
                fingerprint.push_str(&affidavit_core::report::render_report(
                    &out.explanation,
                    &generated.instance,
                ));
                fingerprint.push_str(&format!(
                    "|{};{};{};",
                    out.stats.end_state_cost.to_bits(),
                    out.stats.polled,
                    out.stats.expansions
                ));
            }
            (
                total / runs as f64,
                speculative,
                discarded,
                polled,
                expansions,
                fingerprint,
                last_run,
            )
        };

    let mut total_secs = Vec::new();
    let mut speculative_expansions = Vec::new();
    let mut speculation_discarded = Vec::new();
    let mut fingerprints: Vec<String> = Vec::new();
    let mut polled = 0usize;
    let mut expansions = 0usize;
    let mut last_run = (0usize, 0usize);
    for &w in widths {
        let (secs, spec_exp, disc, p, e, fp, last) = solve(w, None, None);
        total_secs.push(secs);
        speculative_expansions.push(spec_exp);
        speculation_discarded.push(disc);
        polled = p;
        expansions = e;
        last_run = last;
        fingerprints.push(fp);
    }
    // Under the fan-out gate the instance never clears
    // `speculation_min_records`, so every width runs the serial driver's
    // exact code path (zero speculative expansions).
    let speculation_min_records =
        affidavit_core::AffidavitConfig::paper_id().speculation_min_records;
    let gated_serial = widths
        .iter()
        .zip(&speculative_expansions)
        .all(|(&w, &s)| w == 1 || s == 0);

    // Expansion-stealing sweep: gate opened, frontier batches published
    // to an in-process fleet. The fingerprints (report bytes, end-state
    // cost, polled, expansions) must match the serial sweep exactly.
    let stolen_widths = vec![1usize, 4];
    let stolen_workers = 2usize;
    let fleet = std::sync::Arc::new(
        affidavit_dist::ExpansionFleet::with_backend(
            affidavit_dist::DistBackend::InProcess,
            stolen_workers,
        )
        .expect("expansion fleet"),
    );
    let mut stolen_total_secs = Vec::new();
    for &w in &stolen_widths {
        let (secs, _spec_exp, _disc, _p, _e, fp, _last) = solve(
            w,
            Some(0),
            Some(fleet.clone() as std::sync::Arc<dyn affidavit_core::ExpansionExecutor>),
        );
        stolen_total_secs.push(secs);
        fingerprints.push(fp);
    }
    let stolen_jobs = fleet.stats().expect("fleet stats").steals;
    assert!(
        stolen_jobs > 0,
        "the width-4 stolen sweep must publish expansion jobs to the fleet"
    );
    let deterministic = fingerprints.windows(2).all(|w| w[0] == w[1]);
    assert!(
        deterministic,
        "speculative widths — local and fleet-stolen — must render byte-identical explanations"
    );
    // Registry regression gate: the search counters this JSON is built
    // from must match what the engine itself published into the
    // process-wide metrics registry during the final solve.
    let m = affidavit_obs::metrics();
    assert_eq!(
        m.counter("search_polled"),
        last_run.0 as u64,
        "registry search_polled must match the final solve"
    );
    assert_eq!(
        m.counter("search_expansions"),
        last_run.1 as u64,
        "registry search_expansions must match the final solve"
    );
    let speedup_vs_width1 = if gated_serial {
        // Identical serial work at every width — the ratio is 1 by
        // construction; the raw timings stay in `total_secs`.
        vec![1.0; total_secs.len()]
    } else {
        total_secs
            .iter()
            .map(|&s| total_secs[0] / s.max(1e-12))
            .collect()
    };
    FrontierBench {
        rows: rows.min(spec.rows),
        attrs: spec.attrs,
        runs,
        threads,
        hardware_threads: speedup::hardware_threads(),
        widths: widths.to_vec(),
        total_secs,
        speedup_vs_width1,
        speculative_expansions,
        speculation_discarded,
        polled: polled / runs.max(1),
        expansions: expansions / runs.max(1),
        speculation_min_records,
        gated_serial,
        stolen_widths,
        stolen_workers,
        stolen_total_secs,
        stolen_jobs,
        speedup_valid: speedup::warn_if_invalid(),
        deterministic,
    }
}

/// One extension-phase scaling measurement, serialized into
/// `BENCH_search.json` at the repo root.
#[derive(serde::Serialize)]
struct ExtensionBench {
    /// Base-table rows of the synthetic instance.
    rows: usize,
    /// Attribute count of the instance.
    attrs: usize,
    /// Solver runs averaged per configuration.
    runs: usize,
    /// Worker count of the parallel configuration.
    threads: usize,
    /// Hardware threads available on the measuring machine.
    hardware_threads: usize,
    /// Mean wall-clock seconds in the extension phase, `threads = 1`.
    extension_secs_serial: f64,
    /// Mean wall-clock seconds in the extension phase, `threads = N`.
    extension_secs_parallel: f64,
    /// `extension_secs_serial / extension_secs_parallel`. Only
    /// meaningful when `speedup_valid`; on a 1-hardware-thread machine
    /// any deviation from 1.0 is measurement noise.
    extension_speedup: f64,
    /// False when the machine cannot physically exhibit parallel speedup
    /// (`hardware_threads == 1`) — treat `extension_speedup` as noise.
    speedup_valid: bool,
    /// Mean total solve seconds, `threads = 1`.
    total_secs_serial: f64,
    /// Mean total solve seconds, `threads = N`.
    total_secs_parallel: f64,
    /// Both configurations returned identical explanations and costs.
    deterministic: bool,
    /// Columnar-vs-row micro-benchmark of the apply and refine inner
    /// loops over the same instance shape.
    columnar: ColumnarBench,
}

/// Micro-benchmark of the two hot inner loops the columnar table core
/// rewrote — whole-attribute function application (`core::apply`) and
/// per-attribute partitioning (`blocking::refine`) — against a row-major
/// mirror of the same table (one `Vec<Sym>` per record, the old layout).
///
/// Both paths run single-threaded, so unlike the thread-scaling rows the
/// speedup is meaningful on any machine, including one hardware thread;
/// `speedup_valid` is still recorded per `hardware_threads` convention
/// (layout comparisons do not need parallelism, so it is always true).
#[derive(serde::Serialize)]
struct ColumnarBench {
    /// Records in the benchmarked table.
    rows: usize,
    /// Attribute count of the benchmarked table.
    attrs: usize,
    /// Timed repetitions averaged per path.
    runs: usize,
    /// Hardware threads available on the measuring machine.
    hardware_threads: usize,
    /// Mean seconds to apply every attribute's sampled function over the
    /// whole table, walking row-major records (old layout, per-function
    /// cross-row memo).
    apply_row_major_secs: f64,
    /// Mean seconds for the same transforms as one tight loop per
    /// contiguous column with a per-column memo.
    apply_columnar_secs: f64,
    /// `apply_row_major_secs / apply_columnar_secs`.
    apply_speedup: f64,
    /// Mean seconds to partition all records by each attribute's raw
    /// value, row-major walk.
    refine_row_major_secs: f64,
    /// Mean seconds for the same partition scanning each column slice.
    refine_columnar_secs: f64,
    /// `refine_row_major_secs / refine_columnar_secs`.
    refine_speedup: f64,
    /// True: the comparison is single-threaded in both paths.
    speedup_valid: bool,
    /// Both layouts produced identical transforms (resolved to strings)
    /// and identical partitions on every run.
    deterministic: bool,
}

fn bench_columnar(rows: usize, seed: u64, runs: usize) -> ColumnarBench {
    use affidavit_functions::ApplyScratch;
    use affidavit_table::{AttrId, FxHashMap, RecordId, ScratchPool, Sym};

    let spec = affidavit_datasets::specs::by_name("adult").expect("dataset exists");
    let (base, pool) = generate_rows(&spec, rows.min(spec.rows), seed);
    let bp = Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, seed));
    let table = &bp.base;
    let functions = &bp.functions;
    let arity = table.schema().arity();
    let n = table.len();
    // The old layout: one materialized Vec<Sym> per record.
    let row_major: Vec<Vec<Sym>> = table.rows().map(|r| r.to_vec()).collect();

    let mut apply_row = 0.0f64;
    let mut apply_col = 0.0f64;
    let mut refine_row = 0.0f64;
    let mut refine_col = 0.0f64;
    let mut deterministic = true;

    for _ in 0..runs {
        // Apply, row-major: per-function memo shared across rows, rows
        // walked outer — the shape of the old `transform_table`.
        let reader = bp.pool.reader();
        let mut overlay = ScratchPool::new(reader);
        let mut memos: Vec<affidavit_functions::AppliedFunction> = functions
            .iter()
            .cloned()
            .map(affidavit_functions::AppliedFunction::new)
            .collect();
        let started = Instant::now();
        let mut out_rows: Vec<Vec<Option<Sym>>> = Vec::with_capacity(n);
        for row in &row_major {
            let mut out = Vec::with_capacity(arity);
            for (a, f) in memos.iter_mut().enumerate() {
                out.push(f.apply(row[a], &mut overlay));
            }
            out_rows.push(out);
        }
        apply_row += started.elapsed().as_secs_f64();
        let fp_row: Vec<Option<String>> = out_rows
            .iter()
            .flatten()
            .map(|o| o.map(|s| affidavit_table::Interner::get(&overlay, s).to_owned()))
            .collect();

        // Apply, columnar: one tight loop per contiguous column slice,
        // memo keyed per column.
        let reader = bp.pool.reader();
        let mut overlay = ScratchPool::new(reader);
        let mut scratch = ApplyScratch::new();
        let started = Instant::now();
        let mut out_cols: Vec<Vec<Option<Sym>>> = Vec::with_capacity(arity);
        for (a, f) in functions.iter().enumerate() {
            let mut out = Vec::new();
            scratch.apply_column(f, table.column(AttrId(a as u32)), &mut overlay, &mut out);
            out_cols.push(out);
        }
        apply_col += started.elapsed().as_secs_f64();
        let fp_col: Vec<Option<String>> = (0..n)
            .flat_map(|r| (0..arity).map(move |a| (r, a)))
            .map(|(r, a)| {
                out_cols[a][r].map(|s| affidavit_table::Interner::get(&overlay, s).to_owned())
            })
            .collect();
        deterministic &= fp_row == fp_col;

        // Refine, row-major: group records by each attribute's raw value
        // in first-seen key order, reading `rows[r][a]`.
        let partition_fp = |groups: &FxHashMap<Sym, Vec<RecordId>>, order: &[Sym]| {
            order
                .iter()
                .map(|k| (k.0, groups[k].len()))
                .collect::<Vec<_>>()
        };
        let mut fps_row = Vec::with_capacity(arity);
        let started = Instant::now();
        for a in 0..arity {
            let mut groups: FxHashMap<Sym, Vec<RecordId>> = FxHashMap::default();
            let mut order: Vec<Sym> = Vec::new();
            for (r, row) in row_major.iter().enumerate() {
                let key = row[a];
                groups
                    .entry(key)
                    .or_insert_with(|| {
                        order.push(key);
                        Vec::new()
                    })
                    .push(RecordId(r as u32));
            }
            fps_row.push(partition_fp(&groups, &order));
        }
        refine_row += started.elapsed().as_secs_f64();

        // Refine, columnar: the same partition over the column slice.
        let mut fps_col = Vec::with_capacity(arity);
        let started = Instant::now();
        for a in 0..arity {
            let col = table.column(AttrId(a as u32));
            let mut groups: FxHashMap<Sym, Vec<RecordId>> = FxHashMap::default();
            let mut order: Vec<Sym> = Vec::new();
            for (r, &key) in col.iter().enumerate() {
                groups
                    .entry(key)
                    .or_insert_with(|| {
                        order.push(key);
                        Vec::new()
                    })
                    .push(RecordId(r as u32));
            }
            fps_col.push(partition_fp(&groups, &order));
        }
        refine_col += started.elapsed().as_secs_f64();
        deterministic &= fps_row == fps_col;
    }

    let mean = |total: f64| total / runs as f64;
    ColumnarBench {
        rows: n,
        attrs: arity,
        runs,
        hardware_threads: speedup::hardware_threads(),
        apply_row_major_secs: mean(apply_row),
        apply_columnar_secs: mean(apply_col),
        apply_speedup: mean(apply_row) / mean(apply_col).max(1e-12),
        refine_row_major_secs: mean(refine_row),
        refine_columnar_secs: mean(refine_col),
        refine_speedup: mean(refine_row) / mean(refine_col).max(1e-12),
        speedup_valid: true,
        deterministic,
    }
}

/// Incremental re-profiling measurement, serialized into
/// `BENCH_delta.json` at the repo root. One snapshot-pair corpus is
/// re-profiled through the `--delta` manifest at each dirty fraction
/// (the first `⌈f·N⌉` target tables get one appended row); the indexed
/// vectors line up with `dirty_fractions`. Every delta run must render
/// byte-identically (timing stripped) to a from-scratch `profile_dirs`
/// over the same edited directories, `blocks_redone` must be 0 at a 0%
/// dirty fraction and non-decreasing across fractions.
#[derive(serde::Serialize)]
struct DeltaBench {
    /// Table pairs in the corpus.
    tables: usize,
    /// Row cap per generated table.
    rows_cap: usize,
    /// Hardware threads available on the measuring machine.
    hardware_threads: usize,
    /// Wall-clock seconds for one from-scratch profile of the pristine
    /// corpus (the baseline every delta run is compared against).
    full_profile_secs: f64,
    /// The dirty fractions measured.
    dirty_fractions: Vec<f64>,
    /// Target tables actually edited at each fraction (`⌈f·N⌉`).
    dirty_tables: Vec<usize>,
    /// Fingerprint groups seen at each fraction.
    blocks_total: Vec<u64>,
    /// Groups spliced from the manifest at each fraction.
    blocks_reused: Vec<u64>,
    /// Groups that re-entered the search at each fraction — ≈0 when
    /// nothing is dirty, scaling with the dirty fraction.
    blocks_redone: Vec<u64>,
    /// Pairs spliced without a search at each fraction.
    pairs_spliced: Vec<u64>,
    /// Pairs that re-entered the search at each fraction.
    pairs_redone: Vec<u64>,
    /// Broken-manifest fallbacks at each fraction (must be 0: plain data
    /// dirt is a redo, not a fallback).
    fallbacks: Vec<u64>,
    /// Wall-clock seconds of the delta run at each fraction.
    delta_secs: Vec<f64>,
    /// `full_profile_secs / delta_secs[i]`.
    speedup_vs_full: Vec<f64>,
    /// True: splice-vs-search is not a thread-scaling comparison, so the
    /// ratio is meaningful on any machine, including one hardware thread
    /// (recorded per the `hardware_threads` convention).
    speedup_valid: bool,
    /// Every delta run rendered byte-identically (timing stripped) to
    /// the from-scratch profile of the same edited directories.
    deterministic: bool,
}

fn bench_delta(tables: usize, rows_cap: usize, seed: u64, align: bool) -> DeltaBench {
    use affidavit_core::delta::{default_profile_state, profile_dirs_delta};

    let canonical = |mut p: affidavit_core::profiling::SnapshotProfile| {
        p.strip_timing();
        format!("{}\n{}", p.render(), p.to_json())
    };
    let copy_dir = |from: &std::path::Path, to: &std::path::Path| {
        std::fs::create_dir_all(to).expect("copy dir");
        for entry in std::fs::read_dir(from).expect("read dir") {
            let entry = entry.expect("dir entry");
            std::fs::copy(entry.path(), to.join(entry.file_name())).expect("copy file");
        }
    };

    let root = std::env::temp_dir().join(format!("affidavit-bench-delta-{seed}"));
    std::fs::remove_dir_all(&root).ok();
    let before = root.join("before");
    let pristine = root.join("after-pristine");
    std::fs::create_dir_all(&before).expect("temp dir");
    std::fs::create_dir_all(&pristine).expect("temp dir");

    let specs = all_specs();
    for i in 0..tables {
        let spec = &specs[i % specs.len()];
        let s = seed.wrapping_add(0xDE17A).wrapping_add(i as u64);
        let rows = spec.rows.min(rows_cap);
        let (base, pool) = generate_rows(spec, rows, s);
        let generated = Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, s)).materialize_full();
        let name = format!("{}_{i:03}", spec.name);
        for (dir, table) in [
            (&before, &generated.instance.source),
            (&pristine, &generated.instance.target),
        ] {
            csv::write_path(
                dir.join(format!("{name}.csv")),
                table,
                &generated.instance.pool,
                csv::CsvOptions::default(),
            )
            .expect("write snapshot CSV");
        }
    }

    let opts = ProfileOptions {
        align,
        ..ProfileOptions::default()
    };
    let started = Instant::now();
    profile_dirs(&before, &pristine, &opts).expect("full profile");
    let full_profile_secs = started.elapsed().as_secs_f64();
    // Seed the manifest with one pristine delta run (a full redo); the
    // manifest lands at the default in-directory state path, so copying
    // the directory below carries it along.
    profile_dirs_delta(&before, &pristine, &opts, &default_profile_state(&pristine))
        .expect("seed manifest");

    let fractions = [0.0f64, 0.001, 0.01, 0.1, 1.0];
    let mut dirty_tables = Vec::new();
    let mut blocks_total = Vec::new();
    let mut blocks_reused = Vec::new();
    let mut blocks_redone = Vec::new();
    let mut pairs_spliced = Vec::new();
    let mut pairs_redone = Vec::new();
    let mut fallbacks = Vec::new();
    let mut delta_secs = Vec::new();
    let mut speedup_vs_full = Vec::new();
    let mut deterministic = true;
    for &fraction in &fractions {
        let dirty = ((fraction * tables as f64).ceil() as usize).min(tables);
        // A fresh copy of the pristine target directory, seeded manifest
        // included; `before` is shared (sources never change here).
        let after = root.join(format!("after-{}", (fraction * 1000.0) as u64));
        copy_dir(&pristine, &after);
        // Edit the first `dirty` target tables (stem order): append a
        // duplicate of the last data row — a row insert the explanation
        // must newly account for, so the pair cannot be spliced.
        let mut stems: Vec<PathBuf> = std::fs::read_dir(&after)
            .expect("read dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "csv"))
            .collect();
        stems.sort();
        for path in stems.iter().take(dirty) {
            let text = std::fs::read_to_string(path).expect("read target CSV");
            let last = text.lines().last().expect("a data row").to_owned();
            let mut edited = text;
            if !edited.ends_with('\n') {
                edited.push('\n');
            }
            edited.push_str(&last);
            edited.push('\n');
            std::fs::write(path, edited).expect("write edited CSV");
        }
        let started = Instant::now();
        let (profile, stats) =
            profile_dirs_delta(&before, &after, &opts, &default_profile_state(&after))
                .expect("delta profile");
        let secs = started.elapsed().as_secs_f64();
        let scratch = profile_dirs(&before, &after, &opts).expect("from-scratch profile");
        deterministic &= canonical(profile) == canonical(scratch);
        if dirty == 0 {
            assert_eq!(
                stats.blocks_redone, 0,
                "a clean rerun must splice every pair without redoing a block"
            );
        }
        assert_eq!(
            stats.pairs_redone, dirty as u64,
            "exactly the edited pairs must re-enter the search"
        );
        assert_eq!(stats.fallbacks, 0, "plain data dirt must not be a fallback");
        dirty_tables.push(dirty);
        blocks_total.push(stats.blocks_total);
        blocks_reused.push(stats.blocks_reused);
        blocks_redone.push(stats.blocks_redone);
        pairs_spliced.push(stats.pairs_spliced);
        pairs_redone.push(stats.pairs_redone);
        fallbacks.push(stats.fallbacks);
        delta_secs.push(secs);
        speedup_vs_full.push(full_profile_secs / secs.max(1e-12));
    }
    assert!(
        blocks_redone.windows(2).all(|w| w[0] <= w[1]),
        "redone blocks must be non-decreasing in the dirty fraction: {blocks_redone:?}"
    );
    assert!(
        deterministic,
        "every delta run must render the from-scratch profile byte-identically"
    );
    std::fs::remove_dir_all(&root).ok();
    DeltaBench {
        tables,
        rows_cap,
        hardware_threads: speedup::hardware_threads(),
        full_profile_secs,
        dirty_fractions: fractions.to_vec(),
        dirty_tables,
        blocks_total,
        blocks_reused,
        blocks_redone,
        pairs_spliced,
        pairs_redone,
        fallbacks,
        delta_secs,
        speedup_vs_full,
        speedup_valid: true,
        deterministic,
    }
}

fn bench_extension_phase(rows: usize, seed: u64, runs: usize, threads: usize) -> ExtensionBench {
    use affidavit_core::Affidavit;

    let spec = affidavit_datasets::specs::by_name("adult").expect("dataset exists");
    let solve = |threads: usize| {
        let mut ext = 0.0f64;
        let mut total = 0.0f64;
        let mut fingerprint = String::new();
        for run in 0..runs {
            let (base, pool) = generate_rows(&spec, rows.min(spec.rows), seed + run as u64);
            let mut generated =
                Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, seed + run as u64))
                    .materialize_full();
            let cfg = affidavit_core::AffidavitConfig::paper_id()
                .with_seed(seed + run as u64)
                .with_threads(threads);
            let out = Affidavit::new(cfg).explain(&mut generated.instance);
            ext += out.stats.extension_time.as_secs_f64();
            total += out.stats.duration.as_secs_f64();
            // Fingerprint the *full rendered explanation* (functions,
            // record partition) plus the exact cost — equal-cost function
            // ties must not be able to mask a thread-count divergence.
            fingerprint.push_str(&affidavit_core::report::render_report(
                &out.explanation,
                &generated.instance,
            ));
            fingerprint.push_str(&format!("|{};", out.stats.end_state_cost.to_bits()));
        }
        (ext / runs as f64, total / runs as f64, fingerprint)
    };

    let (ext_serial, total_serial, fp_serial) = solve(1);
    let (ext_parallel, total_parallel, fp_parallel) = solve(threads);
    ExtensionBench {
        rows: rows.min(spec.rows),
        attrs: spec.attrs,
        runs,
        threads,
        hardware_threads: speedup::hardware_threads(),
        extension_secs_serial: ext_serial,
        extension_secs_parallel: ext_parallel,
        extension_speedup: ext_serial / ext_parallel.max(1e-12),
        speedup_valid: speedup::warn_if_invalid(),
        total_secs_serial: total_serial,
        total_secs_parallel: total_parallel,
        deterministic: fp_serial == fp_parallel,
        columnar: bench_columnar(rows, seed, runs),
    }
}
