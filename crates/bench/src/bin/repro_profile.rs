//! Whole-snapshot profiling throughput — the paper's stated operating
//! point of comparing "database snapshots with hundreds of tables" (§1/§2)
//! with no per-table user effort.
//!
//! Materializes `--tables N` table pairs (cycling through the evaluation
//! dataset shapes, each synthetically transformed at η = τ = 0.3 with its
//! own seed), writes them as two snapshot directories, and profiles the
//! whole pair with `core::profiling::profile_dirs` (parallel across
//! tables). Prints the per-table outcomes plus aggregate throughput.
//!
//! Flags: `--tables N` (default 24), `--rows N` (cap per table, default
//! 400), `--seed N`, `--align` (exercise the schema-repair path).

use std::path::PathBuf;
use std::time::Instant;

use affidavit_bench::args::Args;
use affidavit_core::profiling::{profile_dirs, ProfileOptions, TableOutcome};
use affidavit_datagen::blueprint::{Blueprint, GenConfig};
use affidavit_datasets::specs::all_specs;
use affidavit_datasets::synth::generate_rows;
use affidavit_table::csv;

fn main() {
    let args = Args::parse();
    let tables = args.get_or("tables", 24usize);
    let rows_cap = args.get_or("rows", 400usize);
    let seed: u64 = args.get_or("seed", 0xF00D);
    let align = args.has("align");

    let root = std::env::temp_dir().join(format!("affidavit-repro-profile-{seed}"));
    std::fs::remove_dir_all(&root).ok();
    let before: PathBuf = root.join("before");
    let after: PathBuf = root.join("after");
    std::fs::create_dir_all(&before).expect("temp dir");
    std::fs::create_dir_all(&after).expect("temp dir");

    let specs = all_specs();
    let started_gen = Instant::now();
    let mut total_records = 0usize;
    for i in 0..tables {
        let spec = &specs[i % specs.len()];
        let s = seed + i as u64;
        let rows = spec.rows.min(rows_cap);
        let (base, pool) = generate_rows(spec, rows, s);
        let generated = Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, s)).materialize_full();
        total_records += generated.instance.source.len() + generated.instance.target.len();
        let name = format!("{}_{i:03}", spec.name);
        for (dir, table) in [
            (&before, &generated.instance.source),
            (&after, &generated.instance.target),
        ] {
            csv::write_path(
                dir.join(format!("{name}.csv")),
                table,
                &generated.instance.pool,
                csv::CsvOptions::default(),
            )
            .expect("write snapshot CSV");
        }
    }
    println!(
        "materialized {tables} table pairs ({total_records} records) in {:.2?}\n",
        started_gen.elapsed()
    );

    let opts = ProfileOptions {
        align,
        ..ProfileOptions::default()
    };
    let started = Instant::now();
    let profile = profile_dirs(&before, &after, &opts).expect("profiling succeeds");
    let elapsed = started.elapsed();

    println!("{}", profile.render());

    let explained = profile
        .tables
        .iter()
        .filter(|t| matches!(t.outcome, TableOutcome::Explained { .. }))
        .count();
    let failed = profile
        .tables
        .iter()
        .filter(|t| matches!(t.outcome, TableOutcome::Failed { .. }))
        .count();
    println!(
        "profiled {tables} tables in {:.2?} ({:.0} ms/table, {} explained, {} failed)",
        elapsed,
        elapsed.as_secs_f64() * 1e3 / tables as f64,
        explained,
        failed,
    );
    assert_eq!(failed, 0, "no table pair may fail to profile");

    std::fs::remove_dir_all(&root).ok();

    // Extension-phase scaling benchmark: one §5.1 synthetic instance,
    // solved at 1 worker vs `--bench-threads` workers. Because the
    // parallel engine is deterministic, both runs return byte-identical
    // explanations; only the extension phase's wall time may differ.
    let bench_threads = args.get_or("bench-threads", 8usize);
    let bench_rows = args.get_or("bench-rows", 2_000usize);
    let bench_runs = args.get_or("bench-runs", 3usize);
    let bench = bench_extension_phase(bench_rows, seed, bench_runs, bench_threads);
    println!(
        "\nextension phase ({} rows, {} runs): 1 thread {:.3}s | {} threads {:.3}s | speedup {:.2}x (of {:.3}s / {:.3}s total)",
        bench.rows,
        bench.runs,
        bench.extension_secs_serial,
        bench.threads,
        bench.extension_secs_parallel,
        bench.extension_speedup,
        bench.total_secs_serial,
        bench.total_secs_parallel,
    );
    if let Some(path) = args.get_str("bench-json") {
        let json = serde_json::to_string_pretty(&bench).expect("serializable");
        std::fs::write(path, json).expect("write bench json");
        println!("wrote {path}");
    }

    // Frontier-scaling benchmark: the same instance solved at increasing
    // speculative widths. Reconciliation keeps the search byte-identical,
    // so only wall time and speculation counters may differ.
    let widths = [1usize, 2, 4, 8];
    let frontier = bench_frontier(bench_rows, seed, bench_runs, bench_threads, &widths);
    println!(
        "\nspeculative frontier ({} rows, {} runs, {} threads):",
        frontier.rows, frontier.runs, frontier.threads
    );
    for (i, &w) in frontier.widths.iter().enumerate() {
        println!(
            "  width {w}: {:.3}s total | {:.2}x vs width 1 | {} speculative expansions, {} discarded",
            frontier.total_secs[i],
            frontier.speedup_vs_width1[i],
            frontier.speculative_expansions[i],
            frontier.speculation_discarded[i],
        );
    }
    println!(
        "  polled {} / expansions {} at every width | deterministic = {}",
        frontier.polled, frontier.expansions, frontier.deterministic
    );
    if args.get_str("bench-json").is_some() || args.get_str("frontier-json").is_some() {
        let path = args
            .get_str("frontier-json")
            .unwrap_or("BENCH_frontier.json");
        let json = serde_json::to_string_pretty(&frontier).expect("serializable");
        std::fs::write(path, json).expect("write frontier bench json");
        println!("wrote {path}");
    }
}

/// Frontier-scaling measurement: one §5.1 synthetic instance solved at
/// several `speculative_width`s, serialized into `BENCH_frontier.json` at
/// the repo root. The indexed vectors (`total_secs`, …) line up with
/// `widths`.
#[derive(serde::Serialize)]
struct FrontierBench {
    /// Base-table rows of the synthetic instance.
    rows: usize,
    /// Attribute count of the instance.
    attrs: usize,
    /// Solver runs averaged per width.
    runs: usize,
    /// Worker threads used at every width.
    threads: usize,
    /// Hardware threads available on the measuring machine.
    hardware_threads: usize,
    /// The speculative widths measured.
    widths: Vec<usize>,
    /// Mean wall-clock seconds per solve at each width.
    total_secs: Vec<f64>,
    /// `total_secs[0] / total_secs[i]` — only meaningful when
    /// `speedup_valid`.
    speedup_vs_width1: Vec<f64>,
    /// Expansions computed speculatively at each width (work performed).
    speculative_expansions: Vec<usize>,
    /// Speculative expansions invalidated by reconciliation at each width.
    speculation_discarded: Vec<usize>,
    /// States polled per solve — identical at every width by the
    /// reconciliation invariant (asserted).
    polled: usize,
    /// State expansions per solve — identical at every width (asserted).
    expansions: usize,
    /// False when the machine cannot physically exhibit parallel speedup
    /// (one hardware thread) — treat `speedup_vs_width1` as noise.
    speedup_valid: bool,
    /// Every width returned a byte-identical rendered explanation, cost,
    /// and poll/expansion counters.
    deterministic: bool,
}

fn bench_frontier(
    rows: usize,
    seed: u64,
    runs: usize,
    threads: usize,
    widths: &[usize],
) -> FrontierBench {
    use affidavit_core::Affidavit;

    let spec = affidavit_datasets::specs::by_name("adult").expect("dataset exists");
    let solve = |width: usize| {
        let mut total = 0.0f64;
        let mut speculative = 0usize;
        let mut discarded = 0usize;
        let mut polled = 0usize;
        let mut expansions = 0usize;
        let mut fingerprint = String::new();
        for run in 0..runs {
            let (base, pool) = generate_rows(&spec, rows.min(spec.rows), seed + run as u64);
            let mut generated =
                Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, seed + run as u64))
                    .materialize_full();
            let cfg = affidavit_core::AffidavitConfig::paper_id()
                .with_seed(seed + run as u64)
                .with_threads(threads)
                .with_speculative_width(width);
            let out = Affidavit::new(cfg).explain(&mut generated.instance);
            total += out.stats.duration.as_secs_f64();
            speculative += out.stats.speculative_expansions;
            discarded += out.stats.speculation_discarded;
            polled += out.stats.polled;
            expansions += out.stats.expansions;
            fingerprint.push_str(&affidavit_core::report::render_report(
                &out.explanation,
                &generated.instance,
            ));
            fingerprint.push_str(&format!(
                "|{};{};{};",
                out.stats.end_state_cost.to_bits(),
                out.stats.polled,
                out.stats.expansions
            ));
        }
        (
            total / runs as f64,
            speculative,
            discarded,
            polled,
            expansions,
            fingerprint,
        )
    };

    let mut total_secs = Vec::new();
    let mut speculative_expansions = Vec::new();
    let mut speculation_discarded = Vec::new();
    let mut fingerprints: Vec<String> = Vec::new();
    let mut polled = 0usize;
    let mut expansions = 0usize;
    for &w in widths {
        let (secs, spec_exp, disc, p, e, fp) = solve(w);
        total_secs.push(secs);
        speculative_expansions.push(spec_exp);
        speculation_discarded.push(disc);
        polled = p;
        expansions = e;
        fingerprints.push(fp);
    }
    let deterministic = fingerprints.windows(2).all(|w| w[0] == w[1]);
    assert!(
        deterministic,
        "speculative widths must render byte-identical explanations"
    );
    let speedup_vs_width1 = total_secs
        .iter()
        .map(|&s| total_secs[0] / s.max(1e-12))
        .collect();
    FrontierBench {
        rows: rows.min(spec.rows),
        attrs: spec.attrs,
        runs,
        threads,
        hardware_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        widths: widths.to_vec(),
        total_secs,
        speedup_vs_width1,
        speculative_expansions,
        speculation_discarded,
        polled: polled / runs.max(1),
        expansions: expansions / runs.max(1),
        speedup_valid: std::thread::available_parallelism().map_or(1, |n| n.get()) > 1,
        deterministic,
    }
}

/// One extension-phase scaling measurement, serialized into
/// `BENCH_search.json` at the repo root.
#[derive(serde::Serialize)]
struct ExtensionBench {
    /// Base-table rows of the synthetic instance.
    rows: usize,
    /// Attribute count of the instance.
    attrs: usize,
    /// Solver runs averaged per configuration.
    runs: usize,
    /// Worker count of the parallel configuration.
    threads: usize,
    /// Hardware threads available on the measuring machine.
    hardware_threads: usize,
    /// Mean wall-clock seconds in the extension phase, `threads = 1`.
    extension_secs_serial: f64,
    /// Mean wall-clock seconds in the extension phase, `threads = N`.
    extension_secs_parallel: f64,
    /// `extension_secs_serial / extension_secs_parallel`. Only
    /// meaningful when `speedup_valid`; on a 1-hardware-thread machine
    /// any deviation from 1.0 is measurement noise.
    extension_speedup: f64,
    /// False when the machine cannot physically exhibit parallel speedup
    /// (`hardware_threads == 1`) — treat `extension_speedup` as noise.
    speedup_valid: bool,
    /// Mean total solve seconds, `threads = 1`.
    total_secs_serial: f64,
    /// Mean total solve seconds, `threads = N`.
    total_secs_parallel: f64,
    /// Both configurations returned identical explanations and costs.
    deterministic: bool,
}

fn bench_extension_phase(rows: usize, seed: u64, runs: usize, threads: usize) -> ExtensionBench {
    use affidavit_core::Affidavit;

    let spec = affidavit_datasets::specs::by_name("adult").expect("dataset exists");
    let solve = |threads: usize| {
        let mut ext = 0.0f64;
        let mut total = 0.0f64;
        let mut fingerprint = String::new();
        for run in 0..runs {
            let (base, pool) = generate_rows(&spec, rows.min(spec.rows), seed + run as u64);
            let mut generated =
                Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, seed + run as u64))
                    .materialize_full();
            let cfg = affidavit_core::AffidavitConfig::paper_id()
                .with_seed(seed + run as u64)
                .with_threads(threads);
            let out = Affidavit::new(cfg).explain(&mut generated.instance);
            ext += out.stats.extension_time.as_secs_f64();
            total += out.stats.duration.as_secs_f64();
            // Fingerprint the *full rendered explanation* (functions,
            // record partition) plus the exact cost — equal-cost function
            // ties must not be able to mask a thread-count divergence.
            fingerprint.push_str(&affidavit_core::report::render_report(
                &out.explanation,
                &generated.instance,
            ));
            fingerprint.push_str(&format!("|{};", out.stats.end_state_cost.to_bits()));
        }
        (ext / runs as f64, total / runs as f64, fingerprint)
    };

    let (ext_serial, total_serial, fp_serial) = solve(1);
    let (ext_parallel, total_parallel, fp_parallel) = solve(threads);
    ExtensionBench {
        rows: rows.min(spec.rows),
        attrs: spec.attrs,
        runs,
        threads,
        hardware_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        extension_secs_serial: ext_serial,
        extension_secs_parallel: ext_parallel,
        extension_speedup: ext_serial / ext_parallel.max(1e-12),
        speedup_valid: std::thread::available_parallelism().map_or(1, |n| n.get()) > 1,
        total_secs_serial: total_serial,
        total_secs_parallel: total_parallel,
        deterministic: fp_serial == fp_parallel,
    }
}
