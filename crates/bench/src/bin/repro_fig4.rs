//! Reproduce Figure 4: the search tree on I1 with α = 0.5, β = 2, ϱ = 3,
//! starting from H^id.
//!
//! The numbers in square brackets give the order in which states were
//! extracted from the queue; `✗` marks generated states that were pruned
//! (the greyed-out arrows of the figure).

use affidavit_bench::args::Args;
use affidavit_core::{Affidavit, AffidavitConfig};
use affidavit_datasets::running_example::figure1_instance;

fn main() {
    let args = Args::parse();
    let mut cfg = AffidavitConfig::paper_id().with_trace();
    cfg.beta = 2;
    cfg.queue_width = 3; // the figure's ϱ = 3
    let mut inst = figure1_instance();
    let out = Affidavit::new(cfg).explain(&mut inst);

    println!("=== Figure 4: search tree on I1 (α=0.5, β=2, ϱ=3, H0=H^id) ===\n");
    let trace = out.trace.expect("tracing enabled");
    println!("{}", trace.render());
    println!(
        "result: cost {} ({} states generated, {} polled, {} expanded)",
        out.explanation.cost_units(inst.arity()),
        out.stats.states_generated,
        out.stats.polled,
        out.stats.expansions,
    );
    println!(
        "reference explanation E1 costs 77; found {} — search reaches the optimum",
        out.explanation.cost_units(inst.arity())
    );
    if let Some(path) = args.get_str("dot") {
        std::fs::write(path, trace.to_dot()).expect("write dot file");
        println!("wrote Graphviz tree to {path}");
    }
}
