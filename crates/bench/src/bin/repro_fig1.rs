//! Reproduce Figure 1 / §3.1: the running example I1.
//!
//! Prints the snapshots, the reference explanation E1 (cost 77), the
//! trivial explanation E∅ (cost 112), and the explanations found by both
//! paper configurations.

use affidavit_bench::args::Args;
use affidavit_core::explanation::Explanation;
use affidavit_core::report::{render_report, to_sql};
use affidavit_core::{Affidavit, AffidavitConfig};
use affidavit_datasets::running_example::{figure1_instance, figure1_reference};
use affidavit_table::AttrId;

fn main() {
    let args = Args::parse();
    let mut inst = figure1_instance();

    println!("=== Figure 1: problem instance I1 ===");
    println!(
        "source S1: {} records, target T1: {} records, |A| = {}",
        inst.source.len(),
        inst.target.len(),
        inst.arity()
    );
    let names: Vec<&str> = inst.schema().names().collect();
    println!("attributes: {}", names.join(", "));

    let reference = figure1_reference(&mut inst);
    println!("\n=== Reference explanation E1 (paper §3.1) ===");
    println!("{}", render_report(&reference, &inst));
    println!(
        "c(E1) = {}   (paper: 77)",
        reference.cost_units(inst.arity())
    );
    let trivial = Explanation::trivial(&inst);
    println!(
        "c(E∅) = {}   (paper: |A1|·|T1| = 7·16 = 112)",
        trivial.cost_units(inst.arity())
    );

    for (label, cfg) in [
        ("H^id (β=2, ϱ=5)", AffidavitConfig::paper_id()),
        ("Hs (β=1, ϱ=1)", AffidavitConfig::paper_overlap()),
    ] {
        let mut inst = figure1_instance();
        let out = Affidavit::new(cfg).explain(&mut inst);
        println!("\n=== Affidavit with {label} ===");
        println!("{}", render_report(&out.explanation, &inst));
        println!(
            "cost {} vs reference 77; {} states polled in {:?}",
            out.explanation.cost_units(inst.arity()),
            out.stats.polled,
            out.stats.duration
        );
        // Core alignment sample.
        let mut pairs: Vec<String> = out
            .explanation
            .core_pairs()
            .iter()
            .map(|&(s, t)| {
                format!(
                    "{} ↦ {}",
                    inst.pool.get(inst.source.value(s, AttrId(0))),
                    inst.pool.get(inst.target.value(t, AttrId(0)))
                )
            })
            .collect();
        pairs.sort();
        println!("alignment: {}", pairs.join(", "));
    }

    if args.has("sql") {
        let mut inst = figure1_instance();
        let out = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut inst);
        println!(
            "\n=== SQL export ===\n{}",
            to_sql(&out.explanation, &inst, "erp_table")
        );
    }
}
