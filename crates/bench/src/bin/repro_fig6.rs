//! Reproduce Figure 6: attribute scalability.
//!
//! The paper re-plots the H^id runtimes of the (η=τ=0.3) setting from
//! Table 2, normalized by each dataset's record count, against the number
//! of attributes — expecting roughly linear growth in |A| (§5.4.2 gives
//! the `|A|·O(ϱ!)` worst-case bound).
//!
//! Like the figure, this uses the datasets with ~30+ attributes (horse,
//! fd-red-30, plista, flight-1k, uniprot); rows are capped at `--rows`
//! (default 1000) so the per-record normalization is comparable.

use affidavit_bench::args::Args;
use affidavit_bench::harness::{run_cell, ConfigKind};
use affidavit_datasets::specs::by_name;

fn main() {
    let args = Args::parse();
    let rows_cap = args.get_or("rows", 1000usize);
    let runs = args.get_or("runs", 3usize);
    let seed: u64 = args.get_or("seed", 6);
    let threads: usize = args.get_or("threads", 1usize);

    // The figure's x axis: 30, 63(~43+..), 109, 182 attributes — we use the
    // wide datasets of Table 2 directly.
    let names = ["horse", "fd-red-30", "plista", "flight-1k", "uniprot"];
    println!("=== Figure 6: runtime per record vs attributes (η=τ=0.3, H^id, rows≤{rows_cap}) ===");
    println!(
        "{:<12} {:>6} {:>9} {:>10} {:>14}",
        "dataset", "attrs", "records", "t", "t per record"
    );
    let mut series: Vec<(usize, f64)> = Vec::new();
    for name in names {
        let spec = by_name(name).expect("dataset exists");
        let rows = spec.rows.min(rows_cap);
        let cell = run_cell(&spec, rows, 0.3, 0.3, ConfigKind::Hid, runs, seed, threads);
        let per_record = cell.t_secs / rows as f64;
        println!(
            "{:<12} {:>6} {:>9} {:>9.2}s {:>12.2}µs",
            name,
            spec.attrs,
            rows,
            cell.t_secs,
            per_record * 1e6
        );
        series.push((spec.attrs, per_record));
    }

    // Shape check: per-record runtime should grow roughly linearly with
    // attribute count → per-record-per-attribute stays within a small band.
    println!("\nnormalized s/record/attr (flat ⇒ linear attribute scaling):");
    for (attrs, per_record) in &series {
        println!(
            "  |A|={attrs:>4}: {:.3}µs",
            per_record * 1e6 / *attrs as f64
        );
    }
}
