//! Parameter ablations for the design choices discussed in the paper:
//!
//! * **θ sweep** (§4.4.2): "Choosing a larger θ speeds up the algorithm but
//!   risks that functions of the optimal solution will not be sampled."
//! * **α sweep** (Def. 3.10): prioritizing record coverage vs function
//!   brevity.
//! * **min-support sweep** (DESIGN.md §5.1): the significance threshold of
//!   the candidate filter.
//! * **ϱ sweep** (§4.6): the level-bounded queue width — ϱ = 1 is greedy,
//!   larger values buy backtracking.
//! * **registry ablation** (§6): the paper's catalogue vs the extended one
//!   (numeric formatting + token programs), on instances with and without
//!   extension-kind transformations.
//!
//! Flags: `--dataset NAME` (default ncvoter-1k), `--rows N`, `--runs N`,
//! `--seed N`.

use affidavit_bench::args::Args;
use affidavit_core::{Affidavit, AffidavitConfig};
use affidavit_datagen::blueprint::{Blueprint, GenConfig};
use affidavit_datagen::metrics::evaluate;
use affidavit_datasets::specs::by_name;
use affidavit_datasets::synth::generate_rows;
use std::time::Instant;

fn run(
    cfg: AffidavitConfig,
    spec_name: &str,
    rows: usize,
    runs: usize,
    seed: u64,
) -> (f64, f64, f64) {
    run_with(cfg, spec_name, rows, runs, seed, false)
}

fn run_with(
    cfg: AffidavitConfig,
    spec_name: &str,
    rows: usize,
    runs: usize,
    seed: u64,
    extension_instances: bool,
) -> (f64, f64, f64) {
    let spec = by_name(spec_name).expect("dataset exists");
    let mut acc = 0.0;
    let mut dcore = 0.0;
    let mut secs = 0.0;
    for i in 0..runs {
        let s = seed + i as u64;
        let (base, pool) = generate_rows(&spec, rows, s);
        let mut gen_cfg = GenConfig::new(0.5, 0.5, s);
        if extension_instances {
            gen_cfg = gen_cfg.with_extension_kinds();
        }
        let mut generated = Blueprint::new(base, pool, gen_cfg).materialize_full();
        let started = Instant::now();
        let out = Affidavit::new(cfg.clone().with_seed(s)).explain(&mut generated.instance);
        let m = evaluate(&out.explanation, &mut generated, started.elapsed());
        acc += m.accuracy;
        dcore += m.delta_core;
        secs += m.runtime.as_secs_f64();
    }
    let n = runs as f64;
    (secs / n, dcore / n, acc / n)
}

fn main() {
    let args = Args::parse();
    let dataset = args.get_str("dataset").unwrap_or("ncvoter-1k").to_owned();
    let rows = args.get_or("rows", 1000usize);
    let runs = args.get_or("runs", 3usize);
    let seed: u64 = args.get_or("seed", 0xAB1A);

    println!("=== Ablations on {dataset} ({rows} rows, η=τ=0.5, {runs} runs) ===\n");

    println!("θ sweep (induction sample sizing; paper default 0.1):");
    println!("{:>6} {:>9} {:>7} {:>6}", "θ", "t", "Δcore", "acc");
    for theta in [0.05, 0.1, 0.3, 0.5] {
        let mut cfg = AffidavitConfig::paper_id();
        cfg.theta = theta;
        let (t, dc, acc) = run(cfg, &dataset, rows, runs, seed);
        println!("{theta:>6.2} {t:>8.2}s {dc:>7.2} {acc:>6.2}");
    }

    println!("\nα sweep (record coverage vs function brevity; paper default 0.5):");
    println!("{:>6} {:>9} {:>7} {:>6}", "α", "t", "Δcore", "acc");
    for alpha in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let cfg = AffidavitConfig::paper_id().with_alpha(alpha);
        let (t, dc, acc) = run(cfg, &dataset, rows, runs, seed);
        println!("{alpha:>6.2} {t:>8.2}s {dc:>7.2} {acc:>6.2}");
    }

    println!("\nmin-support sweep (candidate significance filter; default 5):");
    println!("{:>6} {:>9} {:>7} {:>6}", "supp", "t", "Δcore", "acc");
    for support in [1u32, 3, 5, 10] {
        let mut cfg = AffidavitConfig::paper_id();
        cfg.min_support = support;
        let (t, dc, acc) = run(cfg, &dataset, rows, runs, seed);
        println!("{support:>6} {t:>8.2}s {dc:>7.2} {acc:>6.2}");
    }

    println!("\nϱ sweep (queue width; Hs uses 1, H^id uses 5):");
    println!("{:>6} {:>9} {:>7} {:>6}", "ϱ", "t", "Δcore", "acc");
    for rho in [1usize, 2, 5, 10, 20] {
        let mut cfg = AffidavitConfig::paper_id();
        cfg.queue_width = rho;
        let (t, dc, acc) = run(cfg, &dataset, rows, runs, seed);
        println!("{rho:>6} {t:>8.2}s {dc:>7.2} {acc:>6.2}");
    }

    println!("\nregistry ablation (classic Table-1 catalogue vs extended):");
    println!(
        "{:>22} {:>9} {:>7} {:>6}",
        "registry / instances", "t", "Δcore", "acc"
    );
    for (label, extended_reg, extension_instances) in [
        ("classic / classic", false, false),
        ("extended / classic", true, false),
        ("classic / extension", false, true),
        ("extended / extension", true, true),
    ] {
        let mut cfg = AffidavitConfig::paper_id();
        if extended_reg {
            cfg.registry = affidavit_functions::Registry::extended();
        }
        let (t, dc, acc) = run_with(cfg, &dataset, rows, runs, seed, extension_instances);
        println!("{label:>22} {t:>8.2}s {dc:>7.2} {acc:>6.2}");
    }
}
