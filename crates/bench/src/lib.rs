//! Reproduction harness for every table and figure of the paper.
//!
//! Binaries (run with `cargo run --release -p affidavit-bench --bin <name>`):
//!
//! | Binary         | Reproduces                                        |
//! |----------------|---------------------------------------------------|
//! | `repro_fig1`   | Figure 1 / §3.1 — running example, costs 77 & 112 |
//! | `repro_fig2`   | Figure 2 / Thm 3.12 — 3-SAT reduction             |
//! | `repro_fig4`   | Figure 4 — search tree on I1 (α=.5, β=2, ϱ=3)     |
//! | `repro_table2` | Table 2 — 17 datasets × 3 settings × 2 configs    |
//! | `repro_fig5`   | Figure 5 — row scalability on flight-500k         |
//! | `repro_fig6`   | Figure 6 — attribute scalability                  |
//!
//! Criterion benches (`cargo bench -p affidavit-bench`): `table2`,
//! `fig5_rows`, `fig6_attrs`, plus `components` micro/ablation benches for
//! the design choices called out in DESIGN.md.
//!
//! All binaries default to laptop-scale row caps; pass `--full` for the
//! paper's original sizes.
//!
//! ```
//! // The report helpers render measurement series as markdown.
//! let table = affidavit_bench::report::markdown_series(
//!     ("rows", "seconds"),
//!     &[("1000".to_owned(), "0.5".to_owned())],
//! );
//! assert!(table.starts_with("| rows | seconds |"));
//! assert!(table.contains("| 1000 | 0.5 |"));
//! ```

pub mod args;
pub mod harness;
pub mod report;
pub mod speedup;

pub use harness::{run_cell, CellResult, ConfigKind};
