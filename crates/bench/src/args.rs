//! Minimal dependency-free flag parsing for the repro binaries.

use std::collections::HashMap;

/// Parsed command-line flags: `--key value` pairs and bare `--switch`es.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parse from `std::env::args` (skipping the binary name).
    pub fn parse() -> Args {
        Args::from_items(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn from_items(items: impl IntoIterator<Item = String>) -> Args {
        let mut out = Args::default();
        let mut it = items.into_iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                eprintln!("warning: ignoring positional argument {arg:?}");
                continue;
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    let v = it.next().expect("peeked");
                    out.values.insert(name.to_owned(), v);
                }
                _ => out.switches.push(name.to_owned()),
            }
        }
        out
    }

    /// True if `--name` was passed as a switch.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// The value of `--name value`, parsed.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.values.get(name).and_then(|v| v.parse().ok())
    }

    /// The value of `--name`, with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name).unwrap_or(default)
    }

    /// Raw string value.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_items(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_values_and_switches() {
        let a = args(&["--runs", "5", "--full", "--rows", "2000"]);
        assert_eq!(a.get::<usize>("runs"), Some(5));
        assert_eq!(a.get_or::<usize>("rows", 1), 2000);
        assert!(a.has("full"));
        assert!(!a.has("json"));
    }

    #[test]
    fn trailing_switch() {
        let a = args(&["--full"]);
        assert!(a.has("full"));
    }

    #[test]
    fn default_when_missing() {
        let a = args(&[]);
        assert_eq!(a.get_or::<u64>("seed", 42), 42);
    }
}
