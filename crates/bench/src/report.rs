//! Markdown rendering of harness results — EXPERIMENTS.md is regenerated
//! from these tables.

use crate::harness::CellResult;

/// Render cell results as a GitHub-flavoured markdown table in Table 2's
/// layout: one row per (dataset, setting, config).
pub fn markdown_table(cells: &[CellResult]) -> String {
    let mut out = String::from(
        "| Dataset | \\|A\\| | Records | H0 | η=τ | t | Δcore | Δcosts | acc |\n\
         |---|---:|---:|---|---:|---:|---:|---:|---:|\n",
    );
    for c in cells {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.1} | {:.2}s | {:.2} | {:.2} | {:.2} |\n",
            c.dataset,
            c.attrs,
            c.records,
            c.config,
            c.eta,
            c.t_secs,
            c.delta_core,
            c.delta_costs,
            c.acc
        ));
    }
    out
}

/// Render a two-column series (e.g. scale → runtime) as markdown.
pub fn markdown_series(header: (&str, &str), rows: &[(String, String)]) -> String {
    let mut out = format!("| {} | {} |\n|---:|---:|\n", header.0, header.1);
    for (a, b) in rows {
        out.push_str(&format!("| {a} | {b} |\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rows() {
        let cells = vec![CellResult {
            dataset: "iris".into(),
            attrs: 6,
            records: 150,
            config: "Hid",
            eta: 0.3,
            tau: 0.3,
            runs: 3,
            t_secs: 0.02,
            delta_core: 1.0,
            delta_costs: 0.97,
            acc: 1.0,
        }];
        let md = markdown_table(&cells);
        assert!(md.contains("| iris | 6 | 150 | Hid | 0.3 | 0.02s | 1.00 | 0.97 | 1.00 |"));
    }

    #[test]
    fn renders_series() {
        let md = markdown_series(
            ("scale", "t"),
            &[
                ("10%".into(), "1.2s".into()),
                ("100%".into(), "11.9s".into()),
            ],
        );
        assert!(md.contains("| 10% | 1.2s |"));
    }
}
