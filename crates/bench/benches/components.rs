//! Component micro-benchmarks and ablations for the design choices called
//! out in DESIGN.md:
//!
//! * `blocking/refine_vs_root` — incremental block refinement vs full
//!   re-blocking from scratch;
//! * `induction/sampled` — block-sampled candidate induction (θ-sized);
//! * `ranking/cochran_vs_full` — Cochran-sampled vs exhaustive candidate
//!   ranking;
//! * `queue/bounded_vs_wide` — end-to-end search with the paper's bounded
//!   queue vs an effectively unbounded one (ablation of §4.6);
//! * `restructure/detect_merge` — merge/split evidence scan (§6 extension);
//! * `csv/parse` — the RFC-4180 reader on a generated table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use affidavit_blocking::Blocking;
use affidavit_core::induction::{induce_candidates, InductionParams};
use affidavit_core::ranking::rank_candidates;
use affidavit_core::{Affidavit, AffidavitConfig};
use affidavit_datagen::blueprint::{Blueprint, GenConfig};
use affidavit_datasets::specs::by_name;
use affidavit_datasets::synth::generate_rows;
use affidavit_functions::{ApplyScratch, AttrFunction, Registry};
use affidavit_table::{csv, AttrId, ValuePool};

fn setup_instance(rows: usize) -> affidavit_datagen::blueprint::GeneratedInstance {
    let spec = by_name("adult").expect("dataset exists");
    let (base, pool) = generate_rows(&spec, rows, 11);
    Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, 11)).materialize_full()
}

fn bench_blocking(c: &mut Criterion) {
    let generated = setup_instance(5_000);
    let inst = &generated.instance;
    let mut pool = inst.pool.clone();
    let root = Blocking::root(&inst.source, &inst.target);
    // Refine on the first attribute once so refinement has real splits.
    let mut scratch = ApplyScratch::new();
    let level1 = root.refine(
        AttrId(0),
        &AttrFunction::Identity,
        &mut scratch,
        &inst.source,
        &inst.target,
        &mut pool,
    );

    let mut group = c.benchmark_group("blocking");
    group.bench_function("refine_incremental", |b| {
        b.iter(|| {
            let mut scratch = ApplyScratch::new();
            let mut p = pool.clone();
            std::hint::black_box(level1.refine(
                AttrId(1),
                &AttrFunction::Identity,
                &mut scratch,
                &inst.source,
                &inst.target,
                &mut p,
            ))
        });
    });
    group.bench_function("reblock_from_root", |b| {
        b.iter(|| {
            let mut p = pool.clone();
            let mut scratch = ApplyScratch::new();
            let r = Blocking::root(&inst.source, &inst.target)
                .refine(
                    AttrId(0),
                    &AttrFunction::Identity,
                    &mut scratch,
                    &inst.source,
                    &inst.target,
                    &mut p,
                )
                .refine(
                    AttrId(1),
                    &AttrFunction::Identity,
                    &mut scratch,
                    &inst.source,
                    &inst.target,
                    &mut p,
                );
            std::hint::black_box(r)
        });
    });
    group.finish();
}

fn bench_induction_and_ranking(c: &mut Criterion) {
    let generated = setup_instance(5_000);
    let inst = &generated.instance;
    let mut pool = inst.pool.clone();
    let blocking = Blocking::root(&inst.source, &inst.target).refine(
        AttrId(0),
        &AttrFunction::Identity,
        &mut ApplyScratch::new(),
        &inst.source,
        &inst.target,
        &mut pool,
    );

    let mut group = c.benchmark_group("induction");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(8));
    // Ablation: the paper's catalogue vs the extended one (numeric
    // formatting + token programs) — the price of a richer search space.
    for (label, reg) in [
        ("sampled_k90", Registry::default()),
        ("sampled_k90_extended", Registry::extended()),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(5);
                let mut p = pool.clone();
                std::hint::black_box(induce_candidates(
                    &blocking,
                    AttrId(2),
                    &inst.source,
                    &inst.target,
                    &mut p,
                    &reg,
                    InductionParams {
                        k: 90,
                        min_support: 5,
                        max_examples_per_target: 1000,
                        use_corpus: false,
                    },
                    &mut rng,
                ))
            });
        });
    }
    group.finish();

    // Collect candidates once for the ranking ablation.
    let mut rng = StdRng::seed_from_u64(5);
    let cands: Vec<AttrFunction> = induce_candidates(
        &blocking,
        AttrId(2),
        &inst.source,
        &inst.target,
        &mut pool,
        &Registry::default(),
        InductionParams {
            k: 90,
            min_support: 5,
            max_examples_per_target: 1000,
            use_corpus: false,
        },
        &mut rng,
    )
    .into_iter()
    .map(|c| c.func)
    .collect();
    if cands.is_empty() {
        return;
    }

    let mut group = c.benchmark_group("ranking");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(12));
    for (label, k_prime) in [("cochran_139", 139usize), ("exhaustive", usize::MAX)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &k_prime, |b, &k| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let mut p = pool.clone();
                std::hint::black_box(rank_candidates(
                    &blocking,
                    AttrId(2),
                    cands.clone(),
                    &inst.source,
                    &inst.target,
                    &mut p,
                    k,
                    2,
                    &mut rng,
                ))
            });
        });
    }
    group.finish();
}

fn bench_queue_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_ablation");
    group.sample_size(10);
    for (label, rho) in [("bounded_rho5", 5usize), ("wide_rho64", 64)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &rho, |b, &rho| {
            b.iter(|| {
                let spec = by_name("bridges").expect("dataset exists");
                let (base, pool) = generate_rows(&spec, spec.rows, 13);
                let bp = Blueprint::new(base, pool, GenConfig::new(0.5, 0.5, 13));
                let mut generated = bp.materialize_full();
                let mut cfg = AffidavitConfig::paper_id();
                cfg.queue_width = rho;
                std::hint::black_box(Affidavit::new(cfg).explain(&mut generated.instance))
            });
        });
    }
    group.finish();
}

fn bench_restructure(c: &mut Criterion) {
    use affidavit_core::restructure::detect_restructures;
    use affidavit_table::{Schema, Table};

    // 5 000-row merge instance: (first, last, org, key) vs (name, org, key).
    let mut pool = ValuePool::new();
    let firsts = [
        "John", "Jane", "Max", "Ada", "Alan", "Grace", "Kurt", "Emmy",
    ];
    let lasts = [
        "Doe", "Weber", "Turing", "Hopper", "Liskov", "Noether", "Gauss", "Euler",
    ];
    let rows_s: Vec<Vec<String>> = (0..5_000usize)
        .map(|i| {
            vec![
                format!("{}{}", firsts[i % 8], i / 64),
                lasts[(i / 8) % 8].to_owned(),
                format!("org{}", i % 17),
                format!("k{i}"),
            ]
        })
        .collect();
    let rows_t: Vec<Vec<String>> = (0..5_000usize)
        .map(|i| {
            vec![
                format!("{}{} {}", firsts[i % 8], i / 64, lasts[(i / 8) % 8]),
                format!("org{}", i % 17),
                format!("k{i}"),
            ]
        })
        .collect();
    let s = Table::from_rows(
        Schema::new(["first", "last", "org", "key"]),
        &mut pool,
        rows_s,
    );
    let t = Table::from_rows(Schema::new(["name", "org", "key"]), &mut pool, rows_t);

    c.bench_function("restructure/detect_merge_5k", |b| {
        b.iter(|| std::hint::black_box(detect_restructures(&s, &t, &pool)))
    });
}

fn bench_csv(c: &mut Criterion) {
    let spec = by_name("ncvoter-1k").expect("dataset exists");
    let (table, pool) = generate_rows(&spec, 1000, 3);
    let mut buf = Vec::new();
    csv::write(&mut buf, &table, &pool, csv::CsvOptions::default()).expect("write");
    let text = String::from_utf8(buf).expect("utf8");

    c.bench_function("csv/parse_1k_x15", |b| {
        b.iter(|| {
            let mut pool = ValuePool::new();
            std::hint::black_box(
                csv::read_str(&text, &mut pool, csv::CsvOptions::default()).expect("parse"),
            )
        });
    });
}

criterion_group!(
    benches,
    bench_blocking,
    bench_induction_and_ranking,
    bench_queue_ablation,
    bench_restructure,
    bench_csv
);
criterion_main!(benches);
