//! Criterion bench for Figure 5: runtime vs record count on scaled
//! flight-500k instances (η=τ=0.3, H^id).
//!
//! The paper's claim is linear scaling; criterion's per-size estimates
//! divided by the record count should stay flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use affidavit_bench::harness::ConfigKind;
use affidavit_core::Affidavit;
use affidavit_datagen::blueprint::{Blueprint, GenConfig};
use affidavit_datasets::specs::by_name;
use affidavit_datasets::synth::generate_rows;

fn bench_fig5(c: &mut Criterion) {
    let spec = by_name("flight-500k").expect("spec exists");
    // Bench-scale base: 20k rows, scaled 25 %, 50 %, 75 %, 100 %.
    let base_rows = 20_000;
    let (base, pool) = generate_rows(&spec, base_rows, 500);
    let blueprint = Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, 500));

    let mut group = c.benchmark_group("fig5_rows");
    group.sample_size(10);
    for pct in [25u32, 50, 75, 100] {
        let scale = pct as f64 / 100.0;
        let records = blueprint.materialize(scale).instance.source.len();
        group.throughput(Throughput::Elements(records as u64));
        group.bench_with_input(BenchmarkId::from_parameter(pct), &scale, |b, &scale| {
            b.iter(|| {
                let mut generated = blueprint.materialize(scale);
                let solver = Affidavit::new(ConfigKind::Hid.to_config(500));
                std::hint::black_box(solver.explain(&mut generated.instance))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
