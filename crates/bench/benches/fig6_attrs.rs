//! Criterion bench for Figure 6: runtime vs attribute count at a fixed
//! record count (η=τ=0.3, H^id).
//!
//! Uses the wide Table 2 datasets (28–182 attributes) at 400 rows each so
//! the per-record normalization of the figure is directly comparable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use affidavit_bench::harness::ConfigKind;
use affidavit_core::Affidavit;
use affidavit_datagen::blueprint::{Blueprint, GenConfig};
use affidavit_datasets::specs::by_name;
use affidavit_datasets::synth::generate_rows;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_attrs");
    group.sample_size(10);
    for name in ["horse", "plista", "flight-1k", "uniprot"] {
        let spec = by_name(name).expect("dataset exists");
        let rows = 400;
        let (base, pool) = generate_rows(&spec, rows, 6);
        let blueprint = Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, 6));
        group.throughput(Throughput::Elements(spec.attrs as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}attrs_{name}", spec.attrs)),
            &blueprint,
            |b, blueprint| {
                b.iter(|| {
                    let mut generated = blueprint.materialize_full();
                    let solver = Affidavit::new(ConfigKind::Hid.to_config(6));
                    std::hint::black_box(solver.explain(&mut generated.instance))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
