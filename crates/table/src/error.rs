//! Error type for the table substrate.

use std::fmt;

/// Errors produced by the table substrate (CSV parsing, schema mismatches).
///
/// CSV errors carry full positional context — the 1-based physical *line*
/// (counting embedded newlines inside quoted fields), the 1-based data
/// *record* index (header excluded) where applicable, and for quote errors
/// the 1-based byte *column* of the offending quote — so ingestion
/// failures on multi-gigabyte snapshots are actionable without bisecting
/// the file.
#[derive(Debug)]
pub enum TableError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A CSV record had a different number of fields than the header.
    ArityMismatch {
        /// 1-based physical line the record starts on (quoted fields may
        /// make this differ from `row + 1`).
        line: usize,
        /// 1-based data record index (the header is not counted).
        row: usize,
        /// Number of fields expected (header width).
        expected: usize,
        /// Number of fields found.
        found: usize,
    },
    /// A quoted CSV field was never closed.
    UnterminatedQuote {
        /// 1-based line where the quoted field started.
        line: usize,
        /// 1-based byte column of the opening quote on that line.
        column: usize,
    },
    /// The input contained no header row.
    EmptyInput,
    /// Two tables that must share a schema do not.
    SchemaMismatch {
        /// Description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::Io(e) => write!(f, "I/O error: {e}"),
            TableError::ArityMismatch {
                line,
                row,
                expected,
                found,
            } => write!(
                f,
                "CSV arity mismatch at record {row} (line {line}): expected {expected} fields, found {found}"
            ),
            TableError::UnterminatedQuote { line, column } => {
                write!(
                    f,
                    "unterminated quoted CSV field starting at line {line}, column {column}"
                )
            }
            TableError::EmptyInput => write!(f, "CSV input is empty (no header row)"),
            TableError::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
        }
    }
}

impl std::error::Error for TableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TableError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        TableError::Io(e)
    }
}
