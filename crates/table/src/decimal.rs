//! Exact decimal arithmetic for numeric meta functions.
//!
//! The paper's numeric transformations operate on decimal *strings*
//! (`'65' ↦ '0.065'` under `x ↦ x / 1000`). Reproducing them requires exact
//! arithmetic with canonical string formatting — floating point would
//! produce `0.06500000000000001`-style artifacts that break value matching.
//!
//! A [`Decimal`] is `mantissa · 10^(−scale)` with `mantissa: i128` and
//! `scale: u32`, kept normalized (no trailing fractional zeros, zero has
//! scale 0). All operations are checked; overflow yields `None`, and the
//! caller treats the value as non-transformable (see DESIGN.md §5.3).

use std::cmp::Ordering;
use std::fmt;

/// Maximum scale (fractional digits) a decimal may carry. Bounds the size of
/// division results; anything finer is treated as non-terminating.
pub const MAX_SCALE: u32 = 28;

/// An exact decimal number: `mantissa · 10^(−scale)`.
// NOTE: the derived ordering is *structural* (mantissa/scale resp.
// num/den), used only for canonical, deterministic sorting of function
// candidates — numeric comparison goes through `cmp_value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Decimal {
    mantissa: i128,
    scale: u32,
}

impl Decimal {
    /// The decimal zero.
    pub const ZERO: Decimal = Decimal {
        mantissa: 0,
        scale: 0,
    };

    /// Build a decimal from mantissa and scale, normalizing trailing zeros.
    pub fn new(mantissa: i128, scale: u32) -> Decimal {
        let mut d = Decimal { mantissa, scale };
        d.normalize();
        d
    }

    /// Build a decimal from an integer.
    pub fn from_int(v: i128) -> Decimal {
        Decimal {
            mantissa: v,
            scale: 0,
        }
    }

    /// The raw mantissa.
    pub fn mantissa(&self) -> i128 {
        self.mantissa
    }

    /// The raw scale (number of fractional digits).
    pub fn scale(&self) -> u32 {
        self.scale
    }

    /// True if the value is an integer (scale 0 after normalization).
    pub fn is_integer(&self) -> bool {
        self.scale == 0
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.mantissa == 0
    }

    fn normalize(&mut self) {
        if self.mantissa == 0 {
            self.scale = 0;
            return;
        }
        while self.scale > 0 && self.mantissa % 10 == 0 {
            self.mantissa /= 10;
            self.scale -= 1;
        }
    }

    /// Parse a decimal string: `[+-]? digits [ '.' digits ]` or
    /// `[+-]? '.' digits`. Exponents, thousands separators, and non-ASCII
    /// digits are rejected — such values are simply "not numeric" for the
    /// purposes of the numeric meta functions.
    pub fn parse(s: &str) -> Option<Decimal> {
        let bytes = s.as_bytes();
        if bytes.is_empty() {
            return None;
        }
        let (neg, rest) = match bytes[0] {
            b'-' => (true, &bytes[1..]),
            b'+' => (false, &bytes[1..]),
            _ => (false, bytes),
        };
        if rest.is_empty() {
            return None;
        }
        let mut mantissa: i128 = 0;
        let mut scale: u32 = 0;
        let mut seen_dot = false;
        let mut seen_digit = false;
        for &b in rest {
            match b {
                b'0'..=b'9' => {
                    seen_digit = true;
                    mantissa = mantissa.checked_mul(10)?.checked_add((b - b'0') as i128)?;
                    if seen_dot {
                        scale += 1;
                        if scale > MAX_SCALE {
                            return None;
                        }
                    }
                }
                b'.' if !seen_dot => seen_dot = true,
                _ => return None,
            }
        }
        if !seen_digit {
            return None;
        }
        if neg {
            mantissa = -mantissa;
        }
        Some(Decimal::new(mantissa, scale))
    }

    /// Rescale so both operands share a scale. Returns `(a, b, scale)`.
    fn align(a: Decimal, b: Decimal) -> Option<(i128, i128, u32)> {
        match a.scale.cmp(&b.scale) {
            Ordering::Equal => Some((a.mantissa, b.mantissa, a.scale)),
            Ordering::Less => {
                let f = pow10(b.scale - a.scale)?;
                Some((a.mantissa.checked_mul(f)?, b.mantissa, b.scale))
            }
            Ordering::Greater => {
                let f = pow10(a.scale - b.scale)?;
                Some((a.mantissa, b.mantissa.checked_mul(f)?, a.scale))
            }
        }
    }

    /// Checked addition.
    pub fn checked_add(self, other: Decimal) -> Option<Decimal> {
        let (a, b, s) = Decimal::align(self, other)?;
        Some(Decimal::new(a.checked_add(b)?, s))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, other: Decimal) -> Option<Decimal> {
        let (a, b, s) = Decimal::align(self, other)?;
        Some(Decimal::new(a.checked_sub(b)?, s))
    }

    /// Checked multiplication.
    pub fn checked_mul(self, other: Decimal) -> Option<Decimal> {
        let scale = self.scale.checked_add(other.scale)?;
        if scale > 2 * MAX_SCALE {
            return None;
        }
        let m = self.mantissa.checked_mul(other.mantissa)?;
        let mut d = Decimal { mantissa: m, scale };
        d.normalize();
        if d.scale > MAX_SCALE {
            return None;
        }
        Some(d)
    }

    /// Exact division: succeeds only when the quotient has a terminating
    /// decimal representation within [`MAX_SCALE`] digits.
    pub fn checked_div_exact(self, other: Decimal) -> Option<Decimal> {
        if other.is_zero() {
            return None;
        }
        // self / other = (m1 · 10^s2) / (m2 · 10^s1); delegate to the
        // rational-to-decimal conversion for the terminating check.
        crate::rational::Rational::new(self.mantissa, other.mantissa)?
            .scaled_pow10(other.scale as i32 - self.scale as i32)?
            .to_decimal()
    }

    /// Compare two decimals numerically.
    pub fn cmp_value(&self, other: &Decimal) -> Ordering {
        match Decimal::align(*self, *other) {
            Some((a, b, _)) => a.cmp(&b),
            // Alignment can only overflow for astronomically different
            // scales; fall back to sign + scale comparison.
            None => {
                let sa = self.mantissa.signum();
                let sb = other.mantissa.signum();
                sa.cmp(&sb)
            }
        }
    }
}

impl std::ops::Neg for Decimal {
    type Output = Decimal;

    fn neg(self) -> Decimal {
        Decimal {
            mantissa: -self.mantissa,
            scale: self.scale,
        }
    }
}

/// `10^exp` as `i128`, or `None` on overflow.
pub fn pow10(exp: u32) -> Option<i128> {
    if exp > 38 {
        return None;
    }
    let mut v: i128 = 1;
    for _ in 0..exp {
        v = v.checked_mul(10)?;
    }
    Some(v)
}

impl fmt::Display for Decimal {
    /// Canonical formatting: no sign for zero, no trailing fractional
    /// zeros (guaranteed by normalization), fraction zero-padded to scale.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.mantissa);
        }
        let neg = self.mantissa < 0;
        let abs = self.mantissa.unsigned_abs();
        let div = pow10(self.scale).expect("normalized scale fits i128") as u128;
        let int = abs / div;
        let frac = abs % div;
        if neg {
            write!(f, "-")?;
        }
        write!(f, "{int}.{frac:0>width$}", width = self.scale as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Decimal {
        Decimal::parse(s).unwrap()
    }

    #[test]
    fn parse_and_format_roundtrip() {
        for s in [
            "0", "1", "-1", "80000", "0.065", "-0.5", "9.8", "6.54", "425",
        ] {
            assert_eq!(d(s).to_string(), s, "roundtrip {s}");
        }
    }

    #[test]
    fn parse_normalizes() {
        assert_eq!(d("0007").to_string(), "7");
        assert_eq!(d("1.500").to_string(), "1.5");
        assert_eq!(d("-0").to_string(), "0");
        assert_eq!(d("+3.25").to_string(), "3.25");
        assert_eq!(d(".5").to_string(), "0.5");
        assert_eq!(d("5.").to_string(), "5");
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "", "-", "+", ".", "1e5", "1,000", "abc", "1.2.3", "--1", " 1",
        ] {
            assert!(Decimal::parse(s).is_none(), "should reject {s:?}");
        }
    }

    #[test]
    fn addition() {
        assert_eq!(d("1.5").checked_add(d("2.25")).unwrap().to_string(), "3.75");
        assert_eq!(d("0.1").checked_add(d("0.2")).unwrap().to_string(), "0.3");
        assert_eq!(d("5").checked_add(d("-5")).unwrap(), Decimal::ZERO);
    }

    #[test]
    fn subtraction() {
        assert_eq!(d("1").checked_sub(d("0.999")).unwrap().to_string(), "0.001");
    }

    #[test]
    fn multiplication() {
        assert_eq!(d("0.5").checked_mul(d("0.5")).unwrap().to_string(), "0.25");
        assert_eq!(d("1000").checked_mul(d("0.065")).unwrap().to_string(), "65");
    }

    #[test]
    fn paper_division_example() {
        // Figure 1: f_Val = x ↦ x / 1000.
        let k = d("1000");
        assert_eq!(d("80000").checked_div_exact(k).unwrap().to_string(), "80");
        assert_eq!(d("65").checked_div_exact(k).unwrap().to_string(), "0.065");
        assert_eq!(d("9800").checked_div_exact(k).unwrap().to_string(), "9.8");
        assert_eq!(d("6540").checked_div_exact(k).unwrap().to_string(), "6.54");
        assert_eq!(d("0").checked_div_exact(k).unwrap().to_string(), "0");
        assert_eq!(
            d("422400").checked_div_exact(k).unwrap().to_string(),
            "422.4"
        );
    }

    #[test]
    fn nonterminating_division_fails() {
        assert!(d("1").checked_div_exact(d("3")).is_none());
        assert!(d("10").checked_div_exact(d("7")).is_none());
        assert!(d("1").checked_div_exact(d("0")).is_none());
    }

    #[test]
    fn terminating_division_by_composite() {
        // 1 / 8 = 0.125 (denominator 2^3 terminates).
        assert_eq!(
            d("1").checked_div_exact(d("8")).unwrap().to_string(),
            "0.125"
        );
        // 3 / 2.5 = 1.2
        assert_eq!(
            d("3").checked_div_exact(d("2.5")).unwrap().to_string(),
            "1.2"
        );
    }

    #[test]
    fn ordering() {
        assert_eq!(d("0.5").cmp_value(&d("0.25")), Ordering::Greater);
        assert_eq!(d("-1").cmp_value(&d("0")), Ordering::Less);
        assert_eq!(d("1.50").cmp_value(&d("1.5")), Ordering::Equal);
    }

    #[test]
    fn overflow_is_none() {
        let big = "9".repeat(40);
        assert!(Decimal::parse(&big).is_none());
    }
}
