//! Dependency-free RFC-4180 CSV reader/writer.
//!
//! Supports quoted fields (with escaped quotes `""`), embedded separators
//! and newlines inside quotes, `\r\n` and `\n` line endings, a UTF-8 BOM,
//! and a configurable separator. The first row is the header (schema).
//!
//! Two reading disciplines share one grammar:
//!
//! * [`read_str`] parses an in-memory string in one pass.
//! * [`read`] / [`read_path`] stream from any reader through a
//!   [`RowChunker`], which splits the byte stream into chunks of *complete
//!   records* (quote- and CRLF-aware, so a chunk boundary can never fall
//!   inside a quoted field) and parses chunk by chunk in bounded memory.
//!   The `affidavit-store` crate fans the same chunks out over worker
//!   threads for parallel interning.
//!
//! Both paths produce byte-identical `(Table, ValuePool)` results.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::error::TableError;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::{Sym, ValuePool};

/// CSV parsing options.
#[derive(Debug, Clone, Copy)]
pub struct CsvOptions {
    /// Field separator (default `,`).
    pub separator: u8,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions { separator: b',' }
    }
}

/// Records per chunk used by the serial streaming reader ([`read`]).
pub const DEFAULT_CHUNK_ROWS: usize = 4096;

/// A parsed CSV record together with the physical line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvRow {
    /// 1-based physical line of the record's first byte (embedded newlines
    /// in earlier quoted fields are counted).
    pub line: usize,
    /// The record's fields.
    pub fields: Vec<String>,
}

/// Parse raw CSV text into rows of fields.
pub fn parse_rows(input: &str, opts: CsvOptions) -> Result<Vec<Vec<String>>, TableError> {
    Ok(parse_rows_at(input, opts, 1)?
        .into_iter()
        .map(|r| r.fields)
        .collect())
}

/// Parse raw CSV text into rows with line positions, treating the input's
/// first byte as sitting on (1-based) `first_line`. Chunked readers pass
/// the chunk's absolute starting line so errors and [`CsvRow::line`] carry
/// whole-stream positions.
pub fn parse_rows_at(
    input: &str,
    opts: CsvOptions,
    first_line: usize,
) -> Result<Vec<CsvRow>, TableError> {
    let (rows, trailing) = parse_rows_trailing(input, opts, first_line);
    match trailing {
        Some(err) => Err(err),
        None => Ok(rows),
    }
}

/// Core parser: complete rows plus an optional *trailing* error. An
/// unterminated quote consumes the rest of the input, so every complete
/// row precedes it in stream order; returning the rows alongside the
/// error lets readers validate them first and report whichever error
/// comes first in the stream — the discipline all reading paths share,
/// so serial and chunked reads fail identically at any chunk size.
fn parse_rows_trailing(
    input: &str,
    opts: CsvOptions,
    first_line: usize,
) -> (Vec<CsvRow>, Option<TableError>) {
    let bytes = input.as_bytes();
    let mut rows: Vec<CsvRow> = Vec::new();
    let mut fields: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut i = 0usize;
    let mut line = first_line;
    let mut col = 1usize;
    let mut in_quotes = false;
    let mut quote_line = first_line;
    let mut quote_col = 1usize;
    let mut row_started = false;
    let mut row_line = first_line;

    while i < bytes.len() {
        let b = bytes[i];
        if in_quotes {
            match b {
                b'"' => {
                    if i + 1 < bytes.len() && bytes[i + 1] == b'"' {
                        field.push('"');
                        i += 2;
                        col += 2;
                    } else {
                        in_quotes = false;
                        i += 1;
                        col += 1;
                    }
                }
                b'\n' => {
                    field.push('\n');
                    line += 1;
                    col = 1;
                    i += 1;
                }
                _ => {
                    // Copy a full UTF-8 code point.
                    let ch_len = utf8_len(b);
                    field.push_str(&input[i..i + ch_len]);
                    i += ch_len;
                    col += ch_len;
                }
            }
            continue;
        }
        match b {
            b'"' if field.is_empty() => {
                in_quotes = true;
                quote_line = line;
                quote_col = col;
                if !row_started {
                    row_started = true;
                    row_line = line;
                }
                i += 1;
                col += 1;
            }
            b'\r' => {
                i += 1; // handled by the following \n (or stripped bare)
                col += 1;
            }
            b'\n' => {
                line += 1;
                col = 1;
                i += 1;
                if row_started || !field.is_empty() || !fields.is_empty() {
                    fields.push(std::mem::take(&mut field));
                    rows.push(CsvRow {
                        line: row_line,
                        fields: std::mem::take(&mut fields),
                    });
                    row_started = false;
                }
            }
            _ if b == opts.separator => {
                fields.push(std::mem::take(&mut field));
                if !row_started {
                    row_started = true;
                    row_line = line;
                }
                i += 1;
                col += 1;
            }
            _ => {
                let ch_len = utf8_len(b);
                field.push_str(&input[i..i + ch_len]);
                if !row_started {
                    row_started = true;
                    row_line = line;
                }
                i += ch_len;
                col += ch_len;
            }
        }
    }
    if in_quotes {
        // The unterminated tail is not a row; report it after the
        // complete rows that precede it.
        return (
            rows,
            Some(TableError::UnterminatedQuote {
                line: quote_line,
                column: quote_col,
            }),
        );
    }
    if row_started || !field.is_empty() || !fields.is_empty() {
        fields.push(field);
        rows.push(CsvRow {
            line: row_line,
            fields,
        });
    }
    (rows, None)
}

#[inline]
fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// A chunk of complete CSV records cut from a byte stream.
#[derive(Debug, Clone)]
pub struct CsvChunk {
    /// The chunk's raw text. Starts and ends on record boundaries, so it
    /// parses independently of its neighbours.
    pub text: String,
    /// 1-based physical line number of the chunk's first byte within the
    /// whole stream — pass it to [`parse_rows_at`].
    pub first_line: usize,
}

/// Incremental, bounded-memory splitter of a CSV byte stream into chunks
/// of complete records.
///
/// The chunker replicates the parser's quote state machine (quotes open
/// only at field starts, `""` escapes, literal quotes mid-field, `\r`
/// stripping, newlines inside quotes) byte for byte, so a chunk boundary
/// is only ever placed on a *record* boundary — a quoted field containing
/// newlines or separators can never be split, no matter how it straddles
/// the internal read buffer. A UTF-8 BOM at stream start is stripped.
///
/// Memory use is bounded by the longest single record plus the underlying
/// `BufRead` buffer, not by the stream length.
pub struct RowChunker<R> {
    reader: R,
    opts: CsvOptions,
    /// Bytes read but not yet emitted; `pos` is the scan frontier.
    buf: Vec<u8>,
    pos: usize,
    eof: bool,
    bom_checked: bool,
    /// Line number of `buf[0]` (1-based, whole-stream).
    start_line: usize,
    /// Byte offset just past the last newline outside quotes (a safe
    /// split point), and the line number there.
    boundary: usize,
    boundary_line: usize,
    // Scanner state at `pos`, mirroring `parse_rows_at`.
    line: usize,
    col: usize,
    in_quotes: bool,
    field_empty: bool,
    row_started: bool,
    quote_line: usize,
    quote_col: usize,
    /// Complete records seen since the last emitted chunk.
    records: usize,
}

impl<R: BufRead> RowChunker<R> {
    /// Wrap a buffered reader.
    pub fn new(reader: R, opts: CsvOptions) -> RowChunker<R> {
        RowChunker {
            reader,
            opts,
            buf: Vec::new(),
            pos: 0,
            eof: false,
            bom_checked: false,
            start_line: 1,
            boundary: 0,
            boundary_line: 1,
            line: 1,
            col: 1,
            in_quotes: false,
            field_empty: true,
            row_started: false,
            quote_line: 1,
            quote_col: 1,
            records: 0,
        }
    }

    /// The next chunk of up to `max_rows` complete records, or `None` once
    /// the stream is exhausted. The final chunk may end in a record with no
    /// trailing newline. Blank lines are carried along (the parser skips
    /// them) but never counted as records.
    pub fn next_chunk(&mut self, max_rows: usize) -> Result<Option<CsvChunk>, TableError> {
        let max_rows = max_rows.max(1);
        loop {
            if !self.bom_checked {
                if self.buf.len() < 3 && !self.eof {
                    self.fill()?;
                    continue;
                }
                if self.buf.starts_with(&[0xEF, 0xBB, 0xBF]) {
                    self.buf.drain(..3);
                }
                self.bom_checked = true;
            }
            while self.pos < self.buf.len() {
                let b = self.buf[self.pos];
                if self.in_quotes {
                    match b {
                        b'"' => {
                            if self.pos + 1 >= self.buf.len() && !self.eof {
                                // Can't yet tell an escaped `""` from a
                                // closing quote: wait for the next byte.
                                break;
                            }
                            if self.buf.get(self.pos + 1) == Some(&b'"') {
                                self.field_empty = false;
                                self.pos += 2;
                                self.col += 2;
                            } else {
                                self.in_quotes = false;
                                self.pos += 1;
                                self.col += 1;
                            }
                        }
                        b'\n' => {
                            self.field_empty = false;
                            self.line += 1;
                            self.col = 1;
                            self.pos += 1;
                        }
                        _ => {
                            self.field_empty = false;
                            self.pos += 1;
                            self.col += 1;
                        }
                    }
                    continue;
                }
                match b {
                    b'"' if self.field_empty => {
                        self.in_quotes = true;
                        self.quote_line = self.line;
                        self.quote_col = self.col;
                        self.row_started = true;
                        self.pos += 1;
                        self.col += 1;
                    }
                    b'\r' => {
                        self.pos += 1;
                        self.col += 1;
                    }
                    b'\n' => {
                        self.line += 1;
                        self.col = 1;
                        self.pos += 1;
                        self.field_empty = true;
                        self.boundary = self.pos;
                        self.boundary_line = self.line;
                        if self.row_started {
                            self.records += 1;
                            self.row_started = false;
                            if self.records == max_rows {
                                return Ok(Some(self.emit(self.pos)?));
                            }
                        }
                    }
                    _ => {
                        self.field_empty = b == self.opts.separator;
                        self.row_started = true;
                        self.pos += 1;
                        self.col += 1;
                    }
                }
            }
            if self.eof {
                break;
            }
            self.fill()?;
        }
        if self.in_quotes {
            // Emit the complete records buffered ahead of the unterminated
            // tail first — readers must see (and validate) every record
            // that precedes the error in the stream, at any chunk size.
            // The error itself surfaces on the next call.
            if self.boundary > 0 {
                let end = self.boundary;
                return Ok(Some(self.emit(end)?));
            }
            return Err(TableError::UnterminatedQuote {
                line: self.quote_line,
                column: self.quote_col,
            });
        }
        if self.buf.is_empty() {
            return Ok(None);
        }
        let end = self.buf.len();
        Ok(Some(self.emit(end)?))
    }

    fn fill(&mut self) -> Result<(), TableError> {
        let data = self.reader.fill_buf()?;
        if data.is_empty() {
            self.eof = true;
            return Ok(());
        }
        self.buf.extend_from_slice(data);
        let n = data.len();
        self.reader.consume(n);
        Ok(())
    }

    fn emit(&mut self, end: usize) -> Result<CsvChunk, TableError> {
        let bytes: Vec<u8> = self.buf.drain(..end).collect();
        self.pos -= end;
        let text = String::from_utf8(bytes).map_err(|e| {
            TableError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("CSV stream is not valid UTF-8: {e}"),
            ))
        })?;
        let first_line = self.start_line;
        // A split exactly at the last record boundary (the deferred-error
        // path) leaves the scan frontier beyond the emitted region, so the
        // next chunk starts at the boundary's line, not the scanner's.
        self.start_line = if end == self.boundary {
            self.boundary_line
        } else {
            self.line
        };
        self.boundary = self.boundary.saturating_sub(end);
        self.records = 0;
        Ok(CsvChunk { text, first_line })
    }
}

/// Read a table from CSV text. The first row is the header. A leading
/// UTF-8 BOM is stripped.
pub fn read_str(input: &str, pool: &mut ValuePool, opts: CsvOptions) -> Result<Table, TableError> {
    let input = input.strip_prefix('\u{feff}').unwrap_or(input);
    let (rows, trailing) = parse_rows_trailing(input, opts, 1);
    let mut rows = rows.into_iter();
    let Some(header) = rows.next() else {
        return Err(trailing.unwrap_or(TableError::EmptyInput));
    };
    let arity = header.fields.len();
    let schema = Schema::new(header.fields);
    let mut table = Table::with_capacity(schema, rows.len());
    let mut syms: Vec<Sym> = Vec::new();
    for (idx, row) in rows.enumerate() {
        if row.fields.len() != arity {
            return Err(TableError::ArityMismatch {
                line: row.line,
                row: idx + 1,
                expected: arity,
                found: row.fields.len(),
            });
        }
        // Interning stays row-major (first-appearance order); the table
        // transposes the row into its columns at this edge.
        syms.clear();
        syms.extend(row.fields.iter().map(|v| pool.intern(v)));
        table.push_row(&syms);
    }
    match trailing {
        Some(err) => Err(err),
        None => Ok(table),
    }
}

/// Read a table from any reader, streaming in bounded memory.
pub fn read<R: Read>(
    reader: R,
    pool: &mut ValuePool,
    opts: CsvOptions,
) -> Result<Table, TableError> {
    read_buffered(BufReader::new(reader), pool, opts)
}

/// Read a table from a buffered reader, streaming chunk by chunk through a
/// [`RowChunker`] ([`DEFAULT_CHUNK_ROWS`] records at a time) instead of
/// materializing the whole input. Interning order — and therefore the
/// resulting `(Table, ValuePool)` — is byte-identical to [`read_str`] on
/// the same bytes.
pub fn read_buffered<R: BufRead>(
    reader: R,
    pool: &mut ValuePool,
    opts: CsvOptions,
) -> Result<Table, TableError> {
    read_buffered_with(reader, pool, opts, DEFAULT_CHUNK_ROWS)
}

/// [`read_buffered`] with an explicit chunk size (records per streamed
/// chunk) — the serial path of `affidavit-store`'s ingestion pipeline.
pub fn read_buffered_with<R: BufRead>(
    reader: R,
    pool: &mut ValuePool,
    opts: CsvOptions,
    chunk_rows: usize,
) -> Result<Table, TableError> {
    let mut chunker = RowChunker::new(reader, opts);
    let (schema, arity) = loop {
        let Some(chunk) = chunker.next_chunk(1)? else {
            return Err(TableError::EmptyInput);
        };
        let mut rows = parse_rows_at(&chunk.text, opts, chunk.first_line)?;
        if rows.is_empty() {
            continue; // blank-line-only chunk before the header
        }
        let header = rows.remove(0);
        debug_assert!(
            rows.is_empty(),
            "a 1-record chunk parses to at most one row"
        );
        break (Schema::new(header.fields.clone()), header.fields.len());
    };
    let mut table = Table::new(schema);
    let mut syms: Vec<Sym> = Vec::new();
    let mut row_idx = 0usize;
    while let Some(chunk) = chunker.next_chunk(chunk_rows)? {
        for row in parse_rows_at(&chunk.text, opts, chunk.first_line)? {
            row_idx += 1;
            if row.fields.len() != arity {
                return Err(TableError::ArityMismatch {
                    line: row.line,
                    row: row_idx,
                    expected: arity,
                    found: row.fields.len(),
                });
            }
            syms.clear();
            syms.extend(row.fields.iter().map(|v| pool.intern(v)));
            table.push_row(&syms);
        }
    }
    Ok(table)
}

/// Read a table from a file path, streaming in bounded memory.
pub fn read_path(
    path: impl AsRef<Path>,
    pool: &mut ValuePool,
    opts: CsvOptions,
) -> Result<Table, TableError> {
    read(std::fs::File::open(path)?, pool, opts)
}

/// Write a table as CSV.
pub fn write<W: Write>(
    w: W,
    table: &Table,
    pool: &ValuePool,
    opts: CsvOptions,
) -> Result<(), TableError> {
    let mut w = std::io::BufWriter::new(w);
    let sep = [opts.separator];
    let names: Vec<&str> = table.schema().names().collect();
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            w.write_all(&sep)?;
        }
        write_escaped(&mut w, name, opts.separator)?;
    }
    w.write_all(b"\n")?;
    for record in table.rows() {
        for (i, sym) in record.iter().enumerate() {
            if i > 0 {
                w.write_all(&sep)?;
            }
            write_escaped(&mut w, pool.get(sym), opts.separator)?;
        }
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

fn write_escaped<W: Write>(w: &mut W, field: &str, sep: u8) -> std::io::Result<()> {
    let needs_quoting = field
        .bytes()
        .any(|b| b == sep || b == b'"' || b == b'\n' || b == b'\r');
    if !needs_quoting {
        return w.write_all(field.as_bytes());
    }
    w.write_all(b"\"")?;
    let mut rest = field;
    while let Some(pos) = rest.find('"') {
        w.write_all(&rest.as_bytes()[..pos])?;
        w.write_all(b"\"\"")?;
        rest = &rest[pos + 1..];
    }
    w.write_all(rest.as_bytes())?;
    w.write_all(b"\"")
}

/// Write a table to a file path.
pub fn write_path(
    path: impl AsRef<Path>,
    table: &Table,
    pool: &ValuePool,
    opts: CsvOptions,
) -> Result<(), TableError> {
    write(std::fs::File::create(path)?, table, pool, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordId;
    use crate::schema::AttrId;

    fn opts() -> CsvOptions {
        CsvOptions::default()
    }

    #[test]
    fn simple_parse() {
        let t = "a,b\n1,2\n3,4\n";
        let rows = parse_rows(t, opts()).unwrap();
        assert_eq!(rows, vec![vec!["a", "b"], vec!["1", "2"], vec!["3", "4"]]);
    }

    #[test]
    fn quoted_fields() {
        let t = "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n";
        let rows = parse_rows(t, opts()).unwrap();
        assert_eq!(rows[1], vec!["x,y", "he said \"hi\""]);
    }

    #[test]
    fn embedded_newline() {
        let t = "a\n\"line1\nline2\"\n";
        let rows = parse_rows(t, opts()).unwrap();
        assert_eq!(rows[1], vec!["line1\nline2"]);
    }

    #[test]
    fn crlf_endings() {
        let t = "a,b\r\n1,2\r\n";
        let rows = parse_rows(t, opts()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2"]);
    }

    #[test]
    fn missing_trailing_newline() {
        let rows = parse_rows("a\n1", opts()).unwrap();
        assert_eq!(rows, vec![vec!["a"], vec!["1"]]);
    }

    #[test]
    fn empty_fields() {
        let rows = parse_rows("a,b,c\n,,\n", opts()).unwrap();
        assert_eq!(rows[1], vec!["", "", ""]);
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(matches!(
            parse_rows("a\n\"oops\n", opts()),
            Err(TableError::UnterminatedQuote { line: 2, column: 1 })
        ));
    }

    #[test]
    fn arity_mismatch_carries_row_and_line() {
        let mut pool = ValuePool::new();
        let err = read_str("a,b\n1,2\n1\n", &mut pool, opts()).unwrap_err();
        assert!(matches!(
            err,
            TableError::ArityMismatch {
                line: 3,
                row: 2,
                expected: 2,
                found: 1,
            }
        ));
    }

    #[test]
    fn arity_mismatch_line_counts_embedded_newlines() {
        // The first data record spans three physical lines; the bad record
        // therefore starts on line 5, not line 3.
        let mut pool = ValuePool::new();
        let err = read_str("a,b\n\"x\ny\nz\",2\n1\n", &mut pool, opts()).unwrap_err();
        assert!(
            matches!(
                err,
                TableError::ArityMismatch {
                    line: 5,
                    row: 2,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn bom_is_stripped() {
        let mut pool = ValuePool::new();
        let t = read_str("\u{feff}a,b\n1,2\n", &mut pool, opts()).unwrap();
        assert_eq!(t.schema().name(AttrId(0)), "a");
        let mut pool2 = ValuePool::new();
        let t2 = read("\u{feff}a,b\n1,2\n".as_bytes(), &mut pool2, opts()).unwrap();
        assert_eq!(t2.schema().name(AttrId(0)), "a");
        assert_eq!(t2.len(), 1);
    }

    #[test]
    fn read_into_table() {
        let mut pool = ValuePool::new();
        let t = read_str("Type,Org\nA,IBM\nC,SAP\n", &mut pool, opts()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.schema().name(AttrId(1)), "Org");
        assert_eq!(pool.get(t.value(RecordId(1), AttrId(0))), "C");
    }

    #[test]
    fn streaming_read_matches_read_str() {
        let text =
            "a,b\nplain,\"quoted,comma\"\n\"multi\r\nline\",\"q\"\"uote\"\n\n東京,x\nlast,row";
        let mut pool_mem = ValuePool::new();
        let t_mem = read_str(text, &mut pool_mem, opts()).unwrap();
        let mut pool_stream = ValuePool::new();
        let t_stream = read(text.as_bytes(), &mut pool_stream, opts()).unwrap();
        assert_eq!(t_mem.len(), t_stream.len());
        let mem: Vec<&str> = pool_mem.iter().map(|(_, s)| s).collect();
        let stream: Vec<&str> = pool_stream.iter().map(|(_, s)| s).collect();
        assert_eq!(mem, stream, "interning order must match");
        for (id, r) in t_mem.iter() {
            assert_eq!(r.to_vec().as_slice(), t_stream.record(id).values());
        }
    }

    #[test]
    fn chunker_splits_on_record_boundaries_only() {
        let text = "h\n\"a\nb\",x\n".replace(",x", ""); // header + one 2-line record
        let mut chunker = RowChunker::new(text.as_bytes(), opts());
        let c1 = chunker.next_chunk(1).unwrap().unwrap();
        assert_eq!(c1.text, "h\n");
        assert_eq!(c1.first_line, 1);
        let c2 = chunker.next_chunk(1).unwrap().unwrap();
        assert_eq!(c2.text, "\"a\nb\"\n");
        assert_eq!(c2.first_line, 2);
        assert!(chunker.next_chunk(1).unwrap().is_none());
    }

    #[test]
    fn chunker_reports_unterminated_quote_position() {
        let mut chunker = RowChunker::new("ok\nx,\"bad\n".as_bytes(), opts());
        let _ = chunker.next_chunk(1).unwrap().unwrap();
        let err = chunker.next_chunk(1).unwrap_err();
        assert!(
            matches!(err, TableError::UnterminatedQuote { line: 2, column: 3 }),
            "{err:?}"
        );
    }

    #[test]
    fn write_read_roundtrip() {
        let mut pool = ValuePool::new();
        let t = read_str(
            "a,b\nplain,\"quoted,comma\"\n\"multi\nline\",\"q\"\"uote\"\n",
            &mut pool,
            opts(),
        )
        .unwrap();
        let mut out = Vec::new();
        write(&mut out, &t, &pool, opts()).unwrap();
        let text = String::from_utf8(out).unwrap();
        let mut pool2 = ValuePool::new();
        let t2 = read_str(&text, &mut pool2, opts()).unwrap();
        assert_eq!(t2.len(), t.len());
        for (id, r) in t.iter() {
            let r2 = t2.record(id);
            for (i, sym) in r.iter().enumerate() {
                assert_eq!(pool.get(sym), pool2.get(r2.get(i)));
            }
        }
    }

    #[test]
    fn custom_separator() {
        let mut pool = ValuePool::new();
        let t = read_str("a;b\n1;2\n", &mut pool, CsvOptions { separator: b';' }).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.schema().arity(), 2);
    }

    #[test]
    fn utf8_content() {
        let mut pool = ValuePool::new();
        let t = read_str("städte\nmünchen\n東京\n", &mut pool, opts()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(pool.get(t.value(RecordId(1), AttrId(0))), "東京");
    }
}
