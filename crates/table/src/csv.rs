//! Dependency-free RFC-4180 CSV reader/writer.
//!
//! Supports quoted fields (with escaped quotes `""`), embedded separators
//! and newlines inside quotes, `\r\n` and `\n` line endings, and a
//! configurable separator. The first row is the header (schema).

use std::io::{BufReader, Read, Write};
use std::path::Path;

use crate::error::TableError;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::ValuePool;

/// CSV parsing options.
#[derive(Debug, Clone, Copy)]
pub struct CsvOptions {
    /// Field separator (default `,`).
    pub separator: u8,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions { separator: b',' }
    }
}

/// Parse raw CSV text into rows of fields.
pub fn parse_rows(input: &str, opts: CsvOptions) -> Result<Vec<Vec<String>>, TableError> {
    let bytes = input.as_bytes();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut in_quotes = false;
    let mut quote_start_line = 1usize;
    let mut row_started = false;

    while i < bytes.len() {
        let b = bytes[i];
        if in_quotes {
            match b {
                b'"' => {
                    if i + 1 < bytes.len() && bytes[i + 1] == b'"' {
                        field.push('"');
                        i += 2;
                    } else {
                        in_quotes = false;
                        i += 1;
                    }
                }
                b'\n' => {
                    field.push('\n');
                    line += 1;
                    i += 1;
                }
                _ => {
                    // Copy a full UTF-8 code point.
                    let ch_len = utf8_len(b);
                    field.push_str(&input[i..i + ch_len]);
                    i += ch_len;
                }
            }
            continue;
        }
        match b {
            b'"' if field.is_empty() => {
                in_quotes = true;
                quote_start_line = line;
                row_started = true;
                i += 1;
            }
            b'\r' => {
                i += 1; // handled by the following \n (or stripped bare)
            }
            b'\n' => {
                line += 1;
                i += 1;
                if row_started || !field.is_empty() || !row.is_empty() {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                    row_started = false;
                }
            }
            _ if b == opts.separator => {
                row.push(std::mem::take(&mut field));
                row_started = true;
                i += 1;
            }
            _ => {
                let ch_len = utf8_len(b);
                field.push_str(&input[i..i + ch_len]);
                row_started = true;
                i += ch_len;
            }
        }
    }
    if in_quotes {
        return Err(TableError::UnterminatedQuote {
            line: quote_start_line,
        });
    }
    if row_started || !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

#[inline]
fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Read a table from CSV text. The first row is the header.
pub fn read_str(input: &str, pool: &mut ValuePool, opts: CsvOptions) -> Result<Table, TableError> {
    let mut rows = parse_rows(input, opts)?;
    if rows.is_empty() {
        return Err(TableError::EmptyInput);
    }
    let header = rows.remove(0);
    let arity = header.len();
    let schema = Schema::new(header);
    let mut table = Table::with_capacity(schema, rows.len());
    for (idx, row) in rows.into_iter().enumerate() {
        if row.len() != arity {
            return Err(TableError::ArityMismatch {
                line: idx + 2,
                expected: arity,
                found: row.len(),
            });
        }
        let syms: Vec<_> = row.iter().map(|v| pool.intern(v)).collect();
        table.push(crate::record::Record::new(syms));
    }
    Ok(table)
}

/// Read a table from any reader.
pub fn read<R: Read>(
    reader: R,
    pool: &mut ValuePool,
    opts: CsvOptions,
) -> Result<Table, TableError> {
    let mut buf = String::new();
    BufReader::new(reader).read_to_string(&mut buf)?;
    read_str(&buf, pool, opts)
}

/// Read a table from a file path.
pub fn read_path(
    path: impl AsRef<Path>,
    pool: &mut ValuePool,
    opts: CsvOptions,
) -> Result<Table, TableError> {
    read(std::fs::File::open(path)?, pool, opts)
}

/// Write a table as CSV.
pub fn write<W: Write>(
    w: W,
    table: &Table,
    pool: &ValuePool,
    opts: CsvOptions,
) -> Result<(), TableError> {
    let mut w = std::io::BufWriter::new(w);
    let sep = [opts.separator];
    let names: Vec<&str> = table.schema().names().collect();
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            w.write_all(&sep)?;
        }
        write_escaped(&mut w, name, opts.separator)?;
    }
    w.write_all(b"\n")?;
    for record in table.records() {
        for (i, &sym) in record.values().iter().enumerate() {
            if i > 0 {
                w.write_all(&sep)?;
            }
            write_escaped(&mut w, pool.get(sym), opts.separator)?;
        }
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

fn write_escaped<W: Write>(w: &mut W, field: &str, sep: u8) -> std::io::Result<()> {
    let needs_quoting = field
        .bytes()
        .any(|b| b == sep || b == b'"' || b == b'\n' || b == b'\r');
    if !needs_quoting {
        return w.write_all(field.as_bytes());
    }
    w.write_all(b"\"")?;
    let mut rest = field;
    while let Some(pos) = rest.find('"') {
        w.write_all(&rest.as_bytes()[..pos])?;
        w.write_all(b"\"\"")?;
        rest = &rest[pos + 1..];
    }
    w.write_all(rest.as_bytes())?;
    w.write_all(b"\"")
}

/// Write a table to a file path.
pub fn write_path(
    path: impl AsRef<Path>,
    table: &Table,
    pool: &ValuePool,
    opts: CsvOptions,
) -> Result<(), TableError> {
    write(std::fs::File::create(path)?, table, pool, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordId;
    use crate::schema::AttrId;

    fn opts() -> CsvOptions {
        CsvOptions::default()
    }

    #[test]
    fn simple_parse() {
        let t = "a,b\n1,2\n3,4\n";
        let rows = parse_rows(t, opts()).unwrap();
        assert_eq!(rows, vec![vec!["a", "b"], vec!["1", "2"], vec!["3", "4"]]);
    }

    #[test]
    fn quoted_fields() {
        let t = "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n";
        let rows = parse_rows(t, opts()).unwrap();
        assert_eq!(rows[1], vec!["x,y", "he said \"hi\""]);
    }

    #[test]
    fn embedded_newline() {
        let t = "a\n\"line1\nline2\"\n";
        let rows = parse_rows(t, opts()).unwrap();
        assert_eq!(rows[1], vec!["line1\nline2"]);
    }

    #[test]
    fn crlf_endings() {
        let t = "a,b\r\n1,2\r\n";
        let rows = parse_rows(t, opts()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2"]);
    }

    #[test]
    fn missing_trailing_newline() {
        let rows = parse_rows("a\n1", opts()).unwrap();
        assert_eq!(rows, vec![vec!["a"], vec!["1"]]);
    }

    #[test]
    fn empty_fields() {
        let rows = parse_rows("a,b,c\n,,\n", opts()).unwrap();
        assert_eq!(rows[1], vec!["", "", ""]);
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(matches!(
            parse_rows("a\n\"oops\n", opts()),
            Err(TableError::UnterminatedQuote { .. })
        ));
    }

    #[test]
    fn arity_mismatch_is_error() {
        let mut pool = ValuePool::new();
        let err = read_str("a,b\n1\n", &mut pool, opts()).unwrap_err();
        assert!(matches!(err, TableError::ArityMismatch { line: 2, .. }));
    }

    #[test]
    fn read_into_table() {
        let mut pool = ValuePool::new();
        let t = read_str("Type,Org\nA,IBM\nC,SAP\n", &mut pool, opts()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.schema().name(AttrId(1)), "Org");
        assert_eq!(pool.get(t.value(RecordId(1), AttrId(0))), "C");
    }

    #[test]
    fn write_read_roundtrip() {
        let mut pool = ValuePool::new();
        let t = read_str(
            "a,b\nplain,\"quoted,comma\"\n\"multi\nline\",\"q\"\"uote\"\n",
            &mut pool,
            opts(),
        )
        .unwrap();
        let mut out = Vec::new();
        write(&mut out, &t, &pool, opts()).unwrap();
        let text = String::from_utf8(out).unwrap();
        let mut pool2 = ValuePool::new();
        let t2 = read_str(&text, &mut pool2, opts()).unwrap();
        assert_eq!(t2.len(), t.len());
        for (id, r) in t.iter() {
            let r2 = t2.record(id);
            for (i, &sym) in r.values().iter().enumerate() {
                assert_eq!(pool.get(sym), pool2.get(r2.get(i)));
            }
        }
    }

    #[test]
    fn custom_separator() {
        let mut pool = ValuePool::new();
        let t = read_str("a;b\n1;2\n", &mut pool, CsvOptions { separator: b';' }).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.schema().arity(), 2);
    }

    #[test]
    fn utf8_content() {
        let mut pool = ValuePool::new();
        let t = read_str("städte\nmünchen\n東京\n", &mut pool, opts()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(pool.get(t.value(RecordId(1), AttrId(0))), "東京");
    }
}
