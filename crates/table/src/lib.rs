//! Table substrate for the Affidavit reproduction.
//!
//! This crate provides the storage layer the paper's algorithm operates on:
//!
//! * [`ValuePool`] — a string interner. Every attribute value in a problem
//!   instance is interned exactly once and addressed by a compact [`Sym`]
//!   (`u32`). All hot-path comparisons and hash lookups in the blocking and
//!   search layers are therefore integer operations.
//! * [`Decimal`] / [`Rational`] — exact numeric types used by the numeric
//!   meta functions (addition, division). Floating point is never used for
//!   value transformation: `65 / 1000` must yield the *string* `0.065`, not
//!   `0.06500000000000001`.
//! * [`Schema`], [`Record`], [`Table`] — relational snapshot representation.
//!   Tables are column-major: one contiguous `Vec<Sym>` per attribute
//!   ([`Table::column`]), with zero-copy row views ([`RecordRef`]) so the
//!   layers above never see the storage orientation.
//! * [`csv`] — a dependency-free RFC-4180 CSV reader/writer so real datasets
//!   can be loaded from disk.
//! * [`stats`] — per-attribute statistics (distinct counts, emptiness,
//!   numeric fraction) used by the evaluation protocol of §5.1.
//!
//! ```
//! use affidavit_table::{AttrId, RecordId, Schema, Table, ValuePool};
//!
//! let mut pool = ValuePool::new();
//! let t = Table::from_rows(
//!     Schema::new(["Val", "Org"]),
//!     &mut pool,
//!     vec![vec!["80000", "IBM"], vec!["65", "SAP"], vec!["21000", "IBM"]],
//! );
//! // Every distinct value is interned once; cells hold compact symbols.
//! assert_eq!(pool.get(t.value(RecordId(1), AttrId(1))), "SAP");
//! assert_eq!(t.value(RecordId(0), AttrId(1)), t.value(RecordId(2), AttrId(1)));
//! // Numeric interpretation is cached, exact, and never floating point.
//! let v = t.value(RecordId(1), AttrId(0));
//! assert_eq!(pool.decimal(v).unwrap().to_string(), "65");
//! ```

#![warn(missing_docs)]

pub mod csv;
pub mod decimal;
pub mod error;
pub mod fx;
pub mod rational;
pub mod record;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use decimal::Decimal;
pub use error::TableError;
pub use fx::{FxHashMap, FxHashSet};
pub use rational::Rational;
pub use record::{Record, RecordId};
pub use schema::{AttrId, Attribute, Schema};
pub use table::{Column, ColumnsView, RecordRef, Table};
pub use value::{
    Interner, PoolReader, ScratchPool, StoreStats, StringStore, Sym, SymRemap, ValuePool,
};
