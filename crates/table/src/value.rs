//! Value interning.
//!
//! Every attribute value of a problem instance is interned once in a
//! [`ValuePool`] and referenced by a [`Sym`]. Blocking, histogram building
//! and function memoization then operate on `u32`s instead of strings, which
//! is what lets the search scale to the paper's 500 000-record instances.

use std::sync::Arc;

use crate::decimal::Decimal;
use crate::fx::FxHashMap;

/// An interned value symbol. `Sym`s are only meaningful relative to the
/// [`ValuePool`] that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string interner with cached numeric interpretation per symbol.
#[derive(Debug, Default, Clone)]
pub struct ValuePool {
    map: FxHashMap<Arc<str>, Sym>,
    strings: Vec<Arc<str>>,
    numeric: Vec<Option<Decimal>>,
}

impl ValuePool {
    /// Create an empty pool.
    pub fn new() -> ValuePool {
        ValuePool::default()
    }

    /// Create a pool with pre-reserved capacity for `n` distinct values.
    pub fn with_capacity(n: usize) -> ValuePool {
        ValuePool {
            map: FxHashMap::with_capacity_and_hasher(n, Default::default()),
            strings: Vec::with_capacity(n),
            numeric: Vec::with_capacity(n),
        }
    }

    /// Intern `s`, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let arc: Arc<str> = Arc::from(s);
        let sym = Sym(self.strings.len() as u32);
        self.strings.push(arc.clone());
        self.numeric.push(Decimal::parse(s));
        self.map.insert(arc, sym);
        sym
    }

    /// Look up a symbol without interning. Returns `None` for unseen values.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// The string a symbol denotes.
    #[inline]
    pub fn get(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// The cached exact-decimal interpretation of a symbol, if the value is
    /// numeric.
    #[inline]
    pub fn decimal(&self, sym: Sym) -> Option<Decimal> {
        self.numeric[sym.index()]
    }

    /// True if the symbol denotes the empty string.
    pub fn is_empty_value(&self, sym: Sym) -> bool {
        self.get(sym).is_empty()
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate over all `(Sym, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Sym(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut pool = ValuePool::new();
        let a = pool.intern("USD");
        let b = pool.intern("USD");
        let c = pool.intern("k $");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.get(a), "USD");
        assert_eq!(pool.get(c), "k $");
    }

    #[test]
    fn numeric_cache() {
        let mut pool = ValuePool::new();
        let n = pool.intern("42.5");
        let s = pool.intern("IBM");
        assert_eq!(pool.decimal(n).unwrap().to_string(), "42.5");
        assert!(pool.decimal(s).is_none());
    }

    #[test]
    fn lookup_without_interning() {
        let mut pool = ValuePool::new();
        pool.intern("x");
        assert!(pool.lookup("x").is_some());
        assert!(pool.lookup("y").is_none());
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn empty_value() {
        let mut pool = ValuePool::new();
        let e = pool.intern("");
        let a = pool.intern("a");
        assert!(pool.is_empty_value(e));
        assert!(!pool.is_empty_value(a));
    }

    #[test]
    fn iter_order_is_interning_order() {
        let mut pool = ValuePool::new();
        pool.intern("b");
        pool.intern("a");
        let got: Vec<&str> = pool.iter().map(|(_, s)| s).collect();
        assert_eq!(got, vec!["b", "a"]);
    }
}
