//! Value interning.
//!
//! Every attribute value of a problem instance is interned once in a
//! [`ValuePool`] and referenced by a [`Sym`]. Blocking, histogram building
//! and function memoization then operate on `u32`s instead of strings, which
//! is what lets the search scale to the paper's 500 000-record instances.

use std::hash::Hasher;
use std::sync::Arc;

use crate::decimal::Decimal;
use crate::fx::{FxHashMap, FxHasher};

/// An interned value symbol. `Sym`s are only meaningful relative to the
/// [`ValuePool`] that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Pluggable storage backend for a [`ValuePool`]'s string bytes.
///
/// The default pool keeps every interned string in RAM (`Arc<str>`); a
/// backend routes the bytes elsewhere — e.g. the `affidavit-store` crate's
/// `SegmentStore`, which appends them to segments spilled to disk under a
/// memory budget. Symbol numbering, interning order and lookups are
/// backend-independent, so any computation over a backend-backed pool is
/// byte-identical to the same computation over a RAM pool.
pub trait StringStore: std::fmt::Debug + Send + Sync {
    /// Append a string, returning its index (equal to the previous
    /// [`StringStore::len`]).
    fn append(&mut self, s: &str) -> usize;

    /// The string at `index`. Implementations may fault data in from disk;
    /// faulted data must stay resident at least for the duration of the
    /// current shared borrow (eviction only happens behind `&mut` access).
    fn get(&self, index: usize) -> &str;

    /// Number of stored strings.
    fn len(&self) -> usize;

    /// True if nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clone into a new independent store with the same contents.
    fn clone_store(&self) -> Box<dyn StringStore>;

    /// Evict cached data until [`StringStore::resident_bytes`] fits the
    /// store's RAM budget, if it has one. Stores evict on their own at
    /// mutation points (appends), but a *read-only* workload over a
    /// sealed store only ever faults data in — callers holding `&mut`
    /// access between read bursts invoke this to bound residency. The
    /// `&mut` receiver is what makes eviction sound: [`StringStore::get`]
    /// hands out `&str` borrows into cached data, so no such borrow can
    /// be live here. No-op by default (pure-RAM stores have no budget).
    fn enforce_budget(&mut self) {}

    /// String bytes currently resident in RAM.
    fn resident_bytes(&self) -> usize;

    /// String bytes written to disk so far (0 for pure-RAM stores).
    fn spilled_bytes(&self) -> u64;
}

/// Diagnostics for a pool running over a custom [`StringStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// String bytes currently resident in RAM.
    pub resident_bytes: usize,
    /// String bytes written to disk so far.
    pub spilled_bytes: u64,
}

/// The index + storage half of a backend-driven pool. The hash index maps
/// an Fx hash of the string to candidate symbols (collisions resolved by
/// comparing against `store.get`), so the only per-string RAM cost outside
/// the store itself is a few words — no second in-RAM copy of the corpus.
#[derive(Debug)]
struct StoreBackend {
    store: Box<dyn StringStore>,
    index: FxHashMap<u64, Vec<Sym>>,
}

fn fx_hash_str(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

/// A string interner with cached numeric interpretation per symbol.
#[derive(Debug, Default)]
pub struct ValuePool {
    map: FxHashMap<Arc<str>, Sym>,
    strings: Vec<Arc<str>>,
    numeric: Vec<Option<Decimal>>,
    backend: Option<StoreBackend>,
}

impl Clone for ValuePool {
    fn clone(&self) -> ValuePool {
        ValuePool {
            map: self.map.clone(),
            strings: self.strings.clone(),
            numeric: self.numeric.clone(),
            backend: self.backend.as_ref().map(|b| StoreBackend {
                store: b.store.clone_store(),
                index: b.index.clone(),
            }),
        }
    }
}

impl ValuePool {
    /// Create an empty pool.
    pub fn new() -> ValuePool {
        ValuePool::default()
    }

    /// Create a pool with pre-reserved capacity for `n` distinct values.
    pub fn with_capacity(n: usize) -> ValuePool {
        ValuePool {
            map: FxHashMap::with_capacity_and_hasher(n, Default::default()),
            strings: Vec::with_capacity(n),
            numeric: Vec::with_capacity(n),
            backend: None,
        }
    }

    /// Create an empty pool whose string bytes live in `store` instead of
    /// RAM `Arc<str>`s (see [`StringStore`]). The store must be empty.
    pub fn with_store(store: Box<dyn StringStore>) -> ValuePool {
        assert!(store.is_empty(), "backend store must start empty");
        ValuePool {
            map: FxHashMap::default(),
            strings: Vec::new(),
            numeric: Vec::new(),
            backend: Some(StoreBackend {
                store,
                index: FxHashMap::default(),
            }),
        }
    }

    /// Ask the backend [`StringStore`] to evict cached data down to its
    /// RAM budget (see [`StringStore::enforce_budget`]). No-op for
    /// RAM-backed pools. Read-heavy holders of a sealed pool — e.g. a
    /// resident service answering queries against a pinned snapshot —
    /// call this between read bursts, because reads alone only fault
    /// data in and would otherwise grow residency without bound.
    pub fn enforce_budget(&mut self) {
        if let Some(backend) = self.backend.as_mut() {
            backend.store.enforce_budget();
        }
    }

    /// Diagnostics of the custom [`StringStore`], if one is attached.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.backend.as_ref().map(|b| StoreStats {
            resident_bytes: b.store.resident_bytes(),
            spilled_bytes: b.store.spilled_bytes(),
        })
    }

    /// Intern `s`, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(backend) = self.backend.as_mut() {
            let hash = fx_hash_str(s);
            if let Some(candidates) = backend.index.get(&hash) {
                for &sym in candidates {
                    if backend.store.get(sym.index()) == s {
                        return sym;
                    }
                }
            }
            let sym = Sym(backend.store.append(s) as u32);
            self.numeric.push(Decimal::parse(s));
            backend.index.entry(hash).or_default().push(sym);
            return sym;
        }
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let arc: Arc<str> = Arc::from(s);
        let sym = Sym(self.strings.len() as u32);
        self.strings.push(arc.clone());
        self.numeric.push(Decimal::parse(s));
        self.map.insert(arc, sym);
        sym
    }

    /// Look up a symbol without interning. Returns `None` for unseen values.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        if let Some(backend) = self.backend.as_ref() {
            let candidates = backend.index.get(&fx_hash_str(s))?;
            return candidates
                .iter()
                .copied()
                .find(|&sym| backend.store.get(sym.index()) == s);
        }
        self.map.get(s).copied()
    }

    /// The string a symbol denotes.
    #[inline]
    pub fn get(&self, sym: Sym) -> &str {
        match self.backend.as_ref() {
            Some(backend) => backend.store.get(sym.index()),
            None => &self.strings[sym.index()],
        }
    }

    /// The cached exact-decimal interpretation of a symbol, if the value is
    /// numeric.
    #[inline]
    pub fn decimal(&self, sym: Sym) -> Option<Decimal> {
        self.numeric[sym.index()]
    }

    /// True if the symbol denotes the empty string.
    pub fn is_empty_value(&self, sym: Sym) -> bool {
        self.get(sym).is_empty()
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.numeric.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.numeric.is_empty()
    }

    /// Iterate over all `(Sym, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        (0..self.len()).map(move |i| {
            let sym = Sym(i as u32);
            (sym, self.get(sym))
        })
    }

    /// A cheap read-only view of the pool. Workers hold readers (or
    /// [`ScratchPool`] overlays built on them) while the owning pool stays
    /// immutable — the freeze step of the parallel search engine.
    pub fn reader(&self) -> PoolReader<'_> {
        PoolReader { pool: self }
    }

    /// Merge the new strings of a drained [`ScratchPool`] into this pool
    /// (in order), returning the mapping from that worker's scratch
    /// symbols to real symbols. `scratch_base_len` is the pool length the
    /// scratch was frozen at ([`ScratchPool::base_len`]) — when several
    /// workers are absorbed in sequence the pool may already have grown
    /// past it. Interning is idempotent, so strings discovered by several
    /// workers collapse onto one symbol.
    pub fn absorb(&mut self, scratch_base_len: usize, new_strings: &[Arc<str>]) -> SymRemap {
        self.absorb_strs(scratch_base_len, new_strings.iter().map(|s| s.as_ref()))
    }

    /// [`ValuePool::absorb`] over borrowed strings. This is the merge used
    /// across *process* boundaries: a remote worker ships back the strings
    /// it interned past the serialized pool prefix (its pool behaves like a
    /// [`ScratchPool`] overlay frozen at `scratch_base_len`), and the
    /// coordinator absorbs them in the worker's interning order so symbols
    /// in the worker's results can be rewritten through the returned
    /// [`SymRemap`].
    pub fn absorb_strs<'s>(
        &mut self,
        scratch_base_len: usize,
        new_strings: impl IntoIterator<Item = &'s str>,
    ) -> SymRemap {
        let mapping = new_strings.into_iter().map(|s| self.intern(s)).collect();
        SymRemap {
            base_len: scratch_base_len,
            mapping,
        }
    }
}

/// Read/intern interface shared by [`ValuePool`] (the owning, append-only
/// interner) and [`ScratchPool`] (a per-worker overlay). Generic code in
/// the function-application and blocking layers takes `&mut impl Interner`,
/// so the search hot path can run over worker-local scratch without any
/// access to the shared pool's mutable state.
pub trait Interner {
    /// The string a symbol denotes.
    fn get(&self, sym: Sym) -> &str;

    /// Cached exact-decimal interpretation, if numeric.
    fn decimal(&self, sym: Sym) -> Option<Decimal>;

    /// Intern `s`, returning its symbol. Idempotent.
    fn intern(&mut self, s: &str) -> Sym;

    /// Look up a symbol without interning.
    fn lookup(&self, s: &str) -> Option<Sym>;

    /// True if the symbol denotes the empty string.
    fn is_empty_value(&self, sym: Sym) -> bool {
        self.get(sym).is_empty()
    }
}

impl Interner for ValuePool {
    #[inline]
    fn get(&self, sym: Sym) -> &str {
        ValuePool::get(self, sym)
    }

    #[inline]
    fn decimal(&self, sym: Sym) -> Option<Decimal> {
        ValuePool::decimal(self, sym)
    }

    #[inline]
    fn intern(&mut self, s: &str) -> Sym {
        ValuePool::intern(self, s)
    }

    #[inline]
    fn lookup(&self, s: &str) -> Option<Sym> {
        ValuePool::lookup(self, s)
    }
}

/// A read-only snapshot view of a [`ValuePool`].
///
/// Existing symbols resolve exactly as on the pool itself; there is no
/// interning. `PoolReader` is `Copy` and `Sync`, so any number of worker
/// threads can read the frozen pool concurrently.
#[derive(Debug, Clone, Copy)]
pub struct PoolReader<'a> {
    pool: &'a ValuePool,
}

impl<'a> PoolReader<'a> {
    /// The string a symbol denotes.
    #[inline]
    pub fn get(&self, sym: Sym) -> &'a str {
        self.pool.get(sym)
    }

    /// Cached exact-decimal interpretation, if numeric.
    #[inline]
    pub fn decimal(&self, sym: Sym) -> Option<Decimal> {
        self.pool.decimal(sym)
    }

    /// Look up a symbol without interning.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.pool.lookup(s)
    }

    /// Number of distinct values in the underlying pool.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True if the underlying pool is empty.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }
}

/// A per-worker interning overlay over a frozen [`ValuePool`].
///
/// Reads of existing symbols hit the shared base pool; newly interned
/// strings (function outputs, induced masks/prefixes) get *scratch
/// symbols* numbered past the base pool's length, visible only to this
/// worker. After a parallel phase, the driver merges each worker's new
/// strings back with [`ValuePool::absorb`] and rewrites escaping symbols
/// through the returned [`SymRemap`] — in a fixed order, so the shared
/// pool's contents are identical at every thread count.
#[derive(Debug)]
pub struct ScratchPool<'a> {
    base: PoolReader<'a>,
    base_len: usize,
    map: FxHashMap<Arc<str>, Sym>,
    strings: Vec<Arc<str>>,
    numeric: Vec<Option<Decimal>>,
}

impl<'a> ScratchPool<'a> {
    /// An empty overlay over `base`.
    pub fn new(base: PoolReader<'a>) -> ScratchPool<'a> {
        ScratchPool {
            base,
            base_len: base.len(),
            map: FxHashMap::default(),
            strings: Vec::new(),
            numeric: Vec::new(),
        }
    }

    /// Number of strings interned into the overlay (not the base).
    pub fn new_count(&self) -> usize {
        self.strings.len()
    }

    /// The pool length this overlay was frozen at — scratch symbols are
    /// numbered from here.
    pub fn base_len(&self) -> usize {
        self.base_len
    }

    /// Drain the overlay's new strings (in interning order) for
    /// [`ValuePool::absorb`], leaving the overlay empty.
    pub fn take_new_strings(&mut self) -> Vec<Arc<str>> {
        self.map.clear();
        self.numeric.clear();
        std::mem::take(&mut self.strings)
    }
}

impl Interner for ScratchPool<'_> {
    #[inline]
    fn get(&self, sym: Sym) -> &str {
        let i = sym.index();
        if i < self.base_len {
            self.base.get(sym)
        } else {
            &self.strings[i - self.base_len]
        }
    }

    #[inline]
    fn decimal(&self, sym: Sym) -> Option<Decimal> {
        let i = sym.index();
        if i < self.base_len {
            self.base.decimal(sym)
        } else {
            self.numeric[i - self.base_len]
        }
    }

    fn intern(&mut self, s: &str) -> Sym {
        if let Some(sym) = self.base.lookup(s) {
            return sym;
        }
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let arc: Arc<str> = Arc::from(s);
        let sym = Sym((self.base_len + self.strings.len()) as u32);
        self.strings.push(arc.clone());
        self.numeric.push(Decimal::parse(s));
        self.map.insert(arc, sym);
        sym
    }

    fn lookup(&self, s: &str) -> Option<Sym> {
        self.base.lookup(s).or_else(|| self.map.get(s).copied())
    }
}

/// Mapping from one worker's scratch symbols to the shared pool's symbols,
/// produced by [`ValuePool::absorb`]. Base symbols pass through unchanged.
#[derive(Debug, Clone)]
pub struct SymRemap {
    base_len: usize,
    mapping: Vec<Sym>,
}

impl SymRemap {
    /// Rewrite one symbol.
    #[inline]
    pub fn remap(&self, sym: Sym) -> Sym {
        let i = sym.index();
        if i < self.base_len {
            sym
        } else {
            self.mapping[i - self.base_len]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut pool = ValuePool::new();
        let a = pool.intern("USD");
        let b = pool.intern("USD");
        let c = pool.intern("k $");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.get(a), "USD");
        assert_eq!(pool.get(c), "k $");
    }

    #[test]
    fn numeric_cache() {
        let mut pool = ValuePool::new();
        let n = pool.intern("42.5");
        let s = pool.intern("IBM");
        assert_eq!(pool.decimal(n).unwrap().to_string(), "42.5");
        assert!(pool.decimal(s).is_none());
    }

    #[test]
    fn lookup_without_interning() {
        let mut pool = ValuePool::new();
        pool.intern("x");
        assert!(pool.lookup("x").is_some());
        assert!(pool.lookup("y").is_none());
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn empty_value() {
        let mut pool = ValuePool::new();
        let e = pool.intern("");
        let a = pool.intern("a");
        assert!(pool.is_empty_value(e));
        assert!(!pool.is_empty_value(a));
    }

    #[test]
    fn iter_order_is_interning_order() {
        let mut pool = ValuePool::new();
        pool.intern("b");
        pool.intern("a");
        let got: Vec<&str> = pool.iter().map(|(_, s)| s).collect();
        assert_eq!(got, vec!["b", "a"]);
    }

    #[test]
    fn scratch_overlays_and_absorbs() {
        let mut pool = ValuePool::new();
        let usd = pool.intern("USD");
        let mut scratch = ScratchPool::new(pool.reader());
        // Base strings resolve without new interning.
        assert_eq!(scratch.intern("USD"), usd);
        assert_eq!(scratch.new_count(), 0);
        // New strings get scratch symbols past the base length.
        let novel = scratch.intern("k $");
        assert_eq!(novel.index(), pool.len());
        assert_eq!(scratch.intern("k $"), novel);
        assert_eq!(Interner::get(&scratch, novel), "k $");
        assert_eq!(Interner::get(&scratch, usd), "USD");
        let base_len = scratch.base_len();
        let news = scratch.take_new_strings();
        let remap = pool.absorb(base_len, &news);
        let real = remap.remap(novel);
        assert_eq!(pool.get(real), "k $");
        assert_eq!(remap.remap(usd), usd);
    }

    #[test]
    fn absorb_collapses_duplicate_workers() {
        let mut pool = ValuePool::new();
        pool.intern("x");
        // Two workers independently discover the same string.
        let (len_a, news_a, sym_a) = {
            let mut s = ScratchPool::new(pool.reader());
            let sym = s.intern("shared");
            (s.base_len(), s.take_new_strings(), sym)
        };
        let (len_b, news_b, sym_b) = {
            let mut s = ScratchPool::new(pool.reader());
            let sym = s.intern("shared");
            (s.base_len(), s.take_new_strings(), sym)
        };
        let ra = pool.absorb(len_a, &news_a);
        let rb = pool.absorb(len_b, &news_b);
        assert_eq!(ra.remap(sym_a), rb.remap(sym_b));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn absorb_strs_merges_a_remote_pool_suffix() {
        // A "remote" pool built from the same prefix diverges only past
        // base_len; absorbing its suffix strings remaps its symbols.
        let mut local = ValuePool::new();
        local.intern("shared");
        let base_len = local.len();
        let mut remote = local.clone();
        let novel = remote.intern("remote-only");
        assert_eq!(novel.index(), base_len);
        local.intern("local-only"); // local grew differently in the meantime
        let suffix: Vec<String> = (base_len..remote.len())
            .map(|i| remote.get(Sym(i as u32)).to_owned())
            .collect();
        let remap = local.absorb_strs(base_len, suffix.iter().map(String::as_str));
        assert_eq!(local.get(remap.remap(novel)), "remote-only");
        assert_eq!(remap.remap(Sym(0)), Sym(0));
    }

    #[test]
    fn scratch_numeric_cache() {
        let pool = ValuePool::new();
        let mut scratch = ScratchPool::new(pool.reader());
        let n = scratch.intern("1.5");
        assert_eq!(Interner::decimal(&scratch, n).unwrap().to_string(), "1.5");
        let s = scratch.intern("IBM");
        assert!(Interner::decimal(&scratch, s).is_none());
    }
}
