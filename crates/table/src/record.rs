//! Records: value tuples under a schema.

use crate::value::Sym;

/// Index of a record within its table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId(pub u32);

impl RecordId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A record is a fixed-arity tuple of interned values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    values: Box<[Sym]>,
}

impl Record {
    /// Build a record from interned values.
    pub fn new(values: impl Into<Box<[Sym]>>) -> Record {
        Record {
            values: values.into(),
        }
    }

    /// The value of attribute `i` (projection `Π_{a_i}`).
    #[inline]
    pub fn get(&self, i: usize) -> Sym {
        self.values[i]
    }

    /// All values in schema order.
    #[inline]
    pub fn values(&self) -> &[Sym] {
        &self.values
    }

    /// Arity of the tuple.
    pub fn arity(&self) -> usize {
        self.values.len()
    }
}

impl From<Vec<Sym>> for Record {
    fn from(v: Vec<Sym>) -> Record {
        Record::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access() {
        let r = Record::new(vec![Sym(3), Sym(1), Sym(4)]);
        assert_eq!(r.arity(), 3);
        assert_eq!(r.get(1), Sym(1));
        assert_eq!(r.values(), &[Sym(3), Sym(1), Sym(4)]);
    }

    #[test]
    fn equality_is_structural() {
        let a = Record::new(vec![Sym(1), Sym(2)]);
        let b = Record::new(vec![Sym(1), Sym(2)]);
        let c = Record::new(vec![Sym(2), Sym(1)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
