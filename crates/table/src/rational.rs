//! Exact rationals — parameters of the division/multiplication meta
//! functions.
//!
//! A division function induced from the example `('65', '0.065')` has the
//! parameter `y = 65 / 0.065 = 1000`, but an example like `('1', '3')`
//! induces `y = 1/3`, which no decimal can hold. Parameters are therefore
//! stored as reduced rationals; *applying* the function succeeds only when
//! the result terminates (see [`Rational::to_decimal`]).

use crate::decimal::{pow10, Decimal, MAX_SCALE};

/// A reduced rational number `num / den` with `den > 0`.
// NOTE: the derived ordering is *structural* (mantissa/scale resp.
// num/den), used only for canonical, deterministic sorting of function
// candidates — numeric comparison goes through `cmp_value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

impl Rational {
    /// Build a reduced rational. Returns `None` if `den == 0`.
    pub fn new(num: i128, den: i128) -> Option<Rational> {
        if den == 0 {
            return None;
        }
        if num == 0 {
            return Some(Rational { num: 0, den: 1 });
        }
        let g = gcd(num, den);
        let (mut n, mut d) = (num / g, den / g);
        if d < 0 {
            n = -n;
            d = -d;
        }
        Some(Rational { num: n, den: d })
    }

    /// The rational `1`.
    pub fn one() -> Rational {
        Rational { num: 1, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn den(&self) -> i128 {
        self.den
    }

    /// The ratio of two decimals `a / b`, or `None` if `b == 0`.
    pub fn from_decimals(a: Decimal, b: Decimal) -> Option<Rational> {
        if b.is_zero() {
            return None;
        }
        // a / b = (ma · 10^sb) / (mb · 10^sa)
        let r = Rational::new(a.mantissa(), b.mantissa())?;
        r.scaled_pow10(b.scale() as i32 - a.scale() as i32)
    }

    /// Multiply by `10^exp` (exp may be negative).
    pub fn scaled_pow10(self, exp: i32) -> Option<Rational> {
        if exp == 0 {
            return Some(self);
        }
        let f = pow10(exp.unsigned_abs())?;
        if exp > 0 {
            Rational::new(self.num.checked_mul(f)?, self.den)
        } else {
            Rational::new(self.num, self.den.checked_mul(f)?)
        }
    }

    /// Multiply a decimal by this rational exactly; `None` if the product
    /// does not terminate within [`MAX_SCALE`] fractional digits.
    pub fn mul_decimal(self, d: Decimal) -> Option<Decimal> {
        let r = Rational::new(d.mantissa().checked_mul(self.num)?, self.den)?;
        r.scaled_pow10(-(d.scale() as i32))?.to_decimal()
    }

    /// Divide a decimal by this rational exactly (`d · den / num`).
    pub fn div_decimal(self, d: Decimal) -> Option<Decimal> {
        if self.num == 0 {
            return None;
        }
        self.invert()?.mul_decimal(d)
    }

    /// The reciprocal, or `None` for zero.
    pub fn invert(self) -> Option<Rational> {
        Rational::new(self.den, self.num)
    }

    /// Convert to an exact decimal. Succeeds iff, after reduction, the
    /// denominator is of the form `2^a · 5^b` with the required scale within
    /// [`MAX_SCALE`].
    pub fn to_decimal(self) -> Option<Decimal> {
        let mut den = self.den;
        let mut twos = 0u32;
        let mut fives = 0u32;
        while den % 2 == 0 {
            den /= 2;
            twos += 1;
        }
        while den % 5 == 0 {
            den /= 5;
            fives += 1;
        }
        if den != 1 {
            return None; // non-terminating
        }
        let scale = twos.max(fives);
        if scale > MAX_SCALE {
            return None;
        }
        // mantissa = num · 2^(scale−twos) · 5^(scale−fives)
        let mut mant = self.num;
        for _ in 0..(scale - twos) {
            mant = mant.checked_mul(2)?;
        }
        for _ in 0..(scale - fives) {
            mant = mant.checked_mul(5)?;
        }
        Some(Decimal::new(mant, scale))
    }

    /// True if this rational equals one (the identity multiplier).
    pub fn is_one(&self) -> bool {
        self.num == 1 && self.den == 1
    }

    /// True if this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }
}

impl std::fmt::Display for Rational {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Prefer the decimal rendering when exact (matches the paper's
        // `x ↦ x / 1000` notation); fall back to `num/den`.
        match self.to_decimal() {
            Some(d) => write!(f, "{d}"),
            None => write!(f, "{}/{}", self.num, self.den),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Decimal {
        Decimal::parse(s).unwrap()
    }

    #[test]
    fn reduction() {
        let r = Rational::new(6, -4).unwrap();
        assert_eq!((r.num(), r.den()), (-3, 2));
        assert_eq!(Rational::new(0, 7).unwrap(), Rational::new(0, 1).unwrap());
        assert!(Rational::new(1, 0).is_none());
    }

    #[test]
    fn from_decimals_paper_example() {
        // y = 65 / 0.065 = 1000
        let y = Rational::from_decimals(d("65"), d("0.065")).unwrap();
        assert_eq!((y.num(), y.den()), (1000, 1));
        assert_eq!(y.to_string(), "1000");
    }

    #[test]
    fn div_decimal_applies_paper_function() {
        // f_Val = x ↦ x / 1000 as a rational parameter.
        let y = Rational::new(1000, 1).unwrap();
        assert_eq!(y.div_decimal(d("180000")).unwrap().to_string(), "180");
        assert_eq!(y.div_decimal(d("65")).unwrap().to_string(), "0.065");
    }

    #[test]
    fn mul_decimal_terminating_checks() {
        let third = Rational::new(1, 3).unwrap();
        assert!(third.mul_decimal(d("1")).is_none());
        assert_eq!(third.mul_decimal(d("6")).unwrap().to_string(), "2");
        let r = Rational::new(3, 8).unwrap();
        assert_eq!(r.mul_decimal(d("2")).unwrap().to_string(), "0.75");
    }

    #[test]
    fn display_fallback() {
        assert_eq!(Rational::new(1, 3).unwrap().to_string(), "1/3");
        assert_eq!(Rational::new(1, 4).unwrap().to_string(), "0.25");
    }

    #[test]
    fn to_decimal_scale_cap() {
        // 1 / 2^40 terminates mathematically but exceeds MAX_SCALE.
        let r = Rational::new(1, 1i128 << 40).unwrap();
        assert!(r.to_decimal().is_none());
    }
}
