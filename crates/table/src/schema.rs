//! Schema representation: an ordered tuple of named attributes (Def. 3.1's
//! `A`).

use serde::{Deserialize, Serialize};

/// Index of an attribute within a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute (column) name.
    pub name: String,
}

/// An ordered attribute tuple.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Build a schema from attribute names.
    pub fn new<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Schema {
        Schema {
            attributes: names
                .into_iter()
                .map(|n| Attribute { name: n.into() })
                .collect(),
        }
    }

    /// Number of attributes `d = |A|`.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// All attribute ids in order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> {
        (0..self.attributes.len() as u32).map(AttrId)
    }

    /// The attribute at `id`.
    pub fn attribute(&self, id: AttrId) -> &Attribute {
        &self.attributes[id.index()]
    }

    /// Name of the attribute at `id`.
    pub fn name(&self, id: AttrId) -> &str {
        &self.attributes[id.index()].name
    }

    /// Find an attribute by name.
    pub fn find(&self, name: &str) -> Option<AttrId> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .map(|i| AttrId(i as u32))
    }

    /// All attribute names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.attributes.iter().map(|a| a.name.as_str())
    }

    /// Append an attribute, returning its id. Used by the instance generator
    /// to add the artificial primary-key column (§5.1).
    pub fn push(&mut self, name: impl Into<String>) -> AttrId {
        let id = AttrId(self.attributes.len() as u32);
        self.attributes.push(Attribute { name: name.into() });
        id
    }

    /// A new schema keeping only the attributes in `keep` (in order).
    pub fn project(&self, keep: &[AttrId]) -> Schema {
        Schema {
            attributes: keep
                .iter()
                .map(|id| self.attributes[id.index()].clone())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let s = Schema::new(["ID1", "ID2", "Date"]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.name(AttrId(2)), "Date");
        assert_eq!(s.find("ID2"), Some(AttrId(1)));
        assert_eq!(s.find("Nope"), None);
    }

    #[test]
    fn push_appends() {
        let mut s = Schema::new(["a"]);
        let id = s.push("pk");
        assert_eq!(id, AttrId(1));
        assert_eq!(s.arity(), 2);
        assert_eq!(s.name(id), "pk");
    }

    #[test]
    fn project_keeps_order() {
        let s = Schema::new(["a", "b", "c"]);
        let p = s.project(&[AttrId(2), AttrId(0)]);
        let names: Vec<&str> = p.names().collect();
        assert_eq!(names, vec!["c", "a"]);
    }
}
