//! Table snapshots: a schema plus a bag of records, stored column-major.
//!
//! Tables are *multisets* — snapshots may legitimately contain duplicate
//! rows, and the explanation semantics (Prop. 3.6) are defined over
//! multiset matching (see DESIGN.md §5.4).
//!
//! # Layout
//!
//! The table core is columnar: one contiguous `Vec<Sym>` per attribute,
//! wrapped in a shared [`Column`] handle. The hot loops of the search
//! (function application over the β-batch, blocking refinement,
//! per-attribute statistics) scan [`Table::column`] slices — linear loads
//! over fixed-width `u32`s — instead of pointer-chasing row allocations.
//! Rows are *views*: [`RecordRef`] projects one row out of the columns
//! without materializing it, and [`Table::record`] materializes an owned
//! [`Record`] for the callers that need one. Builders ([`Table::from_rows`],
//! [`Table::push`], CSV/wire decode) transpose at the edge, so everything
//! above the table layer — explanation semantics, reports, the wire
//! format — is untouched by the storage orientation.
//!
//! Columns are reference-counted, so [`Table::project`], [`Table::clone`]
//! and column-preserving rebuilds are O(attrs) handle copies; mutation
//! goes through copy-on-write ([`Table::push`] et al.).

use std::sync::Arc;

use crate::record::{Record, RecordId};
use crate::schema::{AttrId, Schema};
use crate::value::{Sym, ValuePool};

/// A shared handle to one attribute's contiguous value column.
///
/// Dereferences to `&[Sym]`. Cloning a `Column` is O(1) (reference count);
/// the underlying buffer is copy-on-write under table mutation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Column(Arc<Vec<Sym>>);

impl Column {
    fn with_capacity(n: usize) -> Column {
        Column(Arc::new(Vec::with_capacity(n)))
    }

    /// The column as a contiguous slice, one `Sym` per record.
    #[inline]
    pub fn as_slice(&self) -> &[Sym] {
        &self.0
    }

    /// Append access for builders; copy-on-write when the buffer is shared.
    #[inline]
    fn make_mut(&mut self) -> &mut Vec<Sym> {
        Arc::make_mut(&mut self.0)
    }
}

impl std::ops::Deref for Column {
    type Target = [Sym];
    #[inline]
    fn deref(&self) -> &[Sym] {
        self.as_slice()
    }
}

impl From<Vec<Sym>> for Column {
    fn from(v: Vec<Sym>) -> Column {
        Column(Arc::new(v))
    }
}

/// A zero-copy view of all columns of a table.
#[derive(Debug, Clone, Copy)]
pub struct ColumnsView<'a> {
    columns: &'a [Column],
    rows: usize,
}

impl<'a> ColumnsView<'a> {
    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Number of records.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The column of attribute `attr` as a contiguous slice.
    #[inline]
    pub fn get(&self, attr: AttrId) -> &'a [Sym] {
        &self.columns[attr.index()]
    }

    /// Iterate the column slices in schema order.
    pub fn iter(&self) -> impl Iterator<Item = &'a [Sym]> + use<'a> {
        self.columns.iter().map(|c| c.as_slice())
    }
}

/// A zero-copy view of one row of a columnar table.
///
/// `RecordRef` is the row-compatibility shim over the column store: it
/// offers the same projections as [`Record`] (`get`, `arity`, iteration)
/// without materializing the tuple. Use [`RecordRef::to_record`] /
/// [`RecordRef::to_vec`] at the edges that need an owned row.
#[derive(Debug, Clone, Copy)]
pub struct RecordRef<'a> {
    columns: &'a [Column],
    row: usize,
}

impl<'a> RecordRef<'a> {
    /// The value of attribute `i` (projection `Π_{a_i}`).
    #[inline]
    pub fn get(&self, i: usize) -> Sym {
        self.columns[i].as_slice()[self.row]
    }

    /// Arity of the tuple.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Iterate the row's values in schema order.
    pub fn iter(&self) -> impl Iterator<Item = Sym> + use<'a> {
        let row = self.row;
        self.columns.iter().map(move |c| c.as_slice()[row])
    }

    /// The row's values in schema order, materialized.
    pub fn to_vec(&self) -> Vec<Sym> {
        self.iter().collect()
    }

    /// Materialize an owned [`Record`].
    pub fn to_record(&self) -> Record {
        Record::new(self.to_vec())
    }
}

impl PartialEq for RecordRef<'_> {
    fn eq(&self, other: &RecordRef<'_>) -> bool {
        self.arity() == other.arity() && self.iter().eq(other.iter())
    }
}

impl Eq for RecordRef<'_> {}

impl PartialEq<Record> for RecordRef<'_> {
    fn eq(&self, other: &Record) -> bool {
        self.arity() == other.arity() && self.iter().eq(other.values().iter().copied())
    }
}

impl PartialEq<RecordRef<'_>> for Record {
    fn eq(&self, other: &RecordRef<'_>) -> bool {
        other == self
    }
}

/// A table snapshot with a column-major core.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// An empty table under `schema`.
    pub fn new(schema: Schema) -> Table {
        let columns = (0..schema.arity()).map(|_| Column::default()).collect();
        Table {
            schema,
            columns,
            rows: 0,
        }
    }

    /// An empty table with capacity for `n` records.
    pub fn with_capacity(schema: Schema, n: usize) -> Table {
        let columns = (0..schema.arity())
            .map(|_| Column::with_capacity(n))
            .collect();
        Table {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Build a table by interning rows of string values into `pool`.
    ///
    /// Values are interned in row-major order (left to right, top to
    /// bottom) — the first-appearance numbering every other builder
    /// produces — and transposed into columns at this edge.
    ///
    /// Panics if a row's arity does not match the schema (programmer error;
    /// the CSV reader reports arity errors as [`crate::TableError`] instead).
    pub fn from_rows<S: AsRef<str>>(
        schema: Schema,
        pool: &mut ValuePool,
        rows: impl IntoIterator<Item = Vec<S>>,
    ) -> Table {
        let mut t = Table::new(schema);
        let mut syms: Vec<Sym> = Vec::new();
        for row in rows {
            assert_eq!(
                row.len(),
                t.schema.arity(),
                "row arity must match schema arity"
            );
            syms.clear();
            syms.extend(row.iter().map(|v| pool.intern(v.as_ref())));
            t.push_row(&syms);
        }
        t
    }

    /// Build a table directly from per-attribute columns.
    ///
    /// Panics if the column count does not match the schema arity or the
    /// columns have unequal lengths (programmer error).
    pub fn from_columns(schema: Schema, columns: Vec<Vec<Sym>>) -> Table {
        assert_eq!(
            columns.len(),
            schema.arity(),
            "column count must match schema arity"
        );
        let rows = columns.first().map_or(0, Vec::len);
        assert!(
            columns.iter().all(|c| c.len() == rows),
            "columns must have equal lengths"
        );
        Table {
            schema,
            columns: columns.into_iter().map(Column::from).collect(),
            rows,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if the table has no records.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The column of attribute `attr` as a contiguous `Sym` slice.
    #[inline]
    pub fn column(&self, attr: AttrId) -> &[Sym] {
        &self.columns[attr.index()]
    }

    /// A zero-copy view of all columns.
    pub fn columns(&self) -> ColumnsView<'_> {
        ColumnsView {
            columns: &self.columns,
            rows: self.rows,
        }
    }

    /// A zero-copy view of the row at `id`.
    #[inline]
    pub fn row(&self, id: RecordId) -> RecordRef<'_> {
        debug_assert!(id.index() < self.rows);
        RecordRef {
            columns: &self.columns,
            row: id.index(),
        }
    }

    /// The record at `id`, materialized as an owned tuple.
    ///
    /// Prefer [`Table::row`] (zero-copy) or [`Table::column`] (whole
    /// attribute) on hot paths.
    #[inline]
    pub fn record(&self, id: RecordId) -> Record {
        self.row(id).to_record()
    }

    /// Iterate zero-copy row views in record order.
    pub fn rows(&self) -> impl Iterator<Item = RecordRef<'_>> {
        (0..self.rows).map(|row| RecordRef {
            columns: &self.columns,
            row,
        })
    }

    /// Iterate `(RecordId, RecordRef)`.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, RecordRef<'_>)> {
        (0..self.rows).map(|row| {
            (
                RecordId(row as u32),
                RecordRef {
                    columns: &self.columns,
                    row,
                },
            )
        })
    }

    /// All record ids.
    pub fn record_ids(&self) -> impl Iterator<Item = RecordId> {
        (0..self.rows as u32).map(RecordId)
    }

    /// Append a record.
    ///
    /// Panics on arity mismatch (programmer error).
    pub fn push(&mut self, record: Record) -> RecordId {
        self.push_row(record.values())
    }

    /// Append one row of already-interned values.
    ///
    /// Panics on arity mismatch (programmer error).
    pub fn push_row(&mut self, values: &[Sym]) -> RecordId {
        assert_eq!(values.len(), self.schema.arity());
        for (col, &v) in self.columns.iter_mut().zip(values) {
            col.make_mut().push(v);
        }
        let id = RecordId(self.rows as u32);
        self.rows += 1;
        id
    }

    /// Append `added` rows column-wise: `fill` is called once per attribute
    /// with the column buffer to extend. Every call must append exactly
    /// `added` values (checked).
    ///
    /// This is the bulk-append edge for streaming ingestion: a chunk is
    /// absorbed with one linear append per attribute instead of one
    /// record allocation per row.
    pub fn extend_columnwise(&mut self, added: usize, mut fill: impl FnMut(AttrId, &mut Vec<Sym>)) {
        for (i, col) in self.columns.iter_mut().enumerate() {
            let buf = col.make_mut();
            let before = buf.len();
            fill(AttrId(i as u32), buf);
            assert_eq!(
                buf.len(),
                before + added,
                "extend_columnwise fill must append exactly `added` values"
            );
        }
        self.rows += added;
    }

    /// The value of attribute `attr` in record `id`.
    #[inline]
    pub fn value(&self, id: RecordId, attr: AttrId) -> Sym {
        self.columns[attr.index()].as_slice()[id.index()]
    }

    /// A new table keeping only the attributes in `keep` (same record
    /// order). Used by the §5.1 protocol to drop over-distinct or empty
    /// columns.
    ///
    /// O(attrs): kept columns are shared by handle, not copied.
    pub fn project(&self, keep: &[AttrId]) -> Table {
        let schema = self.schema.project(keep);
        let columns = keep
            .iter()
            .map(|a| self.columns[a.index()].clone())
            .collect();
        Table {
            schema,
            columns,
            rows: self.rows,
        }
    }

    /// The same columns under a different (equal-arity) schema. O(attrs):
    /// column storage is shared with `self`.
    ///
    /// Panics if the arity differs (programmer error).
    pub fn renamed(&self, schema: Schema) -> Table {
        assert_eq!(schema.arity(), self.schema.arity());
        Table {
            schema,
            columns: self.columns.clone(),
            rows: self.rows,
        }
    }

    /// A new table containing the records at `ids` (in the given order).
    pub fn select(&self, ids: &[RecordId]) -> Table {
        let columns = self
            .columns
            .iter()
            .map(|col| {
                let src = col.as_slice();
                Column::from(ids.iter().map(|id| src[id.index()]).collect::<Vec<_>>())
            })
            .collect();
        Table {
            schema: self.schema.clone(),
            columns,
            rows: ids.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Table, ValuePool) {
        let mut pool = ValuePool::new();
        let t = Table::from_rows(
            Schema::new(["Type", "Org"]),
            &mut pool,
            vec![vec!["A", "IBM"], vec!["C", "SAP"], vec!["A", "IBM"]],
        );
        (t, pool)
    }

    #[test]
    fn build_and_access() {
        let (t, pool) = sample();
        assert_eq!(t.len(), 3);
        let v = t.value(RecordId(1), AttrId(1));
        assert_eq!(pool.get(v), "SAP");
    }

    #[test]
    fn duplicates_are_kept() {
        let (t, _) = sample();
        assert_eq!(t.record(RecordId(0)), t.record(RecordId(2)));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn columns_are_contiguous_per_attribute() {
        let (t, pool) = sample();
        let col: Vec<&str> = t.column(AttrId(0)).iter().map(|&s| pool.get(s)).collect();
        assert_eq!(col, ["A", "C", "A"]);
        let view = t.columns();
        assert_eq!(view.arity(), 2);
        assert_eq!(view.rows(), 3);
        assert_eq!(view.get(AttrId(0)), t.column(AttrId(0)));
        assert_eq!(view.iter().count(), 2);
    }

    #[test]
    fn row_views_match_materialized_records() {
        let (t, _) = sample();
        for (id, row) in t.iter() {
            assert_eq!(row, t.record(id));
            assert_eq!(row.to_vec().as_slice(), t.record(id).values());
            assert_eq!(row.arity(), 2);
        }
        assert_eq!(t.rows().count(), 3);
        assert_eq!(t.row(RecordId(0)), t.row(RecordId(2)));
        assert_ne!(t.row(RecordId(0)), t.row(RecordId(1)));
    }

    #[test]
    fn from_columns_matches_row_build() {
        let (t, _) = sample();
        let cols: Vec<Vec<Sym>> = t.columns().iter().map(<[Sym]>::to_vec).collect();
        let u = Table::from_columns(t.schema().clone(), cols);
        assert_eq!(t, u);
    }

    #[test]
    fn project_and_select() {
        let (t, pool) = sample();
        let p = t.project(&[AttrId(1)]);
        assert_eq!(p.schema().arity(), 1);
        assert_eq!(pool.get(p.value(RecordId(0), AttrId(0))), "IBM");
        // Projection shares column storage with the source table.
        assert_eq!(p.column(AttrId(0)).as_ptr(), t.column(AttrId(1)).as_ptr());
        let s = t.select(&[RecordId(2), RecordId(0)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.record(RecordId(0)), t.record(RecordId(2)));
    }

    #[test]
    fn push_after_project_copies_on_write() {
        let (t, _) = sample();
        let mut p = t.project(&[AttrId(0)]);
        p.push(Record::new(vec![Sym(7)]));
        assert_eq!(p.len(), 4);
        // The source table's shared column is untouched.
        assert_eq!(t.len(), 3);
        assert_eq!(t.column(AttrId(0)).len(), 3);
    }

    #[test]
    fn extend_columnwise_appends_per_attribute() {
        let (mut t, _) = sample();
        t.extend_columnwise(2, |attr, buf| {
            let base = 10 * (attr.index() as u32 + 1);
            buf.extend([Sym(base), Sym(base + 1)]);
        });
        assert_eq!(t.len(), 5);
        assert_eq!(t.value(RecordId(3), AttrId(0)), Sym(10));
        assert_eq!(t.value(RecordId(4), AttrId(1)), Sym(21));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new(Schema::new(["a", "b"]));
        t.push(Record::new(vec![Sym(0)]));
    }

    #[test]
    #[should_panic]
    fn from_columns_unequal_lengths_panic() {
        Table::from_columns(
            Schema::new(["a", "b"]),
            vec![vec![Sym(0)], vec![Sym(1), Sym(2)]],
        );
    }
}
