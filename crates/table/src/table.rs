//! Table snapshots: a schema plus a bag of records.
//!
//! Tables are *multisets* — snapshots may legitimately contain duplicate
//! rows, and the explanation semantics (Prop. 3.6) are defined over
//! multiset matching (see DESIGN.md §5.4).

use crate::record::{Record, RecordId};
use crate::schema::{AttrId, Schema};
use crate::value::{Sym, ValuePool};

/// A table snapshot.
#[derive(Debug, Clone, Default)]
pub struct Table {
    schema: Schema,
    records: Vec<Record>,
}

impl Table {
    /// An empty table under `schema`.
    pub fn new(schema: Schema) -> Table {
        Table {
            schema,
            records: Vec::new(),
        }
    }

    /// An empty table with capacity for `n` records.
    pub fn with_capacity(schema: Schema, n: usize) -> Table {
        Table {
            schema,
            records: Vec::with_capacity(n),
        }
    }

    /// Build a table by interning rows of string values into `pool`.
    ///
    /// Panics if a row's arity does not match the schema (programmer error;
    /// the CSV reader reports arity errors as [`crate::TableError`] instead).
    pub fn from_rows<S: AsRef<str>>(
        schema: Schema,
        pool: &mut ValuePool,
        rows: impl IntoIterator<Item = Vec<S>>,
    ) -> Table {
        let mut t = Table::new(schema);
        for row in rows {
            assert_eq!(
                row.len(),
                t.schema.arity(),
                "row arity must match schema arity"
            );
            let syms: Vec<Sym> = row.iter().map(|v| pool.intern(v.as_ref())).collect();
            t.records.push(Record::new(syms));
        }
        t
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the table has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record at `id`.
    #[inline]
    pub fn record(&self, id: RecordId) -> &Record {
        &self.records[id.index()]
    }

    /// All records in order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Iterate `(RecordId, &Record)`.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, &Record)> {
        self.records
            .iter()
            .enumerate()
            .map(|(i, r)| (RecordId(i as u32), r))
    }

    /// All record ids.
    pub fn record_ids(&self) -> impl Iterator<Item = RecordId> {
        (0..self.records.len() as u32).map(RecordId)
    }

    /// Append a record.
    ///
    /// Panics on arity mismatch (programmer error).
    pub fn push(&mut self, record: Record) -> RecordId {
        assert_eq!(record.arity(), self.schema.arity());
        let id = RecordId(self.records.len() as u32);
        self.records.push(record);
        id
    }

    /// The value of attribute `attr` in record `id`.
    #[inline]
    pub fn value(&self, id: RecordId, attr: AttrId) -> Sym {
        self.records[id.index()].get(attr.index())
    }

    /// A new table keeping only the attributes in `keep` (same record
    /// order). Used by the §5.1 protocol to drop over-distinct or empty
    /// columns.
    pub fn project(&self, keep: &[AttrId]) -> Table {
        let schema = self.schema.project(keep);
        let records = self
            .records
            .iter()
            .map(|r| Record::new(keep.iter().map(|a| r.get(a.index())).collect::<Vec<_>>()))
            .collect();
        Table { schema, records }
    }

    /// A new table containing the records at `ids` (in the given order).
    pub fn select(&self, ids: &[RecordId]) -> Table {
        Table {
            schema: self.schema.clone(),
            records: ids
                .iter()
                .map(|id| self.records[id.index()].clone())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Table, ValuePool) {
        let mut pool = ValuePool::new();
        let t = Table::from_rows(
            Schema::new(["Type", "Org"]),
            &mut pool,
            vec![vec!["A", "IBM"], vec!["C", "SAP"], vec!["A", "IBM"]],
        );
        (t, pool)
    }

    #[test]
    fn build_and_access() {
        let (t, pool) = sample();
        assert_eq!(t.len(), 3);
        let v = t.value(RecordId(1), AttrId(1));
        assert_eq!(pool.get(v), "SAP");
    }

    #[test]
    fn duplicates_are_kept() {
        let (t, _) = sample();
        assert_eq!(t.record(RecordId(0)), t.record(RecordId(2)));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn project_and_select() {
        let (t, pool) = sample();
        let p = t.project(&[AttrId(1)]);
        assert_eq!(p.schema().arity(), 1);
        assert_eq!(pool.get(p.value(RecordId(0), AttrId(0))), "IBM");
        let s = t.select(&[RecordId(2), RecordId(0)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.record(RecordId(0)), t.record(RecordId(2)));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new(Schema::new(["a", "b"]));
        t.push(Record::new(vec![Sym(0)]));
    }
}
