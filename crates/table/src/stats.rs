//! Per-attribute statistics used by the evaluation protocol (§5.1) and the
//! transformation sampler.
//!
//! The §5.1 protocol needs, per attribute: the fraction of distinct values
//! (attributes above 0.7 are removed), emptiness (fully empty attributes are
//! ignored), and whether the column is numeric (so sampled transformations
//! "fit the domain of the attribute", e.g. no uppercasing on numbers).

use crate::fx::FxHashSet;
use crate::schema::AttrId;
use crate::table::Table;
use crate::value::{Sym, ValuePool};

/// Statistics of one attribute over one table.
#[derive(Debug, Clone)]
pub struct AttrStats {
    /// Attribute id.
    pub attr: AttrId,
    /// Number of records observed.
    pub rows: usize,
    /// Number of distinct values.
    pub distinct: usize,
    /// Number of empty-string values.
    pub empty: usize,
    /// Number of values that parse as exact decimals.
    pub numeric: usize,
    /// Number of values containing at least one ASCII lowercase letter.
    pub has_lowercase: usize,
}

impl AttrStats {
    /// Fraction of distinct values (`0` for an empty table).
    pub fn distinct_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.distinct as f64 / self.rows as f64
        }
    }

    /// True if every value is the empty string.
    pub fn is_all_empty(&self) -> bool {
        self.rows > 0 && self.empty == self.rows
    }

    /// True if every non-empty value is numeric and at least one value is.
    pub fn is_numeric(&self) -> bool {
        self.numeric > 0 && self.numeric + self.empty == self.rows
    }

    /// Fraction of values that are numeric.
    pub fn numeric_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.numeric as f64 / self.rows as f64
        }
    }
}

/// Compute [`AttrStats`] for every attribute of `table`.
pub fn attribute_stats(table: &Table, pool: &ValuePool) -> Vec<AttrStats> {
    let arity = table.schema().arity();
    let mut distinct: Vec<FxHashSet<Sym>> = (0..arity)
        .map(|_| FxHashSet::with_capacity_and_hasher(64, Default::default()))
        .collect();
    let mut empty = vec![0usize; arity];
    let mut numeric = vec![0usize; arity];
    let mut has_lower = vec![0usize; arity];

    // Per-symbol property caching: a symbol's emptiness/numericness does not
    // depend on the row, so evaluate once per distinct symbol.
    for record in table.records() {
        for (i, &sym) in record.values().iter().enumerate() {
            if distinct[i].insert(sym) {
                // First time this symbol appears in this column: nothing to
                // do here, per-row counters below still need every row.
            }
            let s = pool.get(sym);
            if s.is_empty() {
                empty[i] += 1;
            }
            if pool.decimal(sym).is_some() {
                numeric[i] += 1;
            }
            if s.bytes().any(|b| b.is_ascii_lowercase()) {
                has_lower[i] += 1;
            }
        }
    }

    (0..arity)
        .map(|i| AttrStats {
            attr: AttrId(i as u32),
            rows: table.len(),
            distinct: distinct[i].len(),
            empty: empty[i],
            numeric: numeric[i],
            has_lowercase: has_lower[i],
        })
        .collect()
}

/// The distinct values of one attribute, in first-seen order.
pub fn distinct_values(table: &Table, attr: AttrId) -> Vec<Sym> {
    let mut seen = FxHashSet::default();
    let mut out = Vec::new();
    for record in table.records() {
        let sym = record.get(attr.index());
        if seen.insert(sym) {
            out.push(sym);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn table() -> (Table, ValuePool) {
        let mut pool = ValuePool::new();
        let t = Table::from_rows(
            Schema::new(["num", "cat", "empty"]),
            &mut pool,
            vec![
                vec!["1", "a", ""],
                vec!["2", "b", ""],
                vec!["2", "a", ""],
                vec!["3.5", "a", ""],
            ],
        );
        (t, pool)
    }

    #[test]
    fn distinct_and_fractions() {
        let (t, pool) = table();
        let stats = attribute_stats(&t, &pool);
        assert_eq!(stats[0].distinct, 3);
        assert_eq!(stats[1].distinct, 2);
        assert!((stats[0].distinct_fraction() - 0.75).abs() < 1e-12);
        assert!(stats[0].is_numeric());
        assert!(!stats[1].is_numeric());
        assert!(stats[2].is_all_empty());
    }

    #[test]
    fn lowercase_detection() {
        let (t, pool) = table();
        let stats = attribute_stats(&t, &pool);
        assert_eq!(stats[1].has_lowercase, 4);
        assert_eq!(stats[0].has_lowercase, 0);
    }

    #[test]
    fn distinct_values_order() {
        let (t, _) = table();
        let vals = distinct_values(&t, AttrId(1));
        assert_eq!(vals.len(), 2);
    }
}
