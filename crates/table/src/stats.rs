//! Per-attribute statistics used by the evaluation protocol (§5.1) and the
//! transformation sampler.
//!
//! The §5.1 protocol needs, per attribute: the fraction of distinct values
//! (attributes above 0.7 are removed), emptiness (fully empty attributes are
//! ignored), and whether the column is numeric (so sampled transformations
//! "fit the domain of the attribute", e.g. no uppercasing on numbers).
//!
//! All of it is computed in *one* pass per attribute, straight off the
//! table's contiguous column ([`Table::column`]): the distinct set, the
//! first-seen distinct order, and the per-row counters fall out of the same
//! scan, with string properties evaluated once per distinct symbol.

use crate::fx::{FxHashMap, FxHashSet};
use crate::schema::AttrId;
use crate::table::Table;
use crate::value::{Sym, ValuePool};

/// Statistics of one attribute over one table.
#[derive(Debug, Clone)]
pub struct AttrStats {
    /// Attribute id.
    pub attr: AttrId,
    /// Number of records observed.
    pub rows: usize,
    /// Number of distinct values.
    pub distinct: usize,
    /// Number of empty-string values.
    pub empty: usize,
    /// Number of values that parse as exact decimals.
    pub numeric: usize,
    /// Number of values containing at least one ASCII lowercase letter.
    pub has_lowercase: usize,
}

impl AttrStats {
    /// Fraction of distinct values (`0` for an empty table).
    pub fn distinct_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.distinct as f64 / self.rows as f64
        }
    }

    /// True if every value is the empty string.
    pub fn is_all_empty(&self) -> bool {
        self.rows > 0 && self.empty == self.rows
    }

    /// True if every non-empty value is numeric and at least one value is.
    pub fn is_numeric(&self) -> bool {
        self.numeric > 0 && self.numeric + self.empty == self.rows
    }

    /// Fraction of values that are numeric.
    pub fn numeric_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.numeric as f64 / self.rows as f64
        }
    }
}

/// One attribute's single-pass profile: its [`AttrStats`] plus the distinct
/// values in first-seen order.
#[derive(Debug, Clone)]
pub struct AttrProfile {
    /// The per-row counters and distinct count.
    pub stats: AttrStats,
    /// The distinct values, in first-seen (top-to-bottom) order.
    pub distinct: Vec<Sym>,
}

/// String properties evaluated once per distinct symbol.
#[derive(Clone, Copy)]
struct SymProps {
    empty: bool,
    numeric: bool,
    lowercase: bool,
}

/// Profile one column slice in a single pass.
fn profile_column(attr: AttrId, col: &[Sym], pool: &ValuePool) -> AttrProfile {
    let mut props: FxHashMap<Sym, SymProps> =
        FxHashMap::with_capacity_and_hasher(64, Default::default());
    let mut distinct = Vec::new();
    let (mut empty, mut numeric, mut has_lowercase) = (0usize, 0usize, 0usize);
    for &sym in col {
        let p = *props.entry(sym).or_insert_with(|| {
            distinct.push(sym);
            let s = pool.get(sym);
            SymProps {
                empty: s.is_empty(),
                numeric: pool.decimal(sym).is_some(),
                lowercase: s.bytes().any(|b| b.is_ascii_lowercase()),
            }
        });
        empty += p.empty as usize;
        numeric += p.numeric as usize;
        has_lowercase += p.lowercase as usize;
    }
    AttrProfile {
        stats: AttrStats {
            attr,
            rows: col.len(),
            distinct: distinct.len(),
            empty,
            numeric,
            has_lowercase,
        },
        distinct,
    }
}

/// Compute an [`AttrProfile`] for every attribute of `table` — stats and
/// first-seen distinct values together, one column scan per attribute.
pub fn attribute_profiles(table: &Table, pool: &ValuePool) -> Vec<AttrProfile> {
    table
        .schema()
        .attr_ids()
        .map(|attr| profile_column(attr, table.column(attr), pool))
        .collect()
}

/// Compute [`AttrStats`] for every attribute of `table`.
pub fn attribute_stats(table: &Table, pool: &ValuePool) -> Vec<AttrStats> {
    attribute_profiles(table, pool)
        .into_iter()
        .map(|p| p.stats)
        .collect()
}

/// The distinct values of one attribute, in first-seen order.
pub fn distinct_values(table: &Table, attr: AttrId) -> Vec<Sym> {
    let mut seen = FxHashSet::default();
    let mut out = Vec::new();
    for &sym in table.column(attr) {
        if seen.insert(sym) {
            out.push(sym);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn table() -> (Table, ValuePool) {
        let mut pool = ValuePool::new();
        let t = Table::from_rows(
            Schema::new(["num", "cat", "empty"]),
            &mut pool,
            vec![
                vec!["1", "a", ""],
                vec!["2", "b", ""],
                vec!["2", "a", ""],
                vec!["3.5", "a", ""],
            ],
        );
        (t, pool)
    }

    #[test]
    fn distinct_and_fractions() {
        let (t, pool) = table();
        let stats = attribute_stats(&t, &pool);
        assert_eq!(stats[0].distinct, 3);
        assert_eq!(stats[1].distinct, 2);
        assert!((stats[0].distinct_fraction() - 0.75).abs() < 1e-12);
        assert!(stats[0].is_numeric());
        assert!(!stats[1].is_numeric());
        assert!(stats[2].is_all_empty());
    }

    #[test]
    fn lowercase_detection() {
        let (t, pool) = table();
        let stats = attribute_stats(&t, &pool);
        assert_eq!(stats[1].has_lowercase, 4);
        assert_eq!(stats[0].has_lowercase, 0);
    }

    #[test]
    fn distinct_values_order() {
        let (t, _) = table();
        let vals = distinct_values(&t, AttrId(1));
        assert_eq!(vals.len(), 2);
    }

    #[test]
    fn profile_matches_stats_and_distinct() {
        let (t, pool) = table();
        let profiles = attribute_profiles(&t, &pool);
        let stats = attribute_stats(&t, &pool);
        for (p, s) in profiles.iter().zip(&stats) {
            assert_eq!(p.stats.distinct, s.distinct);
            assert_eq!(p.stats.empty, s.empty);
            assert_eq!(p.stats.numeric, s.numeric);
            assert_eq!(p.stats.has_lowercase, s.has_lowercase);
            assert_eq!(p.distinct, distinct_values(&t, p.stats.attr));
            assert_eq!(p.distinct.len(), p.stats.distinct);
        }
    }
}
