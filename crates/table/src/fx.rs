//! A fast, non-cryptographic hasher for hot-path maps.
//!
//! The search layer hashes millions of interned symbols and block keys per
//! extension; SipHash (the std default) is a measurable cost there. This is
//! the well-known FxHash mixing function (as used by rustc), implemented
//! locally so the workspace stays within its allowed dependency set.
//! HashDoS resistance is irrelevant: all keys are internally generated.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative mixing constant (64-bit golden-ratio based, as in rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash hasher state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hash a single `u64` with the Fx mixing function (for rolling block keys).
#[inline]
pub fn mix(acc: u64, word: u64) -> u64 {
    (acc.rotate_left(5) ^ word).wrapping_mul(SEED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_of(bytes: &[u8]) -> u64 {
        let bh: BuildHasherDefault<FxHasher> = Default::default();
        let mut h = bh.build_hasher();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(b"affidavit"), hash_of(b"affidavit"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(b"a"), hash_of(b"b"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
        // Length is mixed into the remainder word, so a trailing zero byte
        // must change the hash.
        assert_ne!(hash_of(b"ab"), hash_of(b"ab\0"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, "v");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
    }

    #[test]
    fn mix_is_not_identity() {
        assert_ne!(mix(0, 42), 42);
        assert_ne!(mix(1, 42), mix(2, 42));
    }
}
