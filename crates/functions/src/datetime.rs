//! Date conversion — the extension meta function of §4.4.1/§6.
//!
//! "An input-output example such as 'Sep 31 2019' ↦ '20190931' contains
//! enough information to learn to split the source value ... and express the
//! date in 'yyyymmdd' format." We implement a small catalogue of concrete
//! formats; a conversion function is a `(from, to)` format pair (ψ = 2).
//!
//! Validation is deliberately lenient (day 1–31 regardless of month): the
//! paper's own example uses "Sep 31". Strictness would only shrink the
//! candidate space, never change correct candidates.

use serde::{Deserialize, Serialize};

/// A calendar date (leniently validated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Date {
    /// Four-digit year.
    pub year: u16,
    /// Month 1–12.
    pub month: u8,
    /// Day 1–31 (not validated against the month).
    pub day: u8,
}

/// Supported concrete date formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DateFormat {
    /// `20190931`
    YyyyMmDd,
    /// `20193109` (day before month; disambiguates the paper's example)
    YyyyDdMm,
    /// `2019-09-31`
    IsoDashed,
    /// `31.09.2019`
    DottedDmy,
    /// `09/31/2019`
    SlashMdy,
    /// `31/09/2019`
    SlashDmy,
    /// `Sep 31 2019`
    MonthNameDy,
    /// `31 Sep 2019`
    DMonthNameY,
}

impl DateFormat {
    /// All supported formats.
    pub const ALL: [DateFormat; 8] = [
        DateFormat::YyyyMmDd,
        DateFormat::YyyyDdMm,
        DateFormat::IsoDashed,
        DateFormat::DottedDmy,
        DateFormat::SlashMdy,
        DateFormat::SlashDmy,
        DateFormat::MonthNameDy,
        DateFormat::DMonthNameY,
    ];

    /// Short name used in explanations / SQL export.
    pub fn name(self) -> &'static str {
        match self {
            DateFormat::YyyyMmDd => "yyyymmdd",
            DateFormat::YyyyDdMm => "yyyyddmm",
            DateFormat::IsoDashed => "yyyy-mm-dd",
            DateFormat::DottedDmy => "dd.mm.yyyy",
            DateFormat::SlashMdy => "mm/dd/yyyy",
            DateFormat::SlashDmy => "dd/mm/yyyy",
            DateFormat::MonthNameDy => "Mon dd yyyy",
            DateFormat::DMonthNameY => "dd Mon yyyy",
        }
    }

    /// Try to parse `s` in this format.
    pub fn parse(self, s: &str) -> Option<Date> {
        match self {
            DateFormat::YyyyMmDd => {
                let b = digits8(s)?;
                date(num(&b[0..4]), num(&b[4..6]) as u8, num(&b[6..8]) as u8)
            }
            DateFormat::YyyyDdMm => {
                let b = digits8(s)?;
                date(num(&b[0..4]), num(&b[6..8]) as u8, num(&b[4..6]) as u8)
            }
            DateFormat::IsoDashed => {
                let (y, m, d) = split3(s, '-')?;
                date(parse_n(y, 4)?, parse_n(m, 2)? as u8, parse_n(d, 2)? as u8)
            }
            DateFormat::DottedDmy => {
                let (d, m, y) = split3(s, '.')?;
                date(parse_n(y, 4)?, parse_n(m, 2)? as u8, parse_n(d, 2)? as u8)
            }
            DateFormat::SlashMdy => {
                let (m, d, y) = split3(s, '/')?;
                date(parse_n(y, 4)?, parse_n(m, 2)? as u8, parse_n(d, 2)? as u8)
            }
            DateFormat::SlashDmy => {
                let (d, m, y) = split3(s, '/')?;
                date(parse_n(y, 4)?, parse_n(m, 2)? as u8, parse_n(d, 2)? as u8)
            }
            DateFormat::MonthNameDy => {
                let mut it = s.split(' ');
                let m = month_from_name(it.next()?)?;
                let d = parse_n(it.next()?, 2)? as u8;
                let y = parse_n(it.next()?, 4)?;
                if it.next().is_some() {
                    return None;
                }
                date(y, m, d)
            }
            DateFormat::DMonthNameY => {
                let mut it = s.split(' ');
                let d = parse_n(it.next()?, 2)? as u8;
                let m = month_from_name(it.next()?)?;
                let y = parse_n(it.next()?, 4)?;
                if it.next().is_some() {
                    return None;
                }
                date(y, m, d)
            }
        }
    }

    /// Render a date in this format.
    pub fn format(self, d: Date) -> String {
        match self {
            DateFormat::YyyyMmDd => format!("{:04}{:02}{:02}", d.year, d.month, d.day),
            DateFormat::YyyyDdMm => format!("{:04}{:02}{:02}", d.year, d.day, d.month),
            DateFormat::IsoDashed => format!("{:04}-{:02}-{:02}", d.year, d.month, d.day),
            DateFormat::DottedDmy => format!("{:02}.{:02}.{:04}", d.day, d.month, d.year),
            DateFormat::SlashMdy => format!("{:02}/{:02}/{:04}", d.month, d.day, d.year),
            DateFormat::SlashDmy => format!("{:02}/{:02}/{:04}", d.day, d.month, d.year),
            DateFormat::MonthNameDy => {
                format!(
                    "{} {:02} {:04}",
                    MONTHS[(d.month - 1) as usize],
                    d.day,
                    d.year
                )
            }
            DateFormat::DMonthNameY => {
                format!(
                    "{:02} {} {:04}",
                    d.day,
                    MONTHS[(d.month - 1) as usize],
                    d.year
                )
            }
        }
    }
}

const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

fn month_from_name(name: &str) -> Option<u8> {
    MONTHS
        .iter()
        .position(|m| m.eq_ignore_ascii_case(name))
        .map(|i| (i + 1) as u8)
}

fn date(year: u16, month: u8, day: u8) -> Option<Date> {
    if (1..=12).contains(&month) && (1..=31).contains(&day) && (1000..=9999).contains(&year) {
        Some(Date { year, month, day })
    } else {
        None
    }
}

/// Exactly eight ASCII digits.
fn digits8(s: &str) -> Option<&[u8]> {
    let b = s.as_bytes();
    if b.len() == 8 && b.iter().all(u8::is_ascii_digit) {
        Some(b)
    } else {
        None
    }
}

fn num(b: &[u8]) -> u16 {
    b.iter().fold(0u16, |acc, &d| acc * 10 + (d - b'0') as u16)
}

/// Parse an all-digit field with exactly `width` digits.
fn parse_n(s: &str, width: usize) -> Option<u16> {
    let b = s.as_bytes();
    if b.len() == width && b.iter().all(u8::is_ascii_digit) {
        Some(num(b))
    } else {
        None
    }
}

fn split3(s: &str, sep: char) -> Option<(&str, &str, &str)> {
    let mut it = s.split(sep);
    let a = it.next()?;
    let b = it.next()?;
    let c = it.next()?;
    if it.next().is_some() {
        return None;
    }
    Some((a, b, c))
}

/// Induce all `(from, to)` format pairs consistent with one example.
pub fn induce_conversions(s: &str, t: &str) -> Vec<(DateFormat, DateFormat)> {
    let mut out = Vec::new();
    for from in DateFormat::ALL {
        let Some(d) = from.parse(s) else { continue };
        for to in DateFormat::ALL {
            if from != to && to.format(d) == t {
                out.push((from, to));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example() {
        // 'Sep 31 2019' ↦ '20190931' (yyyymmdd)
        let pairs = induce_conversions("Sep 31 2019", "20190931");
        assert!(pairs.contains(&(DateFormat::MonthNameDy, DateFormat::YyyyMmDd)));
    }

    #[test]
    fn ambiguous_example_yields_both_candidates() {
        // 'Oct 10 2019' ↦ '20191010': yyyymmdd and yyyyddmm both fit
        // (exactly the ambiguity discussed in §4.4.1).
        let pairs = induce_conversions("Oct 10 2019", "20191010");
        assert!(pairs.contains(&(DateFormat::MonthNameDy, DateFormat::YyyyMmDd)));
        assert!(pairs.contains(&(DateFormat::MonthNameDy, DateFormat::YyyyDdMm)));
    }

    #[test]
    fn roundtrip_all_formats() {
        let d = Date {
            year: 2020,
            month: 3,
            day: 30,
        };
        for f in DateFormat::ALL {
            let rendered = f.format(d);
            assert_eq!(f.parse(&rendered), Some(d), "format {f:?} / {rendered}");
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(DateFormat::YyyyMmDd.parse("2019133").is_none());
        assert!(DateFormat::YyyyMmDd.parse("20191340").is_none());
        assert!(DateFormat::IsoDashed.parse("2019/01/01").is_none());
        assert!(DateFormat::MonthNameDy.parse("Xxx 01 2019").is_none());
        assert!(DateFormat::SlashMdy.parse("13/40/2019").is_none());
    }

    #[test]
    fn lenient_day_validation() {
        // Sep 31 does not exist but must parse (paper's own example).
        assert!(DateFormat::MonthNameDy.parse("Sep 31 2019").is_some());
        assert!(DateFormat::MonthNameDy.parse("Sep 32 2019").is_none());
    }
}
