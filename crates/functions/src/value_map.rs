//! Explicit value mappings (Table 1, last row).
//!
//! A value mapping lists `n` input/output pairs and behaves like the
//! identity on unmapped values. Its description length is `ψ = 2·n`
//! (every pair contributes an input and an output parameter — see the cost
//! calculation of explanation E1 in §3.1 where a 13-entry map costs 26).

use affidavit_table::Sym;

/// An explicit, finite value mapping with identity fallback.
///
/// Entries are kept sorted by input symbol so that equal mappings compare
/// and hash equal regardless of construction order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueMap {
    entries: Box<[(Sym, Sym)]>,
}

impl ValueMap {
    /// Build from pairs. Later duplicates of the same input are dropped
    /// (first wins), and — because the unmapped fallback is identity —
    /// explicit `x ↦ x` entries are dropped too, which can only shorten the
    /// description (see DESIGN.md §5.2).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Sym, Sym)>) -> ValueMap {
        let mut v: Vec<(Sym, Sym)> = Vec::new();
        for (k, val) in pairs {
            if k != val {
                v.push((k, val));
            }
        }
        v.sort_by_key(|&(k, _)| k);
        v.dedup_by_key(|&mut (k, _)| k);
        ValueMap {
            entries: v.into_boxed_slice(),
        }
    }

    /// Build from pairs, *keeping* identity entries. Used to reproduce the
    /// paper's Figure 1 reference explanation, whose `f_ID2` counts the
    /// entry `0001 ↦ 0001`.
    pub fn from_pairs_keep_identity(pairs: impl IntoIterator<Item = (Sym, Sym)>) -> ValueMap {
        let mut v: Vec<(Sym, Sym)> = pairs.into_iter().collect();
        v.sort_by_key(|&(k, _)| k);
        v.dedup_by_key(|&mut (k, _)| k);
        ValueMap {
            entries: v.into_boxed_slice(),
        }
    }

    /// Apply the mapping; unmapped values pass through unchanged.
    #[inline]
    pub fn apply(&self, x: Sym) -> Sym {
        match self.entries.binary_search_by_key(&x, |&(k, _)| k) {
            Ok(i) => self.entries[i].1,
            Err(_) => x,
        }
    }

    /// Number of stored entries `n`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are stored (the map is the identity).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Description length `ψ = 2·n`.
    pub fn psi(&self) -> u64 {
        2 * self.entries.len() as u64
    }

    /// The stored entries, sorted by input symbol.
    pub fn entries(&self) -> &[(Sym, Sym)] {
        &self.entries
    }

    /// Rewrite every symbol through `remap` (scratch → shared pool). The
    /// entries are re-sorted, since remapping may reorder keys, and
    /// identity pairs are kept — a map built over scratch symbols never
    /// contains accidental identities in the first place.
    pub fn remap(&self, remap: &affidavit_table::SymRemap) -> ValueMap {
        ValueMap::from_pairs_keep_identity(
            self.entries
                .iter()
                .map(|&(k, v)| (remap.remap(k), remap.remap(v))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_with_fallback() {
        let m = ValueMap::from_pairs([(Sym(1), Sym(10)), (Sym(2), Sym(20))]);
        assert_eq!(m.apply(Sym(1)), Sym(10));
        assert_eq!(m.apply(Sym(2)), Sym(20));
        assert_eq!(m.apply(Sym(3)), Sym(3)); // identity fallback
    }

    #[test]
    fn identity_entries_dropped() {
        let m = ValueMap::from_pairs([(Sym(1), Sym(1)), (Sym(2), Sym(20))]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.psi(), 2);
        assert_eq!(m.apply(Sym(1)), Sym(1)); // still identity via fallback
    }

    #[test]
    fn keep_identity_variant() {
        let m = ValueMap::from_pairs_keep_identity([(Sym(1), Sym(1)), (Sym(2), Sym(20))]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.psi(), 4);
    }

    #[test]
    fn order_independent_equality() {
        let a = ValueMap::from_pairs([(Sym(2), Sym(20)), (Sym(1), Sym(10))]);
        let b = ValueMap::from_pairs([(Sym(1), Sym(10)), (Sym(2), Sym(20))]);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_inputs_first_wins() {
        let m = ValueMap::from_pairs([(Sym(1), Sym(10)), (Sym(1), Sym(99))]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.apply(Sym(1)), Sym(10));
    }
}
