//! Numeric *formatting* meta functions (extension kinds).
//!
//! The Table 1 catalogue manipulates numeric **values** (addition, scaling);
//! real ERP migrations just as often change numeric **presentation**:
//! zero-padding of code columns, thousands grouping of amount columns, and
//! precision reduction. All three are learnable from a single input-output
//! example (§4.4.1's admission criterion) and carry ψ = 1.
//!
//! Semantics follow the identity-fallback convention of prefix replacement
//! (Figure 1): a value that is already in the target presentation is left
//! unchanged, while a value outside the function's domain (non-numeric for
//! grouping, wrong grouping for stripping) yields `None`.
//!
//! ```
//! use affidavit_functions::numeric_format::{add_thousands_sep, zero_pad};
//!
//! assert_eq!(add_thousands_sep("3780000", ',').as_deref(), Some("3,780,000"));
//! assert_eq!(zero_pad("65", 5).as_deref(), Some("00065"));
//! assert_eq!(add_thousands_sep("USD", ','), None); // not a number
//! ```

use affidavit_table::decimal::pow10;
use affidavit_table::Decimal;

/// Zero-pad a digit string to `width` characters. `None` for non-digit
/// input; inputs already at least `width` long are unchanged.
pub fn zero_pad(s: &str, width: usize) -> Option<String> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    if s.len() >= width {
        return Some(s.to_owned());
    }
    let mut out = String::with_capacity(width);
    for _ in 0..width - s.len() {
        out.push('0');
    }
    out.push_str(s);
    Some(out)
}

/// Split a plain decimal string into (sign, integer digits, fraction
/// digits-with-dot). `None` unless `s` is `-?[0-9]+(\.[0-9]+)?`.
fn split_number(s: &str) -> Option<(&str, &str, &str)> {
    let (sign, rest) = match s.strip_prefix('-') {
        Some(r) => ("-", r),
        None => ("", s),
    };
    let (int, frac) = match rest.find('.') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, ""),
    };
    let frac_digits = frac.strip_prefix('.').unwrap_or("");
    if int.is_empty()
        || !int.bytes().all(|b| b.is_ascii_digit())
        || (!frac.is_empty()
            && (frac_digits.is_empty() || !frac_digits.bytes().all(|b| b.is_ascii_digit())))
    {
        return None;
    }
    Some((sign, int, frac))
}

/// Insert `sep` every three digits (from the right) into the integer part
/// of a plain decimal string. `None` for non-numeric input; numbers with at
/// most three integer digits are unchanged.
pub fn add_thousands_sep(s: &str, sep: char) -> Option<String> {
    let (sign, int, frac) = split_number(s)?;
    if int.len() <= 3 {
        return Some(s.to_owned());
    }
    let mut out = String::with_capacity(s.len() + int.len() / 3 + 1);
    out.push_str(sign);
    let lead = int.len() % 3;
    if lead > 0 {
        out.push_str(&int[..lead]);
    }
    for (i, chunk) in int.as_bytes()[lead..].chunks(3).enumerate() {
        if i > 0 || lead > 0 {
            out.push(sep);
        }
        out.push_str(std::str::from_utf8(chunk).expect("ascii digits"));
    }
    out.push_str(frac);
    Some(out)
}

/// Remove thousands separators, validating the 3-digit grouping. A plain
/// number without any separator passes through unchanged (identity
/// fallback); malformed grouping yields `None`.
pub fn strip_thousands_sep(s: &str, sep: char) -> Option<String> {
    if !s.contains(sep) {
        // Identity fallback — but only on values that are numbers at all.
        split_number(s)?;
        return Some(s.to_owned());
    }
    let (sign, rest) = match s.strip_prefix('-') {
        Some(r) => ("-", r),
        None => ("", s),
    };
    let (int, frac) = match rest.find('.') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, ""),
    };
    if !frac.is_empty() {
        let fd = frac.strip_prefix('.')?;
        if fd.is_empty() || !fd.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
    }
    let groups: Vec<&str> = int.split(sep).collect();
    if groups.len() < 2 {
        return None; // separator was in the fraction part: malformed
    }
    let first_ok = !groups[0].is_empty()
        && groups[0].len() <= 3
        && groups[0].bytes().all(|b| b.is_ascii_digit());
    let rest_ok = groups[1..]
        .iter()
        .all(|g| g.len() == 3 && g.bytes().all(|b| b.is_ascii_digit()));
    if !first_ok || !rest_ok {
        return None;
    }
    let mut out = String::with_capacity(s.len());
    out.push_str(sign);
    for g in &groups {
        out.push_str(g);
    }
    out.push_str(frac);
    Some(out)
}

/// Round a decimal to `places` fraction digits, half away from zero.
/// Values that already fit are unchanged.
pub fn round_decimal(d: Decimal, places: u32) -> Option<Decimal> {
    if d.scale() <= places {
        return Some(d);
    }
    let drop = d.scale() - places;
    let div = pow10(drop)?;
    let m = d.mantissa();
    let quot = m / div;
    let rem = m % div;
    let rounded = if rem.abs() * 2 >= div {
        quot + m.signum()
    } else {
        quot
    };
    Some(Decimal::new(rounded, places))
}

/// The separator characters tried during induction. `.` is deliberately
/// absent: a dot thousands separator is ambiguous with the decimal point
/// and would make induction unsound.
pub const SEPARATORS: [char; 4] = [',', ' ', '\'', '_'];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_pad_basics() {
        assert_eq!(zero_pad("65", 5).unwrap(), "00065");
        assert_eq!(zero_pad("12345", 5).unwrap(), "12345");
        assert_eq!(zero_pad("123456", 5).unwrap(), "123456"); // already longer
        assert!(zero_pad("-5", 3).is_none());
        assert!(zero_pad("1.5", 4).is_none());
        assert!(zero_pad("", 4).is_none());
        assert!(zero_pad("abc", 4).is_none());
    }

    #[test]
    fn thousands_grouping() {
        assert_eq!(add_thousands_sep("3780000", ',').unwrap(), "3,780,000");
        assert_eq!(add_thousands_sep("425000", ' ').unwrap(), "425 000");
        assert_eq!(
            add_thousands_sep("-1234567.89", ',').unwrap(),
            "-1,234,567.89"
        );
        assert_eq!(add_thousands_sep("999", ',').unwrap(), "999"); // unchanged
        assert_eq!(add_thousands_sep("1000", ',').unwrap(), "1,000");
        assert!(add_thousands_sep("USD", ',').is_none());
        assert!(add_thousands_sep("1,000", ',').is_none()); // already grouped
    }

    #[test]
    fn strip_grouping() {
        assert_eq!(strip_thousands_sep("3,780,000", ',').unwrap(), "3780000");
        assert_eq!(
            strip_thousands_sep("-1,234,567.89", ',').unwrap(),
            "-1234567.89"
        );
        assert_eq!(strip_thousands_sep("999", ',').unwrap(), "999"); // fallback
        assert!(strip_thousands_sep("1,00", ',').is_none());
        assert!(strip_thousands_sep("1,0000", ',').is_none());
        assert!(strip_thousands_sep(",000", ',').is_none());
        assert!(strip_thousands_sep("USD", ',').is_none());
    }

    #[test]
    fn grouping_roundtrip() {
        for v in ["1000", "3780000", "-42", "123456789.5", "7"] {
            let grouped = add_thousands_sep(v, ',').unwrap();
            assert_eq!(strip_thousands_sep(&grouped, ',').unwrap(), v);
        }
    }

    #[test]
    fn rounding() {
        let d = |s: &str| Decimal::parse(s).unwrap();
        assert_eq!(round_decimal(d("1.25"), 1).unwrap().to_string(), "1.3");
        assert_eq!(round_decimal(d("1.24"), 1).unwrap().to_string(), "1.2");
        assert_eq!(round_decimal(d("-1.25"), 1).unwrap().to_string(), "-1.3");
        assert_eq!(round_decimal(d("1.2"), 3).unwrap().to_string(), "1.2");
        assert_eq!(round_decimal(d("0.9999"), 2).unwrap().to_string(), "1");
        assert_eq!(round_decimal(d("422.4"), 0).unwrap().to_string(), "422");
    }
}
