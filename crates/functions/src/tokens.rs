//! Tokenization substrate for the FlashFill-lite token programs.
//!
//! The §2 related-work systems (FlashFill, FlashMeta, TDE) operate on a
//! token decomposition of strings: maximal runs of digits and maximal runs
//! of letters are addressable *tokens*, everything between them is
//! separator material. [`crate::substring::TokenProgram`] reassembles a
//! target value from the tokens of a source value plus literal glue, which
//! is exactly the class of "more expressive" transformations the paper's §6
//! names as the future-work extension of its function catalogue.

/// The character class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TokenClass {
    /// A maximal run of numeric characters (`char::is_numeric`).
    Digits,
    /// A maximal run of alphabetic characters (`char::is_alphabetic`).
    Letters,
}

/// One addressable token of a string: a maximal digit or letter run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token text (a slice of the tokenized string).
    pub text: &'a str,
    /// Digit run or letter run.
    pub class: TokenClass,
    /// Byte offset of the token in the original string.
    pub start: usize,
}

fn class_of(c: char) -> Option<TokenClass> {
    if c.is_numeric() {
        Some(TokenClass::Digits)
    } else if c.is_alphabetic() {
        Some(TokenClass::Letters)
    } else {
        None
    }
}

/// Decompose `s` into its addressable tokens. Separator runs (whitespace,
/// punctuation, symbols) are not tokens; they can only be reproduced as
/// literals by a token program.
pub fn tokenize(s: &str) -> Vec<Token<'_>> {
    let mut out = Vec::new();
    let mut run_start = 0usize;
    let mut run_class: Option<TokenClass> = None;
    for (i, c) in s.char_indices() {
        let cls = class_of(c);
        if cls != run_class {
            if let Some(class) = run_class {
                out.push(Token {
                    text: &s[run_start..i],
                    class,
                    start: run_start,
                });
            }
            run_start = i;
            run_class = cls;
        }
    }
    if let Some(class) = run_class {
        out.push(Token {
            text: &s[run_start..],
            class,
            start: run_start,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(s: &str) -> Vec<&str> {
        tokenize(s).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn empty_and_separators_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize(" -/.,").is_empty());
    }

    #[test]
    fn single_runs() {
        assert_eq!(texts("20130416"), vec!["20130416"]);
        assert_eq!(texts("IBM"), vec!["IBM"]);
    }

    #[test]
    fn mixed_alnum_splits_by_class() {
        // Classic FlashFill behaviour: "AB12" is two tokens.
        assert_eq!(texts("AB12"), vec!["AB", "12"]);
        assert_eq!(texts("ID-00123"), vec!["ID", "00123"]);
    }

    #[test]
    fn date_like() {
        assert_eq!(texts("2019-08-01"), vec!["2019", "08", "01"]);
        assert_eq!(texts("Sep 31 2019"), vec!["Sep", "31", "2019"]);
    }

    #[test]
    fn name_like() {
        assert_eq!(texts("Doe, John"), vec!["Doe", "John"]);
    }

    #[test]
    fn classes_and_offsets() {
        let toks = tokenize("a1 b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].class, TokenClass::Letters);
        assert_eq!(toks[1].class, TokenClass::Digits);
        assert_eq!(toks[2].class, TokenClass::Letters);
        assert_eq!(toks[0].start, 0);
        assert_eq!(toks[1].start, 1);
        assert_eq!(toks[2].start, 3);
    }

    #[test]
    fn unicode_tokens() {
        assert_eq!(texts("münchen 42"), vec!["münchen", "42"]);
        assert_eq!(texts("日本語2020年"), vec!["日本語", "2020", "年"]);
    }
}
