//! FlashFill-lite token programs (the §6 "richer set of functions").
//!
//! A [`TokenProgram`] rebuilds a target value by concatenating *tokens* of
//! the source value (maximal digit/letter runs, addressed by position from
//! the front or from the back) with literal glue strings. This captures the
//! reorder/extract/reformat transformations of the FlashFill family
//! (§2, [12–14, 23]) while remaining learnable from a **single**
//! input-output example — the admission criterion of §4.4.1.
//!
//! Examples of learnable programs:
//!
//! * `"Doe, John" ↦ "John Doe"` — `tok[1] ◦ " " ◦ tok[0]` (reordering),
//! * `"2019-08-01" ↦ "08/01/2019"` — field extraction and re-gluing,
//! * `"ID-00123" ↦ "00123"` — extracting the payload of a composite key.
//!
//! ψ counts one parameter per segment (a literal string or a token index),
//! consistent with Def. 3.9's "count of data values".
//!
//! ```
//! use affidavit_functions::substring::induce_token_programs;
//! use affidavit_table::ValuePool;
//!
//! let mut pool = ValuePool::new();
//! let programs = induce_token_programs("Doe, John", "John Doe", &mut pool);
//! // The induced reorder generalizes to unseen names.
//! assert_eq!(
//!     programs[0].apply_str("Fink, Manuel", &pool).as_deref(),
//!     Some("Manuel Fink"),
//! );
//! ```

use std::fmt;

use affidavit_table::{Interner, Sym, ValuePool};

use crate::tokens::tokenize;

/// Upper bound on program length: longer decompositions are record-specific
/// noise, not systematic transformations, and would be dominated by value
/// maps anyway.
pub const MAX_SEGMENTS: usize = 8;

/// One building block of a token program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Segment {
    /// A literal glue string (interned).
    Literal(Sym),
    /// The `idx`-th token of the input's tokenization; counted from the
    /// back when `from_end` is set (`idx = 0` is then the last token).
    Token {
        /// 0-based token position.
        idx: u8,
        /// Count positions from the back instead of the front.
        from_end: bool,
    },
}

/// A concatenation of source tokens and literals.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenProgram {
    segments: Vec<Segment>,
}

impl TokenProgram {
    /// Build a program from segments. Returns `None` for programs that are
    /// degenerate (no token reference, or longer than [`MAX_SEGMENTS`]) —
    /// those are constants or noise, not token programs.
    pub fn new(segments: Vec<Segment>) -> Option<TokenProgram> {
        if segments.is_empty() || segments.len() > MAX_SEGMENTS {
            return None;
        }
        if !segments.iter().any(|s| matches!(s, Segment::Token { .. })) {
            return None;
        }
        Some(TokenProgram { segments })
    }

    /// The program's segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Rewrite literal symbols through `remap` (scratch → shared pool).
    pub fn remap(&self, remap: &affidavit_table::SymRemap) -> TokenProgram {
        TokenProgram {
            segments: self
                .segments
                .iter()
                .map(|s| match s {
                    Segment::Literal(l) => Segment::Literal(remap.remap(*l)),
                    tok => *tok,
                })
                .collect(),
        }
    }

    /// Description length: one parameter per segment (Def. 3.9).
    pub fn psi(&self) -> u64 {
        self.segments.len() as u64
    }

    /// Apply to a plain string. `None` when a referenced token does not
    /// exist in the input's tokenization.
    pub fn apply_str<I: Interner + ?Sized>(&self, input: &str, pool: &I) -> Option<String> {
        let toks = tokenize(input);
        let mut out = String::with_capacity(input.len());
        for seg in &self.segments {
            match seg {
                Segment::Literal(l) => out.push_str(pool.get(*l)),
                Segment::Token { idx, from_end } => {
                    let i = if *from_end {
                        toks.len().checked_sub(1 + *idx as usize)?
                    } else {
                        *idx as usize
                    };
                    out.push_str(toks.get(i)?.text);
                }
            }
        }
        Some(out)
    }

    /// Display adapter (literals need the pool).
    pub fn display<'a>(&'a self, pool: &'a ValuePool) -> DisplayProgram<'a> {
        DisplayProgram { prog: self, pool }
    }
}

/// Display adapter for [`TokenProgram`].
pub struct DisplayProgram<'a> {
    prog: &'a TokenProgram,
    pool: &'a ValuePool,
}

impl fmt::Display for DisplayProgram<'_> {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(out, "x ↦ ⟨")?;
        for (i, seg) in self.prog.segments.iter().enumerate() {
            if i > 0 {
                write!(out, " ◦ ")?;
            }
            match seg {
                Segment::Literal(l) => write!(out, "{:?}", self.pool.get(*l))?,
                Segment::Token {
                    idx,
                    from_end: false,
                } => write!(out, "tok[{idx}]")?,
                Segment::Token {
                    idx,
                    from_end: true,
                } => write!(out, "tok[-{}]", *idx as usize + 1)?,
            }
        }
        write!(out, "⟩")
    }
}

/// Induce token programs consistent with the single example `s ↦ t`
/// (every returned program `p` satisfies `p(s) = t`).
///
/// The decomposition is greedy: at each position of `t`, the longest source
/// token matching there is preferred (ties broken towards the earliest
/// token); unmatched characters accumulate into literals. Two addressing
/// variants are generated — front-indexed and back-indexed — because a
/// single example cannot distinguish them, mirroring the paper's treatment
/// of ambiguous date examples ("one could simply generate both candidate
/// functions").
///
/// Programs where literal glue outweighs token material are suppressed:
/// such candidates explain the example mostly by *storing* it, which the
/// constant/value-map functions already cover at equal or lower cost.
pub fn induce_token_programs<I: Interner>(s: &str, t: &str, pool: &mut I) -> Vec<TokenProgram> {
    if s == t || t.is_empty() {
        return Vec::new();
    }
    let toks = tokenize(s);
    if toks.is_empty() {
        return Vec::new();
    }

    let mut segments: Vec<Segment> = Vec::new();
    let mut literal = String::new();
    let mut token_bytes = 0usize;
    let mut pos = 0usize;
    while pos < t.len() {
        let rest = &t[pos..];
        // Longest source token matching at this position; earliest wins ties.
        let best = toks
            .iter()
            .enumerate()
            .filter(|(_, tk)| rest.starts_with(tk.text))
            .max_by_key(|(i, tk)| (tk.text.len(), usize::MAX - i));
        match best {
            Some((i, tk)) if i < 256 => {
                if !literal.is_empty() {
                    segments.push(Segment::Literal(pool.intern(&literal)));
                    literal.clear();
                }
                segments.push(Segment::Token {
                    idx: i as u8,
                    from_end: false,
                });
                token_bytes += tk.text.len();
                pos += tk.text.len();
            }
            _ => {
                let c = rest.chars().next().expect("pos < t.len()");
                literal.push(c);
                pos += c.len_utf8();
            }
        }
        if segments.len() > MAX_SEGMENTS {
            return Vec::new();
        }
    }
    if !literal.is_empty() {
        segments.push(Segment::Literal(pool.intern(&literal)));
    }

    // Quality gates: must reference a token, token material must dominate
    // the literal glue, and a pure `[tok[0]]` on a single-token string is
    // the identity in disguise.
    if token_bytes == 0 || token_bytes < t.len() - token_bytes {
        return Vec::new();
    }
    if segments.len() == 1 && toks.len() == 1 {
        return Vec::new();
    }

    let mut out = Vec::with_capacity(2);
    // Back-indexed variant: same tokens addressed from the end.
    let n = toks.len();
    let back: Vec<Segment> = segments
        .iter()
        .map(|seg| match *seg {
            Segment::Token {
                idx,
                from_end: false,
            } if (idx as usize) < n => Segment::Token {
                idx: (n - 1 - idx as usize) as u8,
                from_end: true,
            },
            other => other,
        })
        .collect();
    if let Some(p) = TokenProgram::new(segments) {
        out.push(p);
    }
    if let Some(p) = TokenProgram::new(back) {
        if !out.contains(&p) {
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn induce(s: &str, t: &str) -> (Vec<TokenProgram>, ValuePool) {
        let mut pool = ValuePool::new();
        let progs = induce_token_programs(s, t, &mut pool);
        (progs, pool)
    }

    fn assert_consistent(s: &str, t: &str) {
        let (progs, pool) = induce(s, t);
        for p in &progs {
            assert_eq!(
                p.apply_str(s, &pool).as_deref(),
                Some(t),
                "program {p:?} is not consistent with {s:?} ↦ {t:?}"
            );
        }
    }

    #[test]
    fn reorder_name() {
        let (progs, pool) = induce("Doe, John", "John Doe");
        assert!(!progs.is_empty());
        // Front variant: tok[1] ◦ " " ◦ tok[0].
        let front = &progs[0];
        assert_eq!(front.psi(), 3);
        assert_eq!(front.apply_str("Doe, John", &pool).unwrap(), "John Doe");
        // It generalizes to unseen names.
        assert_eq!(
            front.apply_str("Fink, Manuel", &pool).unwrap(),
            "Manuel Fink"
        );
        assert_consistent("Doe, John", "John Doe");
    }

    #[test]
    fn date_regrouping() {
        let (progs, pool) = induce("2019-08-01", "08/01/2019");
        assert!(!progs.is_empty());
        assert_eq!(
            progs[0].apply_str("2021-12-31", &pool).unwrap(),
            "12/31/2021"
        );
        assert_consistent("2019-08-01", "08/01/2019");
    }

    #[test]
    fn extraction() {
        let (progs, pool) = induce("ID-00123", "00123");
        assert!(!progs.is_empty());
        assert_eq!(progs[0].apply_str("ID-99", &pool).unwrap(), "99");
        assert_consistent("ID-00123", "00123");
    }

    #[test]
    fn back_indexing_differs_on_variable_token_count() {
        let (progs, pool) = induce("a b c", "c");
        // tok[2] (front) and tok[-1] (back) agree on the example ...
        assert!(progs.len() == 2);
        for p in &progs {
            assert_eq!(p.apply_str("a b c", &pool).as_deref(), Some("c"));
        }
        // ... but disagree on a 4-token input.
        let outs: Vec<Option<String>> = progs
            .iter()
            .map(|p| p.apply_str("w x y z", &pool))
            .collect();
        assert_eq!(outs[0].as_deref(), Some("y"));
        assert_eq!(outs[1].as_deref(), Some("z"));
    }

    #[test]
    fn missing_token_is_none() {
        let (progs, pool) = induce("2019-08-01", "08/01/2019");
        // The program references tok[2]; a two-token input cannot supply it.
        assert!(progs[0].apply_str("2019-08", &pool).is_none());
        assert!(progs[0].apply_str("---", &pool).is_none());
    }

    #[test]
    fn identity_and_empty_are_rejected() {
        assert!(induce("same", "same").0.is_empty());
        assert!(induce("x", "").0.is_empty());
        assert!(induce("---", "-").0.is_empty()); // no tokens in source
    }

    #[test]
    fn literal_heavy_targets_are_rejected() {
        // Token "65" covers 2 of 5 bytes of "0.065": literal glue dominates.
        assert!(induce("65", "0.065").0.is_empty());
    }

    #[test]
    fn single_token_identity_disguise_rejected() {
        // s is one token and t = that token ⇒ would be identity; covered by
        // the `s == t` guard, but also for differently-tokenized inputs:
        assert!(induce("42", "42").0.is_empty());
    }

    #[test]
    fn longest_match_preferred() {
        // Source tokens: ["12", "123"]; target "123" must bind the longer
        // token, not "12" + literal "3".
        let (progs, pool) = induce("12 123", "123");
        assert!(!progs.is_empty());
        assert_eq!(
            progs[0].segments(),
            &[Segment::Token {
                idx: 1,
                from_end: false
            }]
        );
        assert_eq!(progs[0].apply_str("00 777", &pool).unwrap(), "777");
    }

    #[test]
    fn psi_counts_segments() {
        let (progs, _) = induce("Doe, John", "John Doe");
        assert_eq!(progs[0].psi(), 3); // tok ◦ " " ◦ tok
    }

    #[test]
    fn display_renders() {
        let (progs, pool) = induce("Doe, John", "John Doe");
        let shown = progs[0].display(&pool).to_string();
        assert_eq!(shown, "x ↦ ⟨tok[1] ◦ \" \" ◦ tok[0]⟩");
        let back = progs[1].display(&pool).to_string();
        assert_eq!(back, "x ↦ ⟨tok[-1] ◦ \" \" ◦ tok[-2]⟩");
    }

    #[test]
    fn unicode_program() {
        assert_consistent("müller, jörg", "jörg müller");
        let (progs, pool) = induce("müller, jörg", "jörg müller");
        assert_eq!(
            progs[0].apply_str("meier, hans", &pool).unwrap(),
            "hans meier"
        );
    }

    #[test]
    fn program_new_rejects_degenerates() {
        assert!(TokenProgram::new(vec![]).is_none());
        let mut pool = ValuePool::new();
        let l = pool.intern("lit");
        assert!(TokenProgram::new(vec![Segment::Literal(l)]).is_none());
        let too_long = vec![
            Segment::Token {
                idx: 0,
                from_end: false
            };
            MAX_SEGMENTS + 1
        ];
        assert!(TokenProgram::new(too_long).is_none());
    }
}
