//! Memoized function application.
//!
//! During the search, the same attribute function is applied to the same
//! distinct value over and over (once per record, per blocking pass, per
//! cost evaluation). [`AppliedFunction`] caches `Sym → Option<Sym>` so each
//! distinct value is transformed exactly once per function.

use affidavit_table::{FxHashMap, Sym, ValuePool};

use crate::function::AttrFunction;

/// An attribute function bundled with its application memo.
#[derive(Debug, Clone)]
pub struct AppliedFunction {
    func: AttrFunction,
    memo: FxHashMap<Sym, Option<Sym>>,
}

impl AppliedFunction {
    /// Wrap a function with an empty memo.
    pub fn new(func: AttrFunction) -> AppliedFunction {
        AppliedFunction {
            func,
            memo: FxHashMap::default(),
        }
    }

    /// The underlying function.
    pub fn func(&self) -> &AttrFunction {
        &self.func
    }

    /// Apply with memoization.
    #[inline]
    pub fn apply(&mut self, x: Sym, pool: &mut ValuePool) -> Option<Sym> {
        if let Some(&cached) = self.memo.get(&x) {
            return cached;
        }
        let result = self.func.apply(x, pool);
        self.memo.insert(x, result);
        result
    }

    /// Number of memoized inputs (for diagnostics/benches).
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }
}

impl From<AttrFunction> for AppliedFunction {
    fn from(func: AttrFunction) -> Self {
        AppliedFunction::new(func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::Rational;

    #[test]
    fn memoizes() {
        let mut pool = ValuePool::new();
        let x = pool.intern("80000");
        let mut f = AppliedFunction::new(AttrFunction::Scale(Rational::new(1, 1000).unwrap()));
        let a = f.apply(x, &mut pool);
        let b = f.apply(x, &mut pool);
        assert_eq!(a, b);
        assert_eq!(f.memo_len(), 1);
        assert_eq!(pool.get(a.unwrap()), "80");
    }

    #[test]
    fn memoizes_failures() {
        let mut pool = ValuePool::new();
        let x = pool.intern("IBM");
        let mut f = AppliedFunction::new(AttrFunction::Scale(Rational::new(1, 1000).unwrap()));
        assert_eq!(f.apply(x, &mut pool), None);
        assert_eq!(f.apply(x, &mut pool), None);
        assert_eq!(f.memo_len(), 1);
    }
}
