//! Memoized function application.
//!
//! During the search, the same attribute function is applied to the same
//! distinct value over and over (once per record, per blocking pass, per
//! cost evaluation). [`AppliedFunction`] caches `Sym → Option<Sym>` so each
//! distinct value is transformed exactly once per function.

use affidavit_table::{FxHashMap, Interner, Sym};

use crate::function::AttrFunction;

/// An attribute function bundled with its application memo.
#[derive(Debug, Clone)]
pub struct AppliedFunction {
    func: AttrFunction,
    memo: FxHashMap<Sym, Option<Sym>>,
}

impl AppliedFunction {
    /// Wrap a function with an empty memo.
    pub fn new(func: AttrFunction) -> AppliedFunction {
        AppliedFunction {
            func,
            memo: FxHashMap::default(),
        }
    }

    /// The underlying function.
    pub fn func(&self) -> &AttrFunction {
        &self.func
    }

    /// Apply with memoization.
    #[inline]
    pub fn apply<I: Interner>(&mut self, x: Sym, pool: &mut I) -> Option<Sym> {
        if let Some(&cached) = self.memo.get(&x) {
            return cached;
        }
        let result = self.func.apply(x, pool);
        self.memo.insert(x, result);
        result
    }

    /// Number of memoized inputs (for diagnostics/benches).
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }
}

impl From<AttrFunction> for AppliedFunction {
    fn from(func: AttrFunction) -> Self {
        AppliedFunction::new(func)
    }
}

/// A reusable, per-worker application memo.
///
/// Where [`AppliedFunction`] owns one memo per wrapped function,
/// `ApplyScratch` is owned by a search worker and reused across all the
/// blocking refinements that worker performs: `begin` resets it for the
/// next function without dropping the allocation. Keys are input `Sym`s —
/// every distinct value is transformed at most once per function, which is
/// what keeps Algorithm 1's refine-and-cost loop linear in distinct
/// values rather than records.
#[derive(Debug, Default)]
pub struct ApplyScratch {
    memo: FxHashMap<Sym, Option<Sym>>,
}

impl ApplyScratch {
    /// A fresh scratch (typically one per worker).
    pub fn new() -> ApplyScratch {
        ApplyScratch::default()
    }

    /// Reset for a new function, keeping the allocation.
    pub fn begin(&mut self) {
        self.memo.clear();
    }

    /// Apply `func` with memoization against this scratch. The caller is
    /// responsible for calling [`ApplyScratch::begin`] when switching
    /// functions.
    #[inline]
    pub fn apply<I: Interner>(&mut self, func: &AttrFunction, x: Sym, pool: &mut I) -> Option<Sym> {
        if let Some(&cached) = self.memo.get(&x) {
            return cached;
        }
        let result = func.apply(x, pool);
        self.memo.insert(x, result);
        result
    }

    /// Number of memoized inputs.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::{Rational, ValuePool};

    #[test]
    fn memoizes() {
        let mut pool = ValuePool::new();
        let x = pool.intern("80000");
        let mut f = AppliedFunction::new(AttrFunction::Scale(Rational::new(1, 1000).unwrap()));
        let a = f.apply(x, &mut pool);
        let b = f.apply(x, &mut pool);
        assert_eq!(a, b);
        assert_eq!(f.memo_len(), 1);
        assert_eq!(pool.get(a.unwrap()), "80");
    }

    #[test]
    fn memoizes_failures() {
        let mut pool = ValuePool::new();
        let x = pool.intern("IBM");
        let mut f = AppliedFunction::new(AttrFunction::Scale(Rational::new(1, 1000).unwrap()));
        assert_eq!(f.apply(x, &mut pool), None);
        assert_eq!(f.apply(x, &mut pool), None);
        assert_eq!(f.memo_len(), 1);
    }
}
