//! Memoized function application.
//!
//! During the search, the same attribute function is applied to the same
//! distinct value over and over (once per record, per blocking pass, per
//! cost evaluation). [`AppliedFunction`] caches `Sym → Option<Sym>` so each
//! distinct value is transformed exactly once per function.

use affidavit_table::{FxHashMap, Interner, Sym};

use crate::function::AttrFunction;

/// An attribute function bundled with its application memo.
#[derive(Debug, Clone)]
pub struct AppliedFunction {
    func: AttrFunction,
    memo: FxHashMap<Sym, Option<Sym>>,
}

impl AppliedFunction {
    /// Wrap a function with an empty memo.
    pub fn new(func: AttrFunction) -> AppliedFunction {
        AppliedFunction {
            func,
            memo: FxHashMap::default(),
        }
    }

    /// The underlying function.
    pub fn func(&self) -> &AttrFunction {
        &self.func
    }

    /// Apply with memoization.
    #[inline]
    pub fn apply<I: Interner>(&mut self, x: Sym, pool: &mut I) -> Option<Sym> {
        if let Some(&cached) = self.memo.get(&x) {
            return cached;
        }
        let result = self.func.apply(x, pool);
        self.memo.insert(x, result);
        result
    }

    /// Number of memoized inputs (for diagnostics/benches).
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }
}

impl From<AttrFunction> for AppliedFunction {
    fn from(func: AttrFunction) -> Self {
        AppliedFunction::new(func)
    }
}

/// A reusable, per-worker application memo.
///
/// Where [`AppliedFunction`] owns one memo per wrapped function,
/// `ApplyScratch` is owned by a search worker and reused across all the
/// blocking refinements that worker performs: `begin` resets it for the
/// next function without dropping the allocation. Keys are input `Sym`s —
/// every distinct value is transformed at most once per function, which is
/// what keeps Algorithm 1's refine-and-cost loop linear in distinct
/// values rather than records.
#[derive(Debug, Default)]
pub struct ApplyScratch {
    memo: FxHashMap<Sym, Option<Sym>>,
}

impl ApplyScratch {
    /// A fresh scratch (typically one per worker).
    pub fn new() -> ApplyScratch {
        ApplyScratch::default()
    }

    /// Reset for a new function, keeping the allocation.
    pub fn begin(&mut self) {
        self.memo.clear();
    }

    /// Apply `func` with memoization against this scratch. The caller is
    /// responsible for calling [`ApplyScratch::begin`] when switching
    /// functions.
    #[inline]
    pub fn apply<I: Interner>(&mut self, func: &AttrFunction, x: Sym, pool: &mut I) -> Option<Sym> {
        if let Some(&cached) = self.memo.get(&x) {
            return cached;
        }
        let result = func.apply(x, pool);
        self.memo.insert(x, result);
        result
    }

    /// Apply `func` to a whole column slice, memo keyed per column: the
    /// scratch is reset on entry, then every *distinct* symbol in `col` is
    /// transformed exactly once. `out` is overwritten with one result per
    /// row (`None` where the value is untransformable); the return value
    /// is the number of failing rows.
    ///
    /// This is the columnar fast path the table core exposes: the caller
    /// hands the contiguous per-attribute slice ([`Table::column`]) and
    /// gets the transformed column back in one tight loop.
    ///
    /// [`Table::column`]: affidavit_table::Table::column
    pub fn apply_column<I: Interner>(
        &mut self,
        func: &AttrFunction,
        col: &[Sym],
        pool: &mut I,
        out: &mut Vec<Option<Sym>>,
    ) -> usize {
        self.begin();
        out.clear();
        out.reserve(col.len());
        let mut failures = 0usize;
        for &x in col {
            let y = self.apply(func, x, pool);
            failures += y.is_none() as usize;
            out.push(y);
        }
        failures
    }

    /// Number of memoized inputs.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::{Rational, ValuePool};

    #[test]
    fn memoizes() {
        let mut pool = ValuePool::new();
        let x = pool.intern("80000");
        let mut f = AppliedFunction::new(AttrFunction::Scale(Rational::new(1, 1000).unwrap()));
        let a = f.apply(x, &mut pool);
        let b = f.apply(x, &mut pool);
        assert_eq!(a, b);
        assert_eq!(f.memo_len(), 1);
        assert_eq!(pool.get(a.unwrap()), "80");
    }

    #[test]
    fn apply_column_matches_per_value_application() {
        let mut pool = ValuePool::new();
        let col: Vec<Sym> = ["1000", "2000", "IBM", "1000"]
            .iter()
            .map(|s| pool.intern(s))
            .collect();
        let func = AttrFunction::Scale(Rational::new(1, 1000).unwrap());
        let mut scratch = ApplyScratch::new();
        let mut out = Vec::new();
        let failures = scratch.apply_column(&func, &col, &mut pool, &mut out);
        assert_eq!(failures, 1);
        assert_eq!(out.len(), 4);
        assert_eq!(pool.get(out[0].unwrap()), "1");
        assert_eq!(out[2], None);
        assert_eq!(out[0], out[3]);
        // Memo keyed per column: 3 distinct inputs, one application each.
        assert_eq!(scratch.memo_len(), 3);
    }

    #[test]
    fn memoizes_failures() {
        let mut pool = ValuePool::new();
        let x = pool.intern("IBM");
        let mut f = AppliedFunction::new(AttrFunction::Scale(Rational::new(1, 1000).unwrap()));
        assert_eq!(f.apply(x, &mut pool), None);
        assert_eq!(f.apply(x, &mut pool), None);
        assert_eq!(f.memo_len(), 1);
    }
}
