//! Meta-function kinds and the configurable registry.
//!
//! A problem instance's candidate set `F` is described implicitly by a set
//! of *meta functions* (Def. 3.1); the registry records which meta functions
//! are enabled. This mirrors the paper's extension point ("administrators
//! ... are able to customize Affidavit by adding further meta functions").

use serde::{Deserialize, Serialize};

/// The meta functions supported by this implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MetaKind {
    /// `x ↦ x`.
    Identity,
    /// `x ↦ UPPERCASE(x)`.
    Uppercase,
    /// `x ↦ lowercase(x)` (inverse variant of uppercasing).
    Lowercase,
    /// `x ↦ c`.
    Constant,
    /// `x ↦ x + y` on numeric values (y may be negative).
    Addition,
    /// `x ↦ x · r` on numeric values; canonical form of division
    /// (`r = 1/y`) and multiplication (`r = y`).
    Scaling,
    /// Replace the first `|m|` characters with `m`.
    FrontMask,
    /// Replace the last `|m|` characters with `m` (inverse variant).
    BackMask,
    /// Strip all leading repetitions of one character.
    FrontCharTrim,
    /// Strip all trailing repetitions of one character (inverse variant).
    BackCharTrim,
    /// `x ↦ y ◦ x`.
    Prefix,
    /// `x ↦ x ◦ y` (inverse variant).
    Suffix,
    /// `y ◦ x ↦ z ◦ x`, identity on values not starting with `y`.
    PrefixReplace,
    /// `x ◦ y ↦ x ◦ z`, identity on values not ending with `y` (inverse).
    SuffixReplace,
    /// Date format conversion (the §6 extension).
    DateConvert,
    /// Zero-pad digit strings to a fixed width (extension kind).
    ZeroPad,
    /// Insert a thousands separator every three integer digits (extension).
    ThousandsSep,
    /// Remove a thousands separator, validating grouping (extension).
    SepStrip,
    /// Round to a fixed number of fraction digits (extension kind).
    Round,
    /// FlashFill-lite token programs (extension kind; §6 future work).
    TokenProgram,
    /// Explicit value mapping (only induced at finalization, §4.4.1).
    ValueMap,
}

impl MetaKind {
    /// All kinds, in canonical order.
    pub const ALL: [MetaKind; 21] = [
        MetaKind::Identity,
        MetaKind::Uppercase,
        MetaKind::Lowercase,
        MetaKind::Constant,
        MetaKind::Addition,
        MetaKind::Scaling,
        MetaKind::FrontMask,
        MetaKind::BackMask,
        MetaKind::FrontCharTrim,
        MetaKind::BackCharTrim,
        MetaKind::Prefix,
        MetaKind::Suffix,
        MetaKind::PrefixReplace,
        MetaKind::SuffixReplace,
        MetaKind::DateConvert,
        MetaKind::ZeroPad,
        MetaKind::ThousandsSep,
        MetaKind::SepStrip,
        MetaKind::Round,
        MetaKind::TokenProgram,
        MetaKind::ValueMap,
    ];

    /// True for the extension kinds that go beyond the paper's evaluated
    /// catalogue (Table 1 + inverses + date conversion). Extension kinds
    /// are only enabled by [`Registry::extended`].
    pub fn is_extension(self) -> bool {
        matches!(
            self,
            MetaKind::ZeroPad
                | MetaKind::ThousandsSep
                | MetaKind::SepStrip
                | MetaKind::Round
                | MetaKind::TokenProgram
        )
    }
}

/// The set of enabled meta functions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Registry {
    enabled: Vec<MetaKind>,
}

impl Default for Registry {
    /// Everything from Table 1 plus inverse variants plus date conversion —
    /// the catalogue the paper's experiments run with. The formatting and
    /// token-program extension kinds are opt-in via [`Registry::extended`]
    /// so that the reproduced experiments match the paper's search space.
    fn default() -> Self {
        Registry::with_kinds(MetaKind::ALL.into_iter().filter(|k| !k.is_extension()))
    }
}

impl Registry {
    /// Registry with exactly the given kinds (identity is always implied —
    /// `F ⊃ {id}` per Def. 3.1 — and added if missing).
    pub fn with_kinds(kinds: impl IntoIterator<Item = MetaKind>) -> Registry {
        let mut enabled: Vec<MetaKind> = kinds.into_iter().collect();
        if !enabled.contains(&MetaKind::Identity) {
            enabled.push(MetaKind::Identity);
        }
        enabled.sort();
        enabled.dedup();
        Registry { enabled }
    }

    /// The Table 1 set exactly as printed (no date conversion), with
    /// inverse variants.
    pub fn paper_table1() -> Registry {
        Registry::with_kinds(
            MetaKind::ALL
                .into_iter()
                .filter(|k| *k != MetaKind::DateConvert && !k.is_extension()),
        )
    }

    /// The full catalogue including the extension kinds (numeric
    /// formatting and FlashFill-lite token programs).
    pub fn extended() -> Registry {
        Registry::with_kinds(MetaKind::ALL)
    }

    /// True if `kind` is enabled.
    pub fn contains(&self, kind: MetaKind) -> bool {
        self.enabled.contains(&kind)
    }

    /// The enabled kinds.
    pub fn kinds(&self) -> &[MetaKind] {
        &self.enabled
    }

    /// Disable a kind (identity cannot be disabled).
    pub fn disable(&mut self, kind: MetaKind) {
        if kind != MetaKind::Identity {
            self.enabled.retain(|k| *k != kind);
        }
    }

    /// Enable a kind.
    pub fn enable(&mut self, kind: MetaKind) {
        if !self.enabled.contains(&kind) {
            self.enabled.push(kind);
            self.enabled.sort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_paper_catalogue_only() {
        let r = Registry::default();
        for k in MetaKind::ALL {
            assert_eq!(r.contains(k), !k.is_extension(), "{k:?}");
        }
    }

    #[test]
    fn extended_has_all() {
        let r = Registry::extended();
        for k in MetaKind::ALL {
            assert!(r.contains(k));
        }
    }

    #[test]
    fn identity_is_always_present() {
        let r = Registry::with_kinds([MetaKind::Constant]);
        assert!(r.contains(MetaKind::Identity));
        let mut r = Registry::default();
        r.disable(MetaKind::Identity);
        assert!(r.contains(MetaKind::Identity));
    }

    #[test]
    fn disable_enable() {
        let mut r = Registry::default();
        r.disable(MetaKind::DateConvert);
        assert!(!r.contains(MetaKind::DateConvert));
        r.enable(MetaKind::DateConvert);
        assert!(r.contains(MetaKind::DateConvert));
    }

    #[test]
    fn paper_table1_excludes_dates() {
        let r = Registry::paper_table1();
        assert!(!r.contains(MetaKind::DateConvert));
        assert!(r.contains(MetaKind::ValueMap));
    }
}
