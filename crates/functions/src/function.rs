//! Instantiated attribute functions (`f ∈ F`).
//!
//! An [`AttrFunction`] is one concrete instantiation of a meta function.
//! `apply` is *partial*: numeric operations on non-numeric values, masking
//! on too-short strings, non-terminating exact divisions and unparseable
//! dates yield `None`, meaning "this function cannot transform this value"
//! (the record then necessarily falls outside the explanation core — see
//! DESIGN.md §5.3). Prefix/suffix replacement and value mappings fall back
//! to identity, exactly as the paper specifies for `f_Date` in Figure 1.

use std::fmt;

use affidavit_table::{Decimal, Interner, Rational, Sym, SymRemap, ValuePool};

use crate::datetime::DateFormat;
use crate::kind::MetaKind;
use crate::numeric_format;
use crate::substring::TokenProgram;
use crate::value_map::ValueMap;

/// A concrete transformation function on attribute values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttrFunction {
    /// `x ↦ x`.
    Identity,
    /// `x ↦ UPPERCASE(x)`.
    Uppercase,
    /// `x ↦ lowercase(x)`.
    Lowercase,
    /// `x ↦ c`.
    Constant(Sym),
    /// `x ↦ x + y` (numeric; `y ≠ 0`).
    Add(Decimal),
    /// `x ↦ x · r` (numeric; `r ∉ {0, 1}`). Canonical form of both the
    /// division (`r = 1/y`) and multiplication (`r = y`) meta functions.
    Scale(Rational),
    /// Replace the first `|m|` characters with mask `m`.
    FrontMask(Sym),
    /// Replace the last `|m|` characters with mask `m`.
    BackMask(Sym),
    /// Strip all leading repetitions of the character.
    FrontCharTrim(char),
    /// Strip all trailing repetitions of the character.
    BackCharTrim(char),
    /// `x ↦ y ◦ x`.
    Prefix(Sym),
    /// `x ↦ x ◦ y`.
    Suffix(Sym),
    /// `y ◦ x ↦ z ◦ x`; identity on values not starting with `y`.
    PrefixReplace(Sym, Sym),
    /// `x ◦ y ↦ x ◦ z`; identity on values not ending with `y`.
    SuffixReplace(Sym, Sym),
    /// Reinterpret a date from one concrete format into another.
    DateConvert(DateFormat, DateFormat),
    /// Zero-pad a digit string to a fixed width (extension kind).
    ZeroPad(u32),
    /// Insert a thousands separator every three integer digits (extension).
    ThousandsSep(char),
    /// Remove a thousands separator, validating the grouping (extension).
    SepStrip(char),
    /// Round to a fixed number of fraction digits, half away from zero
    /// (extension kind).
    Round(u32),
    /// FlashFill-lite token program (extension kind; §6 future work).
    TokenProgram(TokenProgram),
    /// Explicit value mapping with identity fallback.
    Map(ValueMap),
}

impl AttrFunction {
    /// The meta function this instantiation belongs to.
    pub fn kind(&self) -> MetaKind {
        match self {
            AttrFunction::Identity => MetaKind::Identity,
            AttrFunction::Uppercase => MetaKind::Uppercase,
            AttrFunction::Lowercase => MetaKind::Lowercase,
            AttrFunction::Constant(_) => MetaKind::Constant,
            AttrFunction::Add(_) => MetaKind::Addition,
            AttrFunction::Scale(_) => MetaKind::Scaling,
            AttrFunction::FrontMask(_) => MetaKind::FrontMask,
            AttrFunction::BackMask(_) => MetaKind::BackMask,
            AttrFunction::FrontCharTrim(_) => MetaKind::FrontCharTrim,
            AttrFunction::BackCharTrim(_) => MetaKind::BackCharTrim,
            AttrFunction::Prefix(_) => MetaKind::Prefix,
            AttrFunction::Suffix(_) => MetaKind::Suffix,
            AttrFunction::PrefixReplace(..) => MetaKind::PrefixReplace,
            AttrFunction::SuffixReplace(..) => MetaKind::SuffixReplace,
            AttrFunction::DateConvert(..) => MetaKind::DateConvert,
            AttrFunction::ZeroPad(_) => MetaKind::ZeroPad,
            AttrFunction::ThousandsSep(_) => MetaKind::ThousandsSep,
            AttrFunction::SepStrip(_) => MetaKind::SepStrip,
            AttrFunction::Round(_) => MetaKind::Round,
            AttrFunction::TokenProgram(_) => MetaKind::TokenProgram,
            AttrFunction::Map(_) => MetaKind::ValueMap,
        }
    }

    /// Description length ψ(f): the smallest number of parameters needed to
    /// instantiate the function from its meta function (Def. 3.9).
    pub fn psi(&self) -> u64 {
        match self {
            AttrFunction::Identity | AttrFunction::Uppercase | AttrFunction::Lowercase => 0,
            AttrFunction::Constant(_)
            | AttrFunction::Add(_)
            | AttrFunction::Scale(_)
            | AttrFunction::FrontMask(_)
            | AttrFunction::BackMask(_)
            | AttrFunction::FrontCharTrim(_)
            | AttrFunction::BackCharTrim(_)
            | AttrFunction::Prefix(_)
            | AttrFunction::Suffix(_)
            | AttrFunction::ZeroPad(_)
            | AttrFunction::ThousandsSep(_)
            | AttrFunction::SepStrip(_)
            | AttrFunction::Round(_) => 1,
            AttrFunction::PrefixReplace(..)
            | AttrFunction::SuffixReplace(..)
            | AttrFunction::DateConvert(..) => 2,
            AttrFunction::TokenProgram(p) => p.psi(),
            AttrFunction::Map(m) => m.psi(),
        }
    }

    /// True for the identity function.
    pub fn is_identity(&self) -> bool {
        matches!(self, AttrFunction::Identity)
    }

    /// Apply to an interned value. `None` = this value cannot be
    /// transformed by this function.
    pub fn apply<I: Interner>(&self, x: Sym, pool: &mut I) -> Option<Sym> {
        match self {
            AttrFunction::Identity => Some(x),
            AttrFunction::Constant(c) => Some(*c),
            AttrFunction::Map(m) => Some(m.apply(x)),
            AttrFunction::Uppercase => {
                let s = pool.get(x);
                if s.chars().all(|c| !c.is_lowercase()) {
                    return Some(x); // already uppercase; avoid re-interning
                }
                let up = s.to_uppercase();
                Some(pool.intern(&up))
            }
            AttrFunction::Lowercase => {
                let s = pool.get(x);
                if s.chars().all(|c| !c.is_uppercase()) {
                    return Some(x);
                }
                let low = s.to_lowercase();
                Some(pool.intern(&low))
            }
            AttrFunction::Add(y) => {
                let v = pool.decimal(x)?;
                let r = v.checked_add(*y)?;
                Some(pool.intern(&r.to_string()))
            }
            AttrFunction::Scale(r) => {
                let v = pool.decimal(x)?;
                let out = r.mul_decimal(v)?;
                Some(pool.intern(&out.to_string()))
            }
            AttrFunction::FrontMask(m) => {
                let mask = pool.get(*m).to_owned();
                let s = pool.get(x);
                let k = mask.chars().count();
                let mut idx = s.char_indices();
                // Byte offset after the k-th character, or None if too short.
                let cut = if k == 0 {
                    0
                } else {
                    idx.nth(k - 1).map(|(i, c)| i + c.len_utf8())?
                };
                let out = format!("{}{}", mask, &s[cut..]);
                Some(pool.intern(&out))
            }
            AttrFunction::BackMask(m) => {
                let mask = pool.get(*m).to_owned();
                let s = pool.get(x);
                let k = mask.chars().count();
                let n = s.chars().count();
                if n < k {
                    return None;
                }
                let cut = s
                    .char_indices()
                    .nth(n - k)
                    .map(|(i, _)| i)
                    .unwrap_or(s.len());
                let out = format!("{}{}", &s[..cut], mask);
                Some(pool.intern(&out))
            }
            AttrFunction::FrontCharTrim(c) => {
                let s = pool.get(x);
                let trimmed = s.trim_start_matches(*c);
                if trimmed.len() == s.len() {
                    Some(x)
                } else {
                    let t = trimmed.to_owned();
                    Some(pool.intern(&t))
                }
            }
            AttrFunction::BackCharTrim(c) => {
                let s = pool.get(x);
                let trimmed = s.trim_end_matches(*c);
                if trimmed.len() == s.len() {
                    Some(x)
                } else {
                    let t = trimmed.to_owned();
                    Some(pool.intern(&t))
                }
            }
            AttrFunction::Prefix(y) => {
                let p = pool.get(*y).to_owned();
                let out = format!("{}{}", p, pool.get(x));
                Some(pool.intern(&out))
            }
            AttrFunction::Suffix(y) => {
                let suf = pool.get(*y).to_owned();
                let out = format!("{}{}", pool.get(x), suf);
                Some(pool.intern(&out))
            }
            AttrFunction::PrefixReplace(y, z) => {
                let pat = pool.get(*y).to_owned();
                let s = pool.get(x);
                match s.strip_prefix(pat.as_str()) {
                    None => Some(x), // identity fallback per Figure 1
                    Some(rest) => {
                        let rest = rest.to_owned();
                        let rep = pool.get(*z).to_owned();
                        let out = format!("{rep}{rest}");
                        Some(pool.intern(&out))
                    }
                }
            }
            AttrFunction::SuffixReplace(y, z) => {
                let pat = pool.get(*y).to_owned();
                let s = pool.get(x);
                match s.strip_suffix(pat.as_str()) {
                    None => Some(x),
                    Some(rest) => {
                        let rest = rest.to_owned();
                        let rep = pool.get(*z).to_owned();
                        let out = format!("{rest}{rep}");
                        Some(pool.intern(&out))
                    }
                }
            }
            AttrFunction::DateConvert(from, to) => {
                let d = from.parse(pool.get(x))?;
                let out = to.format(d);
                Some(pool.intern(&out))
            }
            AttrFunction::ZeroPad(width) => {
                let out = numeric_format::zero_pad(pool.get(x), *width as usize)?;
                if out == pool.get(x) {
                    Some(x)
                } else {
                    Some(pool.intern(&out))
                }
            }
            AttrFunction::ThousandsSep(sep) => {
                let out = numeric_format::add_thousands_sep(pool.get(x), *sep)?;
                if out == pool.get(x) {
                    Some(x)
                } else {
                    Some(pool.intern(&out))
                }
            }
            AttrFunction::SepStrip(sep) => {
                let out = numeric_format::strip_thousands_sep(pool.get(x), *sep)?;
                if out == pool.get(x) {
                    Some(x)
                } else {
                    Some(pool.intern(&out))
                }
            }
            AttrFunction::Round(places) => {
                let v = pool.decimal(x)?;
                let r = numeric_format::round_decimal(v, *places)?;
                Some(pool.intern(&r.to_string()))
            }
            AttrFunction::TokenProgram(p) => {
                let out = p.apply_str(pool.get(x), pool)?;
                Some(pool.intern(&out))
            }
        }
    }

    /// Human-readable rendering (needs the pool for `Sym` parameters).
    pub fn display<'a>(&'a self, pool: &'a ValuePool) -> DisplayFn<'a> {
        DisplayFn { f: self, pool }
    }

    /// Rewrite every `Sym` parameter through `remap`.
    ///
    /// Parallel workers induce functions against a `ScratchPool`
    /// overlay (`affidavit_table::ScratchPool`); before such a function
    /// escapes into shared search state, its scratch symbols must be
    /// rewritten to the shared pool's symbols with the
    /// [`SymRemap`] produced by `ValuePool::absorb`.
    pub fn remap(&self, remap: &SymRemap) -> AttrFunction {
        let m = |s: &Sym| remap.remap(*s);
        match self {
            AttrFunction::Identity
            | AttrFunction::Uppercase
            | AttrFunction::Lowercase
            | AttrFunction::Add(_)
            | AttrFunction::Scale(_)
            | AttrFunction::FrontCharTrim(_)
            | AttrFunction::BackCharTrim(_)
            | AttrFunction::DateConvert(..)
            | AttrFunction::ZeroPad(_)
            | AttrFunction::ThousandsSep(_)
            | AttrFunction::SepStrip(_)
            | AttrFunction::Round(_) => self.clone(),
            AttrFunction::Constant(c) => AttrFunction::Constant(m(c)),
            AttrFunction::FrontMask(s) => AttrFunction::FrontMask(m(s)),
            AttrFunction::BackMask(s) => AttrFunction::BackMask(m(s)),
            AttrFunction::Prefix(s) => AttrFunction::Prefix(m(s)),
            AttrFunction::Suffix(s) => AttrFunction::Suffix(m(s)),
            AttrFunction::PrefixReplace(y, z) => AttrFunction::PrefixReplace(m(y), m(z)),
            AttrFunction::SuffixReplace(y, z) => AttrFunction::SuffixReplace(m(y), m(z)),
            AttrFunction::TokenProgram(p) => AttrFunction::TokenProgram(p.remap(remap)),
            AttrFunction::Map(vm) => AttrFunction::Map(vm.remap(remap)),
        }
    }
}

/// Display adapter for [`AttrFunction`].
pub struct DisplayFn<'a> {
    f: &'a AttrFunction,
    pool: &'a ValuePool,
}

impl fmt::Display for DisplayFn<'_> {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.pool;
        match self.f {
            AttrFunction::Identity => write!(out, "x ↦ x"),
            AttrFunction::Uppercase => write!(out, "x ↦ UPPER(x)"),
            AttrFunction::Lowercase => write!(out, "x ↦ lower(x)"),
            AttrFunction::Constant(c) => write!(out, "x ↦ {:?}", p.get(*c)),
            AttrFunction::Add(y) => {
                if y.mantissa() < 0 {
                    write!(out, "x ↦ x - {}", -*y)
                } else {
                    write!(out, "x ↦ x + {y}")
                }
            }
            AttrFunction::Scale(r) => match r.invert().and_then(|inv| inv.to_decimal()) {
                // Prefer the paper's division rendering when 1/r is clean.
                Some(d) if d.is_integer() && !r.to_decimal().is_some_and(|v| v.is_integer()) => {
                    write!(out, "x ↦ x / {d}")
                }
                _ => write!(out, "x ↦ x · {r}"),
            },
            AttrFunction::FrontMask(m) => write!(out, "x ↦ mask_front({:?})", p.get(*m)),
            AttrFunction::BackMask(m) => write!(out, "x ↦ mask_back({:?})", p.get(*m)),
            AttrFunction::FrontCharTrim(c) => write!(out, "x ↦ trim_front({c:?})"),
            AttrFunction::BackCharTrim(c) => write!(out, "x ↦ trim_back({c:?})"),
            AttrFunction::Prefix(y) => write!(out, "x ↦ {:?} ◦ x", p.get(*y)),
            AttrFunction::Suffix(y) => write!(out, "x ↦ x ◦ {:?}", p.get(*y)),
            AttrFunction::PrefixReplace(y, z) => {
                write!(out, "{:?}x ↦ {:?}x, otherwise x ↦ x", p.get(*y), p.get(*z))
            }
            AttrFunction::SuffixReplace(y, z) => {
                write!(out, "x{:?} ↦ x{:?}, otherwise x ↦ x", p.get(*y), p.get(*z))
            }
            AttrFunction::DateConvert(a, b) => {
                write!(out, "x ↦ date({} → {})", a.name(), b.name())
            }
            AttrFunction::ZeroPad(w) => write!(out, "x ↦ zero_pad(x, {w})"),
            AttrFunction::ThousandsSep(c) => write!(out, "x ↦ group_1000s(x, {c:?})"),
            AttrFunction::SepStrip(c) => write!(out, "x ↦ ungroup_1000s(x, {c:?})"),
            AttrFunction::Round(d) => write!(out, "x ↦ round(x, {d})"),
            AttrFunction::TokenProgram(prog) => write!(out, "{}", prog.display(p)),
            AttrFunction::Map(m) => {
                write!(out, "map{{")?;
                for (i, (k, v)) in m.entries().iter().enumerate() {
                    if i > 0 {
                        write!(out, ", ")?;
                    }
                    if i >= 6 {
                        write!(out, "… {} entries", m.len())?;
                        break;
                    }
                    write!(out, "{:?} ↦ {:?}", p.get(*k), p.get(*v))?;
                }
                write!(out, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_with(values: &[&str]) -> (ValuePool, Vec<Sym>) {
        let mut pool = ValuePool::new();
        let syms = values.iter().map(|v| pool.intern(v)).collect();
        (pool, syms)
    }

    fn apply_str(f: &AttrFunction, x: &str) -> Option<String> {
        let mut pool = ValuePool::new();
        let sym = pool.intern(x);
        f.apply(sym, &mut pool).map(|s| pool.get(s).to_owned())
    }

    #[test]
    fn identity_and_cases() {
        assert_eq!(apply_str(&AttrFunction::Identity, "AbC").unwrap(), "AbC");
        assert_eq!(
            apply_str(&AttrFunction::Uppercase, "ab c1").unwrap(),
            "AB C1"
        );
        assert_eq!(
            apply_str(&AttrFunction::Lowercase, "AB c1").unwrap(),
            "ab c1"
        );
    }

    #[test]
    fn constant() {
        let (mut pool, syms) = pool_with(&["k $", "80000"]);
        let f = AttrFunction::Constant(syms[0]);
        assert_eq!(f.apply(syms[1], &mut pool), Some(syms[0]));
    }

    #[test]
    fn addition() {
        let f = AttrFunction::Add(Decimal::parse("9.8").unwrap());
        assert_eq!(apply_str(&f, "0").unwrap(), "9.8");
        assert_eq!(apply_str(&f, "0.2").unwrap(), "10");
        assert!(apply_str(&f, "IBM").is_none());
    }

    #[test]
    fn scale_division_paper() {
        // x ↦ x / 1000 is Scale(1/1000).
        let f = AttrFunction::Scale(Rational::new(1, 1000).unwrap());
        assert_eq!(apply_str(&f, "80000").unwrap(), "80");
        assert_eq!(apply_str(&f, "65").unwrap(), "0.065");
        assert_eq!(apply_str(&f, "0").unwrap(), "0");
        assert!(apply_str(&f, "USD").is_none());
    }

    #[test]
    fn scale_nonterminating_is_none() {
        let f = AttrFunction::Scale(Rational::new(1, 3).unwrap());
        assert!(apply_str(&f, "1").is_none());
        assert_eq!(apply_str(&f, "6").unwrap(), "2");
    }

    #[test]
    fn front_mask() {
        let (mut pool, syms) = pool_with(&["2018070", "99991231"]);
        let f = AttrFunction::FrontMask(syms[0]);
        let out = f.apply(syms[1], &mut pool).unwrap();
        assert_eq!(pool.get(out), "20180701");
        // too short
        let short = pool.intern("123");
        assert!(f.apply(short, &mut pool).is_none());
    }

    #[test]
    fn back_mask() {
        let (mut pool, syms) = pool_with(&["XX", "abcd"]);
        let f = AttrFunction::BackMask(syms[0]);
        let out = f.apply(syms[1], &mut pool).unwrap();
        assert_eq!(pool.get(out), "abXX");
    }

    #[test]
    fn char_trims() {
        assert_eq!(
            apply_str(&AttrFunction::FrontCharTrim('0'), "000123").unwrap(),
            "123"
        );
        assert_eq!(
            apply_str(&AttrFunction::FrontCharTrim('0'), "12300").unwrap(),
            "12300"
        );
        assert_eq!(
            apply_str(&AttrFunction::FrontCharTrim('0'), "0000").unwrap(),
            ""
        );
        assert_eq!(
            apply_str(&AttrFunction::BackCharTrim('0'), "12300").unwrap(),
            "123"
        );
    }

    #[test]
    fn prefix_suffix() {
        let (mut pool, syms) = pool_with(&["pre-", "body"]);
        let f = AttrFunction::Prefix(syms[0]);
        let out = f.apply(syms[1], &mut pool).unwrap();
        assert_eq!(pool.get(out), "pre-body");
        let g = AttrFunction::Suffix(syms[0]);
        let out = g.apply(syms[1], &mut pool).unwrap();
        assert_eq!(pool.get(out), "bodypre-");
    }

    #[test]
    fn prefix_replace_with_identity_fallback() {
        // Figure 1: f_Date = '9999123'x ↦ '2018070'x, otherwise x ↦ x.
        let (mut pool, syms) = pool_with(&["9999123", "2018070", "99991231", "20130416"]);
        let f = AttrFunction::PrefixReplace(syms[0], syms[1]);
        let out = f.apply(syms[2], &mut pool).unwrap();
        assert_eq!(pool.get(out), "20180701");
        assert_eq!(f.apply(syms[3], &mut pool), Some(syms[3])); // fallback
    }

    #[test]
    fn suffix_replace() {
        let (mut pool, syms) = pool_with(&["_old", "_new", "key_old", "other"]);
        let f = AttrFunction::SuffixReplace(syms[0], syms[1]);
        let out = f.apply(syms[2], &mut pool).unwrap();
        assert_eq!(pool.get(out), "key_new");
        assert_eq!(f.apply(syms[3], &mut pool), Some(syms[3]));
    }

    #[test]
    fn date_convert() {
        use crate::datetime::DateFormat;
        let f = AttrFunction::DateConvert(DateFormat::MonthNameDy, DateFormat::YyyyMmDd);
        assert_eq!(apply_str(&f, "Sep 31 2019").unwrap(), "20190931");
        assert!(apply_str(&f, "not a date").is_none());
    }

    #[test]
    fn psi_values() {
        let (_, syms) = pool_with(&["a", "b"]);
        assert_eq!(AttrFunction::Identity.psi(), 0);
        assert_eq!(AttrFunction::Uppercase.psi(), 0);
        assert_eq!(AttrFunction::Constant(syms[0]).psi(), 1);
        assert_eq!(AttrFunction::Add(Decimal::from_int(5)).psi(), 1);
        assert_eq!(AttrFunction::PrefixReplace(syms[0], syms[1]).psi(), 2);
        let m = ValueMap::from_pairs([(Sym(0), Sym(1)), (Sym(2), Sym(3))]);
        assert_eq!(AttrFunction::Map(m).psi(), 4);
    }

    #[test]
    fn unicode_masking() {
        let (mut pool, syms) = pool_with(&["ÄÖ", "こんにちは"]);
        let f = AttrFunction::FrontMask(syms[0]);
        let out = f.apply(syms[1], &mut pool).unwrap();
        assert_eq!(pool.get(out), "ÄÖにちは");
    }

    #[test]
    fn display_renders() {
        let mut pool = ValuePool::new();
        let k = pool.intern("k $");
        let f = AttrFunction::Constant(k);
        assert_eq!(f.display(&pool).to_string(), "x ↦ \"k $\"");
        let g = AttrFunction::Scale(Rational::new(1, 1000).unwrap());
        assert_eq!(g.display(&pool).to_string(), "x ↦ x / 1000");
        let h = AttrFunction::Scale(Rational::new(1000, 1).unwrap());
        assert_eq!(h.display(&pool).to_string(), "x ↦ x · 1000");
    }
}
