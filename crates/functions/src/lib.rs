//! Transformation functions for the Affidavit reproduction.
//!
//! Implements the meta-function catalogue of Table 1 of the paper,
//! the inverse variants the paper names ("The inverse variants of these
//! functions are also supported, e.g. suffixing in addition to prefixing"),
//! and the date-conversion extension described in §4.4.1/§6.
//!
//! | Meta function        | Operation                     | ψ (params) |
//! |----------------------|-------------------------------|------------|
//! | Identity             | `x ↦ x`                       | 0          |
//! | Uppercasing          | `x ↦ UPPER(x)`                | 0          |
//! | Lowercasing (inv.)   | `x ↦ lower(x)`                | 0          |
//! | Constant Value       | `x ↦ c`                       | 1          |
//! | Addition (numeric)   | `x ↦ x + y`                   | 1          |
//! | Scaling (Div/Mul)    | `x ↦ x · r` (shown as `x/y`)  | 1          |
//! | Front Masking        | `.{|m|} ◦ x ↦ m ◦ x`          | 1          |
//! | Back Masking (inv.)  | `x ◦ .{|m|} ↦ x ◦ m`          | 1          |
//! | Front Char Trimming  | `[c]* ◦ x ↦ x`                | 1          |
//! | Back Char Trimming   | `x ◦ [c]* ↦ x`                | 1          |
//! | Prefixing            | `x ↦ y ◦ x`                   | 1          |
//! | Suffixing (inv.)     | `x ↦ x ◦ y`                   | 1          |
//! | Prefix Replacement   | `y ◦ x ↦ z ◦ x`, else id      | 2          |
//! | Suffix Replacement   | `x ◦ y ↦ x ◦ z`, else id      | 2          |
//! | Date Conversion      | format → format               | 2          |
//! | Value Mapping        | explicit pairs                | 2·n        |
//!
//! Beyond the paper's catalogue, the **extension kinds** (enabled via
//! [`kind::Registry::extended`]) implement the §6 future-work direction of
//! a "richer set of functions by default":
//!
//! | Extension kind       | Operation                     | ψ (params) |
//! |----------------------|-------------------------------|------------|
//! | Zero Padding         | pad digit strings to width    | 1          |
//! | Thousands Grouping   | `1234567 ↦ 1,234,567`         | 1          |
//! | Separator Stripping  | `1,234,567 ↦ 1234567`         | 1          |
//! | Rounding             | half-away-from-zero, d places | 1          |
//! | Token Program        | FlashFill-lite reassembly     | #segments  |
//!
//! Division and multiplication are canonicalized into a single
//! [`function::AttrFunction::Scale`] variant carrying an exact rational so
//! that `x ↦ x/1000` and `x ↦ x · 1/1000` (which are the *same* function)
//! cannot both occupy candidate slots during the search.

//! ```
//! use affidavit_functions::AttrFunction;
//! use affidavit_table::{Rational, ValuePool};
//!
//! let mut pool = ValuePool::new();
//! let x = pool.intern("65");
//! let f = AttrFunction::Scale(Rational::new(1, 1000).unwrap());
//! let y = f.apply(x, &mut pool).unwrap();
//! // Exact arithmetic: the string "0.065", never 0.06500000000000001.
//! assert_eq!(pool.get(y), "0.065");
//! // Application is partial — scaling a non-number explains nothing.
//! let org = pool.intern("IBM");
//! assert_eq!(f.apply(org, &mut pool), None);
//! ```

#![warn(missing_docs)]

pub mod apply_cache;
pub mod corpus;
pub mod datetime;
pub mod function;
pub mod induce;
pub mod kind;
pub mod numeric_format;
pub mod substring;
pub mod tokens;
pub mod value_map;

pub use apply_cache::{AppliedFunction, ApplyScratch};
pub use corpus::corpus_candidates;
pub use function::AttrFunction;
pub use induce::induce_from_example;
pub use kind::{MetaKind, Registry};
pub use value_map::ValueMap;
