//! A miniature retrieval corpus of ready-made transformations — the
//! paper's §6 future-work direction ("it would be interesting to integrate
//! a function corpus like it was done in TDE \[15\] instead of manually
//! extending the supported functions").
//!
//! TDE crawled 50 k functions from GitHub/StackOverflow and *retrieved*
//! fitting ones instead of inducing them. This module is the same idea at
//! library scale: a curated list of common real-world cell transformations
//! (unit conversions, casing, trimming, sentinel rewrites, date formats).
//! [`corpus_candidates`] filters the corpus against a single input-output
//! example, exactly like induction — so retrieved functions flow through
//! the ordinary ranking machinery.

use affidavit_table::{Interner, Rational, Sym};

use crate::datetime::DateFormat;
use crate::function::AttrFunction;
use crate::substring::{Segment, TokenProgram};

/// Entries that need no interning (fixed parameters).
fn fixed_entries() -> Vec<AttrFunction> {
    let mut out = vec![
        AttrFunction::Uppercase,
        AttrFunction::Lowercase,
        AttrFunction::FrontCharTrim('0'),
        AttrFunction::FrontCharTrim(' '),
        AttrFunction::BackCharTrim(' '),
        AttrFunction::BackCharTrim('0'),
    ];
    // Formatting staples: zero-padded code widths, thousands grouping,
    // precision cuts (all extension kinds, retrieved like anything else).
    for w in [4u32, 6, 8, 10] {
        out.push(AttrFunction::ZeroPad(w));
    }
    for sep in [',', ' '] {
        out.push(AttrFunction::ThousandsSep(sep));
        out.push(AttrFunction::SepStrip(sep));
    }
    for places in [0u32, 1, 2] {
        out.push(AttrFunction::Round(places));
    }
    // Power-of-ten rescales (cents↔euros, milli/kilo/mega units).
    for k in [10i128, 100, 1000, 1_000_000] {
        out.push(AttrFunction::Scale(Rational::new(1, k).expect("non-zero")));
        out.push(AttrFunction::Scale(Rational::new(k, 1).expect("non-zero")));
    }
    // Common non-decimal unit ratios.
    for (num, den) in [(1i128, 60i128), (60, 1), (1, 1024), (1024, 1)] {
        out.push(AttrFunction::Scale(
            Rational::new(num, den).expect("non-zero"),
        ));
    }
    // Date format conversions between all catalogued formats.
    for from in DateFormat::ALL {
        for to in DateFormat::ALL {
            if from != to {
                out.push(AttrFunction::DateConvert(from, to));
            }
        }
    }
    out
}

/// Entries with string parameters (interned on construction).
fn interned_entries<I: Interner>(pool: &mut I) -> Vec<AttrFunction> {
    let mut out = Vec::new();
    // Common boolean / flag rewrites as prefix replacements of the whole
    // value (conditional, identity on everything else).
    for (y, z) in [
        ("yes", "true"),
        ("no", "false"),
        ("Y", "1"),
        ("N", "0"),
        ("true", "1"),
        ("false", "0"),
    ] {
        let y = pool.intern(y);
        let z = pool.intern(z);
        out.push(AttrFunction::PrefixReplace(y, z));
    }
    // The classic name flip, "Last, First" ↔ "First Last", as token
    // programs (the most common FlashFill demo for a reason).
    let space = pool.intern(" ");
    let comma_space = pool.intern(", ");
    for glue in [space, comma_space] {
        out.push(AttrFunction::TokenProgram(
            TokenProgram::new(vec![
                Segment::Token {
                    idx: 1,
                    from_end: false,
                },
                Segment::Literal(glue),
                Segment::Token {
                    idx: 0,
                    from_end: false,
                },
            ])
            .expect("two-token flip is a valid program"),
        ));
    }
    out
}

/// The whole corpus (built fresh; callers usually go through
/// [`corpus_candidates`], which filters by example).
pub fn full_corpus<I: Interner>(pool: &mut I) -> Vec<AttrFunction> {
    let _span = affidavit_obs::span("induce.corpus");
    let mut out = fixed_entries();
    out.extend(interned_entries(pool));
    out
}

/// Retrieve the corpus functions consistent with one example `(s, t)`:
/// every returned `f` satisfies `f(s) = t`. The complement of induction —
/// no parameters are learned, fitting entries are simply looked up.
pub fn corpus_candidates<I: Interner>(s: Sym, t: Sym, pool: &mut I) -> Vec<AttrFunction> {
    if s == t {
        return Vec::new(); // identity is not a corpus matter
    }
    full_corpus(pool)
        .into_iter()
        .filter(|f| f.apply(s, pool) == Some(t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::ValuePool;

    fn retrieve(s: &str, t: &str) -> (Vec<AttrFunction>, ValuePool) {
        let mut pool = ValuePool::new();
        let ss = pool.intern(s);
        let tt = pool.intern(t);
        let c = corpus_candidates(ss, tt, &mut pool);
        (c, pool)
    }

    #[test]
    fn corpus_is_nontrivial() {
        let mut pool = ValuePool::new();
        assert!(full_corpus(&mut pool).len() > 60);
    }

    #[test]
    fn retrieves_unit_conversions() {
        let (c, _) = retrieve("2048", "2");
        assert!(c
            .iter()
            .any(|f| matches!(f, AttrFunction::Scale(r) if r.den() == 1024)));
    }

    #[test]
    fn retrieves_minutes_to_hours() {
        let (c, _) = retrieve("120", "2");
        assert!(c
            .iter()
            .any(|f| matches!(f, AttrFunction::Scale(r) if r.den() == 60)));
    }

    #[test]
    fn retrieves_flag_rewrites() {
        let (c, pool) = retrieve("yes", "true");
        assert!(c
            .iter()
            .any(|f| matches!(f, AttrFunction::PrefixReplace(y, _)
            if pool.get(*y) == "yes")));
    }

    #[test]
    fn retrieves_date_conversions() {
        let (c, _) = retrieve("20190230", "2019-02-30");
        assert!(c.iter().any(|f| matches!(
            f,
            AttrFunction::DateConvert(DateFormat::YyyyMmDd, DateFormat::IsoDashed)
        )));
    }

    #[test]
    fn every_retrieved_function_fits_the_example() {
        for (s, t) in [("000x", "x"), ("ab", "AB"), ("5000", "5"), ("N", "0")] {
            let mut pool = ValuePool::new();
            let ss = pool.intern(s);
            let tt = pool.intern(t);
            for f in corpus_candidates(ss, tt, &mut pool) {
                let got = f.apply(ss, &mut pool).map(|g| pool.get(g).to_owned());
                assert_eq!(got.as_deref(), Some(t), "{f:?} on {s:?}");
            }
        }
    }

    #[test]
    fn no_match_returns_empty() {
        let (c, _) = retrieve("alpha", "omega");
        assert!(c.is_empty());
    }

    #[test]
    fn retrieves_formatting_entries() {
        let (c, _) = retrieve("65", "000065");
        assert!(c.contains(&AttrFunction::ZeroPad(6)), "{c:?}");
        let (c, _) = retrieve("3780000", "3,780,000");
        assert!(c.contains(&AttrFunction::ThousandsSep(',')), "{c:?}");
        let (c, _) = retrieve("422.437", "422.44");
        assert!(c.contains(&AttrFunction::Round(2)), "{c:?}");
    }

    #[test]
    fn retrieves_name_flip_program() {
        let (c, pool) = retrieve("Doe, John", "John Doe");
        let flip = c.iter().find_map(|f| match f {
            AttrFunction::TokenProgram(p) => Some(p),
            _ => None,
        });
        let flip = flip.expect("name flip retrieved");
        assert_eq!(
            flip.apply_str("Hopper, Grace", &pool).as_deref(),
            Some("Grace Hopper")
        );
    }
}
