//! Single-example function induction (§4.4.1).
//!
//! "Our framework supports any meta function whose parameters are learnable
//! from one input-output example." Given one noisy example `(s, t)` sampled
//! from a block, [`induce_from_example`] generates every enabled meta
//! function's instantiations that map `s` to `t`. For ambiguous examples
//! (e.g. the date `'Oct 10 2019' ↦ '20191010'`) *all* consistent candidates
//! are generated, exactly as the paper suggests ("one could simply generate
//! both candidate functions").

use affidavit_table::{Interner, Rational, Sym};

use crate::datetime::induce_conversions;
use crate::function::AttrFunction;
use crate::kind::{MetaKind, Registry};
use crate::numeric_format;
use crate::substring::induce_token_programs;

/// Length in bytes of the longest common prefix of `a` and `b` that ends on
/// a character boundary of both.
fn common_prefix_bytes(a: &str, b: &str) -> usize {
    let mut len = 0;
    let mut ai = a.chars();
    let mut bi = b.chars();
    loop {
        match (ai.next(), bi.next()) {
            (Some(ca), Some(cb)) if ca == cb => len += ca.len_utf8(),
            _ => return len,
        }
    }
}

/// Length in bytes of the longest common suffix (character-boundary safe).
fn common_suffix_bytes(a: &str, b: &str) -> usize {
    let mut len = 0;
    let mut ai = a.chars().rev();
    let mut bi = b.chars().rev();
    loop {
        match (ai.next(), bi.next()) {
            (Some(ca), Some(cb)) if ca == cb => len += ca.len_utf8(),
            _ => return len,
        }
    }
}

/// Induce all candidate functions mapping `s` to `t` under the enabled meta
/// functions. Every returned `f` satisfies `f(s) = t`.
pub fn induce_from_example<I: Interner>(
    s: Sym,
    t: Sym,
    pool: &mut I,
    reg: &Registry,
) -> Vec<AttrFunction> {
    let mut out = Vec::new();

    if s == t {
        if reg.contains(MetaKind::Identity) {
            out.push(AttrFunction::Identity);
        }
        if reg.contains(MetaKind::Constant) {
            out.push(AttrFunction::Constant(t));
        }
        return out;
    }

    if reg.contains(MetaKind::Constant) {
        out.push(AttrFunction::Constant(t));
    }

    // Case transformations. `s != t` here, so these are real changes.
    let (s_str, t_str) = (pool.get(s).to_owned(), pool.get(t).to_owned());
    if reg.contains(MetaKind::Uppercase) && s_str.to_uppercase() == t_str {
        out.push(AttrFunction::Uppercase);
    }
    if reg.contains(MetaKind::Lowercase) && s_str.to_lowercase() == t_str {
        out.push(AttrFunction::Lowercase);
    }

    // Numeric transformations. Arithmetic functions emit *canonical*
    // decimal strings, so they can only reproduce targets that are already
    // canonically formatted ("00" or "1.50" can never be an Add/Scale
    // output — found by the `induction_is_sound` property test).
    let numeric_target_canonical =
        matches!(pool.decimal(t), Some(tv) if tv.to_string() == pool.get(t));
    if let (Some(sv), Some(tv)) = (
        pool.decimal(s),
        pool.decimal(t).filter(|_| numeric_target_canonical),
    ) {
        if reg.contains(MetaKind::Addition) {
            if let Some(y) = tv.checked_sub(sv) {
                if !y.is_zero() {
                    out.push(AttrFunction::Add(y));
                }
            }
        }
        if reg.contains(MetaKind::Scaling) && !sv.is_zero() && !tv.is_zero() {
            if let Some(r) = Rational::from_decimals(tv, sv) {
                if !r.is_one() && !r.is_zero() {
                    out.push(AttrFunction::Scale(r));
                }
            }
        }
    }

    let s_chars = s_str.chars().count();
    let t_chars = t_str.chars().count();
    let pre = common_prefix_bytes(&s_str, &t_str);
    let suf = common_suffix_bytes(&s_str, &t_str);

    // Front masking: equal length, mask = target prefix up to the longest
    // common suffix (the shortest, most general mask).
    if reg.contains(MetaKind::FrontMask) && s_chars == t_chars && s_chars >= 1 {
        let mask = &t_str[..t_str.len() - suf];
        debug_assert!(!mask.is_empty(), "s != t guarantees a non-empty mask");
        let m = pool.intern(mask);
        out.push(AttrFunction::FrontMask(m));
    }
    if reg.contains(MetaKind::BackMask) && s_chars == t_chars && s_chars >= 1 {
        let mask = &t_str[pre..];
        let m = pool.intern(mask);
        out.push(AttrFunction::BackMask(m));
    }

    // Front char trimming: s = c^k ◦ t, t must not start with c (greedy *).
    if reg.contains(MetaKind::FrontCharTrim) && s_str.len() > t_str.len() && s_str.ends_with(&t_str)
    {
        let head = &s_str[..s_str.len() - t_str.len()];
        let mut chars = head.chars();
        let c = chars.next().expect("head is non-empty");
        if chars.all(|x| x == c) && !t_str.starts_with(c) {
            out.push(AttrFunction::FrontCharTrim(c));
        }
    }
    if reg.contains(MetaKind::BackCharTrim)
        && s_str.len() > t_str.len()
        && s_str.starts_with(&t_str)
    {
        let tail = &s_str[t_str.len()..];
        let mut chars = tail.chars();
        let c = chars.next().expect("tail is non-empty");
        if chars.all(|x| x == c) && !t_str.ends_with(c) {
            out.push(AttrFunction::BackCharTrim(c));
        }
    }

    // Prefixing / suffixing: t strictly extends s.
    if reg.contains(MetaKind::Prefix) && t_str.len() > s_str.len() && t_str.ends_with(&s_str) {
        let y = pool.intern(&t_str[..t_str.len() - s_str.len()]);
        out.push(AttrFunction::Prefix(y));
    }
    if reg.contains(MetaKind::Suffix) && t_str.len() > s_str.len() && t_str.starts_with(&s_str) {
        let y = pool.intern(&t_str[s_str.len()..]);
        out.push(AttrFunction::Suffix(y));
    }

    // Prefix replacement: split off the longest common suffix; the replaced
    // prefix must be non-empty (otherwise this is plain prefixing).
    if reg.contains(MetaKind::PrefixReplace) {
        let y = &s_str[..s_str.len() - suf];
        let z = &t_str[..t_str.len() - suf];
        if !y.is_empty() && y != z {
            let y = pool.intern(y);
            let z = pool.intern(z);
            out.push(AttrFunction::PrefixReplace(y, z));
        }
    }
    if reg.contains(MetaKind::SuffixReplace) {
        let y = &s_str[pre..];
        let z = &t_str[pre..];
        if !y.is_empty() && y != z {
            let y = pool.intern(y);
            let z = pool.intern(z);
            out.push(AttrFunction::SuffixReplace(y, z));
        }
    }

    if reg.contains(MetaKind::DateConvert) {
        for (from, to) in induce_conversions(&s_str, &t_str) {
            out.push(AttrFunction::DateConvert(from, to));
        }
    }

    // --- Extension kinds (Registry::extended) ---------------------------

    // Zero padding: t = 0^k ◦ s over pure digit strings.
    if reg.contains(MetaKind::ZeroPad)
        && t_str.len() > s_str.len()
        && t_str.ends_with(&s_str)
        && !s_str.is_empty()
        && t_str.bytes().all(|b| b.is_ascii_digit())
        && t_str[..t_str.len() - s_str.len()]
            .bytes()
            .all(|b| b == b'0')
    {
        out.push(AttrFunction::ZeroPad(t_str.len() as u32));
    }

    // Thousands grouping and its inverse: probe each unambiguous separator.
    for sep in numeric_format::SEPARATORS {
        if reg.contains(MetaKind::ThousandsSep)
            && numeric_format::add_thousands_sep(&s_str, sep).as_deref() == Some(&t_str)
        {
            out.push(AttrFunction::ThousandsSep(sep));
        }
        if reg.contains(MetaKind::SepStrip)
            && s_str.contains(sep)
            && numeric_format::strip_thousands_sep(&s_str, sep).as_deref() == Some(&t_str)
        {
            out.push(AttrFunction::SepStrip(sep));
        }
    }

    // Rounding: the target's fraction length fixes the number of places;
    // canonical-format target required for the same soundness reason as
    // Add/Scale above.
    if reg.contains(MetaKind::Round) && numeric_target_canonical {
        if let (Some(sv), Some(tv)) = (pool.decimal(s), pool.decimal(t)) {
            if sv.scale() > tv.scale() && numeric_format::round_decimal(sv, tv.scale()) == Some(tv)
            {
                out.push(AttrFunction::Round(tv.scale()));
            }
        }
    }

    // FlashFill-lite token programs (front- and back-indexed variants).
    if reg.contains(MetaKind::TokenProgram) {
        for p in induce_token_programs(&s_str, &t_str, pool) {
            out.push(AttrFunction::TokenProgram(p));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::ValuePool;

    fn induce(s: &str, t: &str) -> (Vec<AttrFunction>, ValuePool) {
        let mut pool = ValuePool::new();
        let s = pool.intern(s);
        let t = pool.intern(t);
        let reg = Registry::default();
        let fs = induce_from_example(s, t, &mut pool, &reg);
        (fs, pool)
    }

    /// Every induced candidate must actually map s to t.
    fn assert_all_consistent(s: &str, t: &str) {
        let mut pool = ValuePool::new();
        let ss = pool.intern(s);
        let tt = pool.intern(t);
        let reg = Registry::default();
        let fs = induce_from_example(ss, tt, &mut pool, &reg);
        assert!(!fs.is_empty());
        for f in &fs {
            let got = f.apply(ss, &mut pool);
            assert_eq!(
                got.map(|g| pool.get(g).to_owned()),
                Some(t.to_owned()),
                "candidate {f:?} does not map {s:?} to {t:?}"
            );
        }
    }

    #[test]
    fn identity_example() {
        let (fs, _) = induce("IBM", "IBM");
        assert!(fs.contains(&AttrFunction::Identity));
        assert_eq!(fs.len(), 2); // identity + constant
    }

    #[test]
    fn paper_val_example() {
        // §4.4.2: from T08's Val value '9.8' and block sources
        // {'6540','9800','0'}: x−6530.2, x/1000, x+9.8, const '9.8'.
        let (fs, _) = induce("9800", "9.8");
        assert!(fs
            .iter()
            .any(|f| matches!(f, AttrFunction::Scale(r) if r.num() == 1 && r.den() == 1000)));
        assert!(fs.iter().any(|f| matches!(f, AttrFunction::Add(_))));
        assert!(fs.iter().any(|f| matches!(f, AttrFunction::Constant(_))));
        assert_all_consistent("9800", "9.8");
        assert_all_consistent("6540", "9.8");
        assert_all_consistent("0", "9.8");
    }

    #[test]
    fn prefix_replace_paper_date() {
        // '99991231' ↦ '20180701' must induce '9999123'x ↦ '2018070'x.
        let (fs, pool) = induce("99991231", "20180701");
        let found = fs.iter().any(|f| {
            matches!(f, AttrFunction::PrefixReplace(y, z)
                if pool.get(*y) == "9999123" && pool.get(*z) == "2018070")
        });
        assert!(found, "candidates: {fs:?}");
        assert_all_consistent("99991231", "20180701");
    }

    #[test]
    fn masks_and_trims() {
        assert_all_consistent("ABCD", "XXCD");
        assert_all_consistent("ABCD", "ABXX");
        assert_all_consistent("000123", "123");
        assert_all_consistent("12300", "123");
        let (fs, _) = induce("000123", "123");
        assert!(fs.contains(&AttrFunction::FrontCharTrim('0')));
    }

    #[test]
    fn prefix_suffix() {
        let (fs, pool) = induce("body", "pre-body");
        assert!(fs
            .iter()
            .any(|f| matches!(f, AttrFunction::Prefix(y) if pool.get(*y) == "pre-")));
        assert_all_consistent("body", "pre-body");
        assert_all_consistent("body", "body.txt");
    }

    #[test]
    fn uppercase_example() {
        let (fs, _) = induce("usd", "USD");
        assert!(fs.contains(&AttrFunction::Uppercase));
        assert_all_consistent("usd", "USD");
    }

    #[test]
    fn trim_not_induced_when_target_starts_with_trim_char() {
        // s = "0012", t = "012": stripping all leading zeros of s gives
        // "12", not "012" — FrontCharTrim must NOT be induced.
        let (fs, _) = induce("0012", "012");
        assert!(!fs.contains(&AttrFunction::FrontCharTrim('0')));
        // But every candidate that *is* induced must still be consistent.
        assert_all_consistent("0012", "012");
    }

    #[test]
    fn date_example() {
        let (fs, _) = induce("Sep 31 2019", "20190931");
        assert!(fs
            .iter()
            .any(|f| matches!(f, AttrFunction::DateConvert(..))));
        assert_all_consistent("Sep 31 2019", "20190931");
    }

    #[test]
    fn no_scale_for_zero_source() {
        let (fs, _) = induce("0", "9.8");
        assert!(!fs.iter().any(|f| matches!(f, AttrFunction::Scale(_))));
    }

    #[test]
    fn respects_registry() {
        let mut pool = ValuePool::new();
        let s = pool.intern("9800");
        let t = pool.intern("9.8");
        let reg = Registry::with_kinds([MetaKind::Constant]);
        let fs = induce_from_example(s, t, &mut pool, &reg);
        assert!(fs.iter().all(|f| matches!(f, AttrFunction::Constant(_))));
    }

    #[test]
    fn unicode_examples_consistent() {
        assert_all_consistent("münchen", "MÜNCHEN");
        assert_all_consistent("日本語", "日本語!");
        assert_all_consistent("ääb", "b");
    }

    // ---- extension kinds (Registry::extended) --------------------------

    fn induce_ext(s: &str, t: &str) -> (Vec<AttrFunction>, ValuePool) {
        let mut pool = ValuePool::new();
        let ss = pool.intern(s);
        let tt = pool.intern(t);
        let fs = induce_from_example(ss, tt, &mut pool, &Registry::extended());
        (fs, pool)
    }

    fn assert_ext_consistent(s: &str, t: &str) {
        let mut pool = ValuePool::new();
        let ss = pool.intern(s);
        let tt = pool.intern(t);
        let fs = induce_from_example(ss, tt, &mut pool, &Registry::extended());
        for f in &fs {
            let got = f.apply(ss, &mut pool);
            assert_eq!(
                got.map(|g| pool.get(g).to_owned()),
                Some(t.to_owned()),
                "extension candidate {f:?} does not map {s:?} to {t:?}"
            );
        }
    }

    #[test]
    fn default_registry_excludes_extension_kinds() {
        let (fs, _) = induce("65", "00065");
        assert!(!fs.iter().any(|f| matches!(f, AttrFunction::ZeroPad(_))));
        let (fs, _) = induce("3780000", "3,780,000");
        assert!(!fs
            .iter()
            .any(|f| matches!(f, AttrFunction::ThousandsSep(_))));
    }

    #[test]
    fn zero_pad_induced() {
        let (fs, _) = induce_ext("65", "00065");
        assert!(fs.contains(&AttrFunction::ZeroPad(5)));
        assert_ext_consistent("65", "00065");
        // Not induced when the payload is not pure digits.
        let (fs, _) = induce_ext("6a", "006a");
        assert!(!fs.iter().any(|f| matches!(f, AttrFunction::ZeroPad(_))));
    }

    #[test]
    fn thousands_sep_induced() {
        let (fs, _) = induce_ext("3780000", "3,780,000");
        assert!(fs.contains(&AttrFunction::ThousandsSep(',')));
        assert_ext_consistent("3780000", "3,780,000");
        let (fs, _) = induce_ext("425000", "425 000");
        assert!(fs.contains(&AttrFunction::ThousandsSep(' ')));
    }

    #[test]
    fn sep_strip_induced() {
        let (fs, _) = induce_ext("3,780,000", "3780000");
        assert!(fs.contains(&AttrFunction::SepStrip(',')));
        assert_ext_consistent("3,780,000", "3780000");
        // Malformed grouping cannot induce the strip function.
        let (fs, _) = induce_ext("1,00", "100");
        assert!(!fs.iter().any(|f| matches!(f, AttrFunction::SepStrip(_))));
    }

    #[test]
    fn round_induced() {
        let (fs, _) = induce_ext("422.437", "422.44");
        assert!(fs.contains(&AttrFunction::Round(2)));
        assert_ext_consistent("422.437", "422.44");
        // Non-canonical targets cannot be rounding outputs.
        let (fs, _) = induce_ext("422.437", "422.40");
        assert!(!fs.iter().any(|f| matches!(f, AttrFunction::Round(_))));
    }

    #[test]
    fn token_program_induced() {
        let (fs, pool) = induce_ext("Doe, John", "John Doe");
        let prog = fs.iter().find_map(|f| match f {
            AttrFunction::TokenProgram(p) => Some(p.clone()),
            _ => None,
        });
        let prog = prog.expect("token program induced");
        assert_eq!(
            prog.apply_str("Fink, Manuel", &pool).as_deref(),
            Some("Manuel Fink")
        );
        assert_ext_consistent("Doe, John", "John Doe");
        assert_ext_consistent("2019-08-01", "08/01/2019");
    }

    #[test]
    fn extension_kinds_are_sound_on_tricky_examples() {
        // Values where several extension kinds could misfire at once.
        for (s, t) in [
            ("1000", "1 000"),
            ("0.9999", "1"),
            ("007", "7"),
            ("1,234.5", "1234.5"),
            ("AB-12", "12-AB"),
            ("-1234567.89", "-1,234,567.89"),
        ] {
            assert_ext_consistent(s, t);
        }
    }
}
