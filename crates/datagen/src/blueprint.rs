//! Instance blueprints: the §5.1 protocol, split into a *blueprint* phase
//! (attribute cleaning, core/noise split, transformation sampling) and a
//! *materialize* phase (snapshot construction at a given scale).
//!
//! The split exists for Figure 5: row-scalability instances reuse the same
//! sampled transformations and split while taking x % of the core and noise
//! records ("The sampled transformations stay the same. However, we remove
//! value mapping entries defined over attribute values that do not exist
//! anymore in the scaled version").

use affidavit_core::explanation::Explanation;
use affidavit_core::instance::ProblemInstance;
use affidavit_functions::{AppliedFunction, AttrFunction, ValueMap};
use affidavit_table::{
    stats::{attribute_profiles, attribute_stats},
    AttrId, FxHashSet, Record, RecordId, Sym, Table, ValuePool,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::sampler::sample_transformation_with;

/// Parameters of the §5.1 generator.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Noise fraction η: the fraction of each snapshot outside the core.
    pub eta: f64,
    /// Transformation probability τ per attribute.
    pub tau: f64,
    /// RNG seed.
    pub seed: u64,
    /// Distinctness removal threshold (paper: 0.7).
    pub distinct_threshold: f64,
    /// Also sample the extension kinds (numeric formatting, token
    /// programs); requires solving with `Registry::extended`.
    pub extension_kinds: bool,
}

impl GenConfig {
    /// A (η, τ) setting with the paper's defaults elsewhere.
    pub fn new(eta: f64, tau: f64, seed: u64) -> GenConfig {
        GenConfig {
            eta,
            tau,
            seed,
            distinct_threshold: 0.7,
            extension_kinds: false,
        }
    }

    /// Enable sampling of the extension kinds.
    pub fn with_extension_kinds(mut self) -> GenConfig {
        self.extension_kinds = true;
        self
    }
}

/// The blueprint: cleaned base table, split, and sampled transformations.
#[derive(Debug, Clone)]
pub struct Blueprint {
    /// Cleaned base table (over-distinct/empty attributes dropped).
    pub base: Table,
    /// Pool for `base` (and later for the snapshots).
    pub pool: ValuePool,
    /// Base-row indices forming the core.
    pub core: Vec<usize>,
    /// Base-row indices used as source-only noise.
    pub src_noise: Vec<usize>,
    /// Base-row indices used as target-only noise.
    pub tgt_noise: Vec<usize>,
    /// Sampled transformation per cleaned attribute (identity = unchanged).
    pub functions: Vec<AttrFunction>,
    /// The generator configuration used.
    pub cfg: GenConfig,
}

/// A materialized problem instance with its reference explanation.
#[derive(Debug)]
pub struct GeneratedInstance {
    /// The instance (snapshots share the blueprint's pool).
    pub instance: ProblemInstance,
    /// The reference explanation `E_ref` (always valid).
    pub reference: Explanation,
    /// The artificial primary-key attribute (always the last column).
    pub pk_attr: AttrId,
    /// Scale factor this instance was materialized at.
    pub scale: f64,
}

impl Blueprint {
    /// Run the blueprint phase on a base table.
    pub fn new(base: Table, pool: ValuePool, cfg: GenConfig) -> Blueprint {
        let mut pool = pool;
        // 1. Attribute cleaning.
        let stats = attribute_stats(&base, &pool);
        let keep: Vec<AttrId> = stats
            .iter()
            .filter(|s| !s.is_all_empty() && s.distinct_fraction() <= cfg.distinct_threshold)
            .map(|s| s.attr)
            .collect();
        assert!(
            !keep.is_empty(),
            "all attributes removed by the cleaning rules"
        );
        let base = base.project(&keep);
        // One single-pass profile per kept attribute: the sampler needs
        // both the stats and the first-seen distinct values.
        let profiles = attribute_profiles(&base, &pool);

        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // 2. Core / noise split: |S| = |T| = D / (1 + η).
        let d_rows = base.len();
        let snapshot = ((d_rows as f64) / (1.0 + cfg.eta)).floor() as usize;
        let noise = ((snapshot as f64) * cfg.eta).round() as usize;
        let core_n = snapshot.saturating_sub(noise).max(1);
        let mut order: Vec<usize> = (0..d_rows).collect();
        order.shuffle(&mut rng);
        let core: Vec<usize> = order[..core_n.min(d_rows)].to_vec();
        let src_noise: Vec<usize> = order[core_n..(core_n + noise).min(d_rows)].to_vec();
        let tgt_noise: Vec<usize> =
            order[(core_n + noise).min(d_rows)..(core_n + 2 * noise).min(d_rows)].to_vec();

        // 3. Transformation sampling with the at-least-one-id rejection rule.
        let arity = base.schema().arity();
        let functions = loop {
            let mut fns: Vec<AttrFunction> = Vec::with_capacity(arity);
            #[allow(clippy::needless_range_loop)] // `a` also builds the AttrId
            for a in 0..arity {
                if rng.gen_bool(cfg.tau) {
                    fns.push(sample_transformation_with(
                        &profiles[a].distinct,
                        &profiles[a].stats,
                        &mut pool,
                        &mut rng,
                        cfg.extension_kinds,
                    ));
                } else {
                    fns.push(AttrFunction::Identity);
                }
            }
            if arity == 1 || fns.iter().any(AttrFunction::is_identity) {
                break fns;
            }
            // Reject: every attribute was transformed (§5.1).
        };

        Blueprint {
            base,
            pool,
            core,
            src_noise,
            tgt_noise,
            functions,
            cfg,
        }
    }

    /// Materialize the full-size instance.
    pub fn materialize_full(&self) -> GeneratedInstance {
        self.materialize(1.0)
    }

    /// Materialize at `scale ∈ (0, 1]` of the core and noise sets.
    pub fn materialize(&self, scale: f64) -> GeneratedInstance {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let mut pool = self.pool.clone();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x5ca1e);

        let take = |v: &[usize]| -> Vec<usize> {
            let n = ((v.len() as f64) * scale).round().max(1.0) as usize;
            v[..n.min(v.len())].to_vec()
        };
        let core = take(&self.core);
        let src_noise = take(&self.src_noise);
        let tgt_noise = take(&self.tgt_noise);

        // Scale-trim value maps: drop entries over values that no longer
        // occur in the scaled rows (§5.4.1).
        let used_rows: Vec<usize> = core
            .iter()
            .chain(&src_noise)
            .chain(&tgt_noise)
            .copied()
            .collect();
        let arity = self.base.schema().arity();
        let mut functions: Vec<AttrFunction> = Vec::with_capacity(arity + 1);
        for (a, f) in self.functions.iter().enumerate() {
            functions.push(match f {
                AttrFunction::Map(m) if scale < 1.0 => {
                    let mut live: FxHashSet<Sym> = FxHashSet::default();
                    for &row in &used_rows {
                        live.insert(self.base.record(RecordId(row as u32)).get(a));
                    }
                    AttrFunction::Map(ValueMap::from_pairs(
                        m.entries()
                            .iter()
                            .filter(|(k, _)| live.contains(k))
                            .copied(),
                    ))
                }
                other => other.clone(),
            });
        }

        // Transform core and target noise through the sampled functions.
        let mut applied: Vec<AppliedFunction> = functions
            .iter()
            .cloned()
            .map(AppliedFunction::new)
            .collect();
        let transform =
            |row: usize, applied: &mut [AppliedFunction], pool: &mut ValuePool| -> Vec<Sym> {
                let rec = self.base.record(RecordId(row as u32));
                rec.values()
                    .iter()
                    .enumerate()
                    .map(|(a, &v)| {
                        applied[a]
                            .apply(v, pool)
                            .expect("sampled functions are total on the base domain")
                    })
                    .collect()
            };

        // Snapshot composition; both sides then get shuffled row orders.
        #[derive(Clone, Copy)]
        enum SrcEntry {
            Core(usize), // index into `core`
            Noise(usize),
        }
        #[derive(Clone, Copy)]
        enum TgtEntry {
            Core(usize),
            Noise(usize),
        }
        let mut src_entries: Vec<SrcEntry> = (0..core.len())
            .map(SrcEntry::Core)
            .chain((0..src_noise.len()).map(SrcEntry::Noise))
            .collect();
        let mut tgt_entries: Vec<TgtEntry> = (0..core.len())
            .map(TgtEntry::Core)
            .chain((0..tgt_noise.len()).map(TgtEntry::Noise))
            .collect();
        src_entries.shuffle(&mut rng);
        tgt_entries.shuffle(&mut rng);

        let n = src_entries.len();
        debug_assert_eq!(n, tgt_entries.len());

        // 5. Artificial primary key: the same running integers 0..n in two
        // different permutations.
        let mut pk_src: Vec<usize> = (0..n).collect();
        let mut pk_tgt: Vec<usize> = (0..n).collect();
        pk_src.shuffle(&mut rng);
        pk_tgt.shuffle(&mut rng);

        let mut schema = self.base.schema().clone();
        let pk_attr = schema.push("pk");

        let mut source = Table::with_capacity(schema.clone(), n);
        let mut core_src_pos = vec![u32::MAX; core.len()];
        for (pos, entry) in src_entries.iter().enumerate() {
            let (row, is_core_idx) = match entry {
                SrcEntry::Core(i) => (core[*i], Some(*i)),
                SrcEntry::Noise(i) => (src_noise[*i], None),
            };
            let mut values: Vec<Sym> = self.base.record(RecordId(row as u32)).values().to_vec();
            values.push(pool.intern(&pk_src[pos].to_string()));
            source.push(Record::new(values));
            if let Some(i) = is_core_idx {
                core_src_pos[i] = pos as u32;
            }
        }

        let mut target = Table::with_capacity(schema, n);
        let mut core_tgt_pos = vec![u32::MAX; core.len()];
        let mut inserted: Vec<RecordId> = Vec::new();
        for (pos, entry) in tgt_entries.iter().enumerate() {
            let (values, is_core_idx) = match entry {
                TgtEntry::Core(i) => (transform(core[*i], &mut applied, &mut pool), Some(*i)),
                TgtEntry::Noise(i) => (transform(tgt_noise[*i], &mut applied, &mut pool), None),
            };
            let mut values = values;
            values.push(pool.intern(&pk_tgt[pos].to_string()));
            target.push(Record::new(values));
            match is_core_idx {
                Some(i) => core_tgt_pos[i] = pos as u32,
                None => inserted.push(RecordId(pos as u32)),
            }
        }
        inserted.sort();

        // 6. Reference explanation: sampled functions + pk value map over
        // the core alignment.
        let core_pairs: Vec<(RecordId, RecordId)> = (0..core.len())
            .map(|i| (RecordId(core_src_pos[i]), RecordId(core_tgt_pos[i])))
            .collect();
        let pk_map: Vec<(Sym, Sym)> = core_pairs
            .iter()
            .map(|&(s, t)| (source.value(s, pk_attr), target.value(t, pk_attr)))
            .collect();
        functions.push(AttrFunction::Map(ValueMap::from_pairs(pk_map)));

        let deleted: Vec<RecordId> = src_entries
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, SrcEntry::Noise(_)))
            .map(|(pos, _)| RecordId(pos as u32))
            .collect();

        let reference = Explanation::new(functions, deleted, inserted, core_pairs);
        let instance =
            ProblemInstance::new(source, target, pool).expect("schemas match by construction");
        GeneratedInstance {
            instance,
            reference,
            pk_attr,
            scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_datasets::{by_name, generate};

    fn blueprint(eta: f64, tau: f64, seed: u64) -> Blueprint {
        let spec = by_name("iris").unwrap();
        let (base, pool) = generate(&spec, seed);
        Blueprint::new(base, pool, GenConfig::new(eta, tau, seed))
    }

    #[test]
    fn split_sizes_match_protocol() {
        let bp = blueprint(0.3, 0.3, 1);
        // |S| = D / (1 + η) = 150 / 1.3 ≈ 115; noise = 0.3 · 115 ≈ 35.
        let snapshot = bp.core.len() + bp.src_noise.len();
        assert_eq!(snapshot, 115);
        assert_eq!(bp.src_noise.len(), bp.tgt_noise.len());
        assert!((bp.src_noise.len() as i64 - 35).abs() <= 1);
    }

    #[test]
    fn at_least_one_attribute_unchanged() {
        for seed in 0..10 {
            let bp = blueprint(0.5, 0.9, seed); // high τ forces rejections
            assert!(
                bp.functions.iter().any(AttrFunction::is_identity),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn reference_explanation_is_valid() {
        for (eta, tau) in [(0.3, 0.3), (0.5, 0.5), (0.7, 0.7)] {
            let bp = blueprint(eta, tau, 42);
            let mut gen = bp.materialize_full();
            gen.reference
                .validate(&mut gen.instance)
                .unwrap_or_else(|e| panic!("(η={eta}, τ={tau}): {e}"));
        }
    }

    #[test]
    fn snapshots_have_equal_size_and_pk() {
        let bp = blueprint(0.3, 0.3, 7);
        let gen = bp.materialize_full();
        assert_eq!(gen.instance.source.len(), gen.instance.target.len());
        assert_eq!(gen.instance.delta(), 0);
        // pk column is last and contains running integers 0..n.
        let n = gen.instance.source.len();
        let mut pks: Vec<usize> = gen
            .instance
            .source
            .rows()
            .map(|r| {
                gen.instance
                    .pool
                    .get(r.get(gen.pk_attr.index()))
                    .parse::<usize>()
                    .unwrap()
            })
            .collect();
        pks.sort();
        assert_eq!(pks, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn scaling_preserves_validity_and_trims_maps() {
        let spec = by_name("iris").unwrap();
        let (base, pool) = generate(&spec, 9);
        // Force at least one map by using high τ and a seed scan.
        let bp = (0..50)
            .map(|seed| Blueprint::new(base.clone(), pool.clone(), GenConfig::new(0.3, 0.7, seed)))
            .find(|bp| {
                bp.functions
                    .iter()
                    .any(|f| matches!(f, AttrFunction::Map(_)))
            })
            .expect("some seed samples a value map");
        let full = bp.materialize_full();
        let mut half = bp.materialize(0.5);
        half.reference.validate(&mut half.instance).unwrap();
        assert!(half.instance.source.len() < full.instance.source.len());
        // The map must not be larger at the smaller scale.
        let map_len = |e: &Explanation| -> usize {
            e.functions
                .iter()
                .filter_map(|f| match f {
                    AttrFunction::Map(m) => Some(m.len()),
                    _ => None,
                })
                .sum()
        };
        assert!(map_len(&half.reference) <= map_len(&full.reference));
    }

    #[test]
    fn deterministic() {
        let a = blueprint(0.3, 0.3, 5).materialize_full();
        let b = blueprint(0.3, 0.3, 5).materialize_full();
        assert_eq!(a.instance.source.len(), b.instance.source.len());
        assert_eq!(a.reference.core_pairs(), b.reference.core_pairs());
        assert_eq!(a.reference.functions, b.reference.functions);
    }
}
