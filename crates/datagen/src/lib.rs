//! Synthetic problem-instance generation — the evaluation protocol of §5.1.
//!
//! From a base table, an instance is produced by:
//!
//! 1. dropping attributes that are fully empty or have a distinct-value
//!    fraction above 0.7;
//! 2. splitting records into a core plus source- and target-noise sets so
//!    that noise makes up a fraction η of each snapshot
//!    (`|S| = |T| = D / (1 + η)` for a base table of `D` records);
//! 3. sampling, per attribute with probability τ, a non-identity
//!    transformation fitting the attribute's domain (resampling if *every*
//!    attribute would be transformed — at least one must stay `id`);
//! 4. applying the transformations to the core (→ core image) and to the
//!    target noise ("its data format should be similar");
//! 5. augmenting both snapshots with an artificial primary key of running
//!    integers in two different permutations;
//! 6. shuffling record order.
//!
//! The generator returns the instance together with the *reference
//! explanation* and implements the Δcore / Δcosts / acc metrics of §5.2 and
//! the instance scaling of §5.4.1 (Figure 5).
//!
//! ```
//! use affidavit_datagen::blueprint::{Blueprint, GenConfig};
//! use affidavit_table::{Schema, Table, ValuePool};
//!
//! let mut pool = ValuePool::new();
//! let base = Table::from_rows(
//!     Schema::new(["v"]),
//!     &mut pool,
//!     (0..30).map(|i| vec![format!("{}", (i % 5) * 10)]),
//! );
//! let mut generated =
//!     Blueprint::new(base, pool, GenConfig::new(0.2, 0.5, 7)).materialize_full();
//! // Both snapshots have |S| = |T| = D/(1+η) records...
//! assert_eq!(generated.instance.source.len(), generated.instance.target.len());
//! // ...and the reference explanation is valid by construction.
//! generated.reference.validate(&mut generated.instance).unwrap();
//! ```

#![warn(missing_docs)]

pub mod blueprint;
pub mod metrics;
pub mod sampler;

pub use blueprint::{Blueprint, GenConfig, GeneratedInstance};
pub use metrics::{evaluate, InstanceMetrics};
pub use sampler::sample_transformation;
