//! Transformation sampling (§5.1).
//!
//! "To sample a function for an attribute that is to be transformed, we
//! randomly instantiate a function from the meta functions described in
//! Table 1. We make sure to generate functions that fit the domain of the
//! attribute, e.g. we do not use uppercasing on numerical attributes. In
//! the case of value mappings, we instantiate it as a random permutation of
//! the source values."
//!
//! A sampled function must be *total* on the attribute's distinct values
//! (partial application would make the reference explanation invalid);
//! candidates failing this check are rejected and resampled, with a random
//! permutation value map as the always-valid fallback.

use affidavit_functions::datetime::DateFormat;
use affidavit_functions::{AttrFunction, ValueMap};
use affidavit_table::{stats::AttrStats, Decimal, Rational, Sym, ValuePool};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Sample a non-identity transformation fitting the attribute's domain.
/// `values` are the attribute's distinct values in the base table; the
/// returned function is guaranteed to apply to all of them.
pub fn sample_transformation(
    values: &[Sym],
    stats: &AttrStats,
    pool: &mut ValuePool,
    rng: &mut StdRng,
) -> AttrFunction {
    sample_transformation_with(values, stats, pool, rng, false)
}

/// Like [`sample_transformation`], but optionally drawing from the
/// extension kinds (numeric formatting, token programs) as well — used to
/// generate instances that exercise `Registry::extended`.
pub fn sample_transformation_with(
    values: &[Sym],
    stats: &AttrStats,
    pool: &mut ValuePool,
    rng: &mut StdRng,
    extended: bool,
) -> AttrFunction {
    for _ in 0..16 {
        let candidate = if extended && rng.gen_bool(0.35) {
            propose_extension(values, stats, pool, rng)
        } else {
            propose(values, stats, pool, rng)
        };
        if applies_to_all(&candidate, values, pool) && changes_something(&candidate, values, pool) {
            return candidate;
        }
    }
    random_permutation_map(values, rng)
}

/// Propose one of the extension kinds; totality and non-identity are
/// checked by the rejection loop above.
fn propose_extension(
    values: &[Sym],
    stats: &AttrStats,
    pool: &mut ValuePool,
    rng: &mut StdRng,
) -> AttrFunction {
    use affidavit_functions::substring::{Segment, TokenProgram};

    if stats.is_numeric() {
        match rng.gen_range(0..3u8) {
            0 => AttrFunction::ThousandsSep(*[',', ' '].choose(rng).expect("non-empty")),
            1 => {
                // Pad past the longest value so the function is not a no-op.
                let max_len = values.iter().map(|&v| pool.get(v).len()).max().unwrap_or(1);
                AttrFunction::ZeroPad((max_len + rng.gen_range(1..3usize)) as u32)
            }
            _ => AttrFunction::Round(rng.gen_range(0..2u32)),
        }
    } else {
        // Token reorder: swap the first two tokens. The rejection loop
        // discards it on columns whose values don't all have two tokens.
        let glue = pool.intern([" ", "-", ", "].choose(rng).expect("non-empty"));
        AttrFunction::TokenProgram(
            TokenProgram::new(vec![
                Segment::Token {
                    idx: 1,
                    from_end: false,
                },
                Segment::Literal(glue),
                Segment::Token {
                    idx: 0,
                    from_end: false,
                },
            ])
            .expect("two-token reorder is a valid program"),
        )
    }
}

/// One proposal draw.
fn propose(
    values: &[Sym],
    stats: &AttrStats,
    pool: &mut ValuePool,
    rng: &mut StdRng,
) -> AttrFunction {
    // Weights roughly mirror picking uniformly among the applicable
    // Table 1 meta functions: explicit value maps are one choice among
    // many (~10-15 %), not a quarter — they are "potentially the hardest
    // transformations to learn" and would otherwise dominate the noise.
    //
    // Date columns (which would otherwise register as numeric in the
    // yyyymmdd encoding) get date-appropriate transformations, exercising
    // the §6 date-conversion extension end to end.
    if is_date_column(values, pool) {
        return match rng.gen_range(0..10u8) {
            0..=4 => {
                let to = *[
                    DateFormat::IsoDashed,
                    DateFormat::DottedDmy,
                    DateFormat::SlashMdy,
                    DateFormat::YyyyDdMm,
                ]
                .choose(rng)
                .expect("non-empty");
                AttrFunction::DateConvert(DateFormat::YyyyMmDd, to)
            }
            5..=7 => {
                // Sentinel-style prefix rewrite, like Figure 1's f_Date.
                sample_prefix_replace(values, pool, rng)
                    .unwrap_or_else(|| random_permutation_map(values, rng))
            }
            _ => random_permutation_map(values, rng),
        };
    }
    if stats.is_numeric() {
        match rng.gen_range(0..10u8) {
            0..=2 => {
                // Addition with a small non-zero integer or decimal.
                let y = *[-1000, -250, -7, 5, 42, 100, 2500]
                    .choose(rng)
                    .expect("non-empty");
                AttrFunction::Add(Decimal::from_int(y))
            }
            3..=5 => {
                // Division by a power of ten (the classic ERP rescale).
                let den = *[10i128, 100, 1000].choose(rng).expect("non-empty");
                AttrFunction::Scale(Rational::new(1, den).expect("non-zero"))
            }
            6..=8 => {
                // Multiplication by a power of ten.
                let num = *[10i128, 100, 1000].choose(rng).expect("non-empty");
                AttrFunction::Scale(Rational::new(num, 1).expect("non-zero"))
            }
            _ => random_permutation_map(values, rng),
        }
    } else {
        let has_lower = stats.has_lowercase > 0;
        match rng.gen_range(0..10u8) {
            0 | 1 if has_lower => AttrFunction::Uppercase,
            0..=3 => {
                let y = pool.intern(["X-", "new_", "v2:"].choose(rng).expect("non-empty"));
                AttrFunction::Prefix(y)
            }
            4..=6 => {
                let y = pool.intern(["-x", "_new", ":v2"].choose(rng).expect("non-empty"));
                AttrFunction::Suffix(y)
            }
            7 | 8 => {
                // Prefix replacement on the most common first character.
                sample_prefix_replace(values, pool, rng)
                    .unwrap_or_else(|| random_permutation_map(values, rng))
            }
            _ => random_permutation_map(values, rng),
        }
    }
}

/// True if ≥ 90 % of the values parse as `yyyymmdd` dates.
fn is_date_column(values: &[Sym], pool: &ValuePool) -> bool {
    if values.is_empty() {
        return false;
    }
    let hits = values
        .iter()
        .filter(|&&v| DateFormat::YyyyMmDd.parse(pool.get(v)).is_some())
        .count();
    hits * 10 >= values.len() * 9
}

/// Build a prefix replacement from the most frequent leading character of
/// the values (mirrors Figure 1's `'9999123'x ↦ '2018070'x` style).
fn sample_prefix_replace(
    values: &[Sym],
    pool: &mut ValuePool,
    rng: &mut StdRng,
) -> Option<AttrFunction> {
    // Find a first character shared by at least two values.
    let mut counts: affidavit_table::FxHashMap<char, usize> = Default::default();
    for &v in values {
        if let Some(c) = pool.get(v).chars().next() {
            *counts.entry(c).or_default() += 1;
        }
    }
    let (&c, _) = counts.iter().max_by_key(|&(&c, &n)| (n, c as u32))?;
    let y = pool.intern(&c.to_string());
    let replacement = *["Q", "Z#", "9"].choose(rng).expect("non-empty");
    let z = pool.intern(replacement);
    if y == z {
        return None;
    }
    Some(AttrFunction::PrefixReplace(y, z))
}

/// A value map that is a random permutation of the distinct source values
/// — "potentially the hardest transformations to learn".
pub fn random_permutation_map(values: &[Sym], rng: &mut StdRng) -> AttrFunction {
    let mut shuffled: Vec<Sym> = values.to_vec();
    shuffled.shuffle(rng);
    // A derangement-ish rotation guard: if the shuffle fixed everything
    // (tiny domains), rotate by one so the map is not the identity.
    if shuffled.iter().zip(values).all(|(a, b)| a == b) && values.len() > 1 {
        shuffled.rotate_left(1);
    }
    AttrFunction::Map(ValueMap::from_pairs(values.iter().copied().zip(shuffled)))
}

fn applies_to_all(f: &AttrFunction, values: &[Sym], pool: &mut ValuePool) -> bool {
    values.iter().all(|&v| f.apply(v, pool).is_some())
}

fn changes_something(f: &AttrFunction, values: &[Sym], pool: &mut ValuePool) -> bool {
    values.iter().any(|&v| f.apply(v, pool) != Some(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::stats::attribute_stats;
    use affidavit_table::{AttrId, Schema, Table};
    use rand::SeedableRng;

    fn column(values: &[&str]) -> (Vec<Sym>, AttrStats, ValuePool) {
        let mut pool = ValuePool::new();
        let t = Table::from_rows(
            Schema::new(["a"]),
            &mut pool,
            values.iter().map(|v| vec![*v]),
        );
        let stats = attribute_stats(&t, &pool).remove(0);
        let vals = affidavit_table::stats::distinct_values(&t, AttrId(0));
        (vals, stats, pool)
    }

    #[test]
    fn numeric_columns_get_numeric_functions() {
        let (vals, stats, mut pool) = column(&["100", "250", "3000", "42"]);
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let f = sample_transformation(&vals, &stats, &mut pool, &mut rng);
            assert!(
                matches!(
                    f,
                    AttrFunction::Add(_) | AttrFunction::Scale(_) | AttrFunction::Map(_)
                ),
                "seed {seed}: {f:?}"
            );
        }
    }

    #[test]
    fn no_uppercasing_on_numbers() {
        let (vals, stats, mut pool) = column(&["1", "2", "3"]);
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let f = sample_transformation(&vals, &stats, &mut pool, &mut rng);
            assert!(!matches!(f, AttrFunction::Uppercase), "seed {seed}");
        }
    }

    #[test]
    fn sampled_function_is_total_and_non_identity() {
        let (vals, stats, mut pool) = column(&["alpha", "beta", "gamma", "delta"]);
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let f = sample_transformation(&vals, &stats, &mut pool, &mut rng);
            let mut changed = false;
            for &v in &vals {
                let out = f.apply(v, &mut pool).expect("must be total");
                changed |= out != v;
            }
            assert!(changed, "seed {seed}: function is identity-like {f:?}");
        }
    }

    #[test]
    fn date_columns_get_date_transformations() {
        let (vals, stats, mut pool) = column(&["20130416", "20120128", "99991231", "20150203"]);
        let mut seen_convert = false;
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let f = sample_transformation(&vals, &stats, &mut pool, &mut rng);
            assert!(
                matches!(
                    f,
                    AttrFunction::DateConvert(..)
                        | AttrFunction::PrefixReplace(..)
                        | AttrFunction::Map(_)
                ),
                "seed {seed}: unexpected date-column function {f:?}"
            );
            seen_convert |= matches!(f, AttrFunction::DateConvert(..));
        }
        assert!(seen_convert, "date conversion never sampled in 40 draws");
    }

    #[test]
    fn extension_sampling_is_total_and_non_identity() {
        let (vals, stats, mut pool) = column(&["1234567", "89000", "42", "5000000"]);
        let mut seen_ext = false;
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let f = sample_transformation_with(&vals, &stats, &mut pool, &mut rng, true);
            let mut changed = false;
            for &v in &vals {
                let out = f.apply(v, &mut pool).expect("must be total");
                changed |= out != v;
            }
            assert!(changed, "seed {seed}: identity-like {f:?}");
            seen_ext |= f.kind().is_extension();
        }
        assert!(seen_ext, "extension kind never sampled in 40 draws");
    }

    #[test]
    fn token_reorder_rejected_on_single_token_columns() {
        // Values with a single token each: the two-token reorder program is
        // partial and must be rejected in favour of a total function.
        let (vals, stats, mut pool) = column(&["alpha", "beta", "gamma", "delta"]);
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let f = sample_transformation_with(&vals, &stats, &mut pool, &mut rng, true);
            for &v in &vals {
                assert!(f.apply(v, &mut pool).is_some(), "seed {seed}: {f:?}");
            }
        }
    }

    #[test]
    fn token_reorder_sampled_on_two_token_columns() {
        let (vals, stats, mut pool) =
            column(&["Doe, John", "Fink, Manuel", "Hopper, Grace", "Turing, Alan"]);
        let mut seen = false;
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let f = sample_transformation_with(&vals, &stats, &mut pool, &mut rng, true);
            seen |= matches!(f, AttrFunction::TokenProgram(_));
        }
        assert!(seen, "token program never sampled on a two-token column");
    }

    #[test]
    fn classic_mode_never_samples_extensions() {
        let (vals, stats, mut pool) = column(&["1234567", "89000", "42", "5000000"]);
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let f = sample_transformation(&vals, &stats, &mut pool, &mut rng);
            assert!(!f.kind().is_extension(), "seed {seed}: {f:?}");
        }
    }

    #[test]
    fn permutation_map_is_total_bijection() {
        let (vals, _, _) = column(&["a", "b", "c", "d", "e"]);
        let mut rng = StdRng::seed_from_u64(3);
        let AttrFunction::Map(m) = random_permutation_map(&vals, &mut rng) else {
            panic!("expected map");
        };
        let mut outputs: Vec<Sym> = vals.iter().map(|&v| m.apply(v)).collect();
        outputs.sort();
        let mut sorted = vals.clone();
        sorted.sort();
        assert_eq!(outputs, sorted, "must be a permutation");
    }
}
