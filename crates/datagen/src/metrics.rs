//! Result metrics (§5.2): runtime `t`, relative core size `Δcore`,
//! relative costs `Δcosts` and cell accuracy `acc`.
//!
//! * `Δcore = |core(E_res)| / |core(E_ref)|` — e.g. 0.8 means the result
//!   aligned 20 % fewer records than the reference.
//! * `Δcosts = c(E_res) / c(E_ref)` — below 1 means the result is *cheaper*
//!   than the reference (possible: the search may align noise records).
//! * `acc` — apply the learned functions to every reference-core record and
//!   compare cell-wise with the correct transformation, ignoring the
//!   artificial primary-key attribute.

use std::time::Duration;

use affidavit_core::explanation::Explanation;
use affidavit_functions::AppliedFunction;

use crate::blueprint::GeneratedInstance;

/// The §5.2 metric tuple.
#[derive(Debug, Clone, Copy)]
pub struct InstanceMetrics {
    /// Search runtime.
    pub runtime: Duration,
    /// Relative core size.
    pub delta_core: f64,
    /// Relative costs.
    pub delta_costs: f64,
    /// Cell accuracy over the reference core (pk excluded).
    pub accuracy: f64,
}

/// Compute all metrics for a search result against the generated instance's
/// reference explanation.
pub fn evaluate(
    result: &Explanation,
    generated: &mut GeneratedInstance,
    runtime: Duration,
) -> InstanceMetrics {
    let arity = generated.instance.arity();
    let ref_core = generated.reference.core_size();
    let delta_core = if ref_core == 0 {
        if result.core_size() == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        result.core_size() as f64 / ref_core as f64
    };
    let ref_cost = generated.reference.cost_units(arity);
    let res_cost = result.cost_units(arity);
    let delta_costs = if ref_cost == 0 {
        if res_cost == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        res_cost as f64 / ref_cost as f64
    };
    let accuracy = cell_accuracy(result, generated);
    InstanceMetrics {
        runtime,
        delta_core,
        delta_costs,
        accuracy,
    }
}

/// The `acc` metric: fraction of non-pk cells of the reference core that
/// the learned functions translate exactly like the reference functions.
pub fn cell_accuracy(result: &Explanation, generated: &mut GeneratedInstance) -> f64 {
    let arity = generated.instance.arity();
    let pk = generated.pk_attr.index();
    let mut res_fns: Vec<AppliedFunction> = result
        .functions
        .iter()
        .cloned()
        .map(AppliedFunction::new)
        .collect();
    let mut ref_fns: Vec<AppliedFunction> = generated
        .reference
        .functions
        .iter()
        .cloned()
        .map(AppliedFunction::new)
        .collect();
    let mut total = 0u64;
    let mut correct = 0u64;
    for &(sid, _) in generated.reference.core_pairs() {
        for a in 0..arity {
            if a == pk {
                continue;
            }
            let v = generated
                .instance
                .source
                .value(sid, affidavit_table::AttrId(a as u32));
            let want = ref_fns[a].apply(v, &mut generated.instance.pool);
            let got = res_fns[a].apply(v, &mut generated.instance.pool);
            total += 1;
            if want == got && want.is_some() {
                correct += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blueprint::{Blueprint, GenConfig};
    use affidavit_datasets::{by_name, generate};
    use affidavit_functions::AttrFunction;

    fn generated(seed: u64) -> GeneratedInstance {
        let spec = by_name("iris").unwrap();
        let (base, pool) = generate(&spec, seed);
        Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, seed)).materialize_full()
    }

    #[test]
    fn reference_scores_perfectly_against_itself() {
        let mut gen = generated(3);
        let reference = gen.reference.clone();
        let m = evaluate(&reference, &mut gen, Duration::from_millis(5));
        assert_eq!(m.delta_core, 1.0);
        assert_eq!(m.delta_costs, 1.0);
        assert_eq!(m.accuracy, 1.0);
    }

    #[test]
    fn trivial_explanation_scores_zero_core() {
        let mut gen = generated(4);
        let trivial = Explanation::trivial(&gen.instance);
        let m = evaluate(&trivial, &mut gen, Duration::ZERO);
        assert_eq!(m.delta_core, 0.0);
        assert!(m.delta_costs > 1.0, "trivial must cost more than reference");
    }

    #[test]
    fn all_identity_accuracy_reflects_unchanged_attrs() {
        // Functions all-id: exactly the unchanged attributes' cells match.
        let mut gen = generated(1);
        let arity = gen.instance.arity();
        let id = Explanation::new(vec![AttrFunction::Identity; arity], vec![], vec![], vec![]);
        let acc = cell_accuracy(&id, &mut gen);
        let unchanged = gen
            .reference
            .functions
            .iter()
            .take(arity - 1) // exclude pk map
            .filter(|f| f.is_identity())
            .count();
        let expected = unchanged as f64 / (arity - 1) as f64;
        // Identity can also coincide on fixed points of the sampled
        // functions, so acc may slightly exceed the expectation.
        assert!(
            acc >= expected - 1e-9,
            "acc {acc} below unchanged fraction {expected}"
        );
        assert!(acc < 1.0, "some attribute must actually be transformed");
    }
}
