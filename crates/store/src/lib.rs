//! Snapshot storage and ingestion subsystem.
//!
//! The search engine (`affidavit-core`) operates on `(Table, ValuePool)`
//! pairs; this crate is how those pairs come to exist at scale:
//!
//! * [`ingest`] — chunked streaming CSV ingestion. A
//!   [`RowChunker`](affidavit_table::csv::RowChunker) splits the byte
//!   stream into chunks of complete records in bounded memory; chunks fan
//!   out over worker threads, each interning into a private
//!   [`ScratchPool`](affidavit_table::ScratchPool) overlay; the driver
//!   merges worker results in chunk order via
//!   [`ValuePool::absorb`](affidavit_table::ValuePool::absorb). Because
//!   the merge order is fixed, the resulting `(Table, ValuePool)` is
//!   **byte-identical** to a serial
//!   [`csv::read_str`](affidavit_table::csv::read_str) at every thread
//!   count and chunk size.
//! * [`segment`] — the [`SegmentPool`] disk-backed
//!   interner: string bytes live in append-only segments spilled to files
//!   under a RAM budget, behind the same
//!   [`Interner`](affidavit_table::Interner) trait and [`ValuePool`] API
//!   the search already uses. Snapshots larger than RAM flow through the
//!   unchanged generic search.
//! * [`fingerprint`] — streaming content fingerprints (FNV-1a 64 +
//!   length) identifying snapshot files by bytes rather than path.
//! * [`manifest`] — atomic (write-temp-then-rename) persistence for the
//!   incremental re-profiling manifests of `--delta` runs.
//! * [`session`] — pinned ingested [`SnapshotPair`]s for a resident
//!   service: an LRU keyed by content fingerprint + pool config, so warm
//!   repeat requests skip ingestion entirely (counter-asserted).
//!
//! [`PoolConfig`] selects the backend at the edges (CLI, dataset loader,
//! profiling) without the inner layers knowing.
//!
//! ```
//! use affidavit_store::{ingest, IngestOptions};
//! use affidavit_table::ValuePool;
//!
//! let csv = "k,v\r\n1,\"a,b\"\r\n2,plain\r\n";
//! let opts = IngestOptions { chunk_rows: 1, threads: 2, ..IngestOptions::default() };
//! let mut pool = ValuePool::new();
//! let table = ingest::read_stream(csv.as_bytes(), &mut pool, &opts).unwrap();
//! assert_eq!(table.len(), 2);
//! // Chunked parallel ingestion is byte-identical to the serial parser.
//! let mut serial = ValuePool::new();
//! let reference = affidavit_table::csv::read_str(
//!     csv, &mut serial, affidavit_table::csv::CsvOptions::default()).unwrap();
//! assert_eq!(table, reference);
//! assert_eq!(pool.len(), serial.len());
//! ```

#![warn(missing_docs)]

pub mod fingerprint;
pub mod ingest;
pub mod manifest;
pub mod segment;
pub mod session;

use std::io;

use affidavit_table::ValuePool;

pub use fingerprint::{fingerprint_bytes, fingerprint_file, Fingerprint, Fnv};
pub use ingest::IngestOptions;
pub use segment::{SegmentPool, SegmentPoolConfig};
pub use session::{ingest_pair, SessionCounters, SessionKey, SessionLru, SnapshotPair};

/// Which storage backend a value pool uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PoolBackend {
    /// Every interned string stays in RAM (the default).
    #[default]
    Ram,
    /// String bytes live in disk-spilled segments under a RAM budget
    /// ([`SegmentPool`]).
    Disk,
}

impl std::str::FromStr for PoolBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<PoolBackend, String> {
        match s {
            "ram" => Ok(PoolBackend::Ram),
            "disk" => Ok(PoolBackend::Disk),
            other => Err(format!("unknown pool backend {other:?} (use ram|disk)")),
        }
    }
}

/// Backend selection plus its budget, as plumbed through the CLI
/// (`--pool-backend`, `--pool-budget-bytes`), the dataset loader and
/// profiling.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// The backend to build.
    pub backend: PoolBackend,
    /// RAM budget for string bytes (disk backend only).
    pub budget_bytes: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            backend: PoolBackend::Ram,
            budget_bytes: SegmentPoolConfig::default().budget_bytes,
        }
    }
}

impl PoolConfig {
    /// Build an empty pool with the configured backend.
    pub fn build(&self) -> io::Result<ValuePool> {
        match self.backend {
            PoolBackend::Ram => Ok(ValuePool::new()),
            PoolBackend::Disk => Ok(SegmentPool::create(SegmentPoolConfig::with_budget(
                self.budget_bytes,
            ))?
            .into_pool()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parses() {
        assert_eq!("ram".parse::<PoolBackend>().unwrap(), PoolBackend::Ram);
        assert_eq!("disk".parse::<PoolBackend>().unwrap(), PoolBackend::Disk);
        assert!("mmap".parse::<PoolBackend>().is_err());
    }

    #[test]
    fn config_builds_both_backends() {
        let ram = PoolConfig::default().build().unwrap();
        assert!(ram.store_stats().is_none());
        let disk = PoolConfig {
            backend: PoolBackend::Disk,
            budget_bytes: 4096,
        }
        .build()
        .unwrap();
        assert!(disk.store_stats().is_some());
    }
}
