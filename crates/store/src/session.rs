//! Pinned ingested snapshots for a resident profiling service.
//!
//! One-shot profiling pays CSV ingestion and pool construction on every
//! invocation. A resident service amortizes that: the first request
//! against a snapshot pair ingests it into a [`SnapshotPair`] (two
//! tables sharing one sealed [`ValuePool`]), and the [`SessionLru`] pins
//! the pair under a [`SessionKey`] — the **content fingerprints** of both
//! files plus the pool configuration — so every later request against
//! the same bytes skips ingestion entirely and starts from a cheap
//! clone (tables are column-`Arc`-backed, pool clones share sealed
//! segments). Keying by content rather than path means a rewritten file
//! re-ingests and an identical copy under another name hits.
//!
//! The LRU bounds how many pairs stay pinned, and
//! [`SessionLru::enforce_budgets`] is the explicit post-read eviction
//! hook for disk-backed pools: a read-heavy service workload over sealed
//! pools only ever faults segments *in* (reads are `&self`), so the
//! service calls this between requests to keep resident bytes under the
//! pool budget.
//!
//! Determinism corollary: a clone of a pinned pair is byte-identical to
//! a fresh ingestion of the same files (chunked ingestion is
//! byte-identical at every thread count, and clones preserve symbol
//! numbering), so results computed from warm sessions render the same
//! bytes as the one-shot CLI.

use std::collections::HashMap;
use std::path::Path;

use affidavit_table::{Table, ValuePool};

use crate::fingerprint::{fingerprint_file, Fingerprint};
use crate::{ingest, IngestOptions, PoolBackend, PoolConfig};

/// An ingested snapshot pair: two tables interned into one shared pool —
/// exactly what the profiler stages into a search instance. Cloning is
/// cheap and yields a fully independent view (column `Arc`s, shared
/// sealed segments).
#[derive(Debug, Clone)]
pub struct SnapshotPair {
    /// The source (before) snapshot.
    pub source: Table,
    /// The target (after) snapshot.
    pub target: Table,
    /// The pool both tables intern into.
    pub pool: ValuePool,
}

/// What identifies a pinned session: the content of both files and the
/// pool configuration they were ingested under. Ingestion is
/// byte-identical at every thread count and chunk size, so ingestion
/// options are deliberately *not* part of the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionKey {
    /// Content fingerprint of the source file.
    pub source: Fingerprint,
    /// Content fingerprint of the target file.
    pub target: Fingerprint,
    /// Pool backend the pair was built over.
    pub backend: PoolBackend,
    /// Pool RAM budget (disk backend only; constant for RAM).
    pub budget_bytes: usize,
}

impl SessionKey {
    /// Key a pair of files by content under a pool configuration.
    pub fn for_files(
        src_path: &Path,
        tgt_path: &Path,
        pool: &PoolConfig,
    ) -> Result<SessionKey, String> {
        let fp =
            |path: &Path| fingerprint_file(path).map_err(|e| format!("{}: {e}", path.display()));
        Ok(SessionKey {
            source: fp(src_path)?,
            target: fp(tgt_path)?,
            backend: pool.backend,
            budget_bytes: pool.budget_bytes,
        })
    }
}

/// Ingest a snapshot pair from its CSV files into a fresh pool — the
/// shared ingestion step under both the one-shot profiler and the
/// resident service, so failure messages (and the ingested bytes) are
/// identical in both modes.
pub fn ingest_pair(
    src_path: &Path,
    tgt_path: &Path,
    ingest_opts: &IngestOptions,
    pool_cfg: &PoolConfig,
) -> Result<SnapshotPair, String> {
    let mut pool = pool_cfg
        .build()
        .map_err(|e| format!("cannot create {:?} pool backend: {e}", pool_cfg.backend))?;
    let read = |path: &Path, pool: &mut ValuePool| {
        ingest::read_path(path, pool, ingest_opts).map_err(|e| format!("{}: {e}", path.display()))
    };
    let source = read(src_path, &mut pool)?;
    let target = read(tgt_path, &mut pool)?;
    Ok(SnapshotPair {
        source,
        target,
        pool,
    })
}

/// Ingestion-work counters of a [`SessionLru`] — how the "a warm repeat
/// request performs zero ingestion" invariant is asserted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCounters {
    /// Cache misses that ran a full ingestion.
    pub ingests: u64,
    /// Requests served from a pinned pair with zero ingestion work.
    pub hits: u64,
    /// Pinned pairs dropped to respect the capacity bound.
    pub evictions: u64,
}

impl SessionCounters {
    /// Publish these counters into the process-wide metrics registry
    /// under the `session_*` series, verbatim.
    pub fn publish(&self) {
        let m = affidavit_obs::metrics();
        m.set_counter("session_ingests_total", self.ingests);
        m.set_counter("session_hits_total", self.hits);
        m.set_counter("session_evictions_total", self.evictions);
    }
}

#[derive(Debug)]
struct SessionEntry {
    pair: SnapshotPair,
    last_used: u64,
}

/// A bounded cache of pinned [`SnapshotPair`]s, least-recently-used out.
/// Single-owner by design: a server wraps it in its own lock and holds
/// it only for the (cheap) lookup-and-clone, never across a search.
#[derive(Debug)]
pub struct SessionLru {
    capacity: usize,
    tick: u64,
    entries: HashMap<SessionKey, SessionEntry>,
    counters: SessionCounters,
}

impl SessionLru {
    /// A cache pinning at most `capacity` pairs (minimum 1).
    pub fn new(capacity: usize) -> SessionLru {
        SessionLru {
            capacity: capacity.max(1),
            tick: 0,
            entries: HashMap::new(),
            counters: SessionCounters::default(),
        }
    }

    /// The pair for `key` — a clone of the pinned one if present (zero
    /// ingestion work), otherwise freshly produced by `ingest`, pinned
    /// (evicting the least-recently-used pair over capacity) and cloned.
    pub fn get_or_ingest(
        &mut self,
        key: SessionKey,
        ingest: impl FnOnce() -> Result<SnapshotPair, String>,
    ) -> Result<SnapshotPair, String> {
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_used = self.tick;
            self.counters.hits += 1;
            self.counters.publish();
            affidavit_obs::point("session.hit", Vec::new());
            return Ok(entry.pair.clone());
        }
        let pair = {
            let _span = affidavit_obs::span("session.ingest");
            ingest()?
        };
        self.counters.ingests += 1;
        if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| *key);
            if let Some(victim) = victim {
                self.entries.remove(&victim);
                self.counters.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            SessionEntry {
                pair: pair.clone(),
                last_used: self.tick,
            },
        );
        self.counters.publish();
        Ok(pair)
    }

    /// Evict each pinned pool's cached segments down to its RAM budget —
    /// the post-read enforcement hook for disk-backed pools (reads are
    /// `&self` and only ever fault segments in; see
    /// [`ValuePool::enforce_budget`]). Call between requests.
    pub fn enforce_budgets(&mut self) {
        for entry in self.entries.values_mut() {
            entry.pair.pool.enforce_budget();
        }
    }

    /// Ingestion-work counters so far.
    pub fn counters(&self) -> SessionCounters {
        self.counters
    }

    /// Pinned pairs right now.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is pinned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn write_pair(dir: &Path, tag: &str, rows: usize) -> (PathBuf, PathBuf) {
        std::fs::create_dir_all(dir).unwrap();
        let src = dir.join(format!("{tag}-src.csv"));
        let tgt = dir.join(format!("{tag}-tgt.csv"));
        let mut s = String::from("k,v\n");
        let mut t = String::from("k,v\n");
        for i in 0..rows {
            s.push_str(&format!("k{i},{}\n", i * 100));
            t.push_str(&format!("k{i},{i}\n"));
        }
        std::fs::write(&src, s).unwrap();
        std::fs::write(&tgt, t).unwrap();
        (src, tgt)
    }

    fn ingest_into(lru: &mut SessionLru, src: &Path, tgt: &Path, cfg: &PoolConfig) -> SnapshotPair {
        let key = SessionKey::for_files(src, tgt, cfg).unwrap();
        lru.get_or_ingest(key, || {
            ingest_pair(src, tgt, &IngestOptions::default(), cfg)
        })
        .unwrap()
    }

    #[test]
    fn warm_repeats_skip_ingestion_and_match_cold_bytes() {
        let dir = std::env::temp_dir().join("affidavit-session-test");
        std::fs::remove_dir_all(&dir).ok();
        let (src, tgt) = write_pair(&dir, "a", 30);
        let cfg = PoolConfig::default();
        let mut lru = SessionLru::new(4);
        let cold = ingest_into(&mut lru, &src, &tgt, &cfg);
        assert_eq!(lru.counters().ingests, 1);
        // The warm repeat performs zero ingestion work...
        let warm = ingest_into(&mut lru, &src, &tgt, &cfg);
        assert_eq!(lru.counters().ingests, 1, "repeat must not re-ingest");
        assert_eq!(lru.counters().hits, 1);
        // ...and the pinned pair is indistinguishable from the cold one.
        assert_eq!(warm.source, cold.source);
        assert_eq!(warm.target, cold.target);
        assert_eq!(warm.pool.len(), cold.pool.len());
        // Rewriting a file changes its content key: a fresh ingestion.
        std::fs::write(&src, "k,v\nk0,changed\n").unwrap();
        ingest_into(&mut lru, &src, &tgt, &cfg);
        assert_eq!(lru.counters().ingests, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let dir = std::env::temp_dir().join("affidavit-session-lru-test");
        std::fs::remove_dir_all(&dir).ok();
        let cfg = PoolConfig::default();
        let mut lru = SessionLru::new(2);
        let (a_src, a_tgt) = write_pair(&dir, "a", 5);
        let (b_src, b_tgt) = write_pair(&dir, "b", 6);
        let (c_src, c_tgt) = write_pair(&dir, "c", 7);
        ingest_into(&mut lru, &a_src, &a_tgt, &cfg);
        ingest_into(&mut lru, &b_src, &b_tgt, &cfg);
        // Touch a so b is the least recently used, then overflow with c.
        ingest_into(&mut lru, &a_src, &a_tgt, &cfg);
        ingest_into(&mut lru, &c_src, &c_tgt, &cfg);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.counters().evictions, 1);
        // a survived (recently used): a repeat is still a hit.
        ingest_into(&mut lru, &a_src, &a_tgt, &cfg);
        assert_eq!(lru.counters().hits, 2);
        // b was evicted: a repeat re-ingests.
        ingest_into(&mut lru, &b_src, &b_tgt, &cfg);
        assert_eq!(lru.counters().ingests, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn enforce_budgets_bounds_pinned_disk_pools() {
        let dir = std::env::temp_dir().join("affidavit-session-budget-test");
        std::fs::remove_dir_all(&dir).ok();
        let (src, tgt) = write_pair(&dir, "big", 400);
        let cfg = PoolConfig {
            backend: PoolBackend::Disk,
            budget_bytes: 256,
        };
        let mut lru = SessionLru::new(2);
        let pair = ingest_into(&mut lru, &src, &tgt, &cfg);
        // Emulate the service hot path: a request clone reads everything
        // (the pinned pool itself is also readable through the clone's
        // shared segments), then the service enforces budgets.
        let pool_len = pair.pool.len() as u32;
        for i in 0..pool_len {
            let _ = pair.pool.get(affidavit_table::Sym(i));
        }
        lru.enforce_budgets();
        for entry in lru.entries.values() {
            let stats = entry.pair.pool.store_stats().unwrap();
            assert!(
                stats.resident_bytes <= cfg.budget_bytes,
                "pinned pool resident {} exceeds budget {}",
                stats.resident_bytes,
                cfg.budget_bytes
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
