//! Streaming snapshot ingestion with parallel interning.
//!
//! The serial CSV readers intern row by row into one pool — fine for the
//! running example, a bottleneck at the paper's "hundreds of tables"
//! operating point. This module splits the byte stream into chunks of
//! complete records ([`RowChunker`], quote/CRLF-aware, bounded memory),
//! fans a window of chunks out over the rayon pool — each worker parses
//! and interns its chunk into a private
//! [`ScratchPool`] overlay over the frozen
//! pool — and then absorbs worker results **in chunk order** via
//! [`ValuePool::absorb`] + [`SymRemap`](affidavit_table::SymRemap).
//!
//! # Determinism invariant
//!
//! First-appearance order decides symbol numbering, and absorbing chunks
//! in stream order reproduces exactly the first-appearance order of a
//! serial row-by-row pass (strings several workers discovered collapse
//! onto the symbol of the earliest chunk). The resulting
//! `(Table, ValuePool)` is therefore **byte-identical** to
//! [`csv::read_str`](affidavit_table::csv::read_str) at every thread
//! count and every chunk size — asserted across the full matrix by
//! `tests/properties_ingest.rs`.

use std::io::BufRead;
use std::path::Path;
use std::sync::Arc;

use affidavit_table::csv::{parse_rows_at, CsvChunk, CsvOptions, RowChunker};
use affidavit_table::{
    Interner, PoolReader, Schema, ScratchPool, Sym, Table, TableError, ValuePool,
};
use rayon::prelude::*;

/// Options for streaming ingestion.
#[derive(Debug, Clone, Copy)]
pub struct IngestOptions {
    /// CSV dialect.
    pub csv: CsvOptions,
    /// Records per chunk (`--ingest-chunk-rows`). Smaller chunks bound
    /// memory tighter and parallelize finer; the result is identical
    /// either way.
    pub chunk_rows: usize,
    /// Worker threads: `1` = serial (default), `0` = one per hardware
    /// thread, `N` = exactly N.
    pub threads: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            csv: CsvOptions::default(),
            chunk_rows: 4096,
            threads: 1,
        }
    }
}

/// Phase-1 output of one chunk worker: rows as scratch symbols plus the
/// overlay's new strings, ready for in-order absorption.
struct ChunkOut {
    rows: Vec<Vec<Sym>>,
    base_len: usize,
    new_strings: Vec<Arc<str>>,
    /// First error in the chunk; for `ArityMismatch` the `row` is
    /// chunk-local (1-based) and offset to a whole-stream index during the
    /// merge. Rows past the error are neither parsed into `rows` nor
    /// interned, matching the serial reader's stopping point.
    err: Option<TableError>,
}

fn process_chunk(
    chunk: &CsvChunk,
    reader: PoolReader<'_>,
    arity: usize,
    csv: CsvOptions,
) -> ChunkOut {
    let mut scratch = ScratchPool::new(reader);
    let mut rows_out: Vec<Vec<Sym>> = Vec::new();
    let mut err = None;
    match parse_rows_at(&chunk.text, csv, chunk.first_line) {
        Err(e) => err = Some(e),
        Ok(rows) => {
            for row in rows {
                if row.fields.len() != arity {
                    err = Some(TableError::ArityMismatch {
                        line: row.line,
                        row: rows_out.len() + 1,
                        expected: arity,
                        found: row.fields.len(),
                    });
                    break;
                }
                rows_out.push(row.fields.iter().map(|f| scratch.intern(f)).collect());
            }
        }
    }
    let base_len = scratch.base_len();
    let new_strings = scratch.take_new_strings();
    ChunkOut {
        rows: rows_out,
        base_len,
        new_strings,
        err,
    }
}

fn effective_threads(n: usize) -> usize {
    if n == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        n
    }
}

/// Stream a CSV table from `reader` into `pool`.
///
/// Memory stays bounded by `threads × chunk_rows` records (plus the
/// longest single record); the result is byte-identical to
/// [`csv::read_str`](affidavit_table::csv::read_str) on the same bytes.
pub fn read_stream<R: BufRead>(
    reader: R,
    pool: &mut ValuePool,
    opts: &IngestOptions,
) -> Result<Table, TableError> {
    let _span = affidavit_obs::span("ingest.stream");
    let threads = effective_threads(opts.threads);
    if threads <= 1 {
        // The serial case *is* the table crate's streaming reader; one
        // canonical implementation, no scratch/absorb overhead. It still
        // meters `ingest_rows_total`: the series counts records streamed
        // through this entry point, not a particular worker topology.
        let table = affidavit_table::csv::read_buffered_with(
            reader,
            pool,
            opts.csv,
            opts.chunk_rows.max(1),
        )?;
        affidavit_obs::metrics().add_counter("ingest_rows_total", table.len() as u64);
        return Ok(table);
    }
    let tp = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("ingest thread pool");
    tp.install(|| ingest(reader, pool, opts, threads))
}

/// Stream a CSV file from `path` into `pool` (see [`read_stream`]).
pub fn read_path(
    path: impl AsRef<Path>,
    pool: &mut ValuePool,
    opts: &IngestOptions,
) -> Result<Table, TableError> {
    let file = std::fs::File::open(path)?;
    read_stream(std::io::BufReader::new(file), pool, opts)
}

fn ingest<R: BufRead>(
    reader: R,
    pool: &mut ValuePool,
    opts: &IngestOptions,
    threads: usize,
) -> Result<Table, TableError> {
    let csv = opts.csv;
    let chunk_rows = opts.chunk_rows.max(1);
    let mut chunker = RowChunker::new(reader, csv);
    let (schema, arity) = loop {
        let Some(chunk) = chunker.next_chunk(1)? else {
            return Err(TableError::EmptyInput);
        };
        let mut rows = parse_rows_at(&chunk.text, csv, chunk.first_line)?;
        if rows.is_empty() {
            continue; // blank-line-only chunk before the header
        }
        let header = rows.remove(0);
        break (Schema::new(header.fields.clone()), header.fields.len());
    };
    let mut table = Table::new(schema);
    let mut rows_done = 0usize;
    loop {
        // One window of chunks per iteration: enough to feed every worker,
        // small enough to bound memory to `threads × chunk_rows` records.
        // A chunker error (unterminated quote at EOF) is *behind* every
        // chunk already handed out, so it is held back until the batch's
        // records have been validated — errors surface in stream order at
        // every thread count and chunk size.
        let mut pending: Option<TableError> = None;
        let mut batch: Vec<CsvChunk> = Vec::with_capacity(threads);
        while batch.len() < threads {
            match chunker.next_chunk(chunk_rows) {
                Ok(Some(chunk)) => batch.push(chunk),
                Ok(None) => break,
                Err(err) => {
                    pending = Some(err);
                    break;
                }
            }
        }
        if batch.is_empty() {
            if let Some(err) = pending {
                return Err(err);
            }
            break;
        }
        // Phase 1 (parallel, read-only): parse + intern each chunk against
        // the frozen pool.
        let outs: Vec<ChunkOut> = {
            let _span = affidavit_obs::span("ingest.parse");
            let reader = pool.reader();
            let work = |chunk: &CsvChunk| process_chunk(chunk, reader, arity, csv);
            if threads > 1 && batch.len() > 1 {
                batch.par_iter().map(work).collect()
            } else {
                batch.iter().map(work).collect()
            }
        };
        affidavit_obs::metrics().add_counter("ingest_chunks_total", outs.len() as u64);
        // Phase 2 (sequential, chunk order): absorb each worker's new
        // strings, rewrite its rows through the remap, append.
        let _span = affidavit_obs::span("ingest.absorb");
        for out in outs {
            let chunk_row_base = rows_done;
            let remap = pool.absorb(out.base_len, &out.new_strings);
            // Column-wise absorb: one linear append per attribute, rows
            // rewritten through the remap as they transpose in. The remap
            // is a pure lookup, so the traversal order is free to be
            // column-major without touching pool evolution.
            table.extend_columnwise(out.rows.len(), |attr, buf| {
                buf.extend(out.rows.iter().map(|syms| remap.remap(syms[attr.index()])));
            });
            rows_done += out.rows.len();
            if let Some(err) = out.err {
                return Err(match err {
                    TableError::ArityMismatch {
                        line,
                        row,
                        expected,
                        found,
                    } => TableError::ArityMismatch {
                        line,
                        row: chunk_row_base + row,
                        expected,
                        found,
                    },
                    other => other,
                });
            }
        }
        if let Some(err) = pending {
            return Err(err);
        }
    }
    affidavit_obs::metrics().add_counter("ingest_rows_total", rows_done as u64);
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::csv;

    fn fingerprint(table: &Table, pool: &ValuePool) -> String {
        let mut out = String::new();
        for name in table.schema().names() {
            out.push_str(name);
            out.push('\u{1}');
        }
        for (_, s) in pool.iter() {
            out.push_str(s);
            out.push('\u{2}');
        }
        for record in table.rows() {
            for sym in record.iter() {
                out.push_str(&sym.0.to_string());
                out.push(',');
            }
            out.push('\u{3}');
        }
        out
    }

    #[test]
    fn matches_serial_at_every_thread_count_and_chunk_size() {
        let mut text = String::from("id,amount,unit,note\n");
        for i in 0..300 {
            text.push_str(&format!(
                "k{i},{},USD,\"row {i}, with \"\"quotes\"\"\nand a newline\"\r\n",
                i * 100
            ));
        }
        let mut serial_pool = ValuePool::new();
        let serial = csv::read_str(&text, &mut serial_pool, CsvOptions::default()).unwrap();
        let want = fingerprint(&serial, &serial_pool);
        for threads in [1usize, 2, 4] {
            for chunk_rows in [1usize, 7, 64, 4096] {
                let opts = IngestOptions {
                    chunk_rows,
                    threads,
                    ..IngestOptions::default()
                };
                let mut pool = ValuePool::new();
                let table = read_stream(text.as_bytes(), &mut pool, &opts).unwrap();
                assert_eq!(
                    fingerprint(&table, &pool),
                    want,
                    "threads={threads} chunk_rows={chunk_rows} diverged"
                );
            }
        }
    }

    #[test]
    fn arity_error_carries_whole_stream_row() {
        let mut text = String::from("a,b\n");
        for i in 0..10 {
            text.push_str(&format!("x{i},y{i}\n"));
        }
        text.push_str("only-one-field\n");
        let opts = IngestOptions {
            chunk_rows: 3,
            threads: 2,
            ..IngestOptions::default()
        };
        let mut pool = ValuePool::new();
        let err = read_stream(text.as_bytes(), &mut pool, &opts).unwrap_err();
        assert!(
            matches!(
                err,
                TableError::ArityMismatch {
                    line: 12,
                    row: 11,
                    expected: 2,
                    found: 1,
                }
            ),
            "{err:?}"
        );
        // Identical to the serial reader's report.
        let mut serial_pool = ValuePool::new();
        let serial_err = csv::read_str(&text, &mut serial_pool, CsvOptions::default()).unwrap_err();
        assert_eq!(format!("{err}"), format!("{serial_err}"));
    }

    #[test]
    fn error_order_is_stream_order_at_every_chunk_size() {
        // A short record on line 2 precedes an unterminated quote opening
        // on line 3. The record comes first in the stream, so every path
        // reports the arity error — identically, at any chunk size.
        let text = "a,b\nonly-one\nx,\"unterminated";
        let mut p = ValuePool::new();
        let serial = csv::read_str(text, &mut p, CsvOptions::default()).unwrap_err();
        assert!(
            matches!(
                serial,
                TableError::ArityMismatch {
                    row: 1,
                    line: 2,
                    ..
                }
            ),
            "{serial:?}"
        );
        // With clean records ahead of it, the quote error surfaces with
        // its own position.
        let text2 = "a,b\nx,y\nq,\"open";
        let mut p2 = ValuePool::new();
        let serial2 = csv::read_str(text2, &mut p2, CsvOptions::default()).unwrap_err();
        assert!(
            matches!(
                serial2,
                TableError::UnterminatedQuote { line: 3, column: 3 }
            ),
            "{serial2:?}"
        );
        for (input, want) in [(text, &serial), (text2, &serial2)] {
            for chunk_rows in [1usize, 2, 4096] {
                for threads in [1usize, 2] {
                    let opts = IngestOptions {
                        chunk_rows,
                        threads,
                        ..IngestOptions::default()
                    };
                    let mut pool = ValuePool::new();
                    let err = read_stream(input.as_bytes(), &mut pool, &opts).unwrap_err();
                    assert_eq!(
                        format!("{err}"),
                        format!("{want}"),
                        "chunk_rows={chunk_rows} threads={threads} must match serial"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_input_is_an_error() {
        let mut pool = ValuePool::new();
        let err = read_stream("".as_bytes(), &mut pool, &IngestOptions::default()).unwrap_err();
        assert!(matches!(err, TableError::EmptyInput));
    }

    #[test]
    fn ingests_into_a_disk_backed_pool() {
        let mut text = String::from("k,v\n");
        for i in 0..500 {
            text.push_str(&format!("key-{i:05},value-{i:05}\n"));
        }
        let mut pool = crate::PoolConfig {
            backend: crate::PoolBackend::Disk,
            budget_bytes: 512,
        }
        .build()
        .unwrap();
        let opts = IngestOptions {
            chunk_rows: 64,
            threads: 2,
            ..IngestOptions::default()
        };
        let table = read_stream(text.as_bytes(), &mut pool, &opts).unwrap();
        assert_eq!(table.len(), 500);
        let stats = pool.store_stats().unwrap();
        assert!(stats.spilled_bytes > 0, "tiny budget must spill");
        // Same contents as a RAM ingest, symbol for symbol.
        let mut ram = ValuePool::new();
        let ram_table = csv::read_str(&text, &mut ram, CsvOptions::default()).unwrap();
        assert_eq!(fingerprint(&table, &pool), fingerprint(&ram_table, &ram));
    }
}
