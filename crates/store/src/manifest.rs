//! Atomic manifest persistence for incremental re-profiling.
//!
//! A delta manifest is a small JSON document that must never be observed
//! half-written: a crashed run leaving a truncated manifest would be
//! indistinguishable from a corrupted one, forcing a full redo on the
//! next run (safe, but wasteful). Writes therefore go through the same
//! write-to-temp-then-rename discipline as the distributed job spool
//! (`affidavit_dist::broker`): the content lands in a hidden sibling
//! temp file first and is renamed into place in one atomic step, so
//! readers only ever see either the previous complete manifest or the
//! new complete manifest.

use std::io;
use std::path::Path;

/// Write `contents` to `path` atomically: temp file in the same
/// directory (same filesystem, so the rename cannot cross devices),
/// then one `rename` into place. Creates missing parent directories.
pub fn save_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    std::fs::create_dir_all(dir)?;
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::other(format!("bad manifest path {}", path.display())))?;
    // The PID keeps two processes racing on the same manifest from
    // trampling each other's temp file; last rename wins either way.
    let tmp = dir.join(format!(".tmp-{}-{name}", std::process::id()));
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

/// Read a manifest back. `Ok(None)` when the file does not exist (a
/// first run), `Err` on any other I/O failure.
pub fn load_string(path: &Path) -> io::Result<Option<String>> {
    match std::fs::read_to_string(path) {
        Ok(s) => Ok(Some(s)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_is_atomic_and_load_distinguishes_absent_from_broken() {
        let dir = std::env::temp_dir().join("affidavit-manifest-test");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("nested").join("state.json");
        // Absent reads as None, not an error.
        assert_eq!(load_string(&path).unwrap(), None);
        // Parents are created; content round-trips.
        save_atomic(&path, "{\"v\":1}").unwrap();
        assert_eq!(load_string(&path).unwrap().as_deref(), Some("{\"v\":1}"));
        // Overwrite replaces wholesale and leaves no temp droppings.
        save_atomic(&path, "{\"v\":2}").unwrap();
        assert_eq!(load_string(&path).unwrap().as_deref(), Some("{\"v\":2}"));
        let siblings: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(siblings, vec!["state.json"], "no temp files left behind");
        std::fs::remove_dir_all(&dir).ok();
    }
}
