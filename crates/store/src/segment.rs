//! Disk-backed value pools: append-only string segments under a RAM budget.
//!
//! A [`SegmentStore`] appends interned string bytes to an *active* in-RAM
//! segment; when the active segment reaches `segment_bytes` it is
//! **sealed** — written to a file in a per-store spill directory — and a
//! fresh active segment starts. Sealed segments are immutable, so reads
//! can fault them back in on demand (lazily, behind a `OnceLock`); a
//! least-recently-touched cache keeps resident string bytes under
//! `budget_bytes`, with evictions happening only at mutation points
//! (appends), where no `&str` borrows into the cache can be live.
//!
//! The whole machinery hides behind the
//! [`StringStore`] seam of
//! [`ValuePool`]: symbol numbering, interning
//! order and lookups are unchanged, so a search over a [`SegmentPool`] is
//! byte-identical to one over a RAM pool — only the residency of the
//! string bytes differs.
//!
//! # Spill format
//!
//! Each sealed segment is one file `seg-<n>.bin` holding the raw UTF-8
//! concatenation of its strings; the in-RAM location table (12 bytes per
//! string: segment id, byte offset, byte length) addresses into it. Files
//! are written once and never modified; the spill directory is removed
//! when the last clone of the store is dropped.
//!
//! # Failure model
//!
//! Spill-file I/O happens inside `intern`/`get`, which return plain
//! symbols and strings; an I/O failure there (disk full, spill directory
//! deleted mid-run) panics with the offending path rather than silently
//! corrupting the pool.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use affidavit_table::{Decimal, Interner, StringStore, Sym, ValuePool};

/// Configuration for a [`SegmentPool`] / [`SegmentStore`].
#[derive(Debug, Clone)]
pub struct SegmentPoolConfig {
    /// Target ceiling for string bytes resident in RAM (active segment
    /// plus loaded segment cache). Best-effort: the active segment and any
    /// segment faulted in during the current shared borrow stay resident.
    pub budget_bytes: usize,
    /// Bytes per sealed segment (the spill granularity).
    pub segment_bytes: usize,
    /// Parent directory for the spill directory (default: the OS temp
    /// dir). A unique subdirectory is created per store and removed when
    /// the last clone of the store is dropped.
    pub spill_parent: Option<PathBuf>,
}

impl Default for SegmentPoolConfig {
    fn default() -> Self {
        SegmentPoolConfig {
            budget_bytes: 64 * 1024 * 1024,
            segment_bytes: 1024 * 1024,
            spill_parent: None,
        }
    }
}

impl SegmentPoolConfig {
    /// A configuration for the given budget, with the segment size scaled
    /// so the cache can hold several segments (useful down to the tiny
    /// budgets the spill tests force).
    pub fn with_budget(budget_bytes: usize) -> SegmentPoolConfig {
        SegmentPoolConfig {
            budget_bytes,
            segment_bytes: (budget_bytes / 8).clamp(64, 1024 * 1024),
            spill_parent: None,
        }
    }
}

/// Uniquifier for spill directories within one process.
static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The spill directory, shared by all clones of a store; removed when the
/// last clone drops.
#[derive(Debug)]
struct SpillDir {
    path: PathBuf,
    /// Segment-file uniquifier shared by clones (clones keep appending to
    /// the same directory, so file names must never collide).
    counter: AtomicU64,
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Location of one string: segment id (or [`ACTIVE`]), byte offset, byte
/// length.
#[derive(Debug, Clone, Copy)]
struct Loc {
    seg: u32,
    off: u32,
    len: u32,
}

/// Sentinel segment id for strings still in the active segment.
const ACTIVE: u32 = u32::MAX;

/// Hard ceiling on the segment size: [`Loc`] offsets are `u32`, so
/// segments must stay far below 4 GiB for offsets to be representable.
const MAX_SEGMENT_BYTES: usize = 256 * 1024 * 1024;

/// One sealed, immutable segment.
#[derive(Debug)]
struct Segment {
    file: PathBuf,
    len: usize,
    /// Lazily faulted-in contents; replaced wholesale on eviction.
    bytes: OnceLock<Box<str>>,
    /// Logical clock stamp of the most recent read (LRU eviction order).
    last_touch: AtomicU64,
}

impl Segment {
    fn load(&self, loaded_bytes: &AtomicUsize) -> &str {
        self.bytes.get_or_init(|| {
            let raw = std::fs::read(&self.file).unwrap_or_else(|e| {
                panic!(
                    "failed to page segment {} back in: {e}",
                    self.file.display()
                )
            });
            loaded_bytes.fetch_add(raw.len(), Ordering::Relaxed);
            String::from_utf8(raw)
                .expect("sealed segments contain the UTF-8 bytes that were written")
                .into_boxed_str()
        })
    }
}

/// The [`StringStore`] implementation behind [`SegmentPool`].
#[derive(Debug)]
pub struct SegmentStore {
    dir: Arc<SpillDir>,
    budget_bytes: usize,
    segment_bytes: usize,
    active: String,
    /// Index of the first string in the active segment (the active
    /// segment's strings are always the tail of `locs`).
    active_start: usize,
    locs: Vec<Loc>,
    sealed: Vec<Segment>,
    clock: AtomicU64,
    loaded_bytes: AtomicUsize,
    spilled: u64,
}

impl SegmentStore {
    /// Create an empty store with its own spill directory.
    pub fn create(cfg: SegmentPoolConfig) -> io::Result<SegmentStore> {
        let parent = cfg.spill_parent.unwrap_or_else(std::env::temp_dir);
        let path = parent.join(format!(
            "affidavit-pool-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path)?;
        Ok(SegmentStore {
            dir: Arc::new(SpillDir {
                path,
                counter: AtomicU64::new(0),
            }),
            budget_bytes: cfg.budget_bytes,
            segment_bytes: cfg.segment_bytes.clamp(1, MAX_SEGMENT_BYTES),
            active: String::new(),
            active_start: 0,
            locs: Vec::new(),
            sealed: Vec::new(),
            clock: AtomicU64::new(0),
            loaded_bytes: AtomicUsize::new(0),
            spilled: 0,
        })
    }

    /// Number of sealed (spilled) segments.
    pub fn sealed_segments(&self) -> usize {
        self.sealed.len()
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Write the active segment out and start a fresh one. The just-sealed
    /// bytes stay cached (the cheapest possible load); budget enforcement
    /// evicts them later if needed.
    fn seal(&mut self) {
        let id = self.sealed.len() as u32;
        let file = self.dir.path.join(format!(
            "seg-{:08}.bin",
            self.dir.counter.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&file, self.active.as_bytes())
            .unwrap_or_else(|e| panic!("failed to spill segment {}: {e}", file.display()));
        self.spilled += self.active.len() as u64;
        for loc in &mut self.locs[self.active_start..] {
            loc.seg = id;
        }
        let seg = Segment {
            file,
            len: self.active.len(),
            bytes: OnceLock::new(),
            last_touch: AtomicU64::new(self.tick()),
        };
        let text = std::mem::take(&mut self.active);
        self.loaded_bytes.fetch_add(seg.len, Ordering::Relaxed);
        let _ = seg.bytes.set(text.into_boxed_str());
        self.sealed.push(seg);
        self.active_start = self.locs.len();
    }

    /// Evict least-recently-touched loaded segments until the resident
    /// bytes fit the budget (or nothing evictable remains).
    fn evict_to_budget(&mut self) {
        while self.resident_bytes() > self.budget_bytes {
            let mut victim = None;
            let mut oldest = u64::MAX;
            for (i, seg) in self.sealed.iter().enumerate() {
                if seg.bytes.get().is_some() {
                    let t = seg.last_touch.load(Ordering::Relaxed);
                    if t < oldest {
                        oldest = t;
                        victim = Some(i);
                    }
                }
            }
            let Some(i) = victim else {
                break; // only the active segment is resident
            };
            let seg = &mut self.sealed[i];
            self.loaded_bytes.fetch_sub(seg.len, Ordering::Relaxed);
            seg.bytes = OnceLock::new();
        }
    }
}

impl StringStore for SegmentStore {
    fn append(&mut self, s: &str) -> usize {
        if !self.active.is_empty() && self.active.len() + s.len() > self.segment_bytes {
            self.seal();
        }
        let index = self.locs.len();
        // The seal above caps the offset at `segment_bytes` (≤ 256 MiB);
        // a single string must also fit the u32 location encoding.
        let off = u32::try_from(self.active.len()).expect("segment offset fits u32");
        let len = u32::try_from(s.len()).expect("a single interned string must be < 4 GiB");
        self.active.push_str(s);
        self.locs.push(Loc {
            seg: ACTIVE,
            off,
            len,
        });
        self.evict_to_budget();
        index
    }

    fn enforce_budget(&mut self) {
        // The explicit post-read hook: appends enforce the budget on
        // their own, but a read-only pass over a sealed store (the
        // resident-service hot path) only faults segments in.
        self.evict_to_budget();
    }

    fn get(&self, index: usize) -> &str {
        let loc = self.locs[index];
        let (start, end) = (loc.off as usize, (loc.off + loc.len) as usize);
        if loc.seg == ACTIVE {
            return &self.active[start..end];
        }
        let seg = &self.sealed[loc.seg as usize];
        seg.last_touch.store(self.tick(), Ordering::Relaxed);
        &seg.load(&self.loaded_bytes)[start..end]
    }

    fn len(&self) -> usize {
        self.locs.len()
    }

    fn clone_store(&self) -> Box<dyn StringStore> {
        // Sealed files are immutable and shared through the spill-dir Arc;
        // the clone starts with a cold cache and seals future segments
        // under fresh (counter-unique) file names.
        Box::new(SegmentStore {
            dir: Arc::clone(&self.dir),
            budget_bytes: self.budget_bytes,
            segment_bytes: self.segment_bytes,
            active: self.active.clone(),
            active_start: self.active_start,
            locs: self.locs.clone(),
            sealed: self
                .sealed
                .iter()
                .map(|s| Segment {
                    file: s.file.clone(),
                    len: s.len,
                    bytes: OnceLock::new(),
                    last_touch: AtomicU64::new(0),
                })
                .collect(),
            clock: AtomicU64::new(self.clock.load(Ordering::Relaxed)),
            loaded_bytes: AtomicUsize::new(0),
            spilled: self.spilled,
        })
    }

    fn resident_bytes(&self) -> usize {
        self.active.len() + self.loaded_bytes.load(Ordering::Relaxed)
    }

    fn spilled_bytes(&self) -> u64 {
        self.spilled
    }
}

/// A disk-backed interner: a [`ValuePool`] whose string bytes live in
/// append-only segments spilled to files under a RAM budget.
///
/// `SegmentPool` implements [`Interner`], so any generic code
/// (`induce_candidates`, `rank_candidates`, `Blocking::refine`, …) runs
/// over it unchanged; [`SegmentPool::into_pool`] yields the underlying
/// [`ValuePool`] for APIs that take the pool by value (the search's
/// `ProblemInstance`), preserving the disk backend.
#[derive(Debug)]
pub struct SegmentPool {
    pool: ValuePool,
}

impl SegmentPool {
    /// Create an empty disk-backed pool.
    pub fn create(cfg: SegmentPoolConfig) -> io::Result<SegmentPool> {
        Ok(SegmentPool {
            pool: ValuePool::with_store(Box::new(SegmentStore::create(cfg)?)),
        })
    }

    /// The underlying pool (still disk-backed), for by-value APIs.
    pub fn into_pool(self) -> ValuePool {
        self.pool
    }

    /// Shared view of the underlying pool.
    pub fn pool(&self) -> &ValuePool {
        &self.pool
    }

    /// Mutable view of the underlying pool.
    pub fn pool_mut(&mut self) -> &mut ValuePool {
        &mut self.pool
    }

    /// String bytes currently resident in RAM.
    pub fn resident_bytes(&self) -> usize {
        self.pool.store_stats().map_or(0, |s| s.resident_bytes)
    }

    /// Evict cached segments down to the RAM budget — the explicit hook
    /// for read-heavy workloads over a sealed pool, which fault segments
    /// in through [`Interner::get`] but (being `&self`) can never evict.
    pub fn enforce_budget(&mut self) {
        self.pool.enforce_budget();
    }

    /// String bytes written to spill files so far.
    pub fn spilled_bytes(&self) -> u64 {
        self.pool.store_stats().map_or(0, |s| s.spilled_bytes)
    }
}

impl Interner for SegmentPool {
    fn get(&self, sym: Sym) -> &str {
        self.pool.get(sym)
    }

    fn decimal(&self, sym: Sym) -> Option<Decimal> {
        self.pool.decimal(sym)
    }

    fn intern(&mut self, s: &str) -> Sym {
        self.pool.intern(s)
    }

    fn lookup(&self, s: &str) -> Option<Sym> {
        self.pool.lookup(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SegmentPoolConfig {
        SegmentPoolConfig {
            budget_bytes: 256,
            segment_bytes: 64,
            spill_parent: None,
        }
    }

    #[test]
    fn round_trips_through_spills() {
        let mut pool = SegmentPool::create(tiny()).unwrap();
        let values: Vec<String> = (0..200).map(|i| format!("value-{i:04}")).collect();
        let syms: Vec<Sym> = values.iter().map(|v| pool.intern(v)).collect();
        assert!(pool.spilled_bytes() > 0, "tiny budget must force spills");
        assert!(
            pool.resident_bytes() <= 256 + 64,
            "resident {} must stay near budget",
            pool.resident_bytes()
        );
        for (v, &sym) in values.iter().zip(&syms) {
            assert_eq!(pool.get(sym), v);
            assert_eq!(pool.lookup(v), Some(sym));
        }
        // Idempotent re-interning across spilled segments.
        for (v, &sym) in values.iter().zip(&syms) {
            assert_eq!(pool.intern(v), sym);
        }
    }

    #[test]
    fn numeric_cache_and_interner_trait() {
        let mut pool = SegmentPool::create(tiny()).unwrap();
        let n = Interner::intern(&mut pool, "42.5");
        let s = Interner::intern(&mut pool, "IBM");
        assert_eq!(Interner::decimal(&pool, n).unwrap().to_string(), "42.5");
        assert!(Interner::decimal(&pool, s).is_none());
        assert_eq!(Interner::get(&pool, n), "42.5");
    }

    #[test]
    fn read_only_workloads_stay_bounded_via_the_explicit_hook() {
        // Regression: eviction used to run only at `&mut` mutation
        // points (appends), so a read-heavy pass over a *sealed* pool —
        // the resident-service hot path — faulted segments in through
        // `get` and never let go of them.
        let mut pool = SegmentPool::create(tiny()).unwrap().into_pool();
        let values: Vec<String> = (0..300).map(|i| format!("value-{i:04}")).collect();
        let syms: Vec<Sym> = values.iter().map(|v| pool.intern(v)).collect();
        // A cold clone of the sealed pool, as a session cache would pin.
        let mut session = pool.clone();
        for (v, &sym) in values.iter().zip(&syms) {
            assert_eq!(session.get(sym), v);
        }
        let resident = session.store_stats().unwrap().resident_bytes;
        assert!(
            resident > 2 * tiny().budget_bytes,
            "reads alone fault everything in (resident {resident}) — \
             that is the bug the hook exists for"
        );
        session.enforce_budget();
        let bounded = session.store_stats().unwrap().resident_bytes;
        assert!(
            bounded <= tiny().budget_bytes,
            "post-read enforcement must evict down to the budget \
             (resident {bounded}, budget {})",
            tiny().budget_bytes
        );
        // The pool still answers every query (re-faulting on demand).
        for (v, &sym) in values.iter().zip(&syms) {
            assert_eq!(session.get(sym), v);
        }
    }

    #[test]
    fn clone_shares_sealed_segments() {
        let mut pool = SegmentPool::create(tiny()).unwrap().into_pool();
        let syms: Vec<Sym> = (0..100).map(|i| pool.intern(&format!("v{i:05}"))).collect();
        let clone = pool.clone();
        for (i, &sym) in syms.iter().enumerate() {
            assert_eq!(clone.get(sym), format!("v{i:05}"));
        }
        // Divergent appends don't disturb the clone.
        pool.intern("only-in-original");
        assert!(clone.lookup("only-in-original").is_none());
    }

    #[test]
    fn scratch_overlay_and_absorb_work_over_disk_pools() {
        use affidavit_table::ScratchPool;
        let mut pool = SegmentPool::create(tiny()).unwrap().into_pool();
        for i in 0..50 {
            pool.intern(&format!("base-{i:04}"));
        }
        let (base_len, news, scratch_sym, shared_sym) = {
            let mut scratch = ScratchPool::new(pool.reader());
            let shared = scratch.intern("base-0007");
            let novel = scratch.intern("novel-string");
            (
                scratch.base_len(),
                scratch.take_new_strings(),
                novel,
                shared,
            )
        };
        let remap = pool.absorb(base_len, &news);
        assert_eq!(pool.get(remap.remap(scratch_sym)), "novel-string");
        assert_eq!(remap.remap(shared_sym), shared_sym);
    }
}
