//! Hand-specified column layouts for the flagship datasets.
//!
//! The generic profile cycling in [`crate::synth`] preserves the shape
//! statistics; for the datasets whose structure the paper's analysis leans
//! on most, this module provides **named, realistic layouts** (the UCI
//! attribute lists) so generated instances read like the originals —
//! `sepal_length`, `workclass`, `voter_status` instead of `a03`. Domains
//! stay within the 0.7-distinctness cleaning threshold.
//!
//! Layouts shorter than a spec's attribute count are padded with generic
//! profile columns (only relevant for the very wide tables).

use rand::rngs::StdRng;

use crate::specs::DatasetSpec;
use crate::synth::ColumnKind;

fn cat(values: &[&str]) -> ColumnKind {
    ColumnKind::Categorical(values.iter().map(|s| s.to_string()).collect())
}

fn dec(rows: usize, frac: f64, scale: u32) -> ColumnKind {
    let domain = (((rows as f64) * frac).max(2.0)) as u64;
    ColumnKind::Decimal { domain, scale }
}

fn int(rows: usize, frac: f64) -> ColumnKind {
    let domain = (((rows as f64) * frac).max(2.0)) as u64;
    ColumnKind::Int { domain }
}

/// The hand layout for `spec`, if one exists: `(name, kind)` per column.
pub fn named_layout(spec: &DatasetSpec, rows: usize) -> Option<Vec<(String, ColumnKind)>> {
    let layout: Vec<(&str, ColumnKind)> = match spec.name {
        "iris" => vec![
            ("sepal_length", dec(rows, 0.25, 1)),
            ("sepal_width", dec(rows, 0.2, 1)),
            ("petal_length", dec(rows, 0.3, 1)),
            ("petal_width", dec(rows, 0.15, 1)),
            (
                "class",
                cat(&["Iris-setosa", "Iris-versicolor", "Iris-virginica"]),
            ),
        ],
        "balance" => vec![
            ("class", cat(&["L", "B", "R"])),
            ("left_weight", int(rows, 0.008)),
            ("left_distance", int(rows, 0.008)),
            ("right_weight", int(rows, 0.008)),
            ("right_distance", int(rows, 0.008)),
        ],
        "abalone" => vec![
            ("sex", cat(&["M", "F", "I"])),
            ("length", dec(rows, 0.1, 3)),
            ("diameter", dec(rows, 0.1, 3)),
            ("height", dec(rows, 0.05, 3)),
            ("whole_weight", dec(rows, 0.3, 4)),
            ("shucked_weight", dec(rows, 0.3, 4)),
            ("viscera_weight", dec(rows, 0.2, 4)),
            ("rings", int(rows, 0.007)),
        ],
        "bridges" => vec![
            ("river", cat(&["A", "M", "O", "Y"])),
            ("location", int(rows, 0.45)),
            (
                "erected",
                ColumnKind::Date {
                    start_year: 1880,
                    domain: 60,
                },
            ),
            ("purpose", cat(&["HIGHWAY", "RR", "AQUEDUCT", "WALK"])),
            ("lanes", cat(&["1", "2", "4", "6"])),
            ("clear_g", cat(&["N", "G"])),
            ("t_or_d", cat(&["THROUGH", "DECK"])),
            ("material", cat(&["WOOD", "IRON", "STEEL"])),
            ("span", cat(&["SHORT", "MEDIUM", "LONG"])),
        ],
        "adult" => vec![
            ("age", int(rows, 0.0015)),
            (
                "workclass",
                cat(&[
                    "Private",
                    "Self-emp",
                    "Federal-gov",
                    "Local-gov",
                    "State-gov",
                    "Without-pay",
                ]),
            ),
            ("fnlwgt", int(rows, 0.4)),
            (
                "education",
                cat(&[
                    "Bachelors",
                    "HS-grad",
                    "11th",
                    "Masters",
                    "Some-college",
                    "Assoc-acdm",
                    "Doctorate",
                ]),
            ),
            ("education_num", int(rows, 0.0004)),
            (
                "marital_status",
                cat(&[
                    "Married-civ-spouse",
                    "Divorced",
                    "Never-married",
                    "Separated",
                    "Widowed",
                ]),
            ),
            (
                "occupation",
                cat(&[
                    "Tech-support",
                    "Craft-repair",
                    "Sales",
                    "Exec-managerial",
                    "Prof-specialty",
                    "Handlers-cleaners",
                ]),
            ),
            (
                "relationship",
                cat(&["Wife", "Own-child", "Husband", "Not-in-family", "Unmarried"]),
            ),
            (
                "race",
                cat(&[
                    "White",
                    "Black",
                    "Asian-Pac-Islander",
                    "Amer-Indian-Eskimo",
                    "Other",
                ]),
            ),
            ("sex", cat(&["Male", "Female"])),
            ("capital_gain", int(rows, 0.01)),
            ("capital_loss", int(rows, 0.005)),
            ("hours_per_week", int(rows, 0.002)),
            (
                "native_country",
                cat(&[
                    "United-States",
                    "Mexico",
                    "Philippines",
                    "Germany",
                    "Canada",
                    "India",
                    "England",
                ]),
            ),
        ],
        "ncvoter-1k" => vec![
            ("county_id", int(rows, 0.1)),
            (
                "voter_reg_num",
                ColumnKind::Code {
                    prefix: "VR",
                    width: 6,
                    domain: ((rows as f64) * 0.6) as u64,
                },
            ),
            (
                "last_name",
                cat(&[
                    "SMITH", "JOHNSON", "WILLIAMS", "BROWN", "JONES", "DAVIS", "MILLER", "WILSON",
                ]),
            ),
            (
                "first_name",
                cat(&[
                    "JAMES", "MARY", "JOHN", "PATRICIA", "ROBERT", "JENNIFER", "MICHAEL",
                ]),
            ),
            ("midl_name", cat(&["A", "B", "C", "D", "E", "L", "M"])),
            ("status_cd", cat(&["A", "I", "D", "R"])),
            (
                "voter_status_desc",
                cat(&["ACTIVE", "INACTIVE", "DENIED", "REMOVED"]),
            ),
            ("reason_cd", cat(&["AV", "IN", "DN", "RL"])),
            (
                "city",
                cat(&[
                    "RALEIGH",
                    "CHARLOTTE",
                    "DURHAM",
                    "GREENSBORO",
                    "WILMINGTON",
                    "ASHEVILLE",
                ]),
            ),
            ("state_cd", cat(&["NC"])),
            ("zip_code", int(rows, 0.2)),
            (
                "registr_dt",
                ColumnKind::Date {
                    start_year: 1990,
                    domain: ((rows as f64) * 0.3).max(2.0) as u64,
                },
            ),
            ("race_code", cat(&["W", "B", "A", "I", "O", "U"])),
            ("ethnic_code", cat(&["HL", "NL", "UN"])),
            ("party_cd", cat(&["DEM", "REP", "UNA", "LIB"])),
        ],
        "chess" => vec![
            ("white_king_file", cat(&["a", "b", "c", "d"])),
            ("white_king_rank", cat(&["1", "2", "3", "4"])),
            (
                "white_rook_file",
                cat(&["a", "b", "c", "d", "e", "f", "g", "h"]),
            ),
            (
                "white_rook_rank",
                cat(&["1", "2", "3", "4", "5", "6", "7", "8"]),
            ),
            (
                "black_king_file",
                cat(&["a", "b", "c", "d", "e", "f", "g", "h"]),
            ),
            (
                "black_king_rank",
                cat(&["1", "2", "3", "4", "5", "6", "7", "8"]),
            ),
            (
                "outcome",
                cat(&[
                    "draw", "zero", "one", "two", "three", "four", "five", "six", "seven", "eight",
                ]),
            ),
        ],
        "nursery" => vec![
            ("parents", cat(&["usual", "pretentious", "great_pret"])),
            (
                "has_nurs",
                cat(&["proper", "less_proper", "improper", "critical", "very_crit"]),
            ),
            (
                "form",
                cat(&["complete", "completed", "incomplete", "foster"]),
            ),
            ("children", cat(&["1", "2", "3", "more"])),
            ("housing", cat(&["convenient", "less_conv", "critical"])),
            ("finance", cat(&["convenient", "inconv"])),
            ("social", cat(&["nonprob", "slightly_prob", "problematic"])),
            ("health", cat(&["recommended", "priority", "not_recom"])),
            (
                "class",
                cat(&[
                    "not_recom",
                    "recommend",
                    "very_recom",
                    "priority",
                    "spec_prior",
                ]),
            ),
        ],
        "letter" => {
            // 16 integer features in 0..16 plus the class letter.
            let mut cols: Vec<(&str, ColumnKind)> = vec![(
                "lettr",
                cat(&[
                    "A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K", "L", "M", "N", "O", "P",
                    "Q", "R", "S", "T", "U", "V", "W", "X", "Y", "Z",
                ]),
            )];
            for name in [
                "x-box", "y-box", "width", "high", "onpix", "x-bar", "y-bar", "x2bar", "y2bar",
                "xybar", "x2ybr", "xy2br", "x-ege", "xegvy", "y-ege", "yegvx",
            ] {
                cols.push((name, ColumnKind::Int { domain: 16 }));
            }
            cols
        }
        "echo" => vec![
            ("survival", int(rows, 0.3)),
            ("still_alive", cat(&["0", "1"])),
            ("age_at_heart_attack", int(rows, 0.35)),
            ("pericardial_effusion", cat(&["0", "1"])),
            ("fractional_shortening", dec(rows, 0.3, 3)),
            ("epss", dec(rows, 0.35, 2)),
            ("lvdd", dec(rows, 0.35, 2)),
            ("wall_motion_score", int(rows, 0.2)),
            ("alive_at_1", cat(&["0", "1"])),
        ],
        "breast" => vec![
            ("clump_thickness", ColumnKind::Int { domain: 10 }),
            ("uniformity_cell_size", ColumnKind::Int { domain: 10 }),
            ("uniformity_cell_shape", ColumnKind::Int { domain: 10 }),
            ("marginal_adhesion", ColumnKind::Int { domain: 10 }),
            (
                "single_epithelial_cell_size",
                ColumnKind::Int { domain: 10 },
            ),
            ("bare_nuclei", ColumnKind::Int { domain: 10 }),
            ("bland_chromatin", ColumnKind::Int { domain: 10 }),
            ("normal_nucleoli", ColumnKind::Int { domain: 10 }),
            ("mitoses", ColumnKind::Int { domain: 9 }),
            ("class", cat(&["2", "4"])),
        ],
        _ => return None,
    };
    Some(layout.into_iter().map(|(n, k)| (n.to_owned(), k)).collect())
}

/// Build the full column list for a spec: the hand layout when available
/// (padded with generic columns if the spec is wider), otherwise `None`.
pub fn layout_for(
    spec: &DatasetSpec,
    rows: usize,
    rng: &mut StdRng,
) -> Option<Vec<(String, ColumnKind)>> {
    let mut layout = named_layout(spec, rows)?;
    let want = spec.base_attrs();
    if layout.len() > want {
        layout.truncate(want);
    }
    if layout.len() < want {
        let generic = crate::synth::column_kinds(spec, rows, rng);
        for (i, kind) in generic.into_iter().enumerate().skip(layout.len()) {
            layout.push((format!("x{i:02}"), kind));
        }
        layout.truncate(want);
    }
    Some(layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::by_name;
    use rand::SeedableRng;

    #[test]
    fn layouts_match_spec_arity() {
        for name in [
            "iris",
            "balance",
            "abalone",
            "bridges",
            "adult",
            "ncvoter-1k",
            "chess",
            "nursery",
            "letter",
            "echo",
            "breast",
        ] {
            let spec = by_name(name).unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            let layout = layout_for(&spec, spec.rows.min(2000), &mut rng).unwrap();
            assert_eq!(layout.len(), spec.base_attrs(), "{name}");
            // Unique names.
            let mut names: Vec<&str> = layout.iter().map(|(n, _)| n.as_str()).collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), spec.base_attrs(), "{name}: duplicate names");
        }
    }

    #[test]
    fn wide_datasets_have_no_hand_layout() {
        let spec = by_name("uniprot").unwrap();
        assert!(named_layout(&spec, 1000).is_none());
    }

    #[test]
    fn domains_respect_distinctness_threshold() {
        use affidavit_table::stats::attribute_stats;
        for name in ["adult", "ncvoter-1k", "abalone"] {
            let spec = by_name(name).unwrap();
            let rows = spec.rows.min(2000);
            let (t, pool) = crate::synth::generate_rows(&spec, rows, 5);
            for st in attribute_stats(&t, &pool) {
                assert!(
                    st.distinct_fraction() <= 0.7,
                    "{name} attr {:?}: {}",
                    st.attr,
                    st.distinct_fraction()
                );
            }
        }
    }
}
