//! Evaluation datasets for the Affidavit reproduction.
//!
//! The paper evaluates on the HPI FD-discovery repeatability datasets
//! (iris … uniprot, flight-500k). Those files are not redistributable here,
//! so this crate provides **shape-faithful synthetic stand-ins**: for every
//! dataset a deterministic generator matching the published record count,
//! attribute count and — crucially — the *value-distinctness profile* the
//! paper's analysis hinges on (low-distinctness tables like chess/nursery/
//! letter break the `Hs` overlap matcher; wide sparse tables like uniprot
//! stress attribute scalability). See DESIGN.md §4 for the substitution
//! rationale.
//!
//! Real data can be dropped into `data/<name>.csv`; [`loader::load_or_generate`]
//! prefers the file when present.
//!
//! The crate also embeds the paper's running example
//! ([`running_example::figure1_instance`]) with its reference explanation
//! E1 (cost 77) and the trivial explanation E∅ (cost 112).
//!
//! ```
//! use affidavit_datasets::running_example::{figure1_instance, figure1_reference};
//!
//! let mut instance = figure1_instance();
//! let reference = figure1_reference(&mut instance);
//! reference.validate(&mut instance).unwrap();
//! assert_eq!(reference.cost_units(instance.arity()), 77); // the paper's E1
//! ```

#![warn(missing_docs)]

pub mod columns;
pub mod loader;
pub mod running_example;
pub mod specs;
pub mod synth;

pub use loader::load_or_generate;
pub use specs::{all_specs, by_name, DatasetSpec, Profile};
pub use synth::generate;
