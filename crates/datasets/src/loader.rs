//! Loading real dataset files when available.
//!
//! The paper's datasets can be downloaded from the HPI repeatability site
//! (see README). Drop them as `data/<name>.csv` (comma-separated, header
//! row) and the harness will transparently use the real data instead of
//! the synthetic stand-in.
//!
//! Real files go through the `affidavit-store` streaming ingestion
//! pipeline: chunked parallel interning (`IngestOptions`) into a pool of
//! the configured backend (`PoolConfig`, RAM or disk-spilled), so loading
//! scales with cores and snapshots may exceed RAM. The default options
//! reproduce the historical serial in-RAM behavior bit for bit.

use std::path::Path;

use affidavit_store::{ingest, IngestOptions, PoolConfig};
use affidavit_table::{Table, ValuePool};

use crate::specs::DatasetSpec;
use crate::synth;

/// Load `data_dir/<name>.csv` if present, otherwise generate the synthetic
/// stand-in. Returns the table, its pool, and whether real data was used.
pub fn load_or_generate(
    spec: &DatasetSpec,
    data_dir: impl AsRef<Path>,
    seed: u64,
) -> (Table, ValuePool, bool) {
    load_or_generate_with(
        spec,
        data_dir,
        seed,
        &IngestOptions::default(),
        &PoolConfig::default(),
    )
}

/// [`load_or_generate`] with explicit ingestion and pool-backend options
/// (the CLI's `--ingest-chunk-rows` / `--pool-backend` /
/// `--pool-budget-bytes`).
pub fn load_or_generate_with(
    spec: &DatasetSpec,
    data_dir: impl AsRef<Path>,
    seed: u64,
    ingest_opts: &IngestOptions,
    pool_cfg: &PoolConfig,
) -> (Table, ValuePool, bool) {
    let path = data_dir.as_ref().join(format!("{}.csv", spec.name));
    if path.is_file() {
        match try_load(&path, ingest_opts, pool_cfg) {
            Ok((table, pool)) => return (table, pool, true),
            Err(err) => {
                eprintln!(
                    "warning: failed to read {} ({err}); falling back to synthetic data",
                    path.display()
                );
            }
        }
    }
    let (table, pool) = synth::generate(spec, seed);
    (table, pool, false)
}

fn try_load(
    path: &Path,
    ingest_opts: &IngestOptions,
    pool_cfg: &PoolConfig,
) -> Result<(Table, ValuePool), String> {
    let mut pool = pool_cfg
        .build()
        .map_err(|e| format!("cannot create {:?} pool backend: {e}", pool_cfg.backend))?;
    let table = ingest::read_path(path, &mut pool, ingest_opts).map_err(|e| e.to_string())?;
    Ok((table, pool))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::by_name;
    use affidavit_store::PoolBackend;

    #[test]
    fn falls_back_to_synthetic() {
        let spec = by_name("iris").unwrap();
        let (t, _, real) = load_or_generate(&spec, "/nonexistent-dir", 1);
        assert!(!real);
        assert_eq!(t.len(), 150);
    }

    #[test]
    fn prefers_real_file() {
        let dir = std::env::temp_dir().join("affidavit-loader-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("iris.csv"), "a,b\n1,2\n").unwrap();
        let spec = by_name("iris").unwrap();
        let (t, _, real) = load_or_generate(&spec, &dir, 1);
        assert!(real);
        assert_eq!(t.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_file_warns_with_context_and_falls_back() {
        let dir = std::env::temp_dir().join("affidavit-loader-badfile-test");
        std::fs::create_dir_all(&dir).unwrap();
        // Record 2 (line 3) is short — the loader must fall back.
        std::fs::write(dir.join("iris.csv"), "a,b\n1,2\nonly-one\n").unwrap();
        let spec = by_name("iris").unwrap();
        let (t, _, real) = load_or_generate(&spec, &dir, 1);
        assert!(!real);
        assert_eq!(t.len(), 150);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loads_through_parallel_ingestion_and_disk_backend() {
        let dir = std::env::temp_dir().join("affidavit-loader-backend-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut text = String::from("a,b\n");
        for i in 0..200 {
            text.push_str(&format!("x{i},y{i}\n"));
        }
        std::fs::write(dir.join("iris.csv"), &text).unwrap();
        let spec = by_name("iris").unwrap();
        let ingest_opts = IngestOptions {
            chunk_rows: 16,
            threads: 2,
            ..IngestOptions::default()
        };
        let pool_cfg = PoolConfig {
            backend: PoolBackend::Disk,
            budget_bytes: 512,
        };
        let (t, pool, real) = load_or_generate_with(&spec, &dir, 1, &ingest_opts, &pool_cfg);
        assert!(real);
        assert_eq!(t.len(), 200);
        let stats = pool.store_stats().expect("disk backend attached");
        assert!(stats.spilled_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
