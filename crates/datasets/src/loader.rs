//! Loading real dataset files when available.
//!
//! The paper's datasets can be downloaded from the HPI repeatability site
//! (see README). Drop them as `data/<name>.csv` (comma-separated, header
//! row) and the harness will transparently use the real data instead of
//! the synthetic stand-in.

use std::path::Path;

use affidavit_table::{csv, Table, ValuePool};

use crate::specs::DatasetSpec;
use crate::synth;

/// Load `data_dir/<name>.csv` if present, otherwise generate the synthetic
/// stand-in. Returns the table, its pool, and whether real data was used.
pub fn load_or_generate(
    spec: &DatasetSpec,
    data_dir: impl AsRef<Path>,
    seed: u64,
) -> (Table, ValuePool, bool) {
    let path = data_dir.as_ref().join(format!("{}.csv", spec.name));
    if path.is_file() {
        let mut pool = ValuePool::new();
        match csv::read_path(&path, &mut pool, csv::CsvOptions::default()) {
            Ok(table) => return (table, pool, true),
            Err(err) => {
                eprintln!(
                    "warning: failed to read {} ({err}); falling back to synthetic data",
                    path.display()
                );
            }
        }
    }
    let (table, pool) = synth::generate(spec, seed);
    (table, pool, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::by_name;

    #[test]
    fn falls_back_to_synthetic() {
        let spec = by_name("iris").unwrap();
        let (t, _, real) = load_or_generate(&spec, "/nonexistent-dir", 1);
        assert!(!real);
        assert_eq!(t.len(), 150);
    }

    #[test]
    fn prefers_real_file() {
        let dir = std::env::temp_dir().join("affidavit-loader-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("iris.csv"), "a,b\n1,2\n").unwrap();
        let spec = by_name("iris").unwrap();
        let (t, _, real) = load_or_generate(&spec, &dir, 1);
        assert!(real);
        assert_eq!(t.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
