//! Dataset specifications matching Table 2 of the paper.
//!
//! `attrs` is the attribute count *as reported in Table 2*, i.e. after the
//! §5.1 modifications (over-distinct and empty columns removed, artificial
//! primary key added). Generators therefore produce `attrs − 1` base
//! columns, each kept below the 0.7 distinctness threshold, so that the
//! instance generator's +1 primary key lands exactly on the published
//! count.

/// Value-distinctness / type profile of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Few distinct values per column (chess, nursery, letter, balance):
    /// small categorical domains and tiny integer ranges. These tables
    /// break the `Hs` overlap matcher in the paper.
    LowDistinct,
    /// Mostly numeric measurement columns plus a class column
    /// (iris, abalone, breast, echo).
    NumericHeavy,
    /// Mixed categorical / numeric / date / code columns (bridges, adult,
    /// ncvoter, hepatitis, horse, fd-red-30).
    Mixed,
    /// Many columns, some sparse, small domains (plista, flight, uniprot).
    WideSparse,
}

/// One evaluation dataset.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Dataset name as used in Table 2.
    pub name: &'static str,
    /// Record count (Table 2 "Records").
    pub rows: usize,
    /// Attribute count as reported in Table 2 (incl. artificial pk).
    pub attrs: usize,
    /// Generation profile.
    pub profile: Profile,
}

impl DatasetSpec {
    /// Number of base columns to generate (`attrs − 1`, the pk is added by
    /// the instance generator).
    pub fn base_attrs(&self) -> usize {
        self.attrs - 1
    }
}

/// All datasets of Table 2 in paper order, plus `flight-500k` (§5.4.1).
pub fn all_specs() -> &'static [DatasetSpec] {
    const SPECS: &[DatasetSpec] = &[
        DatasetSpec {
            name: "iris",
            rows: 150,
            attrs: 6,
            profile: Profile::NumericHeavy,
        },
        DatasetSpec {
            name: "balance",
            rows: 625,
            attrs: 6,
            profile: Profile::LowDistinct,
        },
        DatasetSpec {
            name: "chess",
            rows: 28056,
            attrs: 8,
            profile: Profile::LowDistinct,
        },
        DatasetSpec {
            name: "abalone",
            rows: 4177,
            attrs: 9,
            profile: Profile::NumericHeavy,
        },
        DatasetSpec {
            name: "nursery",
            rows: 12960,
            attrs: 10,
            profile: Profile::LowDistinct,
        },
        DatasetSpec {
            name: "bridges",
            rows: 108,
            attrs: 10,
            profile: Profile::Mixed,
        },
        DatasetSpec {
            name: "echo",
            rows: 132,
            attrs: 10,
            profile: Profile::NumericHeavy,
        },
        DatasetSpec {
            name: "breast",
            rows: 699,
            attrs: 11,
            profile: Profile::NumericHeavy,
        },
        DatasetSpec {
            name: "adult",
            rows: 48842,
            attrs: 15,
            profile: Profile::Mixed,
        },
        DatasetSpec {
            name: "ncvoter-1k",
            rows: 1000,
            attrs: 16,
            profile: Profile::Mixed,
        },
        DatasetSpec {
            name: "letter",
            rows: 20000,
            attrs: 18,
            profile: Profile::LowDistinct,
        },
        DatasetSpec {
            name: "hepatitis",
            rows: 155,
            attrs: 19,
            profile: Profile::Mixed,
        },
        DatasetSpec {
            name: "horse",
            rows: 368,
            attrs: 28,
            profile: Profile::Mixed,
        },
        DatasetSpec {
            name: "fd-red-30",
            rows: 250000,
            attrs: 31,
            profile: Profile::Mixed,
        },
        DatasetSpec {
            name: "plista",
            rows: 1000,
            attrs: 43,
            profile: Profile::WideSparse,
        },
        DatasetSpec {
            name: "flight-1k",
            rows: 1000,
            attrs: 75,
            profile: Profile::WideSparse,
        },
        DatasetSpec {
            name: "uniprot",
            rows: 1000,
            attrs: 182,
            profile: Profile::WideSparse,
        },
        DatasetSpec {
            name: "flight-500k",
            rows: 500_000,
            attrs: 20,
            profile: Profile::WideSparse,
        },
    ];
    SPECS
}

/// Look up a dataset by its Table 2 name.
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    all_specs().iter().find(|s| s.name == name).copied()
}

/// The 17 datasets evaluated in Table 2 (everything except flight-500k).
pub fn table2_specs() -> Vec<DatasetSpec> {
    all_specs()
        .iter()
        .filter(|s| s.name != "flight-500k")
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts() {
        assert_eq!(table2_specs().len(), 17);
        let uniprot = by_name("uniprot").unwrap();
        assert_eq!((uniprot.rows, uniprot.attrs), (1000, 182));
        let chess = by_name("chess").unwrap();
        assert_eq!((chess.rows, chess.attrs), (28056, 8));
        let f500 = by_name("flight-500k").unwrap();
        assert_eq!((f500.rows, f500.attrs), (500_000, 20));
    }

    #[test]
    fn base_attr_accounts_for_pk() {
        for spec in all_specs() {
            assert_eq!(spec.base_attrs() + 1, spec.attrs);
            assert!(spec.base_attrs() >= 1);
        }
    }

    #[test]
    fn unknown_name() {
        assert!(by_name("nope").is_none());
    }
}
