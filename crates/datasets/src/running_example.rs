//! The paper's running example — Figure 1's snapshots S1/T1 and the
//! reference explanation E1.
//!
//! The §3.1 cost calculation is reproduced exactly: `c(E1) = 77` at
//! α = 0.5 (21 for the three inserted records × 7 attributes, 56 for the
//! functions incl. two 13-entry value maps) and `c(E∅) = 112` for the
//! trivial explanation.

use affidavit_core::explanation::Explanation;
use affidavit_core::instance::ProblemInstance;
use affidavit_functions::{AttrFunction, ValueMap};
use affidavit_table::{Rational, RecordId, Schema, Table, ValuePool};

/// Schema of the running example.
pub const ATTRS: [&str; 7] = ["ID1", "ID2", "Date", "Type", "Val", "Unit", "Org"];

/// Source snapshot S1 of Figure 1.
pub const SOURCE_ROWS: [[&str; 7]; 17] = [
    ["S01", "0000", "20130416", "A", "80000", "USD", "IBM"],
    ["S02", "0001", "20120128", "A", "180000", "USD", "IBM"],
    ["S03", "0002", "20130315", "A", "220000", "USD", "IBM"],
    ["S04", "0003", "20120128", "B", "3780000", "USD", "IBM"],
    ["S05", "0004", "20120731", "B", "425000", "USD", "IBM"],
    ["S06", "0005", "20120731", "C", "21000", "USD", "IBM"],
    ["S07", "0006", "20140503", "C", "422400", "USD", "IBM"],
    ["S08", "0007", "20140503", "C", "6540", "USD", "SAP"],
    ["S09", "0008", "20131021", "C", "9800", "USD", "SAP"],
    ["S10", "0009", "20121125", "C", "0", "USD", "SAP"],
    ["S11", "0010", "99991231", "D", "65", "USD", "SAP"],
    ["S12", "0011", "99991231", "D", "180000", "USD", "BASF"],
    ["S13", "0012", "99991231", "D", "220000", "USD", "BASF"],
    ["S14", "0013", "20150203", "D", "21000", "USD", "BASF"],
    ["S15", "0014", "20150213", "D", "65", "USD", "BASF"],
    ["S16", "0015", "20160807", "E", "80000", "USD", "BASF"],
    ["S17", "0016", "20161231", "E", "80000", "USD", "BASF"],
];

/// Target snapshot T1 of Figure 1.
pub const TARGET_ROWS: [[&str; 7]; 16] = [
    ["T01", "0000", "99991231", "A", "80", "k $", "IBM"],
    ["T02", "0001", "20120128", "A", "180", "k $", "IBM"],
    ["T03", "0002", "20120731", "C", "21", "k $", "IBM"],
    ["T04", "0003", "20120731", "B", "425", "k $", "IBM"],
    ["T05", "0004", "20121125", "B", "0.022", "k $", "DAB"],
    ["T06", "0005", "20130315", "A", "220", "k $", "IBM"],
    ["T07", "0006", "20130416", "A", "80", "k $", "IBM"],
    ["T08", "0007", "20131021", "C", "9.8", "k $", "SAP"],
    ["T09", "0008", "20140503", "C", "422.4", "k $", "IBM"],
    ["T10", "0009", "20140503", "C", "6.54", "k $", "SAP"],
    ["T11", "0010", "20150213", "D", "0.065", "k $", "BASF"],
    ["T12", "0011", "20161231", "E", "80", "k $", "BASF"],
    ["T13", "0012", "20180701", "D", "0.065", "k $", "SAP"],
    ["T14", "0013", "20180701", "D", "180", "k $", "BASF"],
    ["T15", "0014", "20180701", "D", "220", "k $", "BASF"],
    ["T16", "0015", "99991231", "F", "0.45", "k $", "SAP"],
];

/// The correct core alignment of E1 as `(source row, target row)` indices
/// (0-based; `(0, 6)` is S01 ↦ T07).
pub const CORE_PAIRS: [(u32, u32); 13] = [
    (0, 6),   // S01 -> T07
    (1, 1),   // S02 -> T02
    (2, 5),   // S03 -> T06
    (4, 3),   // S05 -> T04
    (5, 2),   // S06 -> T03
    (6, 8),   // S07 -> T09
    (7, 9),   // S08 -> T10
    (8, 7),   // S09 -> T08
    (10, 12), // S11 -> T13
    (11, 13), // S12 -> T14
    (12, 14), // S13 -> T15
    (14, 10), // S15 -> T11
    (16, 11), // S17 -> T12
];

/// Deleted source rows of E1 (S10, S04, S14, S16).
pub const DELETED_ROWS: [u32; 4] = [9, 3, 13, 15];

/// Inserted target rows of E1 (T01, T05, T16).
pub const INSERTED_ROWS: [u32; 3] = [0, 4, 15];

/// Build the problem instance I1 of Figure 1.
pub fn figure1_instance() -> ProblemInstance {
    let mut pool = ValuePool::new();
    let source = Table::from_rows(
        Schema::new(ATTRS),
        &mut pool,
        SOURCE_ROWS.iter().map(|r| r.to_vec()),
    );
    let target = Table::from_rows(
        Schema::new(ATTRS),
        &mut pool,
        TARGET_ROWS.iter().map(|r| r.to_vec()),
    );
    ProblemInstance::new(source, target, pool).expect("schemas match")
}

/// Build the reference explanation E1 with the exact functions of Figure 1
/// (value maps keep the paper's `0001 ↦ 0001` identity entry so the cost is
/// exactly 77).
pub fn figure1_reference(instance: &mut ProblemInstance) -> Explanation {
    let pool = &mut instance.pool;
    // f_ID1 / f_ID2: 13-entry value maps from the core alignment.
    let id1_pairs: Vec<_> = CORE_PAIRS
        .iter()
        .map(|&(s, t)| {
            (
                pool.intern(SOURCE_ROWS[s as usize][0]),
                pool.intern(TARGET_ROWS[t as usize][0]),
            )
        })
        .collect();
    let id2_pairs: Vec<_> = CORE_PAIRS
        .iter()
        .map(|&(s, t)| {
            (
                pool.intern(SOURCE_ROWS[s as usize][1]),
                pool.intern(TARGET_ROWS[t as usize][1]),
            )
        })
        .collect();
    let f_id1 = AttrFunction::Map(ValueMap::from_pairs_keep_identity(id1_pairs));
    let f_id2 = AttrFunction::Map(ValueMap::from_pairs_keep_identity(id2_pairs));
    let f_date = AttrFunction::PrefixReplace(pool.intern("9999123"), pool.intern("2018070"));
    let f_val = AttrFunction::Scale(Rational::new(1, 1000).expect("non-zero"));
    let f_unit = AttrFunction::Constant(pool.intern("k $"));

    let functions = vec![
        f_id1,
        f_id2,
        f_date,
        AttrFunction::Identity, // Type
        f_val,
        f_unit,
        AttrFunction::Identity, // Org
    ];
    Explanation::new(
        functions,
        DELETED_ROWS.iter().map(|&r| RecordId(r)).collect(),
        INSERTED_ROWS.iter().map(|&r| RecordId(r)).collect(),
        CORE_PAIRS
            .iter()
            .map(|&(s, t)| (RecordId(s), RecordId(t)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_shape() {
        let inst = figure1_instance();
        assert_eq!(inst.source.len(), 17);
        assert_eq!(inst.target.len(), 16);
        assert_eq!(inst.arity(), 7);
        assert_eq!(inst.delta(), 1);
    }

    #[test]
    fn reference_is_valid() {
        let mut inst = figure1_instance();
        let e1 = figure1_reference(&mut inst);
        e1.validate(&mut inst).expect("E1 must be valid");
        assert_eq!(e1.core_size(), 13);
        assert_eq!(e1.deleted.len(), 4);
        assert_eq!(e1.inserted.len(), 3);
    }

    #[test]
    fn paper_cost_is_77() {
        // §3.1: c(E1) = (7·3) + (13·2 + 13·2 + 2 + 0 + 1 + 1 + 0) = 77.
        let mut inst = figure1_instance();
        let e1 = figure1_reference(&mut inst);
        assert_eq!(e1.l_inserted(7), 21);
        assert_eq!(e1.l_functions(), 56);
        assert_eq!(e1.cost_units(7), 77);
        assert_eq!(e1.cost(0.5, 7), 77.0);
    }

    #[test]
    fn trivial_cost_is_112() {
        // §3.1: c(E∅) = |A1| · |T1| = 7 · 16 = 112.
        let inst = figure1_instance();
        let trivial = Explanation::trivial(&inst);
        assert_eq!(trivial.cost_units(7), 112);
    }

    #[test]
    fn apply_functions_reproduces_t07_from_s01() {
        // The worked example of §3: F^E1(S01 record) = T07 record.
        let mut inst = figure1_instance();
        let e1 = figure1_reference(&mut inst);
        let rec = inst.source.record(RecordId(0)).clone();
        let out = affidavit_core::apply::transform_record(&e1.functions, &rec, &mut inst.pool)
            .expect("S01 is transformable");
        let expected = ["T07", "0006", "20130416", "A", "80", "k $", "IBM"];
        for (i, want) in expected.iter().enumerate() {
            assert_eq!(inst.pool.get(out.get(i)), *want, "attr {i}");
        }
    }
}
