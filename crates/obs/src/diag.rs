//! Unified stderr diagnostics.
//!
//! Every informational line the engine prints to stderr — spill stats,
//! distributed-run summaries, serve totals — goes through [`diag`], so
//! one process-wide switch decides the wire format: human text
//! (`event: detail`) or the NDJSON diagnostic object already specified
//! for `affidavit client --format json`
//! (`{"level":"info","event":...,"detail":...}`). Report bytes on
//! stdout are untouched either way.

use std::sync::atomic::{AtomicU8, Ordering};

/// How [`diag`] lines are encoded on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagFormat {
    /// `event: detail` — the engine's historical stderr lines, byte for
    /// byte.
    Human,
    /// One JSON object per line: `{"level":"info","event":...,"detail":...}`.
    Ndjson,
}

static FORMAT: AtomicU8 = AtomicU8::new(0);

/// Choose the process-wide diagnostic format (default [`DiagFormat::Human`]).
pub fn set_diag_format(format: DiagFormat) {
    FORMAT.store(
        match format {
            DiagFormat::Human => 0,
            DiagFormat::Ndjson => 1,
        },
        Ordering::Relaxed,
    );
}

/// The current process-wide diagnostic format.
pub fn diag_format() -> DiagFormat {
    match FORMAT.load(Ordering::Relaxed) {
        1 => DiagFormat::Ndjson,
        _ => DiagFormat::Human,
    }
}

/// Render one diagnostic in the given format (no trailing newline).
pub fn render_diag(format: DiagFormat, event: &str, detail: &str) -> String {
    match format {
        DiagFormat::Human => format!("{event}: {detail}"),
        DiagFormat::Ndjson => format!(
            "{{\"level\":\"info\",\"event\":{},\"detail\":{}}}",
            json_string(event),
            json_string(detail)
        ),
    }
}

/// Print one informational diagnostic line to stderr in the
/// process-wide format.
pub fn diag(event: &str, detail: &str) {
    eprintln!("{}", render_diag(diag_format(), event, detail));
}

fn json_string(text: &str) -> String {
    serde_json::to_string(&text).expect("strings are serializable")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_lines_are_event_colon_detail() {
        assert_eq!(
            render_diag(DiagFormat::Human, "pool backend", "disk — 42 bytes spilled"),
            "pool backend: disk — 42 bytes spilled"
        );
    }

    #[test]
    fn ndjson_lines_match_the_client_diag_spec() {
        let line = render_diag(DiagFormat::Ndjson, "serve", "2 requests over 1 connections");
        assert_eq!(
            line,
            r#"{"level":"info","event":"serve","detail":"2 requests over 1 connections"}"#
        );
        // Embedded quotes and newlines stay valid JSON.
        let tricky = render_diag(DiagFormat::Ndjson, "e\"v", "d\nd");
        assert!(tricky.contains(r#""e\"v""#));
        assert!(!tricky.contains('\n'));
    }

    #[test]
    fn format_switch_is_process_wide() {
        set_diag_format(DiagFormat::Ndjson);
        assert_eq!(diag_format(), DiagFormat::Ndjson);
        set_diag_format(DiagFormat::Human);
        assert_eq!(diag_format(), DiagFormat::Human);
    }
}
