//! The human phase-profile summary (`--obs-summary`).
//!
//! Rolls a drained event stream up into one row per phase name: call
//! count, busy time (sum of span elapsed ≈ CPU across threads), wall
//! time (last end minus first begin, so overlapping parallel spans
//! count once) and the longest single span. Timing varies run to run by
//! nature; the *shape* of the table (phases present, call counts) is
//! deterministic.

use std::collections::BTreeMap;

use crate::event::{Event, KIND_BEGIN, KIND_END};

#[derive(Debug, Default, Clone, Copy)]
struct PhaseRollup {
    calls: u64,
    busy_micros: u64,
    max_micros: u64,
    first_begin: Option<u64>,
    last_end: Option<u64>,
}

/// Render the per-phase rollup table for a drained event stream.
/// Returns an empty string when there is nothing to report.
pub fn render_phase_summary(events: &[Event], dropped: u64) -> String {
    let mut phases: BTreeMap<&str, PhaseRollup> = BTreeMap::new();
    for event in events {
        let rollup = phases.entry(event.name.as_str()).or_default();
        match event.kind.as_str() {
            KIND_BEGIN => {
                let first = rollup.first_begin.get_or_insert(event.ts_micros);
                *first = (*first).min(event.ts_micros);
            }
            KIND_END => {
                rollup.calls += 1;
                let elapsed = event.elapsed_micros.unwrap_or(0);
                rollup.busy_micros += elapsed;
                rollup.max_micros = rollup.max_micros.max(elapsed);
                let last = rollup.last_end.get_or_insert(event.ts_micros);
                *last = (*last).max(event.ts_micros);
            }
            _ => rollup.calls += 1, // points count as calls, no timing
        }
    }
    if phases.is_empty() {
        return String::new();
    }
    let name_width = phases
        .keys()
        .map(|n| n.len())
        .chain(["phase".len()])
        .max()
        .unwrap_or(5);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_width$}  {:>8}  {:>12}  {:>12}  {:>12}\n",
        "phase", "calls", "busy_ms", "wall_ms", "max_ms"
    ));
    for (name, rollup) in &phases {
        let wall = match (rollup.first_begin, rollup.last_end) {
            (Some(b), Some(e)) => e.saturating_sub(b),
            _ => 0,
        };
        out.push_str(&format!(
            "{:<name_width$}  {:>8}  {:>12.3}  {:>12.3}  {:>12.3}\n",
            name,
            rollup.calls,
            rollup.busy_micros as f64 / 1000.0,
            wall as f64 / 1000.0,
            rollup.max_micros as f64 / 1000.0,
        ));
    }
    if dropped > 0 {
        out.push_str(&format!("({dropped} events dropped at the buffer cap)\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::KIND_POINT;

    fn event(kind: &str, name: &str, ts: u64, elapsed: Option<u64>) -> Event {
        Event {
            seq: ts,
            ts_micros: ts,
            kind: kind.to_owned(),
            name: name.to_owned(),
            span: 1,
            parent: None,
            thread: 1,
            elapsed_micros: elapsed,
            fields: Vec::new(),
        }
    }

    #[test]
    fn rollup_sums_busy_and_spreads_wall() {
        let events = vec![
            event(KIND_BEGIN, "search.expand", 100, None),
            event(KIND_END, "search.expand", 600, Some(500)),
            event(KIND_BEGIN, "search.expand", 200, None),
            event(KIND_END, "search.expand", 900, Some(700)),
            event(KIND_POINT, "worker.heartbeat", 300, None),
        ];
        let table = render_phase_summary(&events, 0);
        let expand = table
            .lines()
            .find(|l| l.starts_with("search.expand"))
            .unwrap();
        // 2 calls, busy = 1.2ms (sum), wall = 0.8ms (900-100), max 0.7ms.
        assert!(expand.contains('2'), "{expand}");
        assert!(expand.contains("1.200"), "{expand}");
        assert!(expand.contains("0.800"), "{expand}");
        assert!(expand.contains("0.700"), "{expand}");
        assert!(table.contains("worker.heartbeat"));
        assert!(!table.contains("dropped"));
    }

    #[test]
    fn empty_streams_render_nothing_and_drops_are_reported() {
        assert_eq!(render_phase_summary(&[], 0), "");
        let events = vec![
            event(KIND_BEGIN, "x", 0, None),
            event(KIND_END, "x", 1, Some(1)),
        ];
        assert!(render_phase_summary(&events, 9).contains("9 events dropped"));
    }
}
