//! The process-wide metrics registry.
//!
//! One flat namespace of named counters, gauges and summary histograms,
//! written at phase boundaries (never per record) and read by the sinks:
//! [`Metrics::render_prometheus`] for the serve `metrics` op and the
//! bench regression gate, [`Metrics::snapshot`] for tests. The registry
//! is the uniform facade over the engine's legacy counter structs —
//! `SearchStats`, `QueueStats`, `DistStats`, `SessionCounters` each
//! publish into it after their phase completes, so the numbers here are
//! exactly the numbers those structs hold (asserted by
//! `properties_obs`).
//!
//! Unlike span recording, the registry is always on: its writers run
//! once per phase, so there is nothing to gate.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// One registered series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Monotone count (resettable only via [`Metrics::reset`]).
    Counter(u64),
    /// Last-write-wins level.
    Gauge(f64),
    /// Streaming summary of observed samples.
    Histogram {
        /// Samples observed.
        count: u64,
        /// Sum of all samples.
        sum: f64,
        /// Smallest sample.
        min: f64,
        /// Largest sample.
        max: f64,
    },
}

/// The registry. Use the process-wide instance from [`metrics`]; fresh
/// instances exist for tests.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<BTreeMap<String, MetricValue>>,
}

/// The process-wide registry.
pub fn metrics() -> &'static Metrics {
    static REGISTRY: OnceLock<Metrics> = OnceLock::new();
    REGISTRY.get_or_init(Metrics::default)
}

impl Metrics {
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, MetricValue>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add to a counter (creating it at zero first).
    pub fn add_counter(&self, name: &str, delta: u64) {
        let mut map = self.lock();
        let entry = map
            .entry(name.to_owned())
            .or_insert(MetricValue::Counter(0));
        if let MetricValue::Counter(v) = entry {
            *v += delta;
        }
    }

    /// Set a counter to an absolute value (for publishing a finished
    /// phase's legacy counter struct verbatim).
    pub fn set_counter(&self, name: &str, value: u64) {
        self.lock()
            .insert(name.to_owned(), MetricValue::Counter(value));
    }

    /// Set a gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.lock()
            .insert(name.to_owned(), MetricValue::Gauge(value));
    }

    /// Feed one sample into a histogram (creating it empty first).
    pub fn observe(&self, name: &str, sample: f64) {
        let mut map = self.lock();
        let entry = map
            .entry(name.to_owned())
            .or_insert(MetricValue::Histogram {
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            });
        if let MetricValue::Histogram {
            count,
            sum,
            min,
            max,
        } = entry
        {
            *count += 1;
            *sum += sample;
            *min = min.min(sample);
            *max = max.max(sample);
        }
    }

    /// Read a counter (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.lock().get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Read a gauge (`None` when absent or not a gauge).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.lock().get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Every series, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        self.lock().iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Drop every series (tests and bench runs isolate phases with this).
    pub fn reset(&self) {
        self.lock().clear();
    }

    /// Prometheus-style text exposition: `# TYPE` comment plus one
    /// sample line per series, sorted by name; histograms expose
    /// `_count`/`_sum`/`_min`/`_max` samples under a `summary` type.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.lock().iter() {
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    min,
                    max,
                } => {
                    out.push_str(&format!("# TYPE {name} summary\n"));
                    out.push_str(&format!("{name}_count {count}\n"));
                    out.push_str(&format!("{name}_sum {sum}\n"));
                    if *count > 0 {
                        out.push_str(&format!("{name}_min {min}\n"));
                        out.push_str(&format!("{name}_max {max}\n"));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let m = Metrics::default();
        m.add_counter("search_polled", 3);
        m.add_counter("search_polled", 4);
        assert_eq!(m.counter("search_polled"), 7);
        m.set_counter("search_polled", 2);
        assert_eq!(m.counter("search_polled"), 2);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn histograms_track_count_sum_min_max() {
        let m = Metrics::default();
        m.observe("job_micros", 10.0);
        m.observe("job_micros", 4.0);
        m.observe("job_micros", 6.0);
        match m.snapshot().as_slice() {
            [(
                name,
                MetricValue::Histogram {
                    count,
                    sum,
                    min,
                    max,
                },
            )] => {
                assert_eq!(name, "job_micros");
                assert_eq!(*count, 3);
                assert_eq!(*sum, 20.0);
                assert_eq!(*min, 4.0);
                assert_eq!(*max, 10.0);
            }
            other => panic!("unexpected snapshot {other:?}"),
        }
    }

    #[test]
    fn prometheus_text_is_sorted_and_typed() {
        let m = Metrics::default();
        m.set_gauge("serve_inflight", 2.0);
        m.add_counter("serve_requests_total", 5);
        m.observe("request_micros", 8.5);
        let text = m.render_prometheus();
        let counter_at = text.find("serve_requests_total 5").unwrap();
        let gauge_at = text.find("serve_inflight 2").unwrap();
        assert!(text.find("request_micros_count 1").unwrap() < gauge_at);
        assert!(gauge_at < counter_at, "sorted by name:\n{text}");
        assert!(text.contains("# TYPE serve_requests_total counter"));
        assert!(text.contains("# TYPE serve_inflight gauge"));
        assert!(text.contains("# TYPE request_micros summary"));
        assert!(text.contains("request_micros_sum 8.5"));
    }

    #[test]
    fn reset_clears_everything() {
        let m = Metrics::default();
        m.add_counter("x", 1);
        m.reset();
        assert!(m.snapshot().is_empty());
    }
}
