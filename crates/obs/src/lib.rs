//! Unified tracing, metrics and phase-profiling for the affidavit engine.
//!
//! Every subsystem — ingestion, blocking, the best-first search, the
//! distributed broker, the resident service — reports into this one
//! crate through three primitives:
//!
//! * **Spans** ([`span`]): scoped wall-clock guards with parent/child
//!   nesting (per thread), monotonic timestamps and stable thread ids.
//!   Recording is off by default; [`set_enabled`] (or the
//!   `AFFIDAVIT_OBS` environment variable) turns it on. A disabled span
//!   is one relaxed atomic load — cheap enough to leave on hot paths.
//! * **Metrics** ([`metrics()`]): a process-wide registry of named
//!   counters, gauges and summary histograms. Always on (writes happen
//!   at phase boundaries, not per record); the registry is the single
//!   facade over the engine's legacy counter structs (`SearchStats`,
//!   `QueueStats`, `DistStats`, `SessionCounters`).
//! * **Sinks**: drained span [`Event`]s encode to NDJSON
//!   ([`Event::to_ndjson`], [`ObsOut`]), roll up into a per-phase
//!   profile table ([`summary::render_phase_summary`]), and the
//!   registry renders Prometheus-style text
//!   ([`Metrics::render_prometheus`]). Structured stderr diagnostics go
//!   through [`diag()`], which prints human text or NDJSON depending on
//!   the process-wide [`DiagFormat`].
//!
//! **Determinism invariant (load-bearing):** observability is a pure
//! side channel. Nothing in the engine ever *reads* a span, an event or
//! a metric to make a decision, so every output byte the engine
//! produces is identical with recording on or off — enforced by the
//! `properties_obs` differential battery at the workspace root.
//!
//! ```
//! affidavit_obs::set_enabled(true);
//! {
//!     let _outer = affidavit_obs::span("phase.outer");
//!     let _inner = affidavit_obs::span("phase.inner");
//! }
//! let (events, dropped) = affidavit_obs::drain();
//! assert_eq!(dropped, 0);
//! assert_eq!(events.len(), 4); // begin/end × outer/inner
//! assert!(events.iter().all(|e| e.to_ndjson().starts_with('{')));
//! affidavit_obs::set_enabled(false);
//! ```

#![warn(missing_docs)]

pub mod diag;
pub mod event;
pub mod metrics;
pub mod summary;

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub use diag::{diag, set_diag_format, DiagFormat};
pub use event::{Event, ObsOut, KIND_BEGIN, KIND_END, KIND_POINT};
pub use metrics::{metrics, MetricValue, Metrics};

/// Hard cap on buffered events: recording is bounded by construction, so
/// a long-running process (or a battery run with `AFFIDAVIT_OBS=1`) can
/// never grow the side channel without limit. Overflow drops the newest
/// events and counts them (see [`drain`]).
pub const EVENT_CAP: usize = 1 << 18;

/// 0 = undecided (consult `AFFIDAVIT_OBS` on first use), 1 = on, 2 = off.
static ENABLED: AtomicU8 = AtomicU8::new(0);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

struct Recorder {
    events: Vec<Event>,
    dropped: u64,
    next_seq: u64,
    next_span: u64,
}

static RECORDER: Mutex<Recorder> = Mutex::new(Recorder {
    events: Vec::new(),
    dropped: 0,
    next_seq: 0,
    next_span: 1,
});

/// The process epoch all event timestamps are measured from. Sequenced
/// under the recorder lock, so `ts_micros` is monotone in `seq` order.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    /// Stable per-thread id (assignment order, starting at 1) plus the
    /// stack of open span ids — the parent of a new span is the top.
    static THREAD_CTX: RefCell<(u64, Vec<u64>)> =
        RefCell::new((NEXT_THREAD.fetch_add(1, Ordering::Relaxed), Vec::new()));
}

/// Is span recording on? Undecided state resolves from the
/// `AFFIDAVIT_OBS` environment variable (any non-empty value other than
/// `"0"` enables), so batteries run with `AFFIDAVIT_OBS=1` record
/// without code changes.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = std::env::var("AFFIDAVIT_OBS")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Turn span recording on or off for the whole process.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// The `AFFIDAVIT_OBS` value, when it names a sink rather than a bare
/// switch: `-` (stderr) or a file path. `1`/`true`/empty/unset are
/// switches only.
pub fn env_sink() -> Option<ObsOut> {
    match std::env::var("AFFIDAVIT_OBS") {
        Ok(v) if !v.is_empty() && v != "0" && v != "1" && v != "true" => Some(ObsOut::parse(&v)),
        _ => None,
    }
}

fn lock_recorder() -> std::sync::MutexGuard<'static, Recorder> {
    RECORDER.lock().unwrap_or_else(|e| e.into_inner())
}

impl Recorder {
    fn push(&mut self, mut event: Event) -> u64 {
        event.seq = self.next_seq;
        self.next_seq += 1;
        event.ts_micros = epoch().elapsed().as_micros() as u64;
        let seq = event.seq;
        if self.events.len() < EVENT_CAP {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
        seq
    }
}

/// A scoped span guard: records a `begin` event now and an `end` event
/// (with the elapsed wall time) when dropped. Guards nest per thread;
/// the innermost open span is the parent of the next one. When
/// recording is disabled this is a no-op shell.
#[derive(Debug)]
pub struct Span {
    token: Option<SpanToken>,
}

#[derive(Debug)]
struct SpanToken {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    thread: u64,
    start: Instant,
}

/// Open a span. Equivalent to [`span_with`] with no fields.
pub fn span(name: &'static str) -> Span {
    span_with(name, Vec::new())
}

/// Open a span carrying extra key/value fields on its `begin` event.
pub fn span_with(name: &'static str, fields: Vec<(String, String)>) -> Span {
    if !enabled() {
        return Span { token: None };
    }
    let (thread, parent) = THREAD_CTX.with(|ctx| {
        let ctx = ctx.borrow();
        (ctx.0, ctx.1.last().copied())
    });
    let start = Instant::now();
    let (id, _) = {
        let mut rec = lock_recorder();
        let id = rec.next_span;
        rec.next_span += 1;
        let seq = rec.push(Event {
            seq: 0,
            ts_micros: 0,
            kind: KIND_BEGIN.to_owned(),
            name: name.to_owned(),
            span: id,
            parent,
            thread,
            elapsed_micros: None,
            fields,
        });
        (id, seq)
    };
    THREAD_CTX.with(|ctx| ctx.borrow_mut().1.push(id));
    Span {
        token: Some(SpanToken {
            id,
            parent,
            name,
            thread,
            start,
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(token) = self.token.take() else {
            return;
        };
        let elapsed = token.start.elapsed().as_micros() as u64;
        THREAD_CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            // Guards drop LIFO within a scope, so the top is this span.
            if ctx.1.last() == Some(&token.id) {
                ctx.1.pop();
            } else {
                ctx.1.retain(|&id| id != token.id);
            }
        });
        lock_recorder().push(Event {
            seq: 0,
            ts_micros: 0,
            kind: KIND_END.to_owned(),
            name: token.name.to_owned(),
            span: token.id,
            parent: token.parent,
            thread: token.thread,
            elapsed_micros: Some(elapsed),
            fields: Vec::new(),
        });
    }
}

/// Record an instantaneous point event (no duration), parented under
/// the calling thread's innermost open span.
pub fn point(name: &'static str, fields: Vec<(String, String)>) {
    if !enabled() {
        return;
    }
    let (thread, parent) = THREAD_CTX.with(|ctx| {
        let ctx = ctx.borrow();
        (ctx.0, ctx.1.last().copied())
    });
    let mut rec = lock_recorder();
    let id = rec.next_span;
    rec.next_span += 1;
    rec.push(Event {
        seq: 0,
        ts_micros: 0,
        kind: KIND_POINT.to_owned(),
        name: name.to_owned(),
        span: id,
        parent,
        thread,
        elapsed_micros: None,
        fields,
    });
}

/// Take every buffered event (in `seq` order) plus the count of events
/// dropped at the [`EVENT_CAP`] since the last drain.
pub fn drain() -> (Vec<Event>, u64) {
    let mut rec = lock_recorder();
    let events = std::mem::take(&mut rec.events);
    let dropped = std::mem::take(&mut rec.dropped);
    (events, dropped)
}

/// Buffered events right now (drain pending).
pub fn pending_events() -> usize {
    lock_recorder().events.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The crate's globals are process-wide; tests in this module take
    /// this lock so they never interleave recording.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_and_timestamps_are_monotone() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        drain();
        {
            let _a = span("outer");
            point("tick", vec![("k".to_owned(), "v".to_owned())]);
            let _b = span("inner");
        }
        let (events, dropped) = drain();
        set_enabled(false);
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 5);
        // seq and ts both monotone.
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
            assert!(pair[0].ts_micros <= pair[1].ts_micros);
        }
        let outer_id = events[0].span;
        assert_eq!(events[0].kind, KIND_BEGIN);
        assert_eq!(events[0].parent, None);
        // The point and the inner span are parented under outer.
        assert_eq!(events[1].kind, KIND_POINT);
        assert_eq!(events[1].parent, Some(outer_id));
        assert_eq!(events[2].parent, Some(outer_id));
        // Ends come innermost-first, with elapsed set.
        assert_eq!(events[3].kind, KIND_END);
        assert_eq!(events[3].span, events[2].span);
        assert!(events[3].elapsed_micros.is_some());
        assert_eq!(events[4].span, outer_id);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        drain();
        {
            let _s = span("ghost");
            point("ghost.point", Vec::new());
        }
        let (events, dropped) = drain();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn threads_get_distinct_ids_and_independent_nesting() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        drain();
        let _root = span("main.root");
        let handle = std::thread::spawn(|| {
            let _w = span("worker.root");
        });
        handle.join().unwrap();
        drop(_root);
        let (events, _) = drain();
        set_enabled(false);
        let main_begin = events.iter().find(|e| e.name == "main.root").unwrap();
        let worker_begin = events.iter().find(|e| e.name == "worker.root").unwrap();
        assert_ne!(main_begin.thread, worker_begin.thread);
        // A fresh thread has no open parent — its root span is parentless.
        assert_eq!(worker_begin.parent, None);
    }
}
