//! The span event record and the NDJSON sink it streams to.

use std::io::Write;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

/// `kind` of a span-open event.
pub const KIND_BEGIN: &str = "begin";
/// `kind` of a span-close event (carries `elapsed_micros`).
pub const KIND_END: &str = "end";
/// `kind` of an instantaneous event.
pub const KIND_POINT: &str = "point";

/// One recorded observation. A span contributes a `begin` and an `end`
/// event sharing a `span` id; a [`crate::point`] contributes a single
/// `point` event. `seq` is a process-wide total order and `ts_micros`
/// (microseconds since the process obs epoch) is monotone along it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Process-wide sequence number (total order across threads).
    pub seq: u64,
    /// Microseconds since the process obs epoch; monotone in `seq`.
    pub ts_micros: u64,
    /// `"begin"`, `"end"` or `"point"`.
    pub kind: String,
    /// Phase name, dotted by subsystem (`search.expand`, `dist.claim`).
    pub name: String,
    /// Span id; `begin`/`end` pairs share it, points get their own.
    pub span: u64,
    /// Enclosing span id on the recording thread, if any.
    pub parent: Option<u64>,
    /// Stable id of the recording thread (assignment order from 1).
    pub thread: u64,
    /// Wall time between `begin` and `end`; set on `end` events only.
    pub elapsed_micros: Option<u64>,
    /// Extra key/value context (job ids, request ops, byte counts).
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// Encode as one NDJSON line (no trailing newline).
    pub fn to_ndjson(&self) -> String {
        serde_json::to_string(self).expect("events are serializable")
    }
}

/// Where a drained event stream goes: the `--obs-out PATH|-` sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsOut {
    /// Stream to stderr. Never stdout: report bytes on stdout stay
    /// identical with observability on or off.
    Stderr,
    /// Append to a file (created if absent).
    File(PathBuf),
}

impl ObsOut {
    /// `-` means stderr; anything else is a file path.
    pub fn parse(value: &str) -> ObsOut {
        if value == "-" {
            ObsOut::Stderr
        } else {
            ObsOut::File(PathBuf::from(value))
        }
    }

    /// Write each event as one NDJSON line, then a `point`-shaped
    /// `obs.dropped` line when the recorder overflowed its cap.
    pub fn write_events(&self, events: &[Event], dropped: u64) -> Result<(), String> {
        let mut buf = String::new();
        for event in events {
            buf.push_str(&event.to_ndjson());
            buf.push('\n');
        }
        if dropped > 0 {
            let marker = Event {
                seq: events.last().map(|e| e.seq + 1).unwrap_or(0),
                ts_micros: events.last().map(|e| e.ts_micros).unwrap_or(0),
                kind: KIND_POINT.to_owned(),
                name: "obs.dropped".to_owned(),
                span: 0,
                parent: None,
                thread: 0,
                elapsed_micros: None,
                fields: vec![("dropped".to_owned(), dropped.to_string())],
            };
            buf.push_str(&marker.to_ndjson());
            buf.push('\n');
        }
        match self {
            ObsOut::Stderr => {
                eprint!("{buf}");
                Ok(())
            }
            ObsOut::File(path) => {
                let mut file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| format!("opening obs sink {}: {e}", path.display()))?;
                file.write_all(buf.as_bytes())
                    .map_err(|e| format!("writing obs sink {}: {e}", path.display()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event {
            seq: 7,
            ts_micros: 1234,
            kind: KIND_END.to_owned(),
            name: "search.expand".to_owned(),
            span: 3,
            parent: Some(1),
            thread: 2,
            elapsed_micros: Some(55),
            fields: vec![("job".to_owned(), "a/b".to_owned())],
        }
    }

    #[test]
    fn events_round_trip_through_ndjson() {
        let event = sample();
        let line = event.to_ndjson();
        assert!(!line.contains('\n'));
        let back: Event = serde_json::from_str(&line).unwrap();
        assert_eq!(back, event);
    }

    #[test]
    fn sink_parses_dash_as_stderr_and_paths_as_files() {
        assert_eq!(ObsOut::parse("-"), ObsOut::Stderr);
        assert_eq!(
            ObsOut::parse("/tmp/obs.ndjson"),
            ObsOut::File(PathBuf::from("/tmp/obs.ndjson"))
        );
    }

    #[test]
    fn file_sink_appends_one_line_per_event_plus_drop_marker() {
        let dir = std::env::temp_dir().join("affidavit-obs-event-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.ndjson");
        let _ = std::fs::remove_file(&path);
        let sink = ObsOut::File(path.clone());
        sink.write_events(&[sample(), sample()], 3).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[2].contains("obs.dropped"));
        assert!(lines[2].contains("\"3\""));
        let _ = std::fs::remove_file(&path);
    }
}
