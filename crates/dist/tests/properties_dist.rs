//! Worker-count determinism battery for the distributed profiler.
//!
//! The invariant under test: `profile_dirs_distributed` renders a profile
//! **byte-identical** to the single-process `profile_dirs` at every worker
//! count (in-process threads and real `affidavit-worker` child
//! processes), for both paper configurations, with redundancy-induced
//! duplicates and straggler requeues degrading to wasted work only. Wall
//! time (`millis`) is the one legitimately nondeterministic field and is
//! stripped before comparison.
//!
//! Also here: wire-format stability — a round-trip fixed point and a
//! golden-bytes fixture that fails loudly when the format changes without
//! a version bump.

use std::path::{Path, PathBuf};
use std::time::Duration;

use affidavit_core::profiling::{profile_dirs, ProfileOptions, SnapshotProfile};
use affidavit_core::{AffidavitConfig, ProblemInstance};
use affidavit_datagen::blueprint::{Blueprint, GenConfig};
use affidavit_datasets::synth::generate_rows;
use affidavit_dist::wire::{instance_digest, WireExpansion, WireInstanceSpec};
use affidavit_dist::{
    decode_job, encode_job, profile_dirs_distributed, DistBackend, DistOptions, Job, JobPayload,
    WireInstance,
};
use affidavit_table::{csv, Schema, Table, ValuePool};

/// Build a pair of snapshot directories: three synthetically transformed
/// tables, one unchanged table, one dropped, one created, one malformed
/// (to pin failure-semantics parity between the local and distributed
/// paths).
fn make_snapshot_dirs(root: &Path, seed: u64) -> (PathBuf, PathBuf) {
    let before = root.join("before");
    let after = root.join("after");
    std::fs::create_dir_all(&before).unwrap();
    std::fs::create_dir_all(&after).unwrap();

    for (i, spec_name) in ["iris", "adult", "balance"].iter().enumerate() {
        let spec = affidavit_datasets::by_name(spec_name).expect("dataset exists");
        let s = seed + i as u64;
        let (base, pool) = generate_rows(&spec, spec.rows.min(40), s);
        let generated = Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, s)).materialize_full();
        let name = format!("{spec_name}_{i}");
        for (dir, table) in [
            (&before, &generated.instance.source),
            (&after, &generated.instance.target),
        ] {
            csv::write_path(
                dir.join(format!("{name}.csv")),
                table,
                &generated.instance.pool,
                csv::CsvOptions::default(),
            )
            .unwrap();
        }
    }
    let unchanged = "x,y\n1,a\n2,b\n3,c\n";
    std::fs::write(before.join("static.csv"), unchanged).unwrap();
    std::fs::write(after.join("static.csv"), unchanged).unwrap();
    std::fs::write(before.join("dropped.csv"), "a\n1\n").unwrap();
    std::fs::write(after.join("created.csv"), "a\n1\n").unwrap();
    std::fs::write(before.join("broken.csv"), "a,b\n1,2\n").unwrap();
    std::fs::write(after.join("broken.csv"), "a,b\n1\n").unwrap();
    (before, after)
}

/// Canonical bytes of a profile: timing stripped, rendered report plus
/// the machine-readable JSON (so both output surfaces are pinned).
fn canonical(mut profile: SnapshotProfile) -> String {
    profile.strip_timing();
    format!("{}\n===\n{}", profile.render(), profile.to_json())
}

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_affidavit-worker"))
}

fn battery(backend_for: impl Fn(usize) -> DistOptions, tag: &str) {
    let root = std::env::temp_dir().join(format!("affidavit-dist-battery-{tag}"));
    std::fs::remove_dir_all(&root).ok();
    let (before, after) = make_snapshot_dirs(&root, 0xD157);

    for (config_name, config) in [
        ("paper_id", AffidavitConfig::paper_id()),
        ("paper_overlap", AffidavitConfig::paper_overlap()),
    ] {
        let popts = ProfileOptions {
            config,
            ..ProfileOptions::default()
        };
        let local = canonical(profile_dirs(&before, &after, &popts).unwrap());
        assert!(
            local.contains("FAILED") && local.contains("dropped in target"),
            "the battery must exercise failure and missing-table paths:\n{local}"
        );
        for workers in [1usize, 2, 4] {
            let dopts = backend_for(workers);
            let (profile, stats) =
                profile_dirs_distributed(&before, &after, &popts, &dopts).unwrap();
            assert_eq!(stats.jobs, 4, "three transformed tables + one static");
            assert_eq!(
                canonical(profile),
                local,
                "{tag}/{config_name}: workers={workers} diverged from the single-process run"
            );
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn in_process_workers_are_byte_identical_to_local() {
    battery(
        |workers| DistOptions {
            workers,
            backend: DistBackend::InProcess,
            validate: true,
            ..DistOptions::default()
        },
        "inproc",
    );
}

#[test]
fn child_process_workers_are_byte_identical_to_local() {
    battery(
        |workers| DistOptions {
            workers,
            backend: DistBackend::ChildProcesses {
                broker_dir: None,
                worker_bin: Some(worker_bin()),
            },
            ..DistOptions::default()
        },
        "procs",
    );
}

#[test]
fn redundant_dispatch_wastes_work_but_not_determinism() {
    let root = std::env::temp_dir().join("affidavit-dist-battery-redundant");
    std::fs::remove_dir_all(&root).ok();
    let (before, after) = make_snapshot_dirs(&root, 0xD15A);
    let popts = ProfileOptions::default();
    let local = canonical(profile_dirs(&before, &after, &popts).unwrap());
    let dopts = DistOptions {
        workers: 4,
        redundancy: 2,
        backend: DistBackend::InProcess,
        ..DistOptions::default()
    };
    let (profile, stats) = profile_dirs_distributed(&before, &after, &popts, &dopts).unwrap();
    assert_eq!(canonical(profile), local);
    assert!(
        stats.duplicates_discarded > 0,
        "redundancy 2 with 4 workers must produce discarded duplicates: {stats:?}"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn child_processes_survive_straggler_requeue_pressure() {
    // An aggressive steal timeout forces requeues of healthy in-flight
    // claims; the duplicated completions must be discarded cleanly.
    let root = std::env::temp_dir().join("affidavit-dist-battery-steal");
    std::fs::remove_dir_all(&root).ok();
    let (before, after) = make_snapshot_dirs(&root, 0xD15B);
    let popts = ProfileOptions::default();
    let local = canonical(profile_dirs(&before, &after, &popts).unwrap());
    let dopts = DistOptions {
        workers: 2,
        steal_timeout: Duration::from_millis(1),
        backend: DistBackend::ChildProcesses {
            broker_dir: None,
            worker_bin: Some(worker_bin()),
        },
        ..DistOptions::default()
    };
    let (profile, _stats) = profile_dirs_distributed(&before, &after, &popts, &dopts).unwrap();
    assert_eq!(canonical(profile), local);
    std::fs::remove_dir_all(&root).ok();
}

// ---- wire-format stability ----------------------------------------------

/// The fixture instance: small, covers quoting-sensitive strings, and is
/// pinned byte-for-byte in `tests/fixtures/job_v2.json`. Regenerate the
/// fixtures (after a deliberate format change plus version bump) with
/// `REGEN_FIXTURES=1 cargo test -p affidavit-dist --test properties_dist`.
fn fixture_job() -> Job {
    let mut pool = ValuePool::new();
    let s = Table::from_rows(
        Schema::new(["Val", "Unit"]),
        &mut pool,
        vec![vec!["80000", "USD"], vec!["65", "k \"quoted\" $"]],
    );
    let t = Table::from_rows(
        Schema::new(["Val", "Unit"]),
        &mut pool,
        vec![vec!["80", "USD"], vec!["0.065", "k \"quoted\" $"]],
    );
    let instance = ProblemInstance::new(s, t, pool).unwrap();
    Job {
        id: 42,
        name: "fixture".to_owned(),
        payload: JobPayload::Explain {
            instance: WireInstance::from_instance(&instance),
            config: AffidavitConfig::paper_id(),
        },
    }
}

#[test]
fn wire_roundtrip_is_a_fixed_point() {
    let job = fixture_job();
    let text = encode_job(&job);
    let back = decode_job(&text).unwrap();
    assert_eq!(encode_job(&back), text);
}

/// The fixture expansion job: the same instance with a one-assignment
/// frontier state, pinned in `tests/fixtures/expansion_v3.json`.
fn fixture_expansion_job() -> Job {
    let JobPayload::Explain { instance, config } = fixture_job().payload else {
        unreachable!("fixture_job builds an explain job");
    };
    let decoded = instance.decode().unwrap();
    let state = affidavit_core::state::SearchState {
        assignments: vec![
            affidavit_core::state::Assignment::Assigned(
                affidavit_functions::AttrFunction::Identity,
            ),
            affidavit_core::state::Assignment::Undecided,
        ],
        blocking: std::sync::Arc::new(affidavit_blocking::Blocking::root(
            &decoded.source,
            &decoded.target,
        )),
        cost: 1.5,
        id: 7,
        parent: Some(2),
    };
    let request = affidavit_core::ExpansionRequest {
        state,
        alignment: vec![
            (affidavit_table::RecordId(0), affidavit_table::RecordId(0)),
            (affidavit_table::RecordId(1), affidavit_table::RecordId(1)),
        ],
    };
    Job {
        id: 43,
        name: "fixture-expansion".to_owned(),
        payload: JobPayload::Expansion {
            instance: WireInstanceSpec::Inline {
                digest: instance_digest(&instance),
                instance,
                extra_pool: Vec::new(),
            },
            config,
            batch: vec![WireExpansion::from_request(&request)],
        },
    }
}

/// Pin (or, under `REGEN_FIXTURES=1`, rewrite) one golden fixture.
/// Returns the canonical bytes the rest of the test should decode — the
/// pinned fixture normally, the fresh encoding when regenerating (the
/// compiled-in `include_str!` is stale until the next build).
fn check_golden(path_in_crate: &str, expected: &str, encoded: &str) -> String {
    if std::env::var("REGEN_FIXTURES").is_ok() {
        let path = format!("{}/tests/{path_in_crate}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, format!("{encoded}\n")).unwrap();
        return encoded.to_owned();
    }
    assert_eq!(
        encoded,
        expected.trim_end(),
        "wire bytes of {path_in_crate} changed without a version bump"
    );
    expected.trim_end().to_owned()
}

#[test]
fn golden_bytes_are_stable() {
    // If this test fails you have changed the wire format: bump
    // WIRE_VERSION, regenerate the fixture, and make decode reject (or
    // migrate) the old version explicitly. Silent format drift strands
    // deployed workers.
    let expected = check_golden(
        "fixtures/job_v3.json",
        include_str!("fixtures/job_v3.json"),
        &encode_job(&fixture_job()),
    );
    let job = decode_job(&expected).unwrap();
    assert_eq!(job.id, 42);
    let JobPayload::Explain { instance, config } = &job.payload else {
        panic!("fixture is an explain job");
    };
    assert_eq!(instance.schema, vec!["Val", "Unit"]);
    assert_eq!(config.beta, 2);
    assert!(instance.decode().is_ok());
}

#[test]
fn golden_expansion_bytes_are_stable() {
    let expected = check_golden(
        "fixtures/expansion_v3.json",
        include_str!("fixtures/expansion_v3.json"),
        &encode_job(&fixture_expansion_job()),
    );
    let job = decode_job(&expected).unwrap();
    assert_eq!(job.id, 43);
    let JobPayload::Expansion {
        instance, batch, ..
    } = &job.payload
    else {
        panic!("fixture is an expansion job");
    };
    let WireInstanceSpec::Inline {
        digest,
        instance,
        extra_pool,
    } = instance
    else {
        panic!("fixture ships its instance inline");
    };
    assert_eq!(digest, &instance_digest(instance));
    assert!(extra_pool.is_empty());
    let decoded = instance.decode().unwrap();
    let request = batch[0]
        .to_request(
            decoded.pool.len(),
            decoded.source.len(),
            decoded.target.len(),
        )
        .unwrap();
    assert_eq!(request.state.id, 7);
    assert_eq!(request.alignment.len(), 2);
}
