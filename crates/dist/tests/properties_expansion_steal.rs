//! Expansion-stealing byte-identity battery (ISSUE 10 acceptance).
//!
//! The speculation driver publishes its K-way frontier batches to an
//! [`ExpansionFleet`] instead of the local thread pool; fleet workers —
//! in-process threads, spool-claiming child processes, or TCP-dialing
//! child processes — steal and expand them, and the driver's serial
//! replay absorbs whatever arrives. The invariant under test: the
//! rendered report, the search trace, and the `polled` /
//! `states_generated` counters are **byte-identical to the width-1
//! local search** at every
//!
//! > (transport {in-process, fs, tcp} × workers {0, 1, 2, 4} ×
//! > speculative width {1, 4} × both paper configurations)
//!
//! point, with `workers == 0` autosizing to `available_parallelism`.
//! A second test attaches an extra worker to a *live* TCP fleet
//! mid-sequence (the elastic-fleet path) and re-asserts identity.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use affidavit_core::{
    Affidavit, AffidavitConfig, ExpansionExecutor, InitStrategy, ProblemInstance,
};
use affidavit_datagen::blueprint::{Blueprint, GenConfig};
use affidavit_datasets::synth::generate_rows;
use affidavit_dist::{
    spawn_workers, DistBackend, ExpansionFleet, ExpansionFleetOptions, WorkerEndpoint,
};

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_affidavit-worker"))
}

/// A synthetically transformed instance small enough to sweep the whole
/// matrix but noisy enough that both paper configurations search a
/// multi-state frontier.
fn instance() -> ProblemInstance {
    let spec = affidavit_datasets::by_name("iris").expect("dataset exists");
    let (base, pool) = generate_rows(&spec, spec.rows.min(40), 0xED87);
    Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, 0xED87))
        .materialize_full()
        .instance
}

fn config(init: InitStrategy, width: usize) -> AffidavitConfig {
    let mut cfg = match init {
        InitStrategy::Overlap => AffidavitConfig::paper_overlap(),
        _ => AffidavitConfig::paper_id(),
    };
    cfg.trace = true;
    cfg.speculative_width = width;
    // Open the fan-out gate: this instance sits far below the default
    // floor, and the battery is about the stolen path, not the gate.
    cfg.speculation_min_records = 0;
    cfg
}

/// Every output surface the reconciliation protocol pins: report bytes,
/// trace bytes, poll/expansion/generation counters, end-state cost bits.
fn fingerprint(cfg: AffidavitConfig, executor: Option<Arc<dyn ExpansionExecutor>>) -> String {
    let mut inst = instance();
    let mut solver = Affidavit::new(cfg);
    if let Some(executor) = executor {
        solver = solver.with_expansion_executor(executor);
    }
    let out = solver.explain(&mut inst);
    format!(
        "{}\n===\n{}\n===\n{}|{}|{}|{}",
        affidavit_core::report::render_report(&out.explanation, &inst),
        out.trace.expect("trace requested").render(),
        out.stats.polled,
        out.stats.expansions,
        out.stats.states_generated,
        out.stats.end_state_cost.to_bits(),
    )
}

fn backend(transport: &str) -> DistBackend {
    match transport {
        "in-process" => DistBackend::InProcess,
        "fs" => DistBackend::ChildProcesses {
            broker_dir: None,
            worker_bin: Some(worker_bin()),
        },
        "tcp" => DistBackend::Tcp {
            listen: None,
            worker_bin: Some(worker_bin()),
        },
        other => unreachable!("unknown transport {other}"),
    }
}

#[test]
fn stolen_searches_are_byte_identical_across_the_full_matrix() {
    // Guards against a vacuous pass: every transport must actually steal
    // expansion jobs somewhere in the sweep (width-1 legs publish none).
    let mut steals: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for init in [InitStrategy::Id, InitStrategy::Overlap] {
        let baseline = fingerprint(config(init, 1), None);
        for transport in ["in-process", "fs", "tcp"] {
            for workers in [0usize, 1, 2, 4] {
                // One fleet serves both widths: reuse across searches is
                // part of the contract (the CLI and serve daemon hold one
                // fleet for a whole profile / process lifetime).
                let fleet = Arc::new(
                    ExpansionFleet::new(ExpansionFleetOptions {
                        workers,
                        backend: backend(transport),
                        batch: 2,
                        ..ExpansionFleetOptions::default()
                    })
                    .expect("fleet construction"),
                );
                assert!(
                    fleet.workers() >= 1,
                    "workers = 0 must autosize to at least one worker"
                );
                for width in [1usize, 4] {
                    let got = fingerprint(
                        config(init, width),
                        Some(fleet.clone() as Arc<dyn ExpansionExecutor>),
                    );
                    assert_eq!(
                        baseline, got,
                        "divergence at ({transport} × workers {workers} × width {width} × {init:?})"
                    );
                }
                *steals.entry(transport).or_default() += fleet.stats().expect("live queue").steals;
            }
        }
    }
    for transport in ["in-process", "fs", "tcp"] {
        assert!(
            steals[transport] > 0,
            "no expansion jobs were ever stolen over {transport} — the sweep passed vacuously"
        );
    }
}

#[test]
fn an_extra_worker_attaches_to_a_live_tcp_fleet() {
    let baseline = fingerprint(config(InitStrategy::Id, 1), None);
    let fleet = Arc::new(
        ExpansionFleet::new(ExpansionFleetOptions {
            workers: 1,
            backend: backend("tcp"),
            batch: 1,
            ..ExpansionFleetOptions::default()
        })
        .expect("tcp fleet"),
    );
    let first = fingerprint(
        config(InitStrategy::Id, 4),
        Some(fleet.clone() as Arc<dyn ExpansionExecutor>),
    );
    assert_eq!(baseline, first, "stolen search before the attach");

    // Elastic attach: dial a fresh worker into the already-running
    // coordinator; the next search's expansion jobs are stolen by
    // whichever of the two gets there first — identical bytes either way.
    let addr = fleet.tcp_addr().expect("tcp fleets expose their listener");
    let extra = spawn_workers(
        &worker_bin(),
        &WorkerEndpoint::Tcp(addr),
        1,
        Duration::from_millis(1),
    )
    .expect("attach an extra worker");
    let second = fingerprint(
        config(InitStrategy::Id, 4),
        Some(fleet.clone() as Arc<dyn ExpansionExecutor>),
    );
    assert_eq!(baseline, second, "stolen search after the attach");

    // Fleet shutdown also releases the attached worker (the broker's
    // shutdown marker reaches every dialed-in worker, not just spawned
    // children).
    drop(fleet);
    for mut worker in extra {
        worker.wait().ok();
    }
}
